//! `gnn4ip` — command-line IP-piracy detector.
//!
//! ```text
//! gnn4ip train --out detector.txt [--netlist] [--designs N] [--instances K] [--epochs E]
//! gnn4ip check A.v B.v [--model detector.txt] [--top1 NAME] [--top2 NAME]
//! gnn4ip embed A.v [--model detector.txt] [--top NAME]
//! gnn4ip dfg A.v [--top NAME] [--dot OUT.dot]
//! ```
//!
//! `train` builds a synthetic corpus (see `gnn4ip-data`), trains hw2vec,
//! tunes δ, and writes the detector to a file. `check` runs Algorithm 1 on
//! two Verilog files. Without `--model`, an untrained (structure-only)
//! detector is used — fine for demos, not for real screening.

use std::process::ExitCode;

use gnn4ip::data::{Corpus, CorpusSpec, Level, SynthSize};
use gnn4ip::dfg::graph_with_report;
use gnn4ip::nn::{Hw2VecConfig, TrainConfig};
use gnn4ip::{run_experiment, Gnn4Ip, IpLibrary};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // flags with values; bare switches listed here
            skip = !matches!(a.as_str(), "--netlist");
            let _ = i;
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn load_detector(args: &[String]) -> Result<Gnn4Ip, String> {
    match flag_value(args, "--model") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read model '{path}': {e}"))?;
            Gnn4Ip::from_text(&text)
        }
        None => {
            eprintln!("note: no --model given; using an untrained detector");
            Ok(Gnn4Ip::with_seed(42))
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest = &args[1.min(args.len())..];
    match cmd {
        "train" => train(rest),
        "check" => check(rest),
        "scan" => scan(rest),
        "embed" => embed(rest),
        "dfg" => dfg(rest),
        _ => {
            println!(
                "gnn4ip — hardware IP piracy detection (GNN4IP, DAC 2021 reproduction)\n\n\
                 usage:\n  \
                 gnn4ip train --out detector.txt [--netlist] [--designs N] [--instances K] [--epochs E]\n  \
                 gnn4ip check A.v B.v [--model detector.txt] [--top1 NAME] [--top2 NAME]\n  \
                 gnn4ip scan SUSPECT.v LIB1.v [LIB2.v ...] [--model detector.txt]\n  \
                 gnn4ip embed A.v [--model detector.txt] [--top NAME]\n  \
                 gnn4ip dfg A.v [--top NAME] [--dot OUT.dot]"
            );
            Ok(())
        }
    }
}

fn train(args: &[String]) -> Result<(), String> {
    let out_path = flag_value(args, "--out").unwrap_or("detector.txt");
    let netlist = args.iter().any(|a| a == "--netlist");
    let parse_n = |name: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, name) {
            Some(v) => v.parse().map_err(|e| format!("bad {name}: {e}")),
            None => Ok(default),
        }
    };
    let spec = CorpusSpec {
        level: if netlist { Level::Netlist } else { Level::Rtl },
        n_designs: parse_n("--designs", if netlist { 8 } else { 20 })?,
        instances_per_design: parse_n("--instances", 5)?,
        size: SynthSize::Medium,
        netlist_gates: 250,
        seed: 7,
        verify: false,
    };
    eprintln!(
        "building {} corpus: {} designs x {} instances ...",
        spec.level, spec.n_designs, spec.instances_per_design
    );
    let corpus = Corpus::build(&spec).map_err(|e| e.to_string())?;
    eprintln!(
        "{} graphs (mean {:.0} nodes); training ...",
        corpus.graphs.len(),
        corpus.mean_nodes()
    );
    let train_cfg = TrainConfig {
        epochs: parse_n("--epochs", 15)?,
        lr: 0.005,
        ..TrainConfig::default()
    };
    let outcome = run_experiment(&corpus, Hw2VecConfig::default(), &train_cfg, 1000, 42);
    eprintln!(
        "held-out accuracy {:.1}% at delta {:+.3}",
        100.0 * outcome.test_accuracy,
        outcome.delta
    );
    std::fs::write(out_path, outcome.detector.to_text())
        .map_err(|e| format!("cannot write '{out_path}': {e}"))?;
    println!("detector written to {out_path}");
    Ok(())
}

fn check(args: &[String]) -> Result<(), String> {
    let files = positional(args);
    let [a, b] = files.as_slice() else {
        return Err("check needs exactly two Verilog files".to_string());
    };
    let src_a = std::fs::read_to_string(a).map_err(|e| format!("{a}: {e}"))?;
    let src_b = std::fs::read_to_string(b).map_err(|e| format!("{b}: {e}"))?;
    let detector = load_detector(args)?;
    let verdict = detector
        .check_with_tops(
            &src_a,
            flag_value(args, "--top1"),
            &src_b,
            flag_value(args, "--top2"),
        )
        .map_err(|e| e.to_string())?;
    println!(
        "similarity {:+.4} (delta {:+.3}) -> {}",
        verdict.score,
        verdict.delta,
        if verdict.piracy {
            "PIRACY"
        } else {
            "no piracy"
        }
    );
    Ok(())
}

fn scan(args: &[String]) -> Result<(), String> {
    let files = positional(args);
    if files.len() < 2 {
        return Err("scan needs a suspect file plus at least one library file".to_string());
    }
    let detector = load_detector(args)?;
    let mut lib = IpLibrary::new();
    for path in &files[1..] {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        lib.register_source(&detector, *path, &src, None)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    let suspect = std::fs::read_to_string(files[0]).map_err(|e| format!("{}: {e}", files[0]))?;
    let hits = lib
        .scan(&detector, &suspect, None)
        .map_err(|e| e.to_string())?;
    for hit in hits {
        println!(
            "{:+.4}  {}  {}",
            hit.score,
            if hit.piracy { "PIRACY" } else { "ok    " },
            hit.name
        );
    }
    Ok(())
}

fn embed(args: &[String]) -> Result<(), String> {
    let files = positional(args);
    let [path] = files.as_slice() else {
        return Err("embed needs exactly one Verilog file".to_string());
    };
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let detector = load_detector(args)?;
    let emb = detector
        .hw2vec(&src, flag_value(args, "--top"))
        .map_err(|e| e.to_string())?;
    let cells: Vec<String> = emb.iter().map(|v| format!("{v:.6}")).collect();
    println!("{}", cells.join(","));
    Ok(())
}

fn dfg(args: &[String]) -> Result<(), String> {
    let files = positional(args);
    let [path] = files.as_slice() else {
        return Err("dfg needs exactly one Verilog file".to_string());
    };
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (g, report) =
        graph_with_report(&src, flag_value(args, "--top")).map_err(|e| e.to_string())?;
    println!(
        "{}: {} nodes, {} edges, {} roots (trim removed {} unreachable, collapsed {})",
        g.name(),
        report.nodes,
        report.edges,
        report.roots,
        report.trim.unreachable_removed,
        report.trim.passthrough_collapsed
    );
    if let Some(dot_path) = flag_value(args, "--dot") {
        std::fs::write(dot_path, g.to_dot())
            .map_err(|e| format!("cannot write '{dot_path}': {e}"))?;
        println!("DOT written to {dot_path}");
    }
    Ok(())
}
