//! `gnn4ip` — command-line IP-piracy detector and audit service.
//!
//! Corpus workflow (the audit service surface):
//!
//! ```text
//! gnn4ip ingest PATH... --index corpus.g4a [--model detector.bin] [--check]
//! gnn4ip audit PATH... --index corpus.g4a [--model detector.bin]
//! gnn4ip serve [--index corpus.g4a] [--socket PATH] [--workers N]
//!              [--queue-capacity N] [--max-batch N] [--max-body-bytes N]
//!              [--model detector.bin]
//! gnn4ip inspect FILE...
//! gnn4ip gc CHECKPOINT_DIR [--dry-run]
//! ```
//!
//! `PATH` arguments accept files and directories; directories are walked
//! recursively for `.v` sources. `ingest --check` validates every input
//! and exits nonzero on any rejection without writing the index. `serve`
//! speaks the line protocol documented in `gnn4ip_core::run_service`
//! over stdin/stdout, or over a Unix socket with `--socket`. `inspect`
//! prints the `G4IP` envelope of any artifact (kind, version, checksum)
//! plus kind-specific headers (shard count, pinned weights).
//!
//! Pairwise workflow (the original demo driver):
//!
//! ```text
//! gnn4ip train --out detector.txt [--netlist] [--designs N] [--instances K] [--epochs E]
//! gnn4ip check A.v B.v [--model detector.txt] [--top1 NAME] [--top2 NAME]
//! gnn4ip scan SUSPECT.v LIB1.v [LIB2.v ...] [--model detector.txt]
//! gnn4ip embed A.v [--model detector.txt] [--top NAME]
//! gnn4ip dfg A.v [--top NAME] [--dot OUT.dot]
//! ```
//!
//! `--model` accepts both the binary `gnn4ip-detector` artifact and the
//! legacy text format. Without it, an untrained (structure-only)
//! detector is used — fine for demos, not for real screening.

use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gnn4ip::core::AUDIT_INDEX_KIND;
use gnn4ip::data::{Corpus, CorpusSpec, Level, SynthSize};
use gnn4ip::dfg::graph_with_report;
use gnn4ip::eval::SHARD_INDEX_KIND;
use gnn4ip::nn::{Hw2VecConfig, TrainConfig};
use gnn4ip::tensor::{describe_artifact, BinReader, FORMAT_VERSION, MAGIC};
use gnn4ip::{
    run_experiment, run_service, AuditConfig, AuditPipeline, AuditSource, Gnn4Ip, IpLibrary,
    ServiceConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // flags with values; bare switches listed here
            skip = !matches!(a.as_str(), "--netlist" | "--check" | "--dry-run");
            let _ = i;
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn load_detector(args: &[String]) -> Result<Gnn4Ip, String> {
    match flag_value(args, "--model") {
        Some(path) => {
            let bytes =
                std::fs::read(path).map_err(|e| format!("cannot read model '{path}': {e}"))?;
            if bytes.starts_with(&MAGIC) {
                Gnn4Ip::load(path)
            } else {
                Gnn4Ip::from_text(&String::from_utf8_lossy(&bytes))
            }
        }
        None => {
            eprintln!("note: no --model given; using an untrained detector");
            Ok(Gnn4Ip::with_seed(42))
        }
    }
}

/// Parses an optional numeric flag, with a default.
fn flag_usize(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, name) {
        Some(v) => v.parse().map_err(|e| format!("bad {name}: {e}")),
        None => Ok(default),
    }
}

/// Expands files and directories into a sorted, deduplicated list of
/// Verilog sources; directories are walked recursively for `.v` files.
fn discover_verilog(inputs: &[&str]) -> Result<Vec<PathBuf>, String> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| format!("{}: {e}", dir.display()))?.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|ext| ext == "v") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    for input in inputs {
        let path = Path::new(input);
        let meta = std::fs::metadata(path).map_err(|e| format!("{input}: {e}"))?;
        if meta.is_dir() {
            walk(path, &mut files)?;
        } else {
            files.push(path.to_path_buf());
        }
    }
    files.sort();
    files.dedup();
    if files.is_empty() {
        return Err("no Verilog (.v) files found in the given paths".to_string());
    }
    Ok(files)
}

/// Reads each discovered file into an [`AuditSource`] named by its path.
fn read_sources(files: &[PathBuf]) -> Result<Vec<AuditSource>, String> {
    files
        .iter()
        .map(|path| {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            Ok(AuditSource::new(path.display().to_string(), source, None))
        })
        .collect()
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest = &args[1.min(args.len())..];
    match cmd {
        "train" => train(rest),
        "check" => check(rest),
        "scan" => scan(rest),
        "embed" => embed(rest),
        "dfg" => dfg(rest),
        "ingest" => ingest(rest),
        "audit" => audit(rest),
        "serve" => serve(rest),
        "inspect" => inspect(rest),
        "gc" => gc(rest),
        _ => {
            println!(
                "gnn4ip — hardware IP piracy detection (GNN4IP, DAC 2021 reproduction)\n\n\
                 corpus workflow:\n  \
                 gnn4ip ingest PATH... --index corpus.g4a [--model detector.bin] [--check]\n  \
                 gnn4ip audit PATH... --index corpus.g4a [--model detector.bin]\n  \
                 gnn4ip serve [--index corpus.g4a] [--socket PATH] [--workers N]\n  \
                 \x20            [--queue-capacity N] [--max-batch N] [--max-body-bytes N]\n  \
                 \x20            [--model detector.bin]\n  \
                 gnn4ip inspect FILE...\n  \
                 gnn4ip gc CHECKPOINT_DIR [--dry-run]\n\n\
                 pairwise workflow:\n  \
                 gnn4ip train --out detector.txt [--netlist] [--designs N] [--instances K] [--epochs E]\n  \
                 gnn4ip check A.v B.v [--model detector.txt] [--top1 NAME] [--top2 NAME]\n  \
                 gnn4ip scan SUSPECT.v LIB1.v [LIB2.v ...] [--model detector.txt]\n  \
                 gnn4ip embed A.v [--model detector.txt] [--top NAME]\n  \
                 gnn4ip dfg A.v [--top NAME] [--dot OUT.dot]\n\n\
                 PATH arguments accept files and directories (recursive .v discovery)."
            );
            Ok(())
        }
    }
}

fn ingest(args: &[String]) -> Result<(), String> {
    let inputs = positional(args);
    if inputs.is_empty() {
        return Err("ingest needs Verilog files or directories to ingest".to_string());
    }
    let check_only = args.iter().any(|a| a == "--check");
    let index_path = flag_value(args, "--index");
    let Some(out_path) = index_path.or(check_only.then_some("")) else {
        return Err(
            "ingest needs --index OUT.g4a (or --check to validate without writing)".to_string(),
        );
    };
    let detector = load_detector(args)?;
    let mut pipeline = AuditPipeline::new(detector, AuditConfig::default());
    if let Some(path) = index_path.filter(|p| Path::new(p).exists()) {
        let restored = pipeline
            .load_index(path)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("appending to existing index ({restored} designs)");
    }
    let files = discover_verilog(&inputs)?;
    eprintln!("discovered {} Verilog file(s)", files.len());
    let report = pipeline.ingest(read_sources(&files)?);
    for (name, err) in &report.rejected {
        eprintln!("rejected {name}: {err}");
    }
    println!(
        "ingested={} rejected={} corpus={}",
        report.ingested,
        report.rejected.len(),
        pipeline.len()
    );
    if check_only {
        return if report.rejected.is_empty() {
            println!("validation OK (nothing written)");
            Ok(())
        } else {
            Err(format!(
                "{} of {} design(s) failed validation (nothing written)",
                report.rejected.len(),
                files.len()
            ))
        };
    }
    pipeline
        .save_index(out_path)
        .map_err(|e| format!("{out_path}: {e}"))?;
    println!("index written to {out_path}");
    Ok(())
}

fn audit(args: &[String]) -> Result<(), String> {
    let inputs = positional(args);
    if inputs.is_empty() {
        return Err("audit needs suspect Verilog files or directories".to_string());
    }
    let index_path =
        flag_value(args, "--index").ok_or("audit needs --index CORPUS.g4a".to_string())?;
    let detector = load_detector(args)?;
    let mut pipeline = AuditPipeline::new(detector, AuditConfig::default());
    let corpus = pipeline
        .load_index(index_path)
        .map_err(|e| format!("{index_path}: {e}"))?;
    eprintln!("corpus: {corpus} design(s)");
    let suspects = read_sources(&discover_verilog(&inputs)?)?;
    let (verdicts, report) = pipeline.audit_many(&suspects);
    let mut parse_errors = report.rejected.iter();
    for (suspect, verdict) in suspects.iter().zip(&verdicts) {
        match verdict {
            Some(v) => {
                let best = v
                    .best()
                    .map(|m| format!("{}:{:+.4}", m.name, m.score))
                    .unwrap_or_else(|| "-".to_string());
                println!(
                    "{}  {}  best={best} matches={}",
                    if v.piracy { "PIRACY" } else { "ok    " },
                    suspect.name,
                    v.matches.len()
                );
            }
            None => {
                let detail = parse_errors
                    .next()
                    .map(|(_, err)| err.as_str())
                    .unwrap_or("rejected");
                println!("ERR     {}  {detail}", suspect.name);
            }
        }
    }
    println!(
        "audited={} flagged={} rejected={}",
        report.audited,
        report.flagged,
        report.rejected.len()
    );
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let detector = load_detector(args)?;
    let mut pipeline = AuditPipeline::new(detector, AuditConfig::default());
    if let Some(path) = flag_value(args, "--index") {
        let corpus = pipeline
            .load_index(path)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("corpus: {corpus} design(s)");
    }
    let config = ServiceConfig {
        workers: flag_usize(args, "--workers", 2)?,
        queue_capacity: flag_usize(args, "--queue-capacity", 64)?,
        max_batch: flag_usize(args, "--max-batch", 32)?,
        max_body_bytes: flag_usize(args, "--max-body-bytes", 1 << 20)?,
    };
    match flag_value(args, "--socket") {
        Some(path) => serve_socket(&mut pipeline, &config, path),
        None => {
            let report = run_service(
                &mut pipeline,
                &config,
                std::io::stdin().lock(),
                std::io::stdout(),
            )
            .map_err(|e| e.to_string())?;
            eprintln!(
                "served {} request(s): {} audit(s), {} flagged, {} ingested; \
                 p50={}us p99={}us queue_high_water={}",
                report.requests,
                report.audits,
                report.flagged,
                report.ingested,
                report.latency.p50_us,
                report.latency.p99_us,
                report.queue_high_water
            );
            Ok(())
        }
    }
}

#[cfg(unix)]
fn serve_socket(
    pipeline: &mut AuditPipeline,
    config: &ServiceConfig,
    path: &str,
) -> Result<(), String> {
    use std::os::unix::net::UnixListener;
    // a stale socket file from a previous run would make bind fail
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("listening on {path} (one session at a time; Ctrl-C stops the server)");
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| e.to_string())?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let report = run_service(pipeline, config, reader, stream).map_err(|e| e.to_string())?;
        eprintln!(
            "session closed: {} request(s), {} audit(s), p99={}us",
            report.requests, report.audits, report.latency.p99_us
        );
    }
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(
    _pipeline: &mut AuditPipeline,
    _config: &ServiceConfig,
    _path: &str,
) -> Result<(), String> {
    Err("--socket requires a Unix platform; use stdin/stdout mode".to_string())
}

/// `gnn4ip gc CHECKPOINT_DIR [--dry-run]` — sweep orphaned shard files.
fn gc(args: &[String]) -> Result<(), String> {
    let dirs = positional(args);
    let [dir] = dirs.as_slice() else {
        return Err("gc needs exactly one checkpoint directory".to_string());
    };
    let dry_run = args.iter().any(|a| a == "--dry-run");
    let report = gnn4ip::eval::gc_checkpoint_dir(dir, dry_run).map_err(|e| e.to_string())?;
    for name in &report.orphans {
        println!(
            "{} {name}",
            if dry_run { "would remove" } else { "removed" }
        );
    }
    println!(
        "{}: {} live shard file(s), {} orphan(s), {} byte(s){}",
        dir,
        report.live,
        report.orphans.len(),
        report.orphan_bytes,
        if dry_run {
            " reclaimable (dry run)"
        } else {
            " reclaimed"
        },
    );
    Ok(())
}

fn inspect(args: &[String]) -> Result<(), String> {
    let files = positional(args);
    if files.is_empty() {
        return Err("inspect needs at least one artifact file".to_string());
    }
    let mut failures = 0usize;
    for path in &files {
        if let Err(e) = inspect_one(path) {
            eprintln!("{path}: {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        Err(format!("{failures} artifact(s) failed inspection"))
    } else {
        Ok(())
    }
}

fn inspect_one(path: &str) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    let info = describe_artifact(&bytes)?;
    println!("{path}:");
    println!("  kind        {}", info.kind);
    println!("  version     v{}", info.version);
    println!("  checksum    {:#018x}", info.checksum);
    println!("  payload     {} bytes", info.payload_bytes);
    println!(
        "  registered  {}",
        if info.registered() {
            "yes"
        } else {
            "no — not a (kind, version) any writer in this workspace produces"
        }
    );
    match info.kind.as_str() {
        k if k == SHARD_INDEX_KIND => print_shard_header(&bytes)?,
        k if k == AUDIT_INDEX_KIND => print_audit_header(&bytes)?,
        _ => {}
    }
    Ok(())
}

/// Peeks the shard-index payload header: pinned weights checksum,
/// embedding dim, rows per shard, shard count.
fn print_shard_header(bytes: &[u8]) -> Result<(), String> {
    let mut r = BinReader::open_versioned(bytes, SHARD_INDEX_KIND, FORMAT_VERSION)?;
    let pin = r.u64()?;
    let dim = r.len_of()?;
    let capacity = r.len_of()?;
    let shards = r.count_of(8)?;
    println!("  weights     {pin:#018x}");
    println!("  dim         {dim}");
    println!("  shards      {shards} ({capacity} rows/shard capacity)");
    Ok(())
}

/// Peeks the audit-index payload header — designs and the nested
/// shard-index artifact it wraps.
fn print_audit_header(bytes: &[u8]) -> Result<(), String> {
    let mut r = BinReader::open_versioned(bytes, AUDIT_INDEX_KIND, FORMAT_VERSION)?;
    let pin = r.u64()?;
    let designs = r.count_of(4)?; // every name carries a 4-byte length prefix
    for _ in 0..designs {
        r.str()?;
    }
    let nested = r.bytes()?;
    let inner = describe_artifact(nested)?;
    println!("  weights     {pin:#018x}");
    println!("  designs     {designs}");
    println!(
        "  nested      {} v{} ({} bytes)",
        inner.kind, inner.version, inner.payload_bytes
    );
    print_shard_header(nested)
}

fn train(args: &[String]) -> Result<(), String> {
    let out_path = flag_value(args, "--out").unwrap_or("detector.txt");
    let netlist = args.iter().any(|a| a == "--netlist");
    let parse_n = |name: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, name) {
            Some(v) => v.parse().map_err(|e| format!("bad {name}: {e}")),
            None => Ok(default),
        }
    };
    let spec = CorpusSpec {
        level: if netlist { Level::Netlist } else { Level::Rtl },
        n_designs: parse_n("--designs", if netlist { 8 } else { 20 })?,
        instances_per_design: parse_n("--instances", 5)?,
        size: SynthSize::Medium,
        netlist_gates: 250,
        seed: 7,
        verify: false,
    };
    eprintln!(
        "building {} corpus: {} designs x {} instances ...",
        spec.level, spec.n_designs, spec.instances_per_design
    );
    let corpus = Corpus::build(&spec).map_err(|e| e.to_string())?;
    eprintln!(
        "{} graphs (mean {:.0} nodes); training ...",
        corpus.graphs.len(),
        corpus.mean_nodes()
    );
    let train_cfg = TrainConfig {
        epochs: parse_n("--epochs", 15)?,
        lr: 0.005,
        ..TrainConfig::default()
    };
    let outcome = run_experiment(&corpus, Hw2VecConfig::default(), &train_cfg, 1000, 42);
    eprintln!(
        "held-out accuracy {:.1}% at delta {:+.3}",
        100.0 * outcome.test_accuracy,
        outcome.delta
    );
    std::fs::write(out_path, outcome.detector.to_text())
        .map_err(|e| format!("cannot write '{out_path}': {e}"))?;
    println!("detector written to {out_path}");
    Ok(())
}

fn check(args: &[String]) -> Result<(), String> {
    let files = positional(args);
    let [a, b] = files.as_slice() else {
        return Err("check needs exactly two Verilog files".to_string());
    };
    let src_a = std::fs::read_to_string(a).map_err(|e| format!("{a}: {e}"))?;
    let src_b = std::fs::read_to_string(b).map_err(|e| format!("{b}: {e}"))?;
    let detector = load_detector(args)?;
    let verdict = detector
        .check_with_tops(
            &src_a,
            flag_value(args, "--top1"),
            &src_b,
            flag_value(args, "--top2"),
        )
        .map_err(|e| e.to_string())?;
    println!(
        "similarity {:+.4} (delta {:+.3}) -> {}",
        verdict.score,
        verdict.delta,
        if verdict.piracy {
            "PIRACY"
        } else {
            "no piracy"
        }
    );
    Ok(())
}

fn scan(args: &[String]) -> Result<(), String> {
    let files = positional(args);
    if files.len() < 2 {
        return Err("scan needs a suspect file plus at least one library file".to_string());
    }
    let detector = load_detector(args)?;
    let mut lib = IpLibrary::new();
    for path in &files[1..] {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        lib.register_source(&detector, *path, &src, None)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    let suspect = std::fs::read_to_string(files[0]).map_err(|e| format!("{}: {e}", files[0]))?;
    let hits = lib
        .scan(&detector, &suspect, None)
        .map_err(|e| e.to_string())?;
    for hit in hits {
        println!(
            "{:+.4}  {}  {}",
            hit.score,
            if hit.piracy { "PIRACY" } else { "ok    " },
            hit.name
        );
    }
    Ok(())
}

fn embed(args: &[String]) -> Result<(), String> {
    let files = positional(args);
    let [path] = files.as_slice() else {
        return Err("embed needs exactly one Verilog file".to_string());
    };
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let detector = load_detector(args)?;
    let emb = detector
        .hw2vec(&src, flag_value(args, "--top"))
        .map_err(|e| e.to_string())?;
    let cells: Vec<String> = emb.iter().map(|v| format!("{v:.6}")).collect();
    println!("{}", cells.join(","));
    Ok(())
}

fn dfg(args: &[String]) -> Result<(), String> {
    let files = positional(args);
    let [path] = files.as_slice() else {
        return Err("dfg needs exactly one Verilog file".to_string());
    };
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (g, report) =
        graph_with_report(&src, flag_value(args, "--top")).map_err(|e| e.to_string())?;
    println!(
        "{}: {} nodes, {} edges, {} roots (trim removed {} unreachable, collapsed {})",
        g.name(),
        report.nodes,
        report.edges,
        report.roots,
        report.trim.unreachable_removed,
        report.trim.passthrough_collapsed
    );
    if let Some(dot_path) = flag_value(args, "--dot") {
        std::fs::write(dot_path, g.to_dot())
            .map_err(|e| format!("cannot write '{dot_path}': {e}"))?;
        println!("DOT written to {dot_path}");
    }
    Ok(())
}
