//! # gnn4ip
//!
//! A Rust reproduction of **GNN4IP: Graph Neural Network for Hardware
//! Intellectual Property Piracy Detection** (Yasaei, Yu, Kasaeyan Naeini,
//! Al Faruque — DAC 2021, arXiv:2107.09130).
//!
//! GNN4IP detects IP piracy by *modeling circuits* instead of watermarking
//! them: a hardware design (RTL or gate-level netlist) becomes a data-flow
//! graph, a graph neural network (hw2vec) embeds the graph, and the cosine
//! similarity of two embeddings — against a decision boundary δ — decides
//! whether two designs are the same IP.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`hdl`] | `gnn4ip-hdl` | Verilog front end (preprocess, parse, flatten, evaluate) |
//! | [`dfg`] | `gnn4ip-dfg` | data-flow-graph extraction pipeline (Fig. 2) |
//! | [`tensor`] | `gnn4ip-tensor` | matrices, autograd, optimizers |
//! | [`nn`] | `gnn4ip-nn` | GCN + SAGPool + readout model, loss, trainer (Fig. 3) |
//! | [`data`] | `gnn4ip-data` | design generators, variation/obfuscation, corpora |
//! | [`eval`] | `gnn4ip-eval` | confusion matrices, PCA, t-SNE, score tables |
//! | [`core`] | `gnn4ip-core` | the [`Gnn4Ip`] detector and experiment harness |
//!
//! # Quickstart
//!
//! ```
//! use gnn4ip::Gnn4Ip;
//!
//! let detector = Gnn4Ip::with_seed(42);
//! let design = "module inv(input a, output y); assign y = ~a; endmodule";
//! let verdict = detector.check(design, design)?;
//! assert!(verdict.piracy); // identical sources are maximally similar
//! # Ok::<(), gnn4ip::hdl::ParseVerilogError>(())
//! ```
//!
//! See `examples/` for end-to-end scenarios (training a detector, checking
//! obfuscated netlists, reproducing the paper's similarity tables).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gnn4ip_core::{
    corpus_inputs, run_audit_scenarios, run_experiment, run_service, run_training_pipeline,
    to_pair_samples, AuditConfig, AuditError, AuditMatch, AuditPipeline, AuditSnapshot,
    AuditSource, AuditVerdict, BatchReport, BoundedQueue, ExperimentOutcome, Gnn4Ip, IngestReport,
    IpLibrary, LatencySummary, LibraryMatch, PipelineArtifacts, Publication, PublicationSlot,
    ScenarioReport, ScenarioSpec, ServiceConfig, ServiceReport, Verdict,
};

/// Verilog front end (re-export of `gnn4ip-hdl`).
pub mod hdl {
    pub use gnn4ip_hdl::*;
}

/// Data-flow-graph extraction (re-export of `gnn4ip-dfg`).
pub mod dfg {
    pub use gnn4ip_dfg::*;
}

/// Linear algebra and autograd (re-export of `gnn4ip-tensor`).
pub mod tensor {
    pub use gnn4ip_tensor::*;
}

/// The hw2vec model and trainer (re-export of `gnn4ip-nn`).
pub mod nn {
    pub use gnn4ip_nn::*;
}

/// Dataset generators and corpora (re-export of `gnn4ip-data`).
pub mod data {
    pub use gnn4ip_data::*;
}

/// Evaluation and visualization utilities (re-export of `gnn4ip-eval`).
pub mod eval {
    pub use gnn4ip_eval::*;
}

/// Detector API and experiment harness (re-export of `gnn4ip-core`).
pub mod core {
    pub use gnn4ip_core::*;
}
