//! Quality ablations over the architecture choices the paper fixes
//! (readout = max, pool ratio = 0.5, layers = 2): verify the pipeline
//! trains to useful accuracy under each alternative, so the defaults are a
//! choice rather than a requirement.
//!
//! These train several models, so every test is `#[ignore]`d: the plain
//! `cargo test -q` tier-1 gate stays fast, and `ci.sh` runs this suite in
//! its own stage via `cargo test -q --release -- --ignored`.

use gnn4ip::data::{Corpus, CorpusSpec};
use gnn4ip::nn::{Hw2VecConfig, Readout, TrainConfig};
use gnn4ip::run_experiment;

fn tiny_corpus() -> Corpus {
    let spec = CorpusSpec {
        n_designs: 5,
        instances_per_design: 3,
        ..CorpusSpec::rtl_small()
    };
    Corpus::build(&spec).expect("corpus")
}

fn quick_train() -> TrainConfig {
    TrainConfig {
        epochs: 10,
        batch_size: 16,
        lr: 0.01,
        ..TrainConfig::default()
    }
}

fn accuracy_with(config: Hw2VecConfig, corpus: &Corpus, seed: u64) -> f64 {
    run_experiment(corpus, config, &quick_train(), 60, seed).test_accuracy
}

#[test]
#[ignore = "heavy: trains several model variants; ci.sh runs these via cargo test --release -- --ignored"]
fn readout_ablation_all_variants_learn() {
    let corpus = tiny_corpus();
    for readout in [Readout::Max, Readout::Mean, Readout::Sum] {
        let acc = accuracy_with(
            Hw2VecConfig {
                readout,
                ..Hw2VecConfig::default()
            },
            &corpus,
            10,
        );
        assert!(
            acc >= 0.7,
            "readout {:?} failed to learn: {acc}",
            readout.tag()
        );
    }
}

#[test]
#[ignore = "heavy: trains several model variants; ci.sh runs these via cargo test --release -- --ignored"]
fn pool_ratio_ablation_all_ratios_learn() {
    let corpus = tiny_corpus();
    for ratio in [0.25f32, 0.5, 1.0] {
        let acc = accuracy_with(
            Hw2VecConfig {
                pool_ratio: ratio,
                ..Hw2VecConfig::default()
            },
            &corpus,
            11,
        );
        assert!(acc >= 0.7, "pool ratio {ratio} failed to learn: {acc}");
    }
}

#[test]
#[ignore = "heavy: trains several model variants; ci.sh runs these via cargo test --release -- --ignored"]
fn layer_depth_ablation() {
    let corpus = tiny_corpus();
    for layers in [1usize, 2, 3] {
        let acc = accuracy_with(
            Hw2VecConfig {
                layers,
                ..Hw2VecConfig::default()
            },
            &corpus,
            12,
        );
        assert!(acc >= 0.65, "{layers}-layer model failed to learn: {acc}");
    }
}

#[test]
#[ignore = "heavy: trains several model variants; ci.sh runs these via cargo test --release -- --ignored"]
fn conv_kind_ablation_sage_learns_too() {
    let corpus = tiny_corpus();
    for conv in [gnn4ip::nn::ConvKind::Gcn, gnn4ip::nn::ConvKind::Sage] {
        let acc = accuracy_with(
            Hw2VecConfig {
                conv,
                ..Hw2VecConfig::default()
            },
            &corpus,
            14,
        );
        assert!(acc >= 0.7, "{conv:?} failed to learn: {acc}");
    }
}

#[test]
#[ignore = "heavy: trains several model variants; ci.sh runs these via cargo test --release -- --ignored"]
fn sgd_also_learns() {
    // the paper's literal "batch gradient descent"
    let corpus = tiny_corpus();
    let cfg = TrainConfig {
        optimizer: gnn4ip::nn::OptimizerKind::Sgd,
        epochs: 40,
        lr: 0.05,
        batch_size: 16,
        ..TrainConfig::default()
    };
    let out = run_experiment(&corpus, Hw2VecConfig::default(), &cfg, 60, 13);
    assert!(
        out.test_accuracy >= 0.6,
        "plain SGD failed to learn: {}",
        out.test_accuracy
    );
}
