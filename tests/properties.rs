//! Property-based tests over the core data structures and invariants
//! declared in DESIGN.md §5.

use proptest::prelude::*;

use gnn4ip::data::{synth_design, vary_design, SynthSize, VariationConfig};
use gnn4ip::dfg::{graph_from_verilog, trim, Dfg, NodeKind, VOCAB_SIZE};
use gnn4ip::hdl::{elaborate, Evaluator};
use gnn4ip::nn::{cosine_of, GraphInput, Hw2Vec, Hw2VecConfig, Mode};
use gnn4ip::tensor::{normalized_adjacency, CsrMatrix, Matrix, Tape, Workspace};

// ----------------------------------------------------------------- tensor

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A B)^T == B^T A^T for random matrices.
    #[test]
    fn matmul_transpose_identity(
        rows in 1usize..6, inner in 1usize..6, cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let gen = |r: usize, c: usize, s: u64| {
            Matrix::from_fn(r, c, |i, j| {
                (((i * 31 + j * 17) as u64 ^ s).wrapping_mul(2654435761) % 97) as f32 / 97.0 - 0.5
            })
        };
        let a = gen(rows, inner, seed);
        let b = gen(inner, cols, seed ^ 0xABCD);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    /// spmm (and its into-buffer form) against a dense matrix equals
    /// densified matmul, and the two sparse forms agree bit for bit.
    #[test]
    fn spmm_matches_dense(
        n in 2usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8, -2.0f32..2.0), 0..20),
        seed in 0u64..1000,
    ) {
        let triples: Vec<(usize, usize, f32)> = edges
            .into_iter()
            .filter(|&(r, c, _)| r < n && c < n)
            .collect();
        let s = CsrMatrix::from_triplets(n, n, &triples);
        let x = Matrix::from_fn(n, 3, |i, j| ((i * 7 + j) as u64 ^ seed) as f32 % 5.0 - 2.0);
        let via_spmm = s.spmm(&x);
        prop_assert!(via_spmm.approx_eq(&s.to_dense().matmul(&x), 1e-3));
        let mut into = Matrix::filled(n, 3, f32::NAN); // must be fully overwritten
        s.spmm_into(&x, &mut into);
        prop_assert_eq!(into, via_spmm);
    }

    /// CSR transpose agrees with the dense transpose.
    #[test]
    fn csr_transpose_matches_dense(
        rows in 1usize..8, cols in 1usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8, -2.0f32..2.0), 0..24),
    ) {
        let triples: Vec<(usize, usize, f32)> = edges
            .into_iter()
            .filter(|&(r, c, _)| r < rows && c < cols)
            .collect();
        let s = CsrMatrix::from_triplets(rows, cols, &triples);
        prop_assert!(s.transpose().to_dense().approx_eq(&s.to_dense().transpose(), 1e-5));
    }

    /// select_square agrees with gathering rows and columns of the dense
    /// form.
    #[test]
    fn csr_select_square_matches_dense(
        n in 1usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8, -2.0f32..2.0), 0..24),
        keep_mask in 0usize..256,
    ) {
        let triples: Vec<(usize, usize, f32)> = edges
            .into_iter()
            .filter(|&(r, c, _)| r < n && c < n)
            .collect();
        let s = CsrMatrix::from_triplets(n, n, &triples);
        let idx: Vec<usize> = (0..n).filter(|&i| keep_mask >> i & 1 == 1).collect();
        let sub = s.select_square(&idx).to_dense();
        let dense = s.to_dense();
        let expect = Matrix::from_fn(idx.len(), idx.len(), |r, c| dense.get(idx[r], idx[c]));
        prop_assert!(sub.approx_eq(&expect, 1e-5));
    }

    /// matmul_nt (the blocked similarity gemm) equals matmul against the
    /// explicit transpose.
    #[test]
    fn matmul_nt_matches_transpose(
        m in 1usize..70, n in 1usize..70, d in 1usize..20, seed in 0u64..1000,
    ) {
        let gen = |r: usize, c: usize, s: u64| {
            Matrix::from_fn(r, c, |i, j| {
                (((i * 31 + j * 17) as u64 ^ s).wrapping_mul(2654435761) % 97) as f32 / 97.0 - 0.5
            })
        };
        let a = gen(m, d, seed);
        let b = gen(n, d, seed ^ 0xBEEF);
        prop_assert!(a.matmul_nt(&b).approx_eq(&a.matmul(&b.transpose()), 1e-4));
    }

    /// Normalized adjacency rows are finite, symmetric, with self-loops.
    #[test]
    fn normalized_adjacency_invariants(
        n in 1usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12), 0..30),
    ) {
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|&(u, v)| u < n && v < n)
            .collect();
        let a = normalized_adjacency(n, &edges).to_dense();
        prop_assert!(a.is_finite());
        prop_assert!(a.approx_eq(&a.transpose(), 1e-5));
        for i in 0..n {
            prop_assert!(a.get(i, i) > 0.0, "missing self loop at {i}");
        }
    }
}

// -------------------------------------------------------------------- dfg

/// Random rooted DAG for graph-invariant tests.
fn arb_dfg() -> impl Strategy<Value = Dfg> {
    (
        2usize..30,
        prop::collection::vec((0usize..30, 0usize..30), 0..60),
        0usize..45,
    )
        .prop_map(|(n, raw_edges, root_kind)| {
            let mut g = Dfg::new("prop");
            for i in 0..n {
                let kind = NodeKind::from_index((i + root_kind) % VOCAB_SIZE).expect("kind");
                g.add_node(kind, format!("n{i}"));
            }
            // edges always point to lower ids → acyclic
            for (a, b) in raw_edges {
                let (a, b) = (a % n, b % n);
                if a > b {
                    g.add_edge(a, b);
                }
            }
            g.add_root(n - 1);
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After trim, every node is reachable from a root, and trim is
    /// idempotent.
    #[test]
    fn trim_leaves_only_reachable_nodes(mut g in arb_dfg()) {
        trim(&mut g);
        let mask = g.reachable_from_roots();
        prop_assert!(mask.iter().all(|&m| m), "unreachable nodes survive trim");
        let snapshot = g.clone();
        let second = trim(&mut g);
        prop_assert_eq!(second.unreachable_removed, 0);
        prop_assert_eq!(second.passthrough_collapsed, 0);
        prop_assert_eq!(g, snapshot);
    }

    /// Kind histogram always sums to the node count.
    #[test]
    fn kind_histogram_sums_to_node_count(g in arb_dfg()) {
        prop_assert_eq!(g.kind_histogram().iter().sum::<usize>(), g.node_count());
    }
}

// ------------------------------------------------------------------ model

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Embeddings are permutation-invariant: relabeling node ids (keeping
    /// structure) does not change the graph embedding.
    #[test]
    fn embedding_is_permutation_invariant(g in arb_dfg(), seed in 0u64..50) {
        let model = Hw2Vec::new(Hw2VecConfig::default(), seed);
        // permuted copy: reverse node order
        let n = g.node_count();
        let mut p = Dfg::new("perm");
        for i in (0..n).rev() {
            let node = g.node(i);
            p.add_node(node.kind, node.label.clone());
        }
        let remap = |i: usize| n - 1 - i;
        for &(a, b) in g.edges() {
            p.add_edge(remap(a), remap(b));
        }
        for &r in g.roots() {
            p.add_root(remap(r));
        }
        let e1 = model.embed(&GraphInput::from_dfg(&g));
        let e2 = model.embed(&GraphInput::from_dfg(&p));
        let sim = cosine_of(&e1, &e2);
        prop_assert!(
            sim > 0.9999 || (e1.iter().all(|v| v.abs() < 1e-6)),
            "permutation changed embedding: cos {sim}"
        );
    }

    /// The tape-free inference pass matches the tape-backed eval-mode
    /// forward bit for bit on random graphs, for both conv kinds.
    #[test]
    fn forward_infer_matches_tape_forward(g in arb_dfg(), seed in 0u64..50, sage in 0usize..2) {
        let cfg = Hw2VecConfig {
            conv: if sage == 1 { gnn4ip::nn::ConvKind::Sage } else { gnn4ip::nn::ConvKind::Gcn },
            ..Hw2VecConfig::default()
        };
        let model = Hw2Vec::new(cfg, seed);
        let input = GraphInput::from_dfg(&g);
        let mut ws = Workspace::new();
        let fast = model.forward_infer(&input, &mut ws);
        let fast_again = model.forward_infer(&input, &mut ws);
        let tape = Tape::new();
        let vars = model.params().inject(&tape);
        let slow = model
            .forward(&tape, &vars, &input, &mut Mode::Eval)
            .value()
            .into_vec();
        prop_assert_eq!(&fast, &slow, "tape-free and tape forward diverge");
        prop_assert_eq!(&fast, &fast_again, "warm workspace changed the result");
    }

    /// Similarity is symmetric and bounded for random graph pairs.
    #[test]
    fn similarity_is_symmetric_and_bounded(a in arb_dfg(), b in arb_dfg()) {
        let model = Hw2Vec::new(Hw2VecConfig::default(), 9);
        let (ga, gb) = (GraphInput::from_dfg(&a), GraphInput::from_dfg(&b));
        let s1 = model.similarity(&ga, &gb);
        let s2 = model.similarity(&gb, &ga);
        prop_assert!((-1.001..=1.001).contains(&s1), "out of range: {s1}");
        prop_assert!((s1 - s2).abs() < 1e-5, "asymmetric: {s1} vs {s2}");
    }
}

// -------------------------------------------------------------------- hdl

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The front end never panics: arbitrary byte soup either parses or
    /// returns a ParseVerilogError.
    #[test]
    fn parser_never_panics_on_garbage(src in "[ -~\\n]{0,200}") {
        let _ = gnn4ip::hdl::parse(&src);
        let _ = gnn4ip::hdl::preprocess(&src, &Default::default());
    }

    /// Mutations of a valid module (random truncation + splice) never panic
    /// and never mis-parse into an empty success.
    #[test]
    fn parser_never_panics_on_mutated_verilog(
        cut in 0usize..200,
        splice in "[ -~]{0,16}",
        pos in 0usize..200,
    ) {
        let base = "module m(input [3:0] a, input b, output reg [3:0] y);\n  always @* begin\n    if (b) y = a + 4'd1; else y = {a[1:0], 2'b01};\n  end\nendmodule\n";
        let mut s: String = base.chars().take(cut.min(base.len())).collect();
        let at = pos.min(s.len());
        s.insert_str(at, &splice);
        let _ = gnn4ip::hdl::parse(&s);
    }

    /// Constant expressions evaluate without panicking for any operator mix
    /// the parser accepts.
    #[test]
    fn const_eval_never_panics(a in 0u64..1000, b in 0u64..1000, op in 0usize..8) {
        let ops = ["+", "-", "*", "/", "%", "<<", ">>", "&"];
        let src = format!(
            "module m(output [({a} {op} {b}) % 16 + 1:0] y);\n  assign y = 0;\nendmodule",
            op = ops[op]
        );
        let _ = gnn4ip::hdl::elaborate(&src, None);
    }
}

// ------------------------------------------------------------------- data

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every variation of every synthetic design is behaviour-preserving
    /// (checked against the combinational evaluation oracle on 4 stimuli).
    #[test]
    fn variation_preserves_semantics(family in 0u64..40, variant in 1u64..500) {
        let src = synth_design(family, SynthSize::Small);
        let varied = vary_design(&src, variant, &VariationConfig::default())
            .expect("variation");
        let base = Evaluator::new(&elaborate(&src, None).expect("flat base"))
            .expect("eval base");
        let var = Evaluator::new(&elaborate(&varied, None).expect("flat var"))
            .expect("eval var");
        let inputs: Vec<String> = base.module().inputs().iter().map(|s| s.to_string()).collect();
        for k in 0..4u64 {
            let stim: std::collections::HashMap<String, u64> = inputs
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), k.wrapping_mul(0x9E3779B9).rotate_left(i as u32 * 5)))
                .collect();
            prop_assert_eq!(
                base.eval_outputs(&stim).expect("base run"),
                var.eval_outputs(&stim).expect("var run"),
                "family {} variant {} diverges", family, variant
            );
        }
    }

    /// Varied sources still extract DFGs whose roots match the base design.
    #[test]
    fn variation_preserves_interface(family in 0u64..40, variant in 1u64..500) {
        let src = synth_design(family, SynthSize::Small);
        let varied = vary_design(&src, variant, &VariationConfig::default())
            .expect("variation");
        let g0 = graph_from_verilog(&src, None).expect("base graph");
        let g1 = graph_from_verilog(&varied, None).expect("varied graph");
        prop_assert_eq!(g0.roots().len(), g1.roots().len());
    }
}

// ------------------------------------------------------------------- eval

use gnn4ip::eval::{
    EmbeddingIndex, QueryOptions, RebalanceOptions, ShardStorage, ShardedEmbeddingIndex,
};

/// Deterministic pseudo-random embeddings; every 7th row gets a
/// non-finite component so the zero-row hardening stays under test.
fn index_rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| {
                    if i % 7 == 6 && j == i % dim {
                        [f32::NAN, f32::INFINITY, f32::NEG_INFINITY][(i / 7) % 3]
                    } else {
                        let x = ((i * 131 + j * 31) as u64 ^ seed).wrapping_mul(2654435761) % 193;
                        x as f32 / 193.0 - 0.5
                    }
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded query equals the flat index bit-for-bit for every shard
    /// capacity: same neighbor indices, labels, and score bit patterns.
    #[test]
    fn sharded_query_matches_flat_bitwise(
        n in 1usize..40,
        dim in 1usize..8,
        cap in 1usize..12,
        k in 1usize..12,
        seed in 0u64..1000,
    ) {
        let rows = index_rows(n, dim, seed);
        let mut flat = EmbeddingIndex::new(dim);
        let mut sharded = ShardedEmbeddingIndex::new(dim, cap);
        for (i, row) in rows.iter().enumerate() {
            flat.insert(row, i % 4);
            sharded.insert(row, i % 4);
        }
        let query: Vec<f32> = (0..dim)
            .map(|j| ((j as u64 ^ seed).wrapping_mul(40503) % 101) as f32 / 101.0 - 0.5)
            .collect();
        let a = flat.query(&query, k);
        let b = sharded.query(&query, k);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.index, y.index);
            prop_assert_eq!(x.label, y.label);
            prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
        // every pruning/threading combination produces the same bits
        for prune in [false, true] {
            for (threads, parallel_min_rows) in [(1, usize::MAX), (2, 0), (0, 0)] {
                let opts = QueryOptions { prune, threads, parallel_min_rows, int8_scan: true };
                let (c, _) = sharded.query_opts(&query, k, &opts);
                prop_assert_eq!(&b, &c, "opts {:?}", opts);
            }
        }
    }

    /// Bound-based shard pruning and fanned-out shard scans stay
    /// bit-identical to the flat index on *clustered* corpora — the data
    /// shape where pruning actually fires, so the rounding-slack safety
    /// margin is exercised, not just bypassed.
    #[test]
    fn pruned_and_parallel_query_matches_flat_bitwise(
        clusters in 1usize..6,
        per_cluster in 1usize..12,
        dim in 2usize..8,
        cap in 1usize..12,
        k in 1usize..10,
        spread in 0usize..4,
        seed in 0u64..1000,
    ) {
        // tight clusters along distinct axes, inserted cluster-by-cluster
        // so shards align with clusters and bounds separate well
        let n = clusters * per_cluster;
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let c = i / per_cluster;
                (0..dim)
                    .map(|j| {
                        let noise = (((i * 131 + j * 31) as u64 ^ seed)
                            .wrapping_mul(2654435761)
                            % 193) as f32
                            / 193.0
                            - 0.5;
                        let axis = if j == c % dim { 1.0 } else { 0.0 };
                        axis + noise * 0.05 * spread as f32
                    })
                    .collect()
            })
            .collect();
        let mut flat = EmbeddingIndex::new(dim);
        let mut sharded = ShardedEmbeddingIndex::new(dim, cap);
        for (i, row) in rows.iter().enumerate() {
            flat.insert(row, i / per_cluster);
            sharded.insert(row, i / per_cluster);
        }
        // query into one cluster's direction: other clusters' shards are
        // prunable exactly when the bound math is doing its job
        let target = (seed as usize) % clusters;
        let mut query = vec![0.0f32; dim];
        query[target % dim] = 1.0;
        if dim > 1 {
            query[(target + 1) % dim] = 0.1;
        }
        let expect = flat.query(&query, k);
        for (threads, parallel_min_rows) in [(1, usize::MAX), (3, 0)] {
            let opts = QueryOptions { prune: true, threads, parallel_min_rows, int8_scan: true };
            let (hits, stats) = sharded.query_opts(&query, k, &opts);
            prop_assert_eq!(&expect, &hits, "opts {:?} stats {:?}", opts, stats);
            prop_assert!(stats.sealed_pruned <= stats.sealed_shards);
        }
    }

    /// Sharded precision@k equals the flat index exactly (same f64 bits):
    /// the blocked shard×shard path selects the same neighbor sets as the
    /// materialized Gram.
    #[test]
    fn sharded_precision_matches_flat_bitwise(
        n in 2usize..32,
        dim in 1usize..6,
        cap in 1usize..10,
        k in 1usize..40,
        seed in 0u64..1000,
    ) {
        let rows = index_rows(n, dim, seed);
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let flat = EmbeddingIndex::from_embeddings_dim(dim, &rows, &labels);
        let mut sharded = ShardedEmbeddingIndex::new(dim, cap);
        for (row, &l) in rows.iter().zip(&labels) {
            sharded.insert(row, l);
        }
        prop_assert_eq!(
            flat.precision_at_k(k).to_bits(),
            sharded.precision_at_k(k).to_bits()
        );
    }

    /// The shard artifact round-trips to an identical index: same bytes
    /// back out, same query answers.
    #[test]
    fn shard_artifact_save_load_query_identity(
        n in 1usize..24,
        dim in 1usize..6,
        cap in 1usize..8,
        seed in 0u64..1000,
    ) {
        let rows = index_rows(n, dim, seed);
        let mut sharded = ShardedEmbeddingIndex::new(dim, cap);
        for (i, row) in rows.iter().enumerate() {
            sharded.insert(row, i);
        }
        let bytes = sharded.to_bytes(seed);
        let back = ShardedEmbeddingIndex::from_bytes(&bytes, seed).expect("loads");
        prop_assert_eq!(&back, &sharded);
        prop_assert_eq!(back.to_bytes(seed), bytes); // save→load→save identity
        let query: Vec<f32> = (0..dim).map(|j| 1.0 - j as f32 * 0.25).collect();
        let k = (n / 2).max(1);
        prop_assert_eq!(sharded.query(&query, k), back.query(&query, k));
        // and a different pin is refused
        prop_assert!(ShardedEmbeddingIndex::from_bytes(&bytes, seed ^ 1).is_err());
    }

    /// On an int8-quantized index, every routed/pruned/parallel/int8
    /// option combination returns bit-identical hits to the exhaustive
    /// dequantize-every-row f32 scan — shortlist rescoring makes
    /// quantization invisible in results — and a deterministic rebalance
    /// preserves the (label, score) verdicts exactly.
    #[test]
    fn quantized_routed_queries_match_exhaustive_f32_bitwise(
        n in 1usize..40,
        dim in 1usize..8,
        cap in 1usize..12,
        k in 1usize..12,
        rebalance_flag in 0u8..2,
        seed in 0u64..1000,
    ) {
        let rebalance = rebalance_flag == 1;
        let rows = index_rows(n, dim, seed);
        let mut index = ShardedEmbeddingIndex::with_storage(dim, cap, ShardStorage::Int8);
        for (i, row) in rows.iter().enumerate() {
            index.insert(row, i % 4);
        }
        if rebalance {
            index.rebalance(&RebalanceOptions::default());
        }
        let query: Vec<f32> = (0..dim)
            .map(|j| ((j as u64 ^ seed).wrapping_mul(40503) % 101) as f32 / 101.0 - 0.5)
            .collect();
        // reference: exhaustive exact f32 walk of the same stored rows
        let exhaustive = QueryOptions {
            prune: false,
            threads: 1,
            parallel_min_rows: usize::MAX,
            int8_scan: false,
        };
        let (expect, _) = index.query_opts(&query, k, &exhaustive);
        for prune in [false, true] {
            for int8_scan in [false, true] {
                for (threads, parallel_min_rows) in [(1, usize::MAX), (2, 0), (0, 0)] {
                    let opts = QueryOptions { prune, threads, parallel_min_rows, int8_scan };
                    let (hits, _) = index.query_opts(&query, k, &opts);
                    prop_assert_eq!(&expect, &hits, "opts {:?}", opts);
                }
            }
        }
        // rebalance never loses a (label, score) verdict pair
        if rebalance {
            let mut plain = ShardedEmbeddingIndex::with_storage(dim, cap, ShardStorage::Int8);
            for (i, row) in rows.iter().enumerate() {
                plain.insert(row, i % 4);
            }
            let (before, _) = plain.query_opts(&query, k, &exhaustive);
            let verdicts = |hits: &[gnn4ip::eval::QueryHit]| -> Vec<(usize, u32)> {
                hits.iter().map(|h| (h.label, h.score.to_bits())).collect()
            };
            // int8 re-calibration on reseal can move scores within a
            // quantization step; labels must survive exactly, and on f32
            // storage the full verdicts are bit-identical (checked below)
            prop_assert_eq!(before.len(), expect.len());
            let mut f32_index = ShardedEmbeddingIndex::new(dim, cap);
            for (i, row) in rows.iter().enumerate() {
                f32_index.insert(row, i % 4);
            }
            let a = f32_index.query(&query, k);
            f32_index.rebalance(&RebalanceOptions::default());
            let b = f32_index.query(&query, k);
            prop_assert_eq!(verdicts(&a), verdicts(&b));
        }
    }

    /// `query_many` answers every query in a batch bit-identically to a
    /// serial `query_opts` loop across storage modes, rebalance, and
    /// every pruning/threading combination — the blocked-gemm shard pass
    /// and shared bound walk must be an invisible optimization, never a
    /// semantic change. Per-query stats keep their accounting invariant
    /// (every sealed shard is probed or pruned); the shared walk may
    /// *distribute* probes differently than a serial walk would.
    #[test]
    fn batched_query_many_matches_serial_bitwise(
        n in 1usize..40,
        n_queries in 0usize..6,
        dim in 1usize..8,
        cap in 1usize..12,
        k in 1usize..12,
        quantized_flag in 0u8..2,
        rebalance_flag in 0u8..2,
        seed in 0u64..1000,
    ) {
        let storage = if quantized_flag == 1 { ShardStorage::Int8 } else { ShardStorage::F32 };
        let rows = index_rows(n, dim, seed);
        let mut index = ShardedEmbeddingIndex::with_storage(dim, cap, storage);
        for (i, row) in rows.iter().enumerate() {
            index.insert(row, i % 4);
        }
        if rebalance_flag == 1 {
            index.rebalance(&RebalanceOptions::default());
        }
        let queries: Vec<Vec<f32>> = (0..n_queries)
            .map(|q| {
                (0..dim)
                    .map(|j| {
                        (((q * 17 + j) as u64 ^ seed).wrapping_mul(40503) % 101) as f32 / 101.0
                            - 0.5
                    })
                    .collect()
            })
            .collect();
        for prune in [false, true] {
            for int8_scan in [false, true] {
                for (threads, parallel_min_rows) in [(1, usize::MAX), (2, 0), (0, 0)] {
                    let opts = QueryOptions { prune, threads, parallel_min_rows, int8_scan };
                    let batched = index.query_many(&queries, k, &opts);
                    prop_assert_eq!(batched.len(), queries.len());
                    for (q, (hits, stats)) in queries.iter().zip(&batched) {
                        let (expect_hits, _) = index.query_opts(q, k, &opts);
                        prop_assert_eq!(&expect_hits, hits, "opts {:?}", opts);
                        prop_assert_eq!(stats.sealed_shards, index.num_sealed_shards());
                        if prune && k < n {
                            prop_assert_eq!(
                                stats.sealed_probed + stats.sealed_pruned,
                                stats.sealed_shards,
                                "opts {:?} stats {:?}", opts, stats
                            );
                        }
                    }
                }
            }
        }
    }

    /// A v2 monolithic artifact migrates to the append-only checkpoint
    /// layout and back byte-identically, and the loaded corpus answers
    /// queries exactly like the original — for f32 and quantized storage.
    #[test]
    fn monolithic_and_append_only_layouts_agree(
        n in 1usize..24,
        dim in 1usize..6,
        cap in 1usize..8,
        quantized_flag in 0u8..2,
        seed in 0u64..1000,
    ) {
        let quantized = quantized_flag == 1;
        let rows = index_rows(n, dim, seed);
        let storage = if quantized { ShardStorage::Int8 } else { ShardStorage::F32 };
        let mut index = ShardedEmbeddingIndex::with_storage(dim, cap, storage);
        for (i, row) in rows.iter().enumerate() {
            index.insert(row, i);
        }
        let dir = std::env::temp_dir().join(format!(
            "g4ip-prop-migrate-{}-{n}-{dim}-{cap}-{quantized}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        index.checkpoint_dir(&dir, seed).expect("checkpoint");
        let loaded = ShardedEmbeddingIndex::load_dir(&dir, seed).expect("load_dir");
        prop_assert_eq!(&loaded, &index);
        // append-only → monolithic: byte-identical to serializing the
        // original directly
        prop_assert_eq!(loaded.to_bytes(seed), index.to_bytes(seed));
        // monolithic v2 → append-only: the migrated corpus answers
        // queries bit-identically (storage degrades to f32 on the
        // monolithic hop, which serializes dequantized canonical rows)
        let mono = ShardedEmbeddingIndex::from_bytes(&index.to_bytes(seed), seed).expect("v2");
        let migrated_dir = dir.join("migrated");
        mono.checkpoint_dir(&migrated_dir, seed).expect("migrate");
        let migrated = ShardedEmbeddingIndex::load_dir(&migrated_dir, seed).expect("reload");
        let query: Vec<f32> = (0..dim).map(|j| 1.0 - j as f32 * 0.25).collect();
        let k = (n / 2).max(1);
        prop_assert_eq!(migrated.query(&query, k), index.query(&query, k));
        std::fs::remove_dir_all(&dir).ok();
    }
}
