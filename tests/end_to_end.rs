//! Cross-crate integration tests: Verilog source → DFG → embedding →
//! verdict, exercising the public facade exactly as a downstream user would.

use gnn4ip::data::{
    named_rtl_designs, obfuscate_netlist, vary_design, ObfuscationConfig, VariationConfig,
};
use gnn4ip::dfg::graph_from_verilog;
use gnn4ip::nn::GraphInput;
use gnn4ip::Gnn4Ip;

#[test]
fn every_named_design_flows_through_the_full_stack() {
    let detector = Gnn4Ip::with_seed(1);
    for design in named_rtl_designs() {
        let emb = detector
            .hw2vec(&design.source, Some(&design.top))
            .unwrap_or_else(|e| panic!("{}: {e}", design.name));
        assert_eq!(emb.len(), 16, "{}", design.name);
        assert!(
            emb.iter().all(|v| v.is_finite()),
            "{} produced non-finite embedding",
            design.name
        );
    }
}

#[test]
fn self_similarity_is_one_for_all_named_designs() {
    let detector = Gnn4Ip::with_seed(2);
    for design in named_rtl_designs().into_iter().take(8) {
        let v = detector
            .check_with_tops(
                &design.source,
                Some(&design.top),
                &design.source,
                Some(&design.top),
            )
            .expect("check");
        assert!(
            v.score > 0.999,
            "{} self-similarity {}",
            design.name,
            v.score
        );
    }
}

#[test]
fn variation_keeps_untrained_similarity_high() {
    // Even an untrained model embeds a design and its recoded variant more
    // similarly than chance because the graphs share structure.
    let detector = Gnn4Ip::with_seed(3);
    let design = named_rtl_designs()
        .into_iter()
        .find(|d| d.name == "crc8")
        .expect("crc8 exists");
    let variant = vary_design(&design.source, 5, &VariationConfig::default()).expect("vary");
    let v = detector
        .check_with_tops(&design.source, Some("crc8"), &variant, Some("crc8"))
        .expect("check");
    assert!(v.score > 0.5, "varied crc8 score {}", v.score);
}

#[test]
fn obfuscated_netlist_embeds_close_to_original() {
    let detector = Gnn4Ip::with_seed(4);
    let original = gnn4ip::data::iscas::c432();
    let obf = obfuscate_netlist(&original, 3, &ObfuscationConfig::default()).expect("obf");
    let v = detector
        .check_with_tops(&original, Some("c432"), &obf, Some("c432"))
        .expect("check");
    assert!(v.score > 0.5, "obfuscated c432 score {}", v.score);
}

#[test]
fn detector_roundtrips_through_serialization() {
    let detector = Gnn4Ip::with_seed(5);
    let text = detector.to_text();
    let restored = Gnn4Ip::from_text(&text).expect("loads");
    let g = graph_from_verilog(
        "module m(input a, input b, output y); assign y = a ^ b; endmodule",
        None,
    )
    .expect("graph");
    let gi = GraphInput::from_dfg(&g);
    assert_eq!(detector.embed(&gi), restored.embed(&gi));
}

#[test]
fn fig1_adders_extract_distinct_graphs_with_same_interface() {
    let rtl = "module ADDER(input Num1, input Num2, input Cin,
                            output reg Sum, output reg Cout);
                 always @(Num1, Num2, Cin) begin
                   Sum <= ((Num1 ^ Num2) ^ Cin);
                   Cout <= (((Num1 ^ Num2) && Cin) || (Num1 && Num2));
                 end
               endmodule";
    let gates = "module ADDER(Num1, Num2, Cin, Sum, Cout);
                   input Num1, Num2, Cin;
                   output Sum, Cout;
                   wire t1, t2, t3;
                   xor (t1, Num1, Num2);
                   and (t2, Num1, Num2);
                   and (t3, t1, Cin);
                   xor (Sum, t1, Cin);
                   or (Cout, t3, t2);
                 endmodule";
    let g1 = graph_from_verilog(rtl, None).expect("rtl");
    let g2 = graph_from_verilog(gates, None).expect("gates");
    assert_eq!(g1.roots().len(), 2);
    assert_eq!(g2.roots().len(), 2);
    assert_ne!(g1.node_count(), g2.node_count(), "different topologies");
}

#[test]
fn facade_reexports_are_usable() {
    // spot-check every facade module with one symbol each
    let _ = gnn4ip::hdl::parse("module m(); endmodule").expect("hdl");
    let _ = gnn4ip::dfg::VOCAB_SIZE;
    let _ = gnn4ip::tensor::Matrix::eye(2);
    let _ = gnn4ip::nn::Hw2VecConfig::default();
    let _ = gnn4ip::data::CorpusSpec::rtl_small();
    let _ = gnn4ip::eval::ConfusionMatrix::new();
    let _ = gnn4ip::core::Gnn4Ip::with_seed(0);
}
