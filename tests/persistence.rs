//! Persistence contract of the binary artifacts: save→load→save is
//! byte-identical, loaded detectors reproduce in-memory scores bit for
//! bit, and a training run resumed from a checkpoint matches the
//! uninterrupted run's loss trajectory from the first post-checkpoint
//! step onward.

use proptest::prelude::*;

use gnn4ip::dfg::graph_from_verilog;
use gnn4ip::nn::{
    ConvKind, EngineConfig, GraphInput, Hw2Vec, Hw2VecConfig, PairLabel, PairSample, Readout,
    TrainConfig, TrainEngine,
};
use gnn4ip::Gnn4Ip;

fn config_from(hidden: usize, layers: usize, conv: usize, readout: usize) -> Hw2VecConfig {
    Hw2VecConfig {
        hidden,
        layers,
        conv: if conv == 0 {
            ConvKind::Gcn
        } else {
            ConvKind::Sage
        },
        readout: match readout {
            0 => Readout::Max,
            1 => Readout::Mean,
            _ => Readout::Sum,
        },
        ..Hw2VecConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save→load→save produces byte-identical model artifacts for any
    /// architecture in the supported space.
    #[test]
    fn model_save_load_save_is_byte_identical(
        hidden in 2usize..24,
        layers in 1usize..4,
        conv in 0usize..2,
        readout in 0usize..3,
        seed in 0u64..500,
    ) {
        let model = Hw2Vec::new(config_from(hidden, layers, conv, readout), seed);
        let bytes = model.to_bytes();
        let reloaded = Hw2Vec::from_bytes(&bytes).expect("loads");
        prop_assert_eq!(reloaded.to_bytes(), bytes, "second save drifted");
        prop_assert_eq!(model.weights_checksum(), reloaded.weights_checksum());
    }

    /// Detector artifacts (model + δ) round-trip byte-identically too,
    /// and the loaded detector scores sources bit-exactly like the
    /// original.
    #[test]
    fn detector_roundtrip_reproduces_scores(seed in 0u64..200, delta in -0.5f32..0.9) {
        let mut d = Gnn4Ip::with_seed(seed);
        d.set_delta(delta);
        let bytes = d.to_bytes();
        let d2 = Gnn4Ip::from_bytes(&bytes).expect("loads");
        prop_assert_eq!(d2.to_bytes(), bytes);
        let a = "module inv(input a, output y); assign y = ~a; endmodule";
        let b = "module x2(input a, input b, output y); assign y = a ^ b; endmodule";
        let (v1, v2) = (d.check(a, b).expect("a"), d2.check(a, b).expect("b"));
        prop_assert_eq!(v1.score.to_bits(), v2.score.to_bits());
        prop_assert_eq!(v1.piracy, v2.piracy);
    }

    /// Library artifacts are deterministic bytes (independent of hash-map
    /// iteration order) and restore the exact cached embeddings.
    #[test]
    fn library_roundtrip_is_deterministic(seed in 0u64..100) {
        let d = Gnn4Ip::with_seed(seed);
        let a = "module inv(input a, output y); assign y = ~a; endmodule";
        let b = "module x2(input a, input b, output y); assign y = a ^ b; endmodule";
        let c = "module pass(input a, output y); assign y = a; endmodule";
        for src in [a, b, c] {
            let _ = d.hw2vec(src, None).expect("embeds");
        }
        let bytes = d.library_bytes();
        let mut d2 = Gnn4Ip::from_bytes(&d.to_bytes()).expect("loads");
        prop_assert_eq!(d2.load_library_bytes(&bytes).expect("lib"), 3);
        prop_assert_eq!(d2.library_bytes(), bytes, "library bytes drifted");
        for src in [a, b, c] {
            let (e1, e2) = (
                d.hw2vec(src, None).expect("orig"),
                d2.hw2vec(src, None).expect("loaded"),
            );
            prop_assert_eq!(e1, e2);
        }
        prop_assert_eq!(d2.cache_stats().misses, 0, "loaded library not used");
    }
}

/// Small real-RTL training set for the resume tests.
fn training_set() -> (Vec<GraphInput>, Vec<PairSample>) {
    let sources = [
        "module inv(input a, output y); assign y = ~a; endmodule",
        "module buf2(input a, output y); assign y = a; endmodule",
        "module x2(input a, input b, output y); assign y = a ^ b; endmodule",
        "module a2(input a, input b, output y); assign y = a & b; endmodule",
        "module o2(input a, input b, output y); assign y = a | b; endmodule",
        "module add(input [3:0] a, input [3:0] b, output [3:0] s); assign s = a + b; endmodule",
    ];
    let graphs: Vec<GraphInput> = sources
        .iter()
        .map(|s| GraphInput::from_dfg(&graph_from_verilog(s, None).expect("graph")))
        .collect();
    let mut pairs = Vec::new();
    for i in 0..graphs.len() {
        for j in (i + 1)..graphs.len() {
            pairs.push(PairSample {
                a: i,
                b: j,
                label: if (i < 2) == (j < 2) {
                    PairLabel::Similar
                } else {
                    PairLabel::Different
                },
            });
        }
    }
    (graphs, pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A run resumed from a mid-training checkpoint recomputes the
    /// post-checkpoint epochs bit-exactly — the first recomputed epoch is
    /// the one that exercises the restored optimizer moments — and lands
    /// on the same final weights as the uninterrupted run.
    #[test]
    fn resumed_run_matches_uninterrupted(seed in 0u64..50, ckpt_every in 2usize..4) {
        let (graphs, pairs) = training_set();
        let total_epochs = 5usize;
        let dir = std::env::temp_dir().join(format!(
            "gnn4ip-persist-{}-{}-{}",
            std::process::id(),
            seed,
            ckpt_every
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        let cfg = EngineConfig {
            train: TrainConfig {
                epochs: total_epochs,
                batch_size: 4,
                lr: 0.02,
                seed,
                threads: 1,
                ..TrainConfig::default()
            },
            checkpoint_every: ckpt_every,
            checkpoint_path: Some(path.clone()),
            ..EngineConfig::default()
        };

        // uninterrupted run; checkpoints land periodically along the way,
        // the file ends up holding the last one (epoch 4 for every=2,
        // epoch 3 for every=3) — a mid-training snapshot.
        let mut full = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), seed), cfg.clone());
        let full_report = full.run(&graphs, &pairs, None).expect("runs").clone();
        let last_ckpt_epoch = (total_epochs / ckpt_every) * ckpt_every;
        prop_assert!(last_ckpt_epoch < total_epochs, "checkpoint must be mid-training");

        // "kill" the process here; a fresh engine resumes from the file
        let mut resumed = TrainEngine::resume(&path, cfg).expect("resumes");
        prop_assert_eq!(resumed.next_epoch(), last_ckpt_epoch);
        let resumed_report = resumed.run(&graphs, &pairs, None).expect("runs").clone();

        prop_assert_eq!(full_report.epochs.len(), resumed_report.epochs.len());
        for (a, b) in full_report.epochs.iter().zip(&resumed_report.epochs) {
            prop_assert_eq!(
                a.mean_loss.to_bits(),
                b.mean_loss.to_bits(),
                "epoch {} diverged: {} vs {}",
                a.epoch,
                a.mean_loss,
                b.mean_loss
            );
        }
        let e_full = full.into_model().embed(&graphs[0]);
        let e_res = resumed.into_model().embed(&graphs[0]);
        prop_assert_eq!(e_full, e_res, "final weights diverged");
        std::fs::remove_dir_all(&dir).ok();
    }
}
