//! DFG-extraction scalability (§I-B).
//!
//! The paper motivates graph *learning* over classical graph-similarity
//! algorithms partly on scalability: "existing algorithms suffer from high
//! complexity and are not scalable to large designs". This bench shows the
//! Fig. 2 pipeline itself scales near-linearly with design size (multiplier
//! netlists from 4x4 up to 16x16, i.e. tens to thousands of gates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gnn4ip_data::iscas::c6288_sized;
use gnn4ip_dfg::graph_from_verilog;

fn bench_extraction_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfg/pipeline_vs_design_size");
    group.sample_size(10);
    for width in [4usize, 8, 12, 16] {
        let src = c6288_sized(width);
        let nodes = graph_from_verilog(&src, Some("c6288"))
            .expect("extracts")
            .node_count();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}x{width}_mult_{nodes}_nodes")),
            &src,
            |b, src| {
                b.iter(|| {
                    std::hint::black_box(graph_from_verilog(src, Some("c6288")).expect("extracts"))
                })
            },
        );
    }
    group.finish();
}

fn bench_pipeline_phases(c: &mut Criterion) {
    let src = c6288_sized(12);
    let mut group = c.benchmark_group("dfg/phases");
    group.sample_size(10);
    group.bench_function("preprocess+parse", |b| {
        b.iter(|| {
            let pre = gnn4ip_hdl::preprocess(&src, &Default::default()).expect("pre");
            std::hint::black_box(gnn4ip_hdl::parse(&pre).expect("parse"))
        })
    });
    let flat = gnn4ip_hdl::elaborate(&src, Some("c6288")).expect("flat");
    group.bench_function("extract", |b| {
        b.iter(|| std::hint::black_box(gnn4ip_dfg::extract(&flat)))
    });
    group.bench_function("trim", |b| {
        let g = gnn4ip_dfg::extract(&flat);
        b.iter(|| {
            let mut g2 = g.clone();
            std::hint::black_box(gnn4ip_dfg::trim(&mut g2))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extraction_scaling, bench_pipeline_phases);
criterion_main!(benches);
