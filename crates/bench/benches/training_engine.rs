//! Training-engine benchmarks: v1 per-pair-tape full-batch training vs
//! the v2 mini-batch engine, plus checkpoint write/load latency.
//!
//! Claims to keep honest (BASELINE.md records the medians as pairs/sec):
//!
//! 1. **shared-tape mini-batches** — the v2 engine injects parameters
//!    once per worker per micro-batch and runs one backward pass for the
//!    whole micro-batch, so it must beat the v1 loop (one tape, one
//!    parameter clone, one backward per *pair*) even on a single thread.
//! 2. **fan-out** — with `threads = 0` (all cores) the micro-batch
//!    additionally data-parallelizes across workers.
//! 3. **checkpointing** — serializing and restoring the full training
//!    state (model + Adam moments + report) must stay far below the cost
//!    of one epoch, so periodic checkpoints are effectively free.

use criterion::{criterion_group, criterion_main, Criterion};

use gnn4ip_data::{designs::synth_design, SynthSize};
use gnn4ip_dfg::graph_from_verilog;
use gnn4ip_nn::{
    train, EngineConfig, GraphInput, Hw2Vec, Hw2VecConfig, PairLabel, PairSample, TrainConfig,
    TrainEngine,
};

/// A small training set over medium synthetic designs: 8 graphs, all
/// 28 unordered pairs per epoch with deterministic mixed labels.
fn training_set() -> (Vec<GraphInput>, Vec<PairSample>) {
    let graphs: Vec<GraphInput> = (0..8)
        .map(|i| {
            let src = synth_design(i, SynthSize::Medium);
            GraphInput::from_dfg(&graph_from_verilog(&src, None).expect("graph"))
        })
        .collect();
    let mut pairs = Vec::new();
    for i in 0..graphs.len() {
        for j in (i + 1)..graphs.len() {
            pairs.push(PairSample {
                a: i,
                b: j,
                // deterministic mixed labels: same family parity = similar
                label: if (i ^ j) % 2 == 0 {
                    PairLabel::Similar
                } else {
                    PairLabel::Different
                },
            });
        }
    }
    (graphs, pairs)
}

fn bench_steps_per_sec(c: &mut Criterion) {
    let (graphs, pairs) = training_set();
    let n_pairs = pairs.len();
    let mut group = c.benchmark_group("training_engine/epoch");
    group.sample_size(10);

    // v1 baseline: full batch, one tape per pair, single thread
    group.bench_function(format!("v1_full_batch_1thread_{n_pairs}_pairs"), |b| {
        b.iter(|| {
            let mut model = Hw2Vec::new(Hw2VecConfig::default(), 7);
            let cfg = TrainConfig {
                epochs: 1,
                batch_size: n_pairs,
                threads: 1,
                ..TrainConfig::default()
            };
            std::hint::black_box(train(&mut model, &graphs, &pairs, &cfg))
        })
    });

    // v2 engine: mini-batches on shared tapes, single thread
    group.bench_function(format!("v2_minibatch_1thread_{n_pairs}_pairs"), |b| {
        b.iter(|| {
            let cfg = EngineConfig {
                train: TrainConfig {
                    epochs: 1,
                    batch_size: 16,
                    threads: 1,
                    ..TrainConfig::default()
                },
                ..EngineConfig::default()
            };
            let mut engine = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 7), cfg);
            engine.run(&graphs, &pairs, None).expect("runs");
            std::hint::black_box(engine.into_model())
        })
    });

    // v2 engine: mini-batches fanned out over all cores
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    group.bench_function(
        format!("v2_minibatch_fanout_{cores}threads_{n_pairs}_pairs"),
        |b| {
            b.iter(|| {
                let cfg = EngineConfig {
                    train: TrainConfig {
                        epochs: 1,
                        batch_size: 16,
                        threads: 0,
                        ..TrainConfig::default()
                    },
                    ..EngineConfig::default()
                };
                let mut engine = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 7), cfg);
                engine.run(&graphs, &pairs, None).expect("runs");
                std::hint::black_box(engine.into_model())
            })
        },
    );
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let (graphs, pairs) = training_set();
    // a trained engine with warm Adam moments — the realistic payload
    let cfg = EngineConfig {
        train: TrainConfig {
            epochs: 2,
            batch_size: 16,
            threads: 1,
            ..TrainConfig::default()
        },
        ..EngineConfig::default()
    };
    let mut engine = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 7), cfg.clone());
    engine.run(&graphs, &pairs, None).expect("runs");

    let mut group = c.benchmark_group("training_engine/checkpoint");
    group.bench_function("serialize", |b| {
        b.iter(|| std::hint::black_box(engine.checkpoint_bytes()))
    });
    let bytes = engine.checkpoint_bytes();
    group.bench_function("deserialize", |b| {
        b.iter(|| {
            std::hint::black_box(
                TrainEngine::from_checkpoint_bytes(&bytes, cfg.clone()).expect("loads"),
            )
        })
    });

    let dir = std::env::temp_dir().join(format!("gnn4ip-bench-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("ckpt.bin");
    group.bench_function("write_file", |b| {
        b.iter(|| engine.save_checkpoint(&path).expect("writes"))
    });
    group.bench_function("load_file", |b| {
        b.iter(|| std::hint::black_box(TrainEngine::resume(&path, cfg.clone()).expect("loads")))
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_steps_per_sec, bench_checkpoint);
criterion_main!(benches);
