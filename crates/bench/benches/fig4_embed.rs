//! Fig. 4b/4c machinery timing: embedding a processor corpus, PCA
//! projection, and t-SNE at the paper's 250-point scale.

use criterion::{criterion_group, criterion_main, Criterion};

use gnn4ip_data::{designs::processors, vary_design, VariationConfig};
use gnn4ip_dfg::graph_from_verilog;
use gnn4ip_eval::{pca, tsne, TsneConfig};
use gnn4ip_nn::{GraphInput, Hw2Vec, Hw2VecConfig};

fn processor_graphs(per: usize) -> Vec<GraphInput> {
    let mut graphs = Vec::new();
    for (src, top) in [
        (processors::mips_pipeline(), "mips_pipeline"),
        (processors::mips_single(), "mips_single"),
    ] {
        for v in 0..per as u64 {
            let inst = vary_design(&src, v, &VariationConfig::default()).expect("variation");
            graphs.push(GraphInput::from_dfg(
                &graph_from_verilog(&inst, Some(top)).expect("graph"),
            ));
        }
    }
    graphs
}

fn bench_fig4(c: &mut Criterion) {
    let graphs = processor_graphs(8);
    let model = Hw2Vec::new(Hw2VecConfig::default(), 7);
    let embeddings: Vec<Vec<f32>> = graphs.iter().map(|g| model.embed(g)).collect();
    // pad to the paper's 250 points by cycling (timing only)
    let embeddings250: Vec<Vec<f32>> = (0..250)
        .map(|i| embeddings[i % embeddings.len()].clone())
        .collect();

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("embed_processor_instance", |b| {
        b.iter(|| std::hint::black_box(model.embed(&graphs[0])))
    });
    group.bench_function("pca_250x16_to_2d", |b| {
        b.iter(|| std::hint::black_box(pca(&embeddings250, 2)))
    });
    group.bench_function("tsne_250x16_to_3d_100iter", |b| {
        b.iter(|| {
            std::hint::black_box(tsne(
                &embeddings250,
                &TsneConfig {
                    iterations: 100,
                    ..TsneConfig::default()
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
