//! Table I timing columns: per-sample train and test time, RTL-scale vs
//! netlist-scale graphs.
//!
//! The paper reports 0.577/0.566 ms per RTL sample and 5.999/5.918 ms per
//! netlist sample, noting "the longer timing for netlists lies in the fact
//! that ... netlist DFGs with 3500 nodes on average are larger than RTL
//! DFGs with 1000 nodes on average". The shape to reproduce: netlist-scale
//! graphs cost several times more per sample than RTL-scale graphs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gnn4ip_data::{designs::synth_design, iscas, SynthSize};
use gnn4ip_dfg::graph_from_verilog;
use gnn4ip_nn::{cosine_embedding_loss, GraphInput, Hw2Vec, Hw2VecConfig, Mode, PairLabel};
use gnn4ip_tensor::Tape;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rtl_scale_graph() -> GraphInput {
    // ~RTL-scale (paper mean ~1000 nodes)
    let src = synth_design(3, SynthSize::Large);
    GraphInput::from_dfg(&graph_from_verilog(&src, None).expect("rtl graph"))
}

fn netlist_scale_graph() -> GraphInput {
    // c6288-class: thousands of nodes (paper netlist mean ~3500)
    GraphInput::from_dfg(
        &graph_from_verilog(&iscas::c6288(), Some("c6288")).expect("netlist graph"),
    )
}

fn bench_inference(c: &mut Criterion) {
    let model = Hw2Vec::new(Hw2VecConfig::default(), 7);
    let rtl = rtl_scale_graph();
    let net = netlist_scale_graph();
    let mut group = c.benchmark_group("table1/test_time_per_sample");
    group.sample_size(20);
    group.bench_function(format!("rtl_{}_nodes", rtl.node_count()), |b| {
        b.iter(|| std::hint::black_box(model.embed(&rtl)))
    });
    group.bench_function(format!("netlist_{}_nodes", net.node_count()), |b| {
        b.iter(|| std::hint::black_box(model.embed(&net)))
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let model = Hw2Vec::new(Hw2VecConfig::default(), 7);
    let rtl = rtl_scale_graph();
    let net = netlist_scale_graph();
    let mut group = c.benchmark_group("table1/train_time_per_sample");
    group.sample_size(10);
    for (name, g) in [("rtl", &rtl), ("netlist", &net)] {
        group.bench_function(format!("{name}_{}_nodes", g.node_count()), |b| {
            b.iter_batched(
                || StdRng::seed_from_u64(1),
                |mut rng| {
                    let tape = Tape::new();
                    let vars = model.params().inject(&tape);
                    let ha = model.forward(&tape, &vars, g, &mut Mode::Train(&mut rng));
                    let hb = model.forward(&tape, &vars, g, &mut Mode::Train(&mut rng));
                    let loss = cosine_embedding_loss(ha.cosine(hb), PairLabel::Similar, 0.5);
                    std::hint::black_box(tape.backward(loss));
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference, bench_train_step);
criterion_main!(benches);
