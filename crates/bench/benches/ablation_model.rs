//! Architecture ablations for the design choices the paper fixes in §IV:
//! readout operator (max vs mean vs sum), pooling ratio (0.25/0.5/0.75/1.0),
//! and GCN depth (1/2/3 layers). Measures forward-pass cost for each —
//! quality ablations live in the `ablations` integration test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gnn4ip_data::{designs::synth_design, SynthSize};
use gnn4ip_dfg::graph_from_verilog;
use gnn4ip_nn::{ConvKind, GraphInput, Hw2Vec, Hw2VecConfig, Readout};

fn graph() -> GraphInput {
    let src = synth_design(5, SynthSize::Large);
    GraphInput::from_dfg(&graph_from_verilog(&src, None).expect("graph"))
}

fn bench_readout(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ablation/readout");
    group.sample_size(20);
    for ro in [Readout::Max, Readout::Mean, Readout::Sum] {
        let model = Hw2Vec::new(
            Hw2VecConfig {
                readout: ro,
                ..Hw2VecConfig::default()
            },
            7,
        );
        group.bench_with_input(BenchmarkId::from_parameter(ro.tag()), &g, |b, g| {
            b.iter(|| std::hint::black_box(model.embed(g)))
        });
    }
    group.finish();
}

fn bench_pool_ratio(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ablation/pool_ratio");
    group.sample_size(20);
    for ratio in [0.25f32, 0.5, 0.75, 1.0] {
        let model = Hw2Vec::new(
            Hw2VecConfig {
                pool_ratio: ratio,
                ..Hw2VecConfig::default()
            },
            7,
        );
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &g, |b, g| {
            b.iter(|| std::hint::black_box(model.embed(g)))
        });
    }
    group.finish();
}

fn bench_layers(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ablation/gcn_layers");
    group.sample_size(20);
    for layers in [1usize, 2, 3, 4] {
        let model = Hw2Vec::new(
            Hw2VecConfig {
                layers,
                ..Hw2VecConfig::default()
            },
            7,
        );
        group.bench_with_input(BenchmarkId::from_parameter(layers), &g, |b, g| {
            b.iter(|| std::hint::black_box(model.embed(g)))
        });
    }
    group.finish();
}

fn bench_conv_kind(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ablation/conv_kind");
    group.sample_size(20);
    for conv in [ConvKind::Gcn, ConvKind::Sage] {
        let model = Hw2Vec::new(
            Hw2VecConfig {
                conv,
                ..Hw2VecConfig::default()
            },
            7,
        );
        group.bench_with_input(BenchmarkId::from_parameter(conv.tag()), &g, |b, g| {
            b.iter(|| std::hint::black_box(model.embed(g)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_readout,
    bench_pool_ratio,
    bench_layers,
    bench_conv_kind
);
criterion_main!(benches);
