//! Audit-pipeline benchmarks: the corpus-scale retrieval path.
//!
//! Claims to keep honest (BASELINE.md records the medians):
//!
//! 1. **sharded query ≈ flat query** — splitting a 1k-entry index into
//!    fixed-capacity shards (per-shard top-k + heap merge) must stay
//!    within ~10% of the monolithic scan it replaces.
//! 2. **blocked precision@k** — the shard×shard blocked path must not
//!    cost more than the materialized Gram it avoids.
//! 3. **ingest scales linearly** — streaming N designs through
//!    parse → DFG → embed_batch → shard-insert must cost ~constant time
//!    per design as N grows (bounded batches, no quadratic rebuilds).
//! 4. **artifact latency** — persisting and reloading a 1k-entry index
//!    must stay in the low-millisecond range so warm starts are free.
//! 5. **bound pruning pays** — on a clustered 1k-entry corpus, the
//!    centroid/radius bounds must skip at least half the sealed shards
//!    (asserted here) and beat the exhaustive scan on latency.
//! 6. **parallel scan is gated honestly** — fanned-out per-shard scans
//!    vs the serial walk on a 64k-entry corpus; on a single-core
//!    container the two collapse to the same inline path.

use criterion::{criterion_group, criterion_main, Criterion};

use gnn4ip_core::{AuditConfig, AuditPipeline, AuditSource, Gnn4Ip};
use gnn4ip_data::{designs::synth_design, SynthSize};
use gnn4ip_eval::{EmbeddingIndex, QueryOptions, ShardedEmbeddingIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 16; // the detector's embedding width

fn random_embeddings(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen::<f32>() - 0.5).collect())
        .collect()
}

fn bench_query_flat_vs_sharded(c: &mut Criterion) {
    let entries = random_embeddings(1024, 11);
    let mut flat = EmbeddingIndex::new(DIM);
    let mut sharded = ShardedEmbeddingIndex::new(DIM, 256);
    for (i, e) in entries.iter().enumerate() {
        flat.insert(e, i % 50);
        sharded.insert(e, i % 50);
    }
    let query: Vec<f32> = (0..DIM).map(|j| (j as f32 * 0.37).sin()).collect();
    let mut group = c.benchmark_group("audit_pipeline/query_top10_of_1024");
    group.bench_function("flat", |b| {
        b.iter(|| std::hint::black_box(flat.query(&query, 10)))
    });
    group.bench_function("sharded_cap256", |b| {
        b.iter(|| std::hint::black_box(sharded.query(&query, 10)))
    });
    group.finish();
}

fn bench_precision_blocked_vs_gram(c: &mut Criterion) {
    let entries = random_embeddings(512, 13);
    let mut flat = EmbeddingIndex::new(DIM);
    let mut sharded = ShardedEmbeddingIndex::new(DIM, 128);
    for (i, e) in entries.iter().enumerate() {
        flat.insert(e, i % 20);
        sharded.insert(e, i % 20);
    }
    let mut group = c.benchmark_group("audit_pipeline/precision_at_5_of_512");
    group.sample_size(20);
    group.bench_function("flat_materialized_gram", |b| {
        b.iter(|| std::hint::black_box(flat.precision_at_k(5)))
    });
    let mut ws = gnn4ip_tensor::Workspace::new();
    group.bench_function("sharded_blocked", |b| {
        b.iter(|| std::hint::black_box(sharded.precision_at_k_ws(5, &mut ws)))
    });
    group.finish();
}

/// The clustered 1k-design scenario: 16 tight clusters of 64 embeddings,
/// inserted cluster-by-cluster into capacity-64 shards, so each sealed
/// shard covers one cluster and carries a tight centroid/radius bound.
fn clustered_index(n_clusters: usize, per_cluster: usize, seed: u64) -> ShardedEmbeddingIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut index = ShardedEmbeddingIndex::new(DIM, per_cluster);
    let centers: Vec<Vec<f32>> = (0..n_clusters)
        .map(|_| (0..DIM).map(|_| rng.gen::<f32>() - 0.5).collect())
        .collect();
    for (c, center) in centers.iter().enumerate() {
        for _ in 0..per_cluster {
            let row: Vec<f32> = center
                .iter()
                .map(|&v| v + (rng.gen::<f32>() - 0.5) * 0.05)
                .collect();
            index.insert(&row, c);
        }
    }
    index
}

fn bench_query_pruned_vs_exhaustive(c: &mut Criterion) {
    let index = clustered_index(16, 64, 23);
    assert_eq!(index.num_sealed_shards(), 16);
    // query into cluster 5's neighborhood
    let query: Vec<f32> = index.normalized_row(5 * 64 + 7).to_vec();
    let serial = QueryOptions {
        prune: false,
        threads: 1,
        parallel_min_rows: usize::MAX,
        int8_scan: true,
    };
    let pruned = QueryOptions {
        prune: true,
        ..serial
    };
    let (exhaustive_hits, exhaustive_stats) = index.query_opts(&query, 10, &serial);
    let (pruned_hits, stats) = index.query_opts(&query, 10, &pruned);
    assert_eq!(
        exhaustive_hits, pruned_hits,
        "pruning must not change results"
    );
    println!(
        "audit_pipeline/query_pruned_1024: pruned {}/{} sealed shards \
         ({} of {} rows scanned)",
        stats.sealed_pruned, stats.sealed_shards, stats.rows_scanned, exhaustive_stats.rows_scanned
    );
    assert!(
        stats.sealed_pruned * 2 >= stats.sealed_shards,
        "clustered scenario must prune at least half the sealed shards, \
         got {}/{}",
        stats.sealed_pruned,
        stats.sealed_shards
    );
    let mut group = c.benchmark_group("audit_pipeline/query_top10_of_1024_clustered");
    group.bench_function("exhaustive", |b| {
        b.iter(|| std::hint::black_box(index.query_opts(&query, 10, &serial)))
    });
    group.bench_function("pruned", |b| {
        b.iter(|| std::hint::black_box(index.query_opts(&query, 10, &pruned)))
    });
    group.finish();
}

fn bench_query_parallel_vs_serial(c: &mut Criterion) {
    // 64 shards x 1k rows: big enough that threading could matter; the
    // options force the two paths regardless of the default row gate
    let entries = random_embeddings(65536, 29);
    let mut index = ShardedEmbeddingIndex::new(DIM, 1024);
    for (i, e) in entries.iter().enumerate() {
        index.insert(e, i % 100);
    }
    let query: Vec<f32> = (0..DIM).map(|j| (j as f32 * 0.53).cos()).collect();
    let serial = QueryOptions {
        prune: false,
        threads: 1,
        parallel_min_rows: usize::MAX,
        int8_scan: true,
    };
    let parallel = QueryOptions {
        prune: false,
        threads: 0,
        parallel_min_rows: 0,
        int8_scan: true,
    };
    let (a, _) = index.query_opts(&query, 10, &serial);
    let (b, stats) = index.query_opts(&query, 10, &parallel);
    assert_eq!(a, b, "threading must not change results");
    println!(
        "audit_pipeline/query_parallel_64k: parallel engaged: {} \
         (available cores: {})",
        stats.parallel,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut group = c.benchmark_group("audit_pipeline/query_top10_of_65536");
    group.sample_size(30);
    group.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(index.query_opts(&query, 10, &serial)))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| std::hint::black_box(index.query_opts(&query, 10, &parallel)))
    });
    group.finish();
}

fn corpus(n: usize) -> Vec<AuditSource> {
    (0..n)
        .map(|i| {
            AuditSource::new(
                format!("synth_{i}"),
                synth_design(i as u64, SynthSize::Small),
                None,
            )
        })
        .collect()
}

fn bench_ingest_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit_pipeline/ingest");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let sources = corpus(n);
        group.bench_function(format!("designs_{n}"), |b| {
            b.iter(|| {
                let mut p = AuditPipeline::new(Gnn4Ip::with_seed(7), AuditConfig::default());
                let report = p.ingest(sources.iter().cloned());
                assert_eq!(report.ingested, n);
                std::hint::black_box(p.index().len())
            })
        });
    }
    group.finish();
}

fn bench_artifact_io(c: &mut Criterion) {
    let mut p = AuditPipeline::new(Gnn4Ip::with_seed(7), AuditConfig::default());
    let entries = random_embeddings(1024, 17);
    // index synthetic embeddings directly at corpus scale: artifact cost
    // is about serialization, not the model
    let mut sharded = ShardedEmbeddingIndex::new(DIM, 256);
    for (i, e) in entries.iter().enumerate() {
        sharded.insert(e, i);
    }
    let report = p.ingest(corpus(8));
    assert_eq!(report.ingested, 8);
    let bytes = p.index_bytes();
    let mut group = c.benchmark_group("audit_pipeline/artifact");
    group.bench_function("shard_index_to_bytes_1024", |b| {
        b.iter(|| std::hint::black_box(sharded.to_bytes(42)))
    });
    let shard_bytes = sharded.to_bytes(42);
    group.bench_function("shard_index_from_bytes_1024", |b| {
        b.iter(|| std::hint::black_box(ShardedEmbeddingIndex::from_bytes(&shard_bytes, 42)))
    });
    let mut fresh = AuditPipeline::new(
        Gnn4Ip::from_bytes(&p.detector().to_bytes()).expect("loads"),
        AuditConfig::default(),
    );
    group.bench_function("pipeline_load_index_bytes", |b| {
        b.iter(|| std::hint::black_box(fresh.load_index_bytes(&bytes).expect("loads")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_query_flat_vs_sharded,
    bench_query_pruned_vs_exhaustive,
    bench_query_parallel_vs_serial,
    bench_precision_blocked_vs_gram,
    bench_ingest_scaling,
    bench_artifact_io
);
criterion_main!(benches);
