//! Inference-engine benchmarks: the batched/cached deployment path.
//!
//! Three claims to keep honest (BASELINE.md records the medians):
//!
//! 1. **cold vs. cached** — a repeat `check` of a design pair this detector
//!    has seen must be an order of magnitude faster than a cold one (the
//!    fingerprint lookup skips parse, flatten, DFG extraction, and the
//!    forward pass).
//! 2. **batch-size scaling** — `embed_many` over m distinct designs should
//!    scale sublinearly in wall-clock as workers fan out.
//! 3. **index query** — a top-k query against a corpus-scale
//!    `EmbeddingIndex` stays in the microsecond range, and the full
//!    pairwise Gram matrix goes through the blocked gemm.

use criterion::{criterion_group, criterion_main, Criterion};

use gnn4ip_core::Gnn4Ip;
use gnn4ip_data::{designs::synth_design, SynthSize};
use gnn4ip_eval::EmbeddingIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_check_cold_vs_cached(c: &mut Criterion) {
    let detector = Gnn4Ip::with_seed(7);
    let a = synth_design(3, SynthSize::Medium);
    let b = synth_design(5, SynthSize::Medium);
    let mut group = c.benchmark_group("inference_engine/check");
    group.sample_size(20);
    group.bench_function("cold", |bench| {
        bench.iter(|| {
            detector.clear_cache();
            std::hint::black_box(detector.check(&a, &b).expect("check"))
        })
    });
    detector.clear_cache();
    let _ = detector.check(&a, &b).expect("warm-up");
    group.bench_function("cached", |bench| {
        bench.iter(|| std::hint::black_box(detector.check(&a, &b).expect("check")))
    });
    group.finish();
}

fn bench_batch_scaling(c: &mut Criterion) {
    let detector = Gnn4Ip::with_seed(7);
    let designs: Vec<String> = (0..32)
        .map(|i| synth_design(i as u64, SynthSize::Small))
        .collect();
    let mut group = c.benchmark_group("inference_engine/embed_many");
    group.sample_size(10);
    for m in [1usize, 8, 32] {
        let batch: Vec<(&str, Option<&str>)> =
            designs[..m].iter().map(|s| (s.as_str(), None)).collect();
        group.bench_function(format!("batch_{m}"), |bench| {
            bench.iter(|| {
                detector.clear_cache();
                std::hint::black_box(detector.embed_many(&batch).expect("embed"))
            })
        });
    }
    group.finish();
}

fn bench_index(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(99);
    let dim = 16usize;
    let mut index = EmbeddingIndex::new(dim);
    for i in 0..4096 {
        let e: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        index.insert(&e, i % 64);
    }
    let query: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut group = c.benchmark_group("inference_engine/index");
    group.bench_function("query_top10_of_4096", |bench| {
        bench.iter(|| std::hint::black_box(index.query(&query, 10)))
    });
    let small: Vec<Vec<f32>> = (0..512)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let labels: Vec<usize> = (0..512).map(|i| i % 8).collect();
    let small_index = EmbeddingIndex::from_embeddings(&small, &labels);
    group.sample_size(10);
    group.bench_function("pairwise_gram_512", |bench| {
        bench.iter(|| std::hint::black_box(small_index.pairwise_similarity()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_check_cold_vs_cached,
    bench_batch_scaling,
    bench_index
);
criterion_main!(benches);
