//! Table/figure rendering helpers for the `repro` binary.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let c = cells.get(i).unwrap_or(&empty);
                let _ = write!(line, "{c:<w$} | ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["Dataset", "Accuracy"]);
        t.row(&["RTL".to_string(), "97.2%".to_string()]);
        t.row(&["Netlist".to_string(), "94.6%".to_string()]);
        let s = t.render();
        assert!(s.contains("| Dataset |"));
        assert!(s.contains("| Netlist |"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn tolerates_short_rows() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(&["1".to_string()]);
        assert!(t.render().contains("| 1 "));
    }
}
