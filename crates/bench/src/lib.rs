//! # gnn4ip-bench
//!
//! Benchmark harness for the GNN4IP reproduction: the `repro` binary
//! regenerates every table and figure of the paper, and the Criterion
//! benches measure per-sample timing (Table I's timing columns), DFG
//! extraction scalability (§I-B), and architecture ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;

pub use report::TextTable;
