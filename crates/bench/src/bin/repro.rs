//! Regenerates every table and figure of the GNN4IP paper (DAC 2021).
//!
//! ```text
//! cargo run --release -p gnn4ip-bench --bin repro -- <experiment> [--paper]
//!
//! experiments:
//!   table1   accuracy + per-sample timing, RTL & netlist (Table I)
//!   fig4a    confusion matrices (Fig. 4a)
//!   fig4b    PCA projection of MIPS embeddings (Fig. 4b)
//!   fig4c    t-SNE projection of MIPS embeddings (Fig. 4c)
//!   table2   similarity scores for 3 pair cases (Table II)
//!   table3   obfuscated ISCAS'85 scores (Table III)
//!   rates    false-negative rates vs watermarking (§IV-F)
//!   all      everything above, sharing trained models
//! ```
//!
//! `--paper` selects paper-scale corpora (50 RTL designs / ~400 instances,
//! ~20 netlist designs / ~140 instances, tens of thousands of pairs); the
//! default is a reduced scale that finishes in minutes. Absolute numbers are
//! platform-dependent; the *shape* of each result is what reproduces.

use std::time::Instant;

use gnn4ip_bench::TextTable;
use gnn4ip_core::{run_experiment, ExperimentOutcome};
use gnn4ip_data::{
    designs::processors, iscas, obfuscate_netlist, vary_design, Corpus, CorpusSpec, Level,
    ObfuscationConfig, SynthSize, VariationConfig,
};
use gnn4ip_dfg::graph_from_verilog;
use gnn4ip_eval::{
    auc, cluster_separation, pca, retrieval_precision_at_k, tsne, ScoreTable, TsneConfig,
};
use gnn4ip_nn::{
    cosine_of, embed_all, train, GraphInput, Hw2Vec, Hw2VecConfig, PairLabel, PairSample,
    TrainConfig,
};

#[derive(Debug, Clone, Copy)]
struct Scale {
    paper: bool,
}

impl Scale {
    fn rtl_spec(self) -> CorpusSpec {
        if self.paper {
            CorpusSpec::rtl_paper()
        } else {
            CorpusSpec {
                level: Level::Rtl,
                n_designs: 20,
                instances_per_design: 5,
                size: SynthSize::Medium,
                netlist_gates: 200,
                seed: 7,
                verify: false,
            }
        }
    }

    fn netlist_spec(self) -> CorpusSpec {
        if self.paper {
            CorpusSpec::netlist_paper()
        } else {
            CorpusSpec {
                level: Level::Netlist,
                n_designs: 8,
                instances_per_design: 6,
                size: SynthSize::Small,
                netlist_gates: 250,
                seed: 7,
                verify: false,
            }
        }
    }

    fn max_different(self) -> usize {
        if self.paper {
            12_000
        } else {
            800
        }
    }

    fn train_config(self) -> TrainConfig {
        TrainConfig {
            epochs: if self.paper { 6 } else { 18 },
            batch_size: 64,
            lr: 0.005,
            ..TrainConfig::default()
        }
    }

    fn fig4_instances(self) -> usize {
        if self.paper {
            125
        } else {
            20
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let scale = Scale { paper };
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    let t0 = Instant::now();
    match cmd {
        "table1" => {
            let (rtl, net) = table1(scale);
            print_table1(&rtl, &net);
        }
        "fig4a" => {
            let (rtl, net) = table1(scale);
            print_fig4a(&rtl, &net);
        }
        "rates" => {
            let (rtl, net) = table1(scale);
            print_rates(&rtl, &net);
        }
        "fig4b" => {
            let (emb, labels) = fig4_embeddings(scale);
            print_fig4b(&emb, &labels);
        }
        "fig4c" => {
            let (emb, labels) = fig4_embeddings(scale);
            print_fig4c(&emb, &labels);
        }
        "table2" => table2(scale),
        "table3" => table3(scale),
        "all" => {
            let (rtl, net) = table1(scale);
            print_table1(&rtl, &net);
            print_fig4a(&rtl, &net);
            print_rates(&rtl, &net);
            let (emb, labels) = fig4_embeddings(scale);
            print_fig4b(&emb, &labels);
            print_fig4c(&emb, &labels);
            table2(scale);
            table3(scale);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!("expected: table1 | fig4a | fig4b | fig4c | table2 | table3 | rates | all");
            std::process::exit(2);
        }
    }
    eprintln!("\n[done in {:.1}s]", t0.elapsed().as_secs_f64());
}

// ------------------------------------------------------------- Table I

/// Reproduces Table I: RTL vs netlist IP-piracy detection.
///
/// # Panics
///
/// Panics when corpus generation fails — in a repro harness a partial
/// table is worse than no table.
fn table1(scale: Scale) -> (ExperimentOutcome, ExperimentOutcome) {
    eprintln!("[table1] building RTL corpus ...");
    let rtl_corpus = Corpus::build(&scale.rtl_spec()).expect("RTL corpus");
    eprintln!(
        "[table1] RTL: {} designs, {} instances, mean {:.0} DFG nodes; training ...",
        rtl_corpus.designs.len(),
        rtl_corpus.instances.len(),
        rtl_corpus.mean_nodes()
    );
    let rtl = run_experiment(
        &rtl_corpus,
        Hw2VecConfig::default(),
        &scale.train_config(),
        scale.max_different(),
        42,
    );
    eprintln!("[table1] building netlist corpus ...");
    let net_corpus = Corpus::build(&scale.netlist_spec()).expect("netlist corpus");
    eprintln!(
        "[table1] netlist: {} designs, {} instances, mean {:.0} DFG nodes; training ...",
        net_corpus.designs.len(),
        net_corpus.instances.len(),
        net_corpus.mean_nodes()
    );
    let net = run_experiment(
        &net_corpus,
        Hw2VecConfig::default(),
        &scale.train_config(),
        scale.max_different() / 4,
        43,
    );
    (rtl, net)
}

fn print_table1(rtl: &ExperimentOutcome, net: &ExperimentOutcome) {
    println!("\n=== Table I: GNN4IP performance for IP piracy detection ===");
    let mut t = TextTable::new(&[
        "Dataset",
        "Dataset size",
        "# of graphs",
        "Accuracy",
        "Train time/sample",
        "Test time/sample",
    ]);
    for (name, o) in [("RTL", rtl), ("Netlist", net)] {
        t.row(&[
            name.to_string(),
            o.n_pairs.to_string(),
            o.n_graphs.to_string(),
            format!("{:.2}%", 100.0 * o.test_accuracy),
            format!("{:.3} ms", o.train_ms_per_sample),
            format!("{:.3} ms", o.test_ms_per_sample),
        ]);
    }
    println!("{}", t.render());
    println!("paper reference: RTL 75855 pairs / 390 graphs / 97.21% / 0.577 ms / 0.566 ms");
    println!("                 netlist 9870 pairs / 143 graphs / 94.61% / 5.999 ms / 5.918 ms");
    println!(
        "shape checks:    accuracy high on both; netlist slower per sample than RTL: {}",
        if net.test_ms_per_sample > rtl.test_ms_per_sample {
            "yes"
        } else {
            "NO"
        }
    );
}

fn print_fig4a(rtl: &ExperimentOutcome, net: &ExperimentOutcome) {
    println!("\n=== Fig. 4a: confusion matrices ===");
    println!(
        "RTL dataset (delta {:+.3}):\n{}",
        rtl.delta, rtl.test_confusion
    );
    println!(
        "\nNetlist dataset (delta {:+.3}):\n{}",
        net.delta, net.test_confusion
    );
    println!("\npaper reference RTL: TP 3464 / FP 10 / FN 190 / TN 11352");
    println!("paper reference netlist: TP 328 / FP 0 / FN 108 / TN 1567");
}

fn print_rates(rtl: &ExperimentOutcome, net: &ExperimentOutcome) {
    println!("\n=== §IV-F: false-negative rates (vs watermarking Pc) ===");
    let mut t = TextTable::new(&["Dataset", "FN", "Total", "FN rate"]);
    for (name, o) in [("RTL", rtl), ("Netlist", net)] {
        t.row(&[
            name.to_string(),
            o.test_confusion.fn_.to_string(),
            o.test_confusion.total().to_string(),
            format!("{:.3e}", o.test_confusion.false_negative_rate()),
        ]);
    }
    println!("{}", t.render());
    for (name, o) in [("RTL", rtl), ("Netlist", net)] {
        let scores: Vec<f32> = o.test_scores.iter().map(|(s, _)| *s).collect();
        let labels: Vec<bool> = o.test_scores.iter().map(|(_, l)| *l).collect();
        println!("{name} test AUC: {:.4}", auc(&scores, &labels));
    }
    println!("paper reference: RTL 6.65e-4, netlist 0 (zero overhead vs watermark's 0.13-26.12%)");
}

// ------------------------------------------------------------ Fig. 4b/4c

/// Reproduces Fig. 4b/4c: graph embeddings of MIPS variants.
///
/// # Panics
///
/// Panics when design generation or parsing fails — in a repro harness
/// a partial figure is worse than no figure.
fn fig4_embeddings(scale: Scale) -> (Vec<Vec<f32>>, Vec<usize>) {
    let per = scale.fig4_instances();
    eprintln!("[fig4] generating {per} instances each of pipeline & single-cycle MIPS ...");
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for (label, src, top) in [
        (0usize, processors::mips_pipeline(), "mips_pipeline"),
        (1usize, processors::mips_single(), "mips_single"),
    ] {
        for variant in 0..per as u64 {
            let inst = vary_design(&src, variant, &VariationConfig::default()).expect("variation");
            let g = graph_from_verilog(&inst, Some(top)).expect("DFG");
            graphs.push(GraphInput::from_dfg(&g));
            labels.push(label);
        }
    }
    eprintln!("[fig4] shaping embedding space (short training run) ...");
    let mut pairs = Vec::new();
    for a in 0..graphs.len() {
        for b in (a + 1)..graphs.len().min(a + 40) {
            pairs.push(PairSample {
                a,
                b,
                label: if labels[a] == labels[b] {
                    PairLabel::Similar
                } else {
                    PairLabel::Different
                },
            });
        }
    }
    let mut model = Hw2Vec::new(Hw2VecConfig::default(), 17);
    train(
        &mut model,
        &graphs,
        &pairs,
        &TrainConfig {
            epochs: 6,
            batch_size: 32,
            lr: 0.005,
            ..TrainConfig::default()
        },
    );
    (embed_all(&model, &graphs), labels)
}

fn print_fig4b(embeddings: &[Vec<f32>], labels: &[usize]) {
    println!("\n=== Fig. 4b: hw2vec embeddings, PCA 2-D ===");
    let proj = pca(embeddings, 2);
    println!(
        "explained variance: {:.1}% + {:.1}%",
        100.0 * proj.explained_variance[0],
        100.0 * proj.explained_variance[1]
    );
    let mut t = TextTable::new(&["design", "pc1", "pc2"]);
    for (i, p) in proj.points.iter().enumerate() {
        t.row(&[
            if labels[i] == 0 {
                "pipeline-MIPS"
            } else {
                "single-MIPS"
            }
            .to_string(),
            format!("{:+.4}", p[0]),
            format!("{:+.4}", p[1]),
        ]);
    }
    println!("{}", t.render());
    let sep = cluster_separation(&proj.points, labels);
    println!("cluster separation: {sep:+.3} (paper: two well-separated clusters)");
    let p_at_5 = retrieval_precision_at_k(embeddings, labels, 5);
    println!("retrieval precision@5 in embedding space: {p_at_5:.3}");
}

fn print_fig4c(embeddings: &[Vec<f32>], labels: &[usize]) {
    println!("\n=== Fig. 4c: hw2vec embeddings, t-SNE 3-D ===");
    let y = tsne(
        embeddings,
        &TsneConfig {
            dims: 3,
            perplexity: (embeddings.len() as f64 / 6.0).clamp(5.0, 30.0),
            iterations: 400,
            ..TsneConfig::default()
        },
    );
    let mut t = TextTable::new(&["design", "x", "y", "z"]);
    for (i, p) in y.iter().enumerate() {
        t.row(&[
            if labels[i] == 0 {
                "pipeline-MIPS"
            } else {
                "single-MIPS"
            }
            .to_string(),
            format!("{:+.3}", p[0]),
            format!("{:+.3}", p[1]),
            format!("{:+.3}", p[2]),
        ]);
    }
    println!("{}", t.render());
    let sep = cluster_separation(&y, labels);
    println!("cluster separation: {sep:+.3} (paper: two well-separated clusters)");
}

// ------------------------------------------------------------- Table II

/// Reproduces Table II: per-family RTL detection breakdown.
///
/// # Panics
///
/// Panics when corpus generation fails — in a repro harness a partial
/// table is worse than no table.
fn table2(scale: Scale) {
    eprintln!("[table2] training an RTL detector ...");
    let corpus = Corpus::build(&scale.rtl_spec()).expect("corpus");
    let outcome = run_experiment(
        &corpus,
        Hw2VecConfig::default(),
        &scale.train_config(),
        scale.max_different(),
        44,
    );
    let detector = outcome.detector;
    println!("\n=== Table II: similarity scores for a variety of design pairs ===");
    let n_examples = if scale.paper { 50 } else { 12 };

    let embed_src = |src: &str, top: &str, variant: u64| -> Vec<f32> {
        let inst = vary_design(src, variant, &VariationConfig::default()).expect("variation");
        let g = graph_from_verilog(&inst, Some(top)).expect("DFG");
        detector.embed(&GraphInput::from_dfg(&g))
    };

    let aes = gnn4ip_data::designs::crypto::aes();
    let fpa = gnn4ip_data::designs::arith::fpa();
    let rs232 = gnn4ip_data::designs::comm::rs232();
    let mips_p = processors::mips_pipeline();
    let mips_m = processors::mips_multi();
    let mips_s = processors::mips_single();
    let alu = processors::alu();

    // Case 1: different designs
    let mut case1 = ScoreTable::new("Case 1: different designs");
    for (label, (sa, ta), (sb, tb)) in [
        ("AES / FPA", (&aes, "aes"), (&fpa, "fpa")),
        ("AES / RS232", (&aes, "aes"), (&rs232, "rs232")),
        ("AES / MIPS", (&aes, "aes"), (&mips_s, "mips_single")),
        ("FPA / MIPS", (&fpa, "fpa"), (&mips_s, "mips_single")),
    ] {
        let s = cosine_of(&embed_src(sa, ta, 0), &embed_src(sb, tb, 0));
        case1.push(label, vec![s]);
    }
    // pooled mean over many cross-design pairs
    let named: Vec<(&String, &str)> = vec![
        (&aes, "aes"),
        (&fpa, "fpa"),
        (&rs232, "rs232"),
        (&mips_p, "mips_pipeline"),
        (&mips_m, "mips_multi"),
        (&mips_s, "mips_single"),
        (&alu, "alu"),
    ];
    let mut pool1 = Vec::new();
    'outer: for i in 0..named.len() {
        for j in (i + 1)..named.len() {
            let s = cosine_of(
                &embed_src(named[i].0, named[i].1, 0),
                &embed_src(named[j].0, named[j].1, 0),
            );
            pool1.push(s);
            if pool1.len() >= n_examples {
                break 'outer;
            }
        }
    }
    case1.push(format!("pooled ({} pairs)", pool1.len()), pool1);
    println!("{}", case1.render());
    println!("paper case 1 mean: -0.0831 (very low for unrelated designs)\n");

    // Case 2: same design, different codes
    let mut case2 = ScoreTable::new("Case 2: different codes, same design");
    for (label, src, top) in [
        ("AES1 / AES2", &aes, "aes"),
        ("P.MIPS1 / P.MIPS2", &mips_p, "mips_pipeline"),
        ("M.MIPS1 / M.MIPS2", &mips_m, "mips_multi"),
        ("S.MIPS1 / S.MIPS2", &mips_s, "mips_single"),
    ] {
        let s = cosine_of(&embed_src(src, top, 1), &embed_src(src, top, 2));
        case2.push(label, vec![s]);
    }
    let mut pool2 = Vec::new();
    for (k, (src, top)) in named.iter().enumerate() {
        for v in 1..=(n_examples / named.len()).max(2) as u64 {
            let s = cosine_of(
                &embed_src(src, top, 0),
                &embed_src(src, top, v * 7 + k as u64),
            );
            pool2.push(s);
        }
    }
    case2.push(format!("pooled ({} pairs)", pool2.len()), pool2);
    println!("{}", case2.render());
    println!("paper case 2 mean: +0.9571 (close to 1 for recoded designs)\n");

    // Case 3: a design and its subset (MIPS contains the ALU block)
    let mut case3 = ScoreTable::new("Case 3: design vs its subset (MIPS vs ALU)");
    let mut pool3 = Vec::new();
    for v in 0..4u64 {
        let s = cosine_of(
            &embed_src(&mips_p, "mips_pipeline", v),
            &embed_src(&alu, "alu", v),
        );
        case3.push(format!("P.MIPS{} / ALU{}", v + 1, v + 1), vec![s]);
        pool3.push(s);
    }
    for v in 4..n_examples as u64 {
        pool3.push(cosine_of(
            &embed_src(&mips_s, "mips_single", v),
            &embed_src(&alu, "alu", v),
        ));
    }
    case3.push(format!("pooled ({} pairs)", pool3.len()), pool3);
    println!("{}", case3.render());
    println!("paper case 3 mean: +0.5342 (intermediate: the ALU is a block of MIPS)");
}

// ------------------------------------------------------------ Table III

/// Reproduces Table III: per-family netlist detection breakdown.
///
/// # Panics
///
/// Panics when corpus generation fails — in a repro harness a partial
/// table is worse than no table.
fn table3(scale: Scale) {
    eprintln!("[table3] training a netlist detector ...");
    let corpus = Corpus::build(&scale.netlist_spec()).expect("corpus");
    let outcome = run_experiment(
        &corpus,
        Hw2VecConfig::default(),
        &scale.train_config(),
        scale.max_different() / 4,
        45,
    );
    let detector = outcome.detector;
    println!("\n=== Table III: similarity scores for obfuscated ISCAS'85 benchmarks ===");
    let n_obf = if scale.paper { 20 } else { 6 };
    let benchmarks: Vec<(&str, String, &str)> = vec![
        ("c432", iscas::c432(), "27-channel interrupt controller"),
        ("c499", iscas::c499(), "32-bit single error correcting"),
        ("c880", iscas::c880(), "8-bit ALU"),
        ("c1355", iscas::c1355(), "32-bit single error correcting"),
        ("c1908", iscas::c1908(), "16-bit error detecting"),
        ("c6288", iscas::c6288(), "16x16 multiplier"),
    ];
    let mut t = TextTable::new(&["Circuit", "Circuit function", "# of circuits", "Score"]);
    let mut all_obf_scores = Vec::new();
    let base_embeddings: Vec<Vec<f32>> = benchmarks
        .iter()
        .map(|(name, src, _)| {
            let g = graph_from_verilog(src, Some(name)).expect("DFG");
            detector.embed(&GraphInput::from_dfg(&g))
        })
        .collect();
    for (bi, (name, src, function)) in benchmarks.iter().enumerate() {
        let mut scores = Vec::new();
        for v in 1..=n_obf as u64 {
            let obf =
                obfuscate_netlist(src, v, &ObfuscationConfig::default()).expect("obfuscation");
            let g = graph_from_verilog(&obf, Some(name)).expect("DFG");
            let emb = detector.embed(&GraphInput::from_dfg(&g));
            scores.push(cosine_of(&base_embeddings[bi], &emb));
        }
        let mean: f32 = scores.iter().sum::<f32>() / scores.len() as f32;
        all_obf_scores.extend(scores);
        t.row(&[
            name.to_string(),
            function.to_string(),
            n_obf.to_string(),
            format!("{mean:+.4}"),
        ]);
    }
    println!("{}", t.render());
    let overall: f32 = all_obf_scores.iter().sum::<f32>() / all_obf_scores.len() as f32;
    let mut between = Vec::new();
    for i in 0..base_embeddings.len() {
        for j in (i + 1)..base_embeddings.len() {
            between.push(cosine_of(&base_embeddings[i], &base_embeddings[j]));
        }
    }
    let between_mean: f32 = between.iter().sum::<f32>() / between.len() as f32;
    println!("Between benchmarks and their obfuscated instances: {overall:+.4} (paper: +0.9976)");
    println!(
        "Between different benchmarks:                      {between_mean:+.4} (paper: -0.1606)"
    );
    let hits = all_obf_scores
        .iter()
        .filter(|&&s| s > detector.delta())
        .count();
    println!(
        "original IP identified in obfuscated design: {}/{} ({:.0}%; paper: 100%)",
        hits,
        all_obf_scores.len(),
        100.0 * hits as f64 / all_obf_scores.len() as f64
    );
}
