//! Audit-service saturation bench: batched-vs-serial query throughput,
//! then N paced reader threads against a live `PublicationSlot` while a
//! writer keeps ingesting and publishing.
//!
//! ```text
//! cargo run --release -p gnn4ip-bench --bin saturation -- [flags]
//!
//!   --rows N          corpus size before the clock starts   (100000)
//!   --dim D           embedding dimension                    (32)
//!   --cap C           shard capacity                         (2048)
//!   --clusters K      synthetic cluster count                (16)
//!   --k K             neighbors per query                    (10)
//!   --batch B         queries per batched request            (32)
//!   --readers R       concurrent reader threads              (4)
//!   --qps Q           aggregate target queries/sec           (2000)
//!   --duration-ms MS  saturation phase length                (3000)
//!   --publish-every P writer rows between publishes          (2048)
//!   --publish-interval-ms MS  writer pause between publishes (250)
//! ```
//!
//! Two phases, one corpus:
//!
//! 1. **Batched vs serial.** The same `--batch`-query workload runs
//!    through a `query_opts` loop and through one `query_many` call,
//!    each repeated until a wall-clock budget elapses. `query_many`
//!    streams every scanned shard block through the cache once per
//!    *batch* (blocked gemm) instead of once per query, so the ratio is
//!    a memory-traffic win that does not need extra cores.
//! 2. **Saturation.** Readers pace themselves to the aggregate
//!    `--qps` target, each request scoring one batch against the newest
//!    published snapshot (`load_if_newer`), while the writer inserts
//!    fresh rows and republishes every `--publish-every` insertions.
//!    Per-request latencies aggregate into the same nearest-rank
//!    p50/p99/max summary the `gnn4ip serve` loop reports.
//!
//! All data derives from splitmix64 — no RNG state, identical runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use gnn4ip_core::{LatencySummary, PublicationSlot};
use gnn4ip_eval::{QueryOptions, ShardedEmbeddingIndex};

fn arg_value(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic pseudo-uniform value in `[-1, 1)` for a (salt, i, j)
/// coordinate.
fn coord(salt: u64, i: u64, j: u64) -> f32 {
    let h = splitmix64(salt ^ splitmix64(i ^ splitmix64(j)));
    ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
}

fn cluster_center(c: usize, dim: usize) -> Vec<f32> {
    (0..dim).map(|j| coord(1, c as u64, j as u64)).collect()
}

/// Row `i`: its cluster center plus small noise, clusters arriving
/// round-robin — the service's steady-state ingest shape.
fn clustered_row(i: usize, dim: usize, clusters: usize) -> Vec<f32> {
    let center = cluster_center(i % clusters, dim);
    (0..dim)
        .map(|j| center[j] + 0.05 * coord(2, i as u64, j as u64))
        .collect()
}

/// Query `q` probes cluster `q % clusters` with fresh noise.
fn clustered_query(q: usize, dim: usize, clusters: usize) -> Vec<f32> {
    let center = cluster_center(q % clusters, dim);
    (0..dim)
        .map(|j| center[j] + 0.05 * coord(4, q as u64, j as u64))
        .collect()
}

/// Runs `work` repeatedly until `budget` elapses, returning
/// (queries scored, elapsed seconds).
fn run_for(budget: Duration, queries_per_call: usize, mut work: impl FnMut()) -> (usize, f64) {
    let start = Instant::now();
    let mut done = 0;
    while start.elapsed() < budget {
        work();
        done += queries_per_call;
    }
    (done, start.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows = arg_value(&args, "--rows", 100_000);
    let dim = arg_value(&args, "--dim", 32);
    let cap = arg_value(&args, "--cap", 2048);
    let clusters = arg_value(&args, "--clusters", 16);
    let k = arg_value(&args, "--k", 10);
    let batch = arg_value(&args, "--batch", 32).max(1);
    let readers = arg_value(&args, "--readers", 4).max(1);
    let qps = arg_value(&args, "--qps", 2000).max(1);
    let duration_ms = arg_value(&args, "--duration-ms", 3000);
    let publish_every = arg_value(&args, "--publish-every", 2048).max(1);
    let publish_interval =
        Duration::from_millis(arg_value(&args, "--publish-interval-ms", 250) as u64);

    println!(
        "saturation bench: {rows} rows x dim {dim}, shard capacity {cap}, {clusters} clusters, \
         k={k}, batch {batch}\n"
    );

    // ---- build ---------------------------------------------------------
    let mut index = ShardedEmbeddingIndex::new(dim, cap);
    let start = Instant::now();
    for i in 0..rows {
        index.insert(&clustered_row(i, dim, clusters), i);
    }
    let ingest = start.elapsed().as_secs_f64();
    println!(
        "ingest: {rows} rows in {ingest:.2} s ({:.0} rows/s)",
        rows as f64 / ingest.max(1e-9)
    );

    // ---- 1. batched vs serial ------------------------------------------
    // Single-threaded exhaustive scans isolate the gemm-vs-gemv effect:
    // no pruning luck, no fan-out, every row scored on both paths.
    let opts = QueryOptions {
        prune: false,
        threads: 1,
        parallel_min_rows: usize::MAX,
        int8_scan: false,
    };
    let queries: Vec<Vec<f32>> = (0..batch)
        .map(|q| clustered_query(q, dim, clusters))
        .collect();
    // alternate the two paths across short rounds and keep each path's
    // fastest round: interference on a shared host is one-sided (a busy
    // neighbor only ever slows a round down), so best-of is the
    // noise-rejecting estimate for both sides of the ratio
    let round = Duration::from_millis(150);
    let mut serial_qps = 0f64;
    let mut batched_qps = 0f64;
    for warmed in [false, true, true, true, true] {
        let (n, secs) = run_for(round, batch, || {
            for q in &queries {
                let (hits, _) = index.query_opts(q, k, &opts);
                std::hint::black_box(hits);
            }
        });
        if warmed {
            serial_qps = serial_qps.max(n as f64 / secs);
        }
        let (n, secs) = run_for(round, batch, || {
            std::hint::black_box(index.query_many(&queries, k, &opts));
        });
        if warmed {
            batched_qps = batched_qps.max(n as f64 / secs);
        }
    }
    let ratio = batched_qps / serial_qps;
    println!(
        "serial  query_opts loop: {serial_qps:.0} queries/s ({:.2} ms/query)",
        1e3 / serial_qps
    );
    println!(
        "batched query_many x{batch}: {batched_qps:.0} queries/s ({:.2} ms/query)",
        1e3 / batched_qps
    );
    println!("batched/serial throughput: {ratio:.1}x (target >= 3x at batch 32)\n");

    // ---- 2. saturation under live ingest -------------------------------
    let interval = Duration::from_secs_f64(batch as f64 * readers as f64 / qps as f64);
    let deadline = Instant::now() + Duration::from_millis(duration_ms as u64);
    let slot = PublicationSlot::with_initial(index.clone());
    let stop = AtomicBool::new(false);
    let mut all_lats: Vec<u64> = Vec::new();
    let mut writer_stats = (0usize, 0usize); // (rows added, publishes)
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let slot = &slot;
                let stop = &stop;
                scope.spawn(move || {
                    let queries: Vec<Vec<f32>> = (0..batch)
                        .map(|q| clustered_query(r * batch + q, dim, clusters))
                        .collect();
                    let mut lats: Vec<u64> = Vec::new();
                    let mut seen = 0u64;
                    let mut snap = None;
                    let mut next = Instant::now();
                    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                        if let Some(p) = slot.load_if_newer(seen) {
                            seen = p.epoch();
                            snap = Some(p);
                        }
                        let Some(p) = &snap else { break };
                        let t0 = Instant::now();
                        std::hint::black_box(p.value().query_many(&queries, k, &opts));
                        lats.push(t0.elapsed().as_micros() as u64);
                        next += interval;
                        let now = Instant::now();
                        if next > now {
                            std::thread::sleep(next - now);
                        } else {
                            next = now; // saturated: don't bank a backlog
                        }
                    }
                    lats
                })
            })
            .collect();

        // writer: keep the corpus growing and republish snapshots,
        // pacing itself so ingest is a steady trickle rather than a
        // core-monopolizing spin (a service ingests at arrival rate)
        let mut added = 0;
        let mut publishes = 0;
        while Instant::now() < deadline {
            for j in 0..publish_every {
                index.insert(
                    &clustered_row(rows + added + j, dim, clusters),
                    rows + added + j,
                );
            }
            added += publish_every;
            slot.publish(index.clone());
            publishes += 1;
            let now = Instant::now();
            if now < deadline {
                std::thread::sleep(publish_interval.min(deadline - now));
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer_stats = (added, publishes);
        for h in handles {
            if let Ok(lats) = h.join() {
                all_lats.extend(lats);
            }
        }
    });

    let elapsed = duration_ms as f64 / 1e3;
    let summary = LatencySummary::from_samples(&all_lats);
    let achieved = (summary.count * batch) as f64 / elapsed;
    let (added, publishes) = writer_stats;
    println!(
        "saturation: {readers} readers x batch {batch}, target {qps} q/s for {elapsed:.1} s \
         while the writer ingests"
    );
    println!(
        "achieved {achieved:.0} q/s ({} requests); writer added {added} rows across \
         {publishes} publishes (final epoch {})",
        summary.count,
        slot.epoch()
    );
    println!(
        "request latency: p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
        summary.p50_us as f64 / 1e3,
        summary.p99_us as f64 / 1e3,
        summary.max_us as f64 / 1e3
    );

    assert!(
        summary.count > 0,
        "saturation phase recorded no requests — deadline too short?"
    );
    println!("\nsaturation harness green: batched {ratio:.1}x serial, snapshots stayed live under ingest.");
}
