//! # gnn4ip-core
//!
//! The primary contribution of the GNN4IP paper as a library: an IP-piracy
//! detector that models hardware designs as data-flow graphs, embeds them
//! with a graph neural network (hw2vec), and scores design pairs by cosine
//! similarity against a decision boundary δ (Algorithm 1).
//!
//! - [`Gnn4Ip`] — the detector: `hw2vec(p)`, `check(p1, p2)` → [`Verdict`],
//!   plus the batched/cached forms `check_many` and `embed_many` backed by a
//!   content-addressed [`EmbeddingCache`].
//! - [`run_experiment`] — the Table-I protocol: corpus → train → tune δ →
//!   held-out confusion matrix + per-sample timing.
//! - [`IpLibrary`] — portfolio screening: embed owned cores once, scan each
//!   incoming design against all of them.
//!
//! # Examples
//!
//! Compare the paper's Fig. 1 adders (same design, different code):
//!
//! ```
//! use gnn4ip_core::Gnn4Ip;
//!
//! let rtl = "module fa(input a, input b, input cin, output reg sum, output reg cout);
//!              always @(a, b, cin) begin
//!                sum <= (a ^ b) ^ cin;
//!                cout <= ((a ^ b) && cin) || (a && b);
//!              end
//!            endmodule";
//! let gates = "module fa(input a, input b, input cin, output sum, output cout);
//!                wire t1; wire t2; wire t3;
//!                xor (t1, a, b);
//!                and (t2, a, b);
//!                and (t3, t1, cin);
//!                xor (sum, t1, cin);
//!                or (cout, t3, t2);
//!              endmodule";
//! let detector = Gnn4Ip::with_seed(7); // untrained: scores are arbitrary but valid
//! let verdict = detector.check(rtl, gates)?;
//! assert!((-1.0..=1.0).contains(&verdict.score));
//! # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod audit;
mod cache;
mod experiment;
mod library;
mod serve;
mod service;

pub use api::{Gnn4Ip, Verdict, DETECTOR_KIND, LIBRARY_KIND};
pub use audit::{
    run_audit_scenarios, AuditConfig, AuditError, AuditMatch, AuditPipeline, AuditSnapshot,
    AuditSource, AuditVerdict, BatchReport, IngestReport, ScenarioReport, ScenarioSpec,
    AUDIT_INDEX_KIND,
};
pub use cache::{CacheStats, EmbeddingCache};
pub use experiment::{
    corpus_inputs, run_experiment, run_training_pipeline, to_pair_samples, ExperimentOutcome,
    PipelineArtifacts,
};
pub use library::{IpLibrary, LibraryMatch};
pub use serve::{Publication, PublicationSlot};
pub use service::{run_service, BoundedQueue, LatencySummary, ServiceConfig, ServiceReport};
