//! An indexed library of owned IP embeddings for portfolio screening.
//!
//! The paper motivates GNN4IP with scalability: "the manual review of
//! hardware design is not feasible in practice". [`IpLibrary`] is the
//! deployment shape of that claim — embed every owned core once, then scan
//! each incoming design against the whole library in embedding space
//! (one hw2vec forward pass + `n` cosine similarities).

use gnn4ip_hdl::ParseVerilogError;
use gnn4ip_nn::cosine_of;

use crate::api::Gnn4Ip;

/// One registered IP core.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    name: String,
    embedding: Vec<f32>,
}

/// A match produced by [`IpLibrary::scan`].
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryMatch {
    /// Name of the registered IP.
    pub name: String,
    /// Cosine similarity of the suspect to this IP.
    pub score: f32,
    /// Whether the score exceeds the detector's δ.
    pub piracy: bool,
}

/// A library of embedded IP cores.
///
/// # Examples
///
/// ```
/// use gnn4ip_core::{Gnn4Ip, IpLibrary};
///
/// let detector = Gnn4Ip::with_seed(1);
/// let mut lib = IpLibrary::new();
/// lib.register_source(&detector, "inv",
///     "module inv(input a, output y); assign y = ~a; endmodule", None)?;
/// let hits = lib.scan(&detector,
///     "module inv(input a, output y); assign y = ~a; endmodule", None)?;
/// assert_eq!(hits[0].name, "inv");
/// assert!(hits[0].score > 0.99);
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IpLibrary {
    entries: Vec<Entry>,
}

impl IpLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered IPs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Registers a precomputed embedding.
    pub fn register(&mut self, name: impl Into<String>, embedding: Vec<f32>) {
        self.entries.push(Entry {
            name: name.into(),
            embedding,
        });
    }

    /// Embeds `verilog` with `detector` and registers it.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures.
    pub fn register_source(
        &mut self,
        detector: &Gnn4Ip,
        name: impl Into<String>,
        verilog: &str,
        top: Option<&str>,
    ) -> Result<(), ParseVerilogError> {
        let embedding = detector.hw2vec(verilog, top)?;
        self.register(name, embedding);
        Ok(())
    }

    /// Scans a suspect design against every registered IP; matches are
    /// sorted by descending score.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures for the suspect source.
    pub fn scan(
        &self,
        detector: &Gnn4Ip,
        verilog: &str,
        top: Option<&str>,
    ) -> Result<Vec<LibraryMatch>, ParseVerilogError> {
        let suspect = detector.hw2vec(verilog, top)?;
        Ok(self.scan_embedding(detector, &suspect))
    }

    /// Scans a precomputed suspect embedding.
    pub fn scan_embedding(&self, detector: &Gnn4Ip, suspect: &[f32]) -> Vec<LibraryMatch> {
        let mut out: Vec<LibraryMatch> = self
            .entries
            .iter()
            .map(|e| {
                let score = cosine_of(suspect, &e.embedding);
                LibraryMatch {
                    name: e.name.clone(),
                    score,
                    piracy: score > detector.delta(),
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Serializes the library (names + embeddings) to text (format v2).
    /// Names are escaped (`\\`, `\t`, `\n`, `\r`), so a registered name
    /// containing the format's tab delimiter or a line break round-trips
    /// instead of corrupting the parse on reload.
    pub fn to_text(&self) -> String {
        let mut s = String::from("ip-library v2\n");
        for e in &self.entries {
            let cells: Vec<String> = e.embedding.iter().map(|v| format!("{v:e}")).collect();
            s.push_str(&format!("{}\t{}\n", escape_name(&e.name), cells.join(" ")));
        }
        s
    }

    /// Restores a library written by [`IpLibrary::to_text`]. Both format
    /// versions load: v2 unescapes names; v1 (written before escaping
    /// existed) reads names verbatim, so an old file with a literal
    /// backslash in a name is neither mangled nor rejected.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty library text")?;
        let escaped_names = match header {
            "ip-library v2" => true,
            "ip-library v1" => false,
            _ => return Err(format!("unsupported library header '{header}'")),
        };
        let mut lib = Self::new();
        for (no, line) in lines.enumerate() {
            // v2 skips only truly empty lines — a whitespace "blank" line
            // could be an entry whose name is empty/whitespace; v1 keeps
            // its historical trim-based skip
            let blank = if escaped_names {
                line.is_empty()
            } else {
                line.trim().is_empty()
            };
            if blank {
                continue;
            }
            let (name, rest) = line
                .split_once('\t')
                .ok_or_else(|| format!("line {}: missing tab", no + 2))?;
            let name = if escaped_names {
                unescape_name(name).map_err(|e| format!("line {}: {e}", no + 2))?
            } else {
                name.to_string()
            };
            let embedding: Vec<f32> = rest
                .split_whitespace()
                .map(|t| {
                    t.parse::<f32>()
                        .map_err(|e| format!("line {}: {e}", no + 2))
                })
                .collect::<Result<_, _>>()?;
            lib.register(name, embedding);
        }
        Ok(lib)
    }
}

/// Escapes the text format's structural characters in a registered name:
/// backslash, the tab field delimiter, and line breaks.
fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_name`].
///
/// # Errors
///
/// Rejects dangling or unknown escape sequences.
fn unescape_name(escaped: &str) -> Result<String, String> {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("unknown name escape '\\{other}'")),
            None => return Err("dangling escape at end of name".to_string()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const INV: &str = "module inv(input a, output y); assign y = ~a; endmodule";
    const XOR2: &str = "module x2(input a, input b, output y); assign y = a ^ b; endmodule";
    const ADD: &str = "module add(input [3:0] a, input [3:0] b, output [3:0] s);
                         assign s = a + b;
                       endmodule";

    fn library() -> (Gnn4Ip, IpLibrary) {
        let detector = Gnn4Ip::with_seed(6);
        let mut lib = IpLibrary::new();
        lib.register_source(&detector, "inv", INV, None)
            .expect("inv");
        lib.register_source(&detector, "xor2", XOR2, None)
            .expect("xor2");
        lib.register_source(&detector, "add", ADD, None)
            .expect("add");
        (detector, lib)
    }

    #[test]
    fn scan_ranks_the_exact_copy_first() {
        let (detector, lib) = library();
        let hits = lib.scan(&detector, XOR2, None).expect("scan");
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].name, "xor2");
        assert!(hits[0].score > 0.999);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn names_and_len() {
        let (_, lib) = library();
        assert_eq!(lib.len(), 3);
        assert!(!lib.is_empty());
        assert_eq!(lib.names(), vec!["inv", "xor2", "add"]);
    }

    #[test]
    fn text_roundtrip() {
        let (detector, lib) = library();
        let restored = IpLibrary::from_text(&lib.to_text()).expect("loads");
        assert_eq!(restored, lib);
        let hits = restored.scan(&detector, INV, None).expect("scan");
        assert_eq!(hits[0].name, "inv");
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(IpLibrary::from_text("").is_err());
        assert!(IpLibrary::from_text("ip-library v1\nno-tab-here").is_err());
        assert!(IpLibrary::from_text("ip-library v1\nx\tnot_a_number").is_err());
        // malformed name escapes are diagnosed, not silently mangled
        assert!(IpLibrary::from_text("ip-library v2\nbad\\x\t1.0").is_err());
        assert!(IpLibrary::from_text("ip-library v2\ndangling\\\t1.0").is_err());
    }

    #[test]
    fn legacy_v1_files_load_with_verbatim_names() {
        // a v1 file written before name escaping existed: the literal
        // backslash must survive, not error or turn into an escape
        let legacy = "ip-library v1\nmy\\core\t1e0 0e0\n";
        let lib = IpLibrary::from_text(legacy).expect("v1 loads");
        assert_eq!(lib.names(), vec!["my\\core"]);
        assert_eq!(
            IpLibrary::from_text("ip-library v1\nx\\t\t5e-1")
                .expect("v1")
                .names(),
            vec!["x\\t"]
        );
    }

    #[test]
    fn hostile_names_roundtrip_through_text() {
        // regression: a tab inside a name used to shift the embedding
        // column; a newline split one entry into two corrupt lines; a
        // whitespace-only name used to be dropped as a blank line
        let mut lib = IpLibrary::new();
        lib.register("tab\tin\tname", vec![1.0, 2.0]);
        lib.register("new\nline", vec![-0.5]);
        lib.register("  padded  ", vec![0.25, 0.75]);
        lib.register(" ", vec![0.125]);
        lib.register("back\\slash\\t", vec![3.5]);
        lib.register("", vec![0.0625]);
        let restored = IpLibrary::from_text(&lib.to_text()).expect("loads");
        assert_eq!(restored, lib);
        assert_eq!(
            restored.names(),
            vec![
                "tab\tin\tname",
                "new\nline",
                "  padded  ",
                " ",
                "back\\slash\\t",
                ""
            ]
        );
    }

    #[test]
    fn empty_library_scans_to_nothing() {
        let detector = Gnn4Ip::with_seed(7);
        let lib = IpLibrary::new();
        let hits = lib.scan(&detector, INV, None).expect("scan");
        assert!(hits.is_empty());
    }
}
