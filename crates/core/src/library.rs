//! An indexed library of owned IP embeddings for portfolio screening.
//!
//! The paper motivates GNN4IP with scalability: "the manual review of
//! hardware design is not feasible in practice". [`IpLibrary`] is the
//! deployment shape of that claim — embed every owned core once, then scan
//! each incoming design against the whole library in embedding space
//! (one hw2vec forward pass + `n` cosine similarities).

use gnn4ip_hdl::ParseVerilogError;
use gnn4ip_nn::cosine_of;

use crate::api::Gnn4Ip;

/// One registered IP core.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    name: String,
    embedding: Vec<f32>,
}

/// A match produced by [`IpLibrary::scan`].
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryMatch {
    /// Name of the registered IP.
    pub name: String,
    /// Cosine similarity of the suspect to this IP.
    pub score: f32,
    /// Whether the score exceeds the detector's δ.
    pub piracy: bool,
}

/// A library of embedded IP cores.
///
/// # Examples
///
/// ```
/// use gnn4ip_core::{Gnn4Ip, IpLibrary};
///
/// let detector = Gnn4Ip::with_seed(1);
/// let mut lib = IpLibrary::new();
/// lib.register_source(&detector, "inv",
///     "module inv(input a, output y); assign y = ~a; endmodule", None)?;
/// let hits = lib.scan(&detector,
///     "module inv(input a, output y); assign y = ~a; endmodule", None)?;
/// assert_eq!(hits[0].name, "inv");
/// assert!(hits[0].score > 0.99);
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IpLibrary {
    entries: Vec<Entry>,
}

impl IpLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered IPs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Registers a precomputed embedding.
    pub fn register(&mut self, name: impl Into<String>, embedding: Vec<f32>) {
        self.entries.push(Entry {
            name: name.into(),
            embedding,
        });
    }

    /// Embeds `verilog` with `detector` and registers it.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures.
    pub fn register_source(
        &mut self,
        detector: &Gnn4Ip,
        name: impl Into<String>,
        verilog: &str,
        top: Option<&str>,
    ) -> Result<(), ParseVerilogError> {
        let embedding = detector.hw2vec(verilog, top)?;
        self.register(name, embedding);
        Ok(())
    }

    /// Scans a suspect design against every registered IP; matches are
    /// sorted by descending score.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures for the suspect source.
    pub fn scan(
        &self,
        detector: &Gnn4Ip,
        verilog: &str,
        top: Option<&str>,
    ) -> Result<Vec<LibraryMatch>, ParseVerilogError> {
        let suspect = detector.hw2vec(verilog, top)?;
        Ok(self.scan_embedding(detector, &suspect))
    }

    /// Scans a precomputed suspect embedding.
    pub fn scan_embedding(&self, detector: &Gnn4Ip, suspect: &[f32]) -> Vec<LibraryMatch> {
        let mut out: Vec<LibraryMatch> = self
            .entries
            .iter()
            .map(|e| {
                let score = cosine_of(suspect, &e.embedding);
                LibraryMatch {
                    name: e.name.clone(),
                    score,
                    piracy: score > detector.delta(),
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Serializes the library (names + embeddings) to text.
    pub fn to_text(&self) -> String {
        let mut s = String::from("ip-library v1\n");
        for e in &self.entries {
            let cells: Vec<String> = e.embedding.iter().map(|v| format!("{v:e}")).collect();
            s.push_str(&format!("{}\t{}\n", e.name, cells.join(" ")));
        }
        s
    }

    /// Restores a library written by [`IpLibrary::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty library text")?;
        if header != "ip-library v1" {
            return Err(format!("unsupported library header '{header}'"));
        }
        let mut lib = Self::new();
        for (no, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let (name, rest) = line
                .split_once('\t')
                .ok_or_else(|| format!("line {}: missing tab", no + 2))?;
            let embedding: Vec<f32> = rest
                .split_whitespace()
                .map(|t| {
                    t.parse::<f32>()
                        .map_err(|e| format!("line {}: {e}", no + 2))
                })
                .collect::<Result<_, _>>()?;
            lib.register(name, embedding);
        }
        Ok(lib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INV: &str = "module inv(input a, output y); assign y = ~a; endmodule";
    const XOR2: &str = "module x2(input a, input b, output y); assign y = a ^ b; endmodule";
    const ADD: &str = "module add(input [3:0] a, input [3:0] b, output [3:0] s);
                         assign s = a + b;
                       endmodule";

    fn library() -> (Gnn4Ip, IpLibrary) {
        let detector = Gnn4Ip::with_seed(6);
        let mut lib = IpLibrary::new();
        lib.register_source(&detector, "inv", INV, None)
            .expect("inv");
        lib.register_source(&detector, "xor2", XOR2, None)
            .expect("xor2");
        lib.register_source(&detector, "add", ADD, None)
            .expect("add");
        (detector, lib)
    }

    #[test]
    fn scan_ranks_the_exact_copy_first() {
        let (detector, lib) = library();
        let hits = lib.scan(&detector, XOR2, None).expect("scan");
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].name, "xor2");
        assert!(hits[0].score > 0.999);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn names_and_len() {
        let (_, lib) = library();
        assert_eq!(lib.len(), 3);
        assert!(!lib.is_empty());
        assert_eq!(lib.names(), vec!["inv", "xor2", "add"]);
    }

    #[test]
    fn text_roundtrip() {
        let (detector, lib) = library();
        let restored = IpLibrary::from_text(&lib.to_text()).expect("loads");
        assert_eq!(restored, lib);
        let hits = restored.scan(&detector, INV, None).expect("scan");
        assert_eq!(hits[0].name, "inv");
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(IpLibrary::from_text("").is_err());
        assert!(IpLibrary::from_text("ip-library v1\nno-tab-here").is_err());
        assert!(IpLibrary::from_text("ip-library v1\nx\tnot_a_number").is_err());
    }

    #[test]
    fn empty_library_scans_to_nothing() {
        let detector = Gnn4Ip::with_seed(7);
        let lib = IpLibrary::new();
        let hits = lib.scan(&detector, INV, None).expect("scan");
        assert!(hits.is_empty());
    }
}
