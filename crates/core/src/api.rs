//! The end-to-end GNN4IP API — Algorithm 1 of the paper.
//!
//! `hw2vec(p)` turns a hardware design into a graph embedding;
//! `gnn4ip(p1, p2)` compares two designs by cosine similarity and applies
//! the decision boundary δ.

use gnn4ip_dfg::graph_from_verilog;
use gnn4ip_hdl::ParseVerilogError;
use gnn4ip_nn::{GraphInput, Hw2Vec, Hw2VecConfig};

/// The verdict of a piracy check (Algorithm 1's output plus the evidence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Cosine similarity `Ŷ ∈ [-1, 1]` (Eq. 6).
    pub score: f32,
    /// Decision boundary δ in force.
    pub delta: f32,
    /// `score > delta` — the binary piracy label.
    pub piracy: bool,
}

/// A trained (or freshly initialized) GNN4IP detector.
///
/// # Examples
///
/// ```
/// use gnn4ip_core::Gnn4Ip;
///
/// let detector = Gnn4Ip::with_seed(42);
/// let a = "module inv(input a, output y); assign y = ~a; endmodule";
/// let verdict = detector.check(a, a)?;
/// assert!(verdict.score > 0.99); // identical designs
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Gnn4Ip {
    model: Hw2Vec,
    delta: f32,
}

impl Gnn4Ip {
    /// Creates a detector with the paper's default architecture and an
    /// untuned decision boundary of 0.5.
    pub fn new(config: Hw2VecConfig, seed: u64) -> Self {
        Self {
            model: Hw2Vec::new(config, seed),
            delta: 0.5,
        }
    }

    /// Creates a detector with all defaults from a seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(Hw2VecConfig::default(), seed)
    }

    /// Wraps an externally trained model.
    pub fn from_model(model: Hw2Vec, delta: f32) -> Self {
        Self { model, delta }
    }

    /// The underlying hw2vec model.
    pub fn model(&self) -> &Hw2Vec {
        &self.model
    }

    /// Mutable access to the model (for training).
    pub fn model_mut(&mut self) -> &mut Hw2Vec {
        &mut self.model
    }

    /// The decision boundary δ.
    pub fn delta(&self) -> f32 {
        self.delta
    }

    /// Adjusts δ ("the user can adjust it to decide how much similarity is
    /// considered piracy", §IV-D).
    pub fn set_delta(&mut self, delta: f32) {
        self.delta = delta;
    }

    /// `hw2vec(p)`: Verilog source → graph embedding.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures from the DFG pipeline.
    pub fn hw2vec(&self, verilog: &str, top: Option<&str>) -> Result<Vec<f32>, ParseVerilogError> {
        let g = graph_from_verilog(verilog, top)?;
        Ok(self.model.embed(&GraphInput::from_dfg(&g)))
    }

    /// Embeds an already-extracted graph.
    pub fn embed(&self, graph: &GraphInput) -> Vec<f32> {
        self.model.embed(graph)
    }

    /// `gnn4ip(p1, p2)`: full Algorithm 1 on two Verilog sources.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures for either source.
    pub fn check(&self, p1: &str, p2: &str) -> Result<Verdict, ParseVerilogError> {
        self.check_with_tops(p1, None, p2, None)
    }

    /// [`Gnn4Ip::check`] with explicit top-module names.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures for either source.
    pub fn check_with_tops(
        &self,
        p1: &str,
        top1: Option<&str>,
        p2: &str,
        top2: Option<&str>,
    ) -> Result<Verdict, ParseVerilogError> {
        let g1 = GraphInput::from_dfg(&graph_from_verilog(p1, top1)?);
        let g2 = GraphInput::from_dfg(&graph_from_verilog(p2, top2)?);
        Ok(self.verdict_on_graphs(&g1, &g2))
    }

    /// Algorithm 1 on prepared graphs (no parsing).
    pub fn verdict_on_graphs(&self, g1: &GraphInput, g2: &GraphInput) -> Verdict {
        let score = self.model.similarity(g1, g2);
        Verdict {
            score,
            delta: self.delta,
            piracy: score > self.delta,
        }
    }

    /// Serializes model + δ to text.
    pub fn to_text(&self) -> String {
        format!("delta {}\n{}", self.delta, self.model.to_text())
    }

    /// Restores a detector serialized by [`Gnn4Ip::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed section.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let (first, rest) = text
            .split_once('\n')
            .ok_or_else(|| "empty detector text".to_string())?;
        let delta = first
            .strip_prefix("delta ")
            .ok_or_else(|| format!("bad delta line '{first}'"))?
            .parse::<f32>()
            .map_err(|e| format!("bad delta value: {e}"))?;
        Ok(Self {
            model: Hw2Vec::from_text(rest)?,
            delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INV: &str = "module inv(input a, output y); assign y = ~a; endmodule";
    const ADDER: &str = "module add(input [3:0] a, input [3:0] b, output [3:0] s);
                           assign s = a + b;
                         endmodule";

    #[test]
    fn identical_sources_score_one() {
        let d = Gnn4Ip::with_seed(1);
        let v = d.check(INV, INV).expect("checks");
        assert!(v.score > 0.999);
        assert!(v.piracy);
    }

    #[test]
    fn verdict_respects_delta() {
        let mut d = Gnn4Ip::with_seed(2);
        let v = d.check(INV, ADDER).expect("checks");
        d.set_delta(1.1); // nothing exceeds 1.0
        let v2 = d.check(INV, ADDER).expect("checks");
        assert_eq!(v.score, v2.score);
        assert!(!v2.piracy);
    }

    #[test]
    fn hw2vec_embedding_width() {
        let d = Gnn4Ip::with_seed(3);
        assert_eq!(d.hw2vec(INV, None).expect("embeds").len(), 16);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut d = Gnn4Ip::with_seed(4);
        d.set_delta(0.25);
        let text = d.to_text();
        let d2 = Gnn4Ip::from_text(&text).expect("loads");
        assert_eq!(d2.delta(), 0.25);
        assert_eq!(
            d.hw2vec(ADDER, None).expect("a"),
            d2.hw2vec(ADDER, None).expect("b")
        );
    }

    #[test]
    fn parse_errors_propagate() {
        let d = Gnn4Ip::with_seed(5);
        assert!(d.check("module broken(", INV).is_err());
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Gnn4Ip::from_text("").is_err());
        assert!(Gnn4Ip::from_text("delta zzz\n").is_err());
    }
}
