//! The end-to-end GNN4IP API — Algorithm 1 of the paper.
//!
//! `hw2vec(p)` turns a hardware design into a graph embedding;
//! `gnn4ip(p1, p2)` compares two designs by cosine similarity and applies
//! the decision boundary δ.
//!
//! Every source-level entry point is backed by a content-addressed
//! [`EmbeddingCache`]: a design is parsed and embedded once per detector,
//! then served by fingerprint lookup. [`Gnn4Ip::check_many`] and
//! [`Gnn4Ip::embed_many`] are the batched forms — distinct designs in a
//! batch are embedded in parallel via the tape-free inference path.

use std::sync::{Mutex, MutexGuard};

use gnn4ip_dfg::graph_from_verilog;
use gnn4ip_hdl::{design_fingerprint, Fingerprint, ParseVerilogError, StableHasher};
use gnn4ip_nn::{cosine_of, GraphInput, Hw2Vec, Hw2VecConfig};
use gnn4ip_tensor::{read_artifact, write_artifact, BinReader, BinWriter};

use crate::cache::{CacheStats, EmbeddingCache};

/// Kind tag of the binary detector artifact (model + δ).
pub const DETECTOR_KIND: &str = "gnn4ip-detector";

/// Kind tag of the binary embedding-library artifact (cached embeddings,
/// pinned to the weights checksum that produced them).
pub const LIBRARY_KIND: &str = "gnn4ip-library";

/// The verdict of a piracy check (Algorithm 1's output plus the evidence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Cosine similarity `Ŷ ∈ [-1, 1]` (Eq. 6).
    pub score: f32,
    /// Decision boundary δ in force.
    pub delta: f32,
    /// `score > delta` — the binary piracy label.
    pub piracy: bool,
}

/// A trained (or freshly initialized) GNN4IP detector.
///
/// # Examples
///
/// ```
/// use gnn4ip_core::Gnn4Ip;
///
/// let detector = Gnn4Ip::with_seed(42);
/// let a = "module inv(input a, output y); assign y = ~a; endmodule";
/// let verdict = detector.check(a, a)?;
/// assert!(verdict.score > 0.99); // identical designs
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
#[derive(Debug)]
pub struct Gnn4Ip {
    model: Hw2Vec,
    delta: f32,
    /// Fingerprint → embedding. A `Mutex` (not `RefCell`) so a detector can
    /// be shared across scan threads; it is never held across an embedding.
    cache: Mutex<EmbeddingCache>,
}

impl Clone for Gnn4Ip {
    fn clone(&self) -> Self {
        Self {
            model: self.model.clone(),
            delta: self.delta,
            cache: Mutex::new(self.cache_lock().clone()),
        }
    }
}

impl Gnn4Ip {
    /// Locks the embedding cache, recovering from poisoning instead of
    /// cascading the panic: the cache is a pure memo whose individual
    /// operations never leave it half-updated, so the state behind a
    /// poisoned lock is still coherent — at worst a panicking scan thread
    /// failed to record one embedding, which only costs a recompute.
    fn cache_lock(&self) -> MutexGuard<'_, EmbeddingCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// [`cache_lock`](Self::cache_lock) through exclusive access — same
    /// poison-recovery rationale, no locking at all.
    fn cache_mut(&mut self) -> &mut EmbeddingCache {
        self.cache.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Creates a detector with the paper's default architecture and an
    /// untuned decision boundary of 0.5.
    pub fn new(config: Hw2VecConfig, seed: u64) -> Self {
        Self::from_model(Hw2Vec::new(config, seed), 0.5)
    }

    /// Creates a detector with all defaults from a seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(Hw2VecConfig::default(), seed)
    }

    /// Wraps an externally trained model.
    pub fn from_model(model: Hw2Vec, delta: f32) -> Self {
        Self {
            model,
            delta,
            cache: Mutex::new(EmbeddingCache::new()),
        }
    }

    /// The underlying hw2vec model.
    pub fn model(&self) -> &Hw2Vec {
        &self.model
    }

    /// Mutable access to the model (for training).
    ///
    /// Clears the embedding cache: cached embeddings are only valid for the
    /// weights that produced them.
    pub fn model_mut(&mut self) -> &mut Hw2Vec {
        self.cache_mut().clear();
        &mut self.model
    }

    /// The decision boundary δ.
    pub fn delta(&self) -> f32 {
        self.delta
    }

    /// Adjusts δ ("the user can adjust it to decide how much similarity is
    /// considered piracy", §IV-D).
    pub fn set_delta(&mut self, delta: f32) {
        self.delta = delta;
    }

    /// `hw2vec(p)`: Verilog source → graph embedding, served from the
    /// content-addressed cache when this detector has embedded an
    /// equivalent design before.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures from the DFG pipeline.
    pub fn hw2vec(&self, verilog: &str, top: Option<&str>) -> Result<Vec<f32>, ParseVerilogError> {
        let fp = self.fingerprint(verilog, top)?;
        if let Some(e) = self.cache_lock().get(fp) {
            return Ok(e);
        }
        // Parse and embed outside the lock: misses are the slow path.
        let g = graph_from_verilog(verilog, top)?;
        let e = self.model.embed(&GraphInput::from_dfg(&g));
        self.cache_lock().insert(fp, e.clone());
        Ok(e)
    }

    /// Embeds a batch of `(source, top)` designs, in input order.
    ///
    /// Cached designs are served by fingerprint lookup; the distinct
    /// uncached designs are parsed once each (duplicates inside the batch
    /// collapse onto one embedding) and embedded in parallel through the
    /// tape-free batched forward pass.
    ///
    /// # Errors
    ///
    /// Propagates the first parse/elaboration failure; no partial results.
    pub fn embed_many(
        &self,
        sources: &[(&str, Option<&str>)],
    ) -> Result<Vec<Vec<f32>>, ParseVerilogError> {
        let mut fps = Vec::with_capacity(sources.len());
        for &(src, top) in sources {
            fps.push(self.fingerprint(src, top)?);
        }
        // resolve hits and collect the distinct misses
        let mut out: Vec<Option<Vec<f32>>> = vec![None; sources.len()];
        let mut miss_fps = Vec::new();
        let mut seen_misses = std::collections::HashSet::new();
        let mut miss_graphs = Vec::new();
        {
            let mut cache = self.cache_lock();
            for (i, &fp) in fps.iter().enumerate() {
                if let Some(e) = cache.get(fp) {
                    out[i] = Some(e);
                }
            }
        }
        for (i, &fp) in fps.iter().enumerate() {
            if out[i].is_some() || !seen_misses.insert(fp) {
                continue;
            }
            let (src, top) = sources[i];
            miss_fps.push(fp);
            miss_graphs.push(GraphInput::from_dfg(&graph_from_verilog(src, top)?));
        }
        if !miss_graphs.is_empty() {
            let embedded = self.model.embed_batch(&miss_graphs);
            let mut cache = self.cache_lock();
            for (fp, e) in miss_fps.iter().zip(embedded) {
                cache.insert(*fp, e);
            }
            for (i, fp) in fps.iter().enumerate() {
                if out[i].is_none() {
                    out[i] = cache.peek(*fp).cloned();
                }
            }
        }
        Ok(out
            .into_iter()
            // g4check: allow(unwrap-in-lib): every miss was inserted into the cache in the loop above, under the same lock this resolve uses
            .map(|e| e.expect("every fingerprint resolved"))
            .collect())
    }

    /// Embeds an already-extracted graph (no parsing, no caching).
    pub fn embed(&self, graph: &GraphInput) -> Vec<f32> {
        self.model.embed(graph)
    }

    /// `gnn4ip(p1, p2)`: full Algorithm 1 on two Verilog sources — a thin
    /// wrapper over the cached embedding path.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures for either source.
    pub fn check(&self, p1: &str, p2: &str) -> Result<Verdict, ParseVerilogError> {
        self.check_with_tops(p1, None, p2, None)
    }

    /// [`Gnn4Ip::check`] with explicit top-module names.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures for either source.
    pub fn check_with_tops(
        &self,
        p1: &str,
        top1: Option<&str>,
        p2: &str,
        top2: Option<&str>,
    ) -> Result<Verdict, ParseVerilogError> {
        let e1 = self.hw2vec(p1, top1)?;
        let e2 = self.hw2vec(p2, top2)?;
        Ok(self.verdict_on_embeddings(&e1, &e2))
    }

    /// Algorithm 1 over a batch of source pairs, in input order.
    ///
    /// All 2·n sides go through [`Gnn4Ip::embed_many`], so a design that
    /// appears in many pairs — the library-screening deployment — is
    /// embedded exactly once.
    ///
    /// # Errors
    ///
    /// Propagates the first parse/elaboration failure; no partial results.
    pub fn check_many(&self, pairs: &[(&str, &str)]) -> Result<Vec<Verdict>, ParseVerilogError> {
        let sources: Vec<(&str, Option<&str>)> = pairs
            .iter()
            .flat_map(|&(a, b)| [(a, None), (b, None)])
            .collect();
        let embeddings = self.embed_many(&sources)?;
        Ok(embeddings
            .chunks_exact(2)
            .map(|pair| self.verdict_on_embeddings(&pair[0], &pair[1]))
            .collect())
    }

    /// Algorithm 1 on prepared graphs (no parsing).
    pub fn verdict_on_graphs(&self, g1: &GraphInput, g2: &GraphInput) -> Verdict {
        let score = self.model.similarity(g1, g2);
        Verdict {
            score,
            delta: self.delta,
            piracy: score > self.delta,
        }
    }

    /// Algorithm 1 on precomputed embeddings (no parsing, no model pass).
    pub fn verdict_on_embeddings(&self, e1: &[f32], e2: &[f32]) -> Verdict {
        let score = cosine_of(e1, e2);
        Verdict {
            score,
            delta: self.delta,
            piracy: score > self.delta,
        }
    }

    /// Content fingerprint of a design, memoized on the raw source text:
    /// a byte-identical resubmission skips even preprocessing and lexing.
    fn fingerprint(
        &self,
        verilog: &str,
        top: Option<&str>,
    ) -> Result<Fingerprint, ParseVerilogError> {
        let mut h = StableHasher::new();
        h.write_str(verilog);
        match top {
            Some(t) => {
                h.write(&[1]);
                h.write_str(t);
            }
            None => h.write(&[0]),
        }
        let raw_key = h.finish();
        if let Some(fp) = self.cache_lock().fingerprint_for_raw(raw_key) {
            return Ok(fp);
        }
        let fp = design_fingerprint(verilog, top)?;
        self.cache_lock().remember_raw(raw_key, fp);
        Ok(fp)
    }

    /// Hit/miss/entry counters of the embedding cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_lock().stats()
    }

    /// Drops every cached embedding and resets the counters.
    pub fn clear_cache(&self) {
        self.cache_lock().clear();
    }

    /// Serializes model + δ to the binary artifact format. The detector
    /// round-trips **bit-exactly**: a loaded detector produces bit-identical
    /// embeddings and `check` scores.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = BinWriter::new(DETECTOR_KIND);
        w.f32(self.delta);
        w.bytes(&self.model.to_bytes());
        w.finish()
    }

    /// Restores a detector serialized by [`Gnn4Ip::to_bytes`]. The
    /// embedding cache starts empty (use
    /// [`load_library`](Gnn4Ip::load_library) to restore it).
    ///
    /// # Errors
    ///
    /// Returns a description of the corrupt or mismatched section.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = BinReader::open(bytes, DETECTOR_KIND)?;
        let delta = r.f32()?;
        let model = Hw2Vec::from_bytes(r.bytes()?)?;
        r.done()?;
        Ok(Self::from_model(model, delta))
    }

    /// Writes the binary detector artifact to `path` (atomic: temp file +
    /// rename).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error as text.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        write_artifact(path.as_ref(), &self.to_bytes())
    }

    /// Loads a binary detector artifact written by [`Gnn4Ip::save`].
    ///
    /// # Errors
    ///
    /// Returns I/O or format errors as text.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        Self::from_bytes(&read_artifact(path.as_ref())?)
    }

    /// Serializes the embedding library — every cached
    /// `fingerprint → embedding` entry — pinned to this model's weights
    /// checksum. Entries are sorted by fingerprint, so the same cache
    /// contents always produce byte-identical artifacts.
    pub fn library_bytes(&self) -> Vec<u8> {
        let cache = self.cache_lock();
        let mut entries: Vec<(Fingerprint, Vec<f32>)> =
            cache.embeddings().map(|(fp, e)| (fp, e.to_vec())).collect();
        drop(cache);
        entries.sort_by_key(|(fp, _)| *fp);
        let mut w = BinWriter::new(LIBRARY_KIND);
        w.u64(self.model.weights_checksum());
        w.len_of(entries.len());
        for (fp, e) in &entries {
            w.u64(fp.as_u64());
            w.len_of(e.len());
            for &v in e {
                w.f32(v);
            }
        }
        w.finish()
    }

    /// Restores an embedding library serialized by
    /// [`Gnn4Ip::library_bytes`] into this detector's cache, replacing
    /// current entries. Returns the number of embeddings loaded.
    ///
    /// # Errors
    ///
    /// Fails on corrupt artifacts, and on a weights-checksum mismatch:
    /// embeddings are only valid for the exact weights that produced
    /// them, so a library from different weights is rejected rather than
    /// silently serving stale scores.
    pub fn load_library_bytes(&mut self, bytes: &[u8]) -> Result<usize, String> {
        let mut r = BinReader::open(bytes, LIBRARY_KIND)?;
        let checksum = r.u64()?;
        let own = self.model.weights_checksum();
        if checksum != own {
            return Err(format!(
                "embedding library was built by weights {checksum:#018x}, \
                 this detector has {own:#018x}; re-embed instead of loading"
            ));
        }
        let n = r.count_of(16)?; // fingerprint + dim header per entry
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let fp = Fingerprint::from_u64(r.u64()?);
            let dim = r.count_of(4)?; // one f32 per element
            let mut e = Vec::with_capacity(dim);
            for _ in 0..dim {
                e.push(r.f32()?);
            }
            entries.push((fp, e));
        }
        r.done()?;
        let cache = self.cache_mut();
        cache.clear();
        for (fp, e) in entries {
            cache.insert(fp, e);
        }
        Ok(n)
    }

    /// Writes the embedding-library artifact to `path` (atomic).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error as text.
    pub fn save_library(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        write_artifact(path.as_ref(), &self.library_bytes())
    }

    /// Loads an embedding-library artifact written by
    /// [`Gnn4Ip::save_library`] into the cache. Returns the number of
    /// embeddings loaded.
    ///
    /// # Errors
    ///
    /// Returns I/O, format, or weights-mismatch errors as text.
    pub fn load_library(&mut self, path: impl AsRef<std::path::Path>) -> Result<usize, String> {
        self.load_library_bytes(&read_artifact(path.as_ref())?)
    }

    /// Serializes model + δ to text.
    pub fn to_text(&self) -> String {
        format!("delta {}\n{}", self.delta, self.model.to_text())
    }

    /// Restores a detector serialized by [`Gnn4Ip::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed section.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let (first, rest) = text
            .split_once('\n')
            .ok_or_else(|| "empty detector text".to_string())?;
        let delta = first
            .strip_prefix("delta ")
            .ok_or_else(|| format!("bad delta line '{first}'"))?
            .parse::<f32>()
            .map_err(|e| format!("bad delta value: {e}"))?;
        Ok(Self::from_model(Hw2Vec::from_text(rest)?, delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INV: &str = "module inv(input a, output y); assign y = ~a; endmodule";
    const ADDER: &str = "module add(input [3:0] a, input [3:0] b, output [3:0] s);
                           assign s = a + b;
                         endmodule";

    #[test]
    fn identical_sources_score_one() {
        let d = Gnn4Ip::with_seed(1);
        let v = d.check(INV, INV).expect("checks");
        assert!(v.score > 0.999);
        assert!(v.piracy);
    }

    #[test]
    fn verdict_respects_delta() {
        let mut d = Gnn4Ip::with_seed(2);
        let v = d.check(INV, ADDER).expect("checks");
        d.set_delta(1.1); // nothing exceeds 1.0
        let v2 = d.check(INV, ADDER).expect("checks");
        assert_eq!(v.score, v2.score);
        assert!(!v2.piracy);
    }

    #[test]
    fn hw2vec_embedding_width() {
        let d = Gnn4Ip::with_seed(3);
        assert_eq!(d.hw2vec(INV, None).expect("embeds").len(), 16);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut d = Gnn4Ip::with_seed(4);
        d.set_delta(0.25);
        let text = d.to_text();
        let d2 = Gnn4Ip::from_text(&text).expect("loads");
        assert_eq!(d2.delta(), 0.25);
        assert_eq!(
            d.hw2vec(ADDER, None).expect("a"),
            d2.hw2vec(ADDER, None).expect("b")
        );
    }

    #[test]
    fn parse_errors_propagate() {
        let d = Gnn4Ip::with_seed(5);
        assert!(d.check("module broken(", INV).is_err());
        assert!(d.check_many(&[(INV, "module broken(")]).is_err());
    }

    #[test]
    fn repeat_checks_hit_the_cache() {
        let d = Gnn4Ip::with_seed(8);
        let v1 = d.check(INV, ADDER).expect("cold");
        let s = d.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
        let v2 = d.check(INV, ADDER).expect("warm");
        assert_eq!(v1, v2);
        let s = d.cache_stats();
        assert_eq!((s.hits, s.misses), (2, 2));
        d.clear_cache();
        assert_eq!(d.cache_stats().entries, 0);
    }

    #[test]
    fn comment_only_changes_share_a_cache_entry() {
        let d = Gnn4Ip::with_seed(9);
        let _ = d.hw2vec(INV, None).expect("embeds");
        let commented = format!("// resubmitted\n{INV}");
        let _ = d.hw2vec(&commented, None).expect("embeds");
        let s = d.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn check_many_matches_individual_checks() {
        let d = Gnn4Ip::with_seed(10);
        let pairs = [(INV, ADDER), (INV, INV), (ADDER, INV)];
        let batch = d.check_many(&pairs).expect("batch");
        let d2 = Gnn4Ip::with_seed(10);
        for (v, &(a, b)) in batch.iter().zip(&pairs) {
            assert_eq!(*v, d2.check(a, b).expect("single"));
        }
        // 3 pairs, 6 sides, but only 2 distinct designs were embedded
        assert_eq!(d.cache_stats().entries, 2);
    }

    #[test]
    fn embed_many_dedupes_within_a_batch() {
        let d = Gnn4Ip::with_seed(11);
        let out = d
            .embed_many(&[(INV, None), (ADDER, None), (INV, None)])
            .expect("batch");
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[2]);
        let s = d.cache_stats();
        assert_eq!(s.entries, 2);
        // and they agree with the single-source path
        assert_eq!(out[1], d.hw2vec(ADDER, None).expect("single"));
    }

    #[test]
    fn model_mut_invalidates_the_cache() {
        let mut d = Gnn4Ip::with_seed(12);
        let _ = d.hw2vec(INV, None).expect("embeds");
        assert_eq!(d.cache_stats().entries, 1);
        let _ = d.model_mut();
        assert_eq!(d.cache_stats().entries, 0);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Gnn4Ip::from_text("").is_err());
        assert!(Gnn4Ip::from_text("delta zzz\n").is_err());
    }

    #[test]
    fn binary_roundtrip_reproduces_scores_bit_exactly() {
        let mut d = Gnn4Ip::with_seed(20);
        d.set_delta(0.25);
        let bytes = d.to_bytes();
        let d2 = Gnn4Ip::from_bytes(&bytes).expect("loads");
        assert_eq!(d2.delta(), 0.25);
        assert_eq!(d2.to_bytes(), bytes, "save→load→save drifted");
        let (v1, v2) = (
            d.check(INV, ADDER).expect("a"),
            d2.check(INV, ADDER).expect("b"),
        );
        assert_eq!(v1.score.to_bits(), v2.score.to_bits());
    }

    #[test]
    fn library_roundtrip_restores_cache_entries() {
        let d = Gnn4Ip::with_seed(21);
        let _ = d.hw2vec(INV, None).expect("embeds");
        let _ = d.hw2vec(ADDER, None).expect("embeds");
        let bytes = d.library_bytes();
        let mut d2 = Gnn4Ip::from_bytes(&d.to_bytes()).expect("loads");
        assert_eq!(d2.load_library_bytes(&bytes).expect("lib"), 2);
        // served from cache: no new misses, identical embeddings
        assert_eq!(
            d2.hw2vec(INV, None).expect("cached"),
            d.hw2vec(INV, None).expect("orig")
        );
        assert_eq!(d2.cache_stats().misses, 0);
        // deterministic bytes regardless of hash-map iteration order
        assert_eq!(d2.library_bytes(), bytes);
    }

    #[test]
    fn library_from_other_weights_is_rejected() {
        let d = Gnn4Ip::with_seed(22);
        let _ = d.hw2vec(INV, None).expect("embeds");
        let mut other = Gnn4Ip::with_seed(23);
        let err = other
            .load_library_bytes(&d.library_bytes())
            .expect_err("must reject");
        assert!(err.contains("weights"), "{err}");
    }

    #[test]
    fn detector_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("gnn4ip-detector-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let d = Gnn4Ip::with_seed(24);
        let _ = d.hw2vec(INV, None).expect("embeds");
        let dp = dir.join("detector.bin");
        let lp = dir.join("library.bin");
        d.save(&dp).expect("saves");
        d.save_library(&lp).expect("saves lib");
        let mut d2 = Gnn4Ip::load(&dp).expect("loads");
        assert_eq!(d2.load_library(&lp).expect("loads lib"), 1);
        assert_eq!(d2.to_bytes(), d.to_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }
}
