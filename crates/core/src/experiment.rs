//! Experiment-level training pipeline: corpus → trained detector →
//! accuracy/timing numbers in the shape of Table I.

use std::time::Instant;

use gnn4ip_data::{split_pairs, Corpus, LabeledPair};
use gnn4ip_eval::ConfusionMatrix;
use gnn4ip_nn::{
    score_pairs, train, tune_delta, GraphInput, Hw2VecConfig, PairLabel, PairSample, TrainConfig,
    TrainReport,
};

use crate::api::Gnn4Ip;

/// Everything one Table-I-style run produces.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// The trained detector (δ already tuned on the training split).
    pub detector: Gnn4Ip,
    /// Loss trajectory.
    pub train_report: TrainReport,
    /// Confusion matrix on the held-out test pairs at the tuned δ.
    pub test_confusion: ConfusionMatrix,
    /// Accuracy on the test pairs.
    pub test_accuracy: f64,
    /// Tuned decision boundary.
    pub delta: f32,
    /// Wall-clock training time per sample (milliseconds) — Table I's
    /// "train time per sample".
    pub train_ms_per_sample: f64,
    /// Wall-clock inference time per sample (milliseconds) — Table I's
    /// "test time per sample".
    pub test_ms_per_sample: f64,
    /// Total pairs (dataset size column).
    pub n_pairs: usize,
    /// Number of distinct graphs.
    pub n_graphs: usize,
    /// Test-split scores with their ground-truth labels (for Fig. 4a
    /// reruns at other δ and for §IV-F rates).
    pub test_scores: Vec<(f32, bool)>,
}

/// Converts corpus pairs into trainer samples.
pub fn to_pair_samples(pairs: &[LabeledPair]) -> Vec<PairSample> {
    pairs
        .iter()
        .map(|p| PairSample {
            a: p.a,
            b: p.b,
            label: if p.similar {
                PairLabel::Similar
            } else {
                PairLabel::Different
            },
        })
        .collect()
}

/// Prepares model inputs for every graph in a corpus.
pub fn corpus_inputs(corpus: &Corpus) -> Vec<GraphInput> {
    corpus.graphs.iter().map(GraphInput::from_dfg).collect()
}

/// Runs the full Table-I protocol on a corpus: form pairs, 80/20 split,
/// train, tune δ on the training split, evaluate on the test split, and
/// time both phases per sample.
///
/// `max_different` caps the number of no-piracy pairs (the paper uses ~3.5x
/// more different pairs than similar ones).
///
/// # Panics
///
/// Panics if the corpus yields no pairs.
pub fn run_experiment(
    corpus: &Corpus,
    model_config: Hw2VecConfig,
    train_config: &TrainConfig,
    max_different: usize,
    seed: u64,
) -> ExperimentOutcome {
    let graphs = corpus_inputs(corpus);
    let pairs = corpus.pairs(max_different, seed);
    assert!(!pairs.is_empty(), "corpus produced no pairs");
    let (train_pairs, test_pairs) = split_pairs(&pairs, 0.2, seed ^ 0xDEAD);
    let train_samples = to_pair_samples(&train_pairs);
    let test_samples = to_pair_samples(&test_pairs);

    let mut detector = Gnn4Ip::new(model_config, seed);
    let t0 = Instant::now();
    let report = train(detector.model_mut(), &graphs, &train_samples, train_config);
    let train_elapsed = t0.elapsed();
    let train_samples_seen = train_samples.len() * train_config.epochs;
    let train_ms_per_sample = train_elapsed.as_secs_f64() * 1e3 / train_samples_seen.max(1) as f64;

    // tune δ on the training split
    let train_scores = score_pairs(detector.model(), &graphs, &train_samples);
    let train_labels: Vec<PairLabel> = train_samples.iter().map(|p| p.label).collect();
    let (delta, _) = tune_delta(&train_scores, &train_labels);
    detector.set_delta(delta);

    // evaluate + time the test split
    let t1 = Instant::now();
    let test_scores = score_pairs(detector.model(), &graphs, &test_samples);
    let test_elapsed = t1.elapsed();
    let test_ms_per_sample = test_elapsed.as_secs_f64() * 1e3 / test_samples.len().max(1) as f64;

    let labels: Vec<bool> = test_samples
        .iter()
        .map(|p| p.label == PairLabel::Similar)
        .collect();
    let cm = ConfusionMatrix::from_scores(&test_scores, &labels, delta);
    ExperimentOutcome {
        detector,
        train_report: report,
        test_accuracy: cm.accuracy(),
        test_confusion: cm,
        delta,
        train_ms_per_sample,
        test_ms_per_sample,
        n_pairs: pairs.len(),
        n_graphs: graphs.len(),
        test_scores: test_scores.into_iter().zip(labels).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_data::CorpusSpec;

    fn quick_train_config() -> TrainConfig {
        TrainConfig {
            epochs: 12,
            batch_size: 16,
            lr: 0.01,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn experiment_learns_small_rtl_corpus() {
        let corpus = Corpus::build(&CorpusSpec::rtl_small()).expect("corpus");
        let out = run_experiment(
            &corpus,
            Hw2VecConfig::default(),
            &quick_train_config(),
            150,
            1,
        );
        assert!(
            out.test_accuracy >= 0.8,
            "test accuracy {} (cm {:?})",
            out.test_accuracy,
            out.test_confusion
        );
        assert!(out.train_ms_per_sample > 0.0);
        assert!(out.test_ms_per_sample > 0.0);
        assert_eq!(out.n_graphs, corpus.graphs.len());
    }

    #[test]
    fn tuned_delta_is_in_range() {
        let corpus = Corpus::build(&CorpusSpec::rtl_small()).expect("corpus");
        let out = run_experiment(
            &corpus,
            Hw2VecConfig::default(),
            &quick_train_config(),
            100,
            2,
        );
        assert!((-1.0..=1.0).contains(&out.delta), "delta {}", out.delta);
    }

    #[test]
    fn pair_sample_conversion_preserves_labels() {
        let pairs = [
            LabeledPair {
                a: 0,
                b: 1,
                similar: true,
            },
            LabeledPair {
                a: 0,
                b: 2,
                similar: false,
            },
        ];
        let samples = to_pair_samples(&pairs);
        assert_eq!(samples[0].label, PairLabel::Similar);
        assert_eq!(samples[1].label, PairLabel::Different);
    }
}
