//! Experiment-level training pipeline: corpus → trained detector →
//! accuracy/timing numbers in the shape of Table I.
//!
//! Two entry points:
//!
//! - [`run_experiment`] — the v1 protocol, in-memory only.
//! - [`run_training_pipeline`] — the v2 deployment lifecycle: train with
//!   the checkpointing [`TrainEngine`] (resuming from an existing
//!   checkpoint when one is present), tune δ, evaluate, then persist the
//!   **final artifacts**: a binary detector (model + δ) and the
//!   embedding library of every corpus design, so later processes serve
//!   checks without retraining or re-embedding.

use std::path::{Path, PathBuf};
use std::time::Instant;

use gnn4ip_data::{split_pairs, Corpus, LabeledPair};
use gnn4ip_eval::ConfusionMatrix;
use gnn4ip_nn::{
    score_pairs, train, tune_delta, EngineConfig, GraphInput, Hw2Vec, Hw2VecConfig, PairLabel,
    PairSample, TrainConfig, TrainEngine, TrainReport,
};

use crate::api::Gnn4Ip;

/// Everything one Table-I-style run produces.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// The trained detector (δ already tuned on the training split).
    pub detector: Gnn4Ip,
    /// Loss trajectory.
    pub train_report: TrainReport,
    /// Confusion matrix on the held-out test pairs at the tuned δ.
    pub test_confusion: ConfusionMatrix,
    /// Accuracy on the test pairs.
    pub test_accuracy: f64,
    /// Tuned decision boundary.
    pub delta: f32,
    /// Wall-clock training time per sample (milliseconds) — Table I's
    /// "train time per sample".
    pub train_ms_per_sample: f64,
    /// Wall-clock inference time per sample (milliseconds) — Table I's
    /// "test time per sample".
    pub test_ms_per_sample: f64,
    /// Total pairs (dataset size column).
    pub n_pairs: usize,
    /// Number of distinct graphs.
    pub n_graphs: usize,
    /// Test-split scores with their ground-truth labels (for Fig. 4a
    /// reruns at other δ and for §IV-F rates).
    pub test_scores: Vec<(f32, bool)>,
}

/// Converts corpus pairs into trainer samples.
pub fn to_pair_samples(pairs: &[LabeledPair]) -> Vec<PairSample> {
    pairs
        .iter()
        .map(|p| PairSample {
            a: p.a,
            b: p.b,
            label: if p.similar {
                PairLabel::Similar
            } else {
                PairLabel::Different
            },
        })
        .collect()
}

/// Prepares model inputs for every graph in a corpus.
pub fn corpus_inputs(corpus: &Corpus) -> Vec<GraphInput> {
    corpus.graphs.iter().map(GraphInput::from_dfg).collect()
}

/// Runs the full Table-I protocol on a corpus: form pairs, 80/20 split,
/// train, tune δ on the training split, evaluate on the test split, and
/// time both phases per sample.
///
/// `max_different` caps the number of no-piracy pairs (the paper uses ~3.5x
/// more different pairs than similar ones).
///
/// # Panics
///
/// Panics if the corpus yields no pairs.
pub fn run_experiment(
    corpus: &Corpus,
    model_config: Hw2VecConfig,
    train_config: &TrainConfig,
    max_different: usize,
    seed: u64,
) -> ExperimentOutcome {
    let graphs = corpus_inputs(corpus);
    let pairs = corpus.pairs(max_different, seed);
    assert!(!pairs.is_empty(), "corpus produced no pairs");
    let (train_pairs, test_pairs) = split_pairs(&pairs, 0.2, seed ^ 0xDEAD);
    let train_samples = to_pair_samples(&train_pairs);
    let test_samples = to_pair_samples(&test_pairs);

    let mut detector = Gnn4Ip::new(model_config, seed);
    let t0 = Instant::now();
    let report = train(detector.model_mut(), &graphs, &train_samples, train_config);
    let train_elapsed = t0.elapsed();
    let train_samples_seen = train_samples.len() * train_config.epochs;
    let train_ms_per_sample = train_elapsed.as_secs_f64() * 1e3 / train_samples_seen.max(1) as f64;

    // tune δ on the training split
    let train_scores = score_pairs(detector.model(), &graphs, &train_samples);
    let train_labels: Vec<PairLabel> = train_samples.iter().map(|p| p.label).collect();
    let (delta, _) = tune_delta(&train_scores, &train_labels);
    detector.set_delta(delta);

    // evaluate + time the test split
    let t1 = Instant::now();
    let test_scores = score_pairs(detector.model(), &graphs, &test_samples);
    let test_elapsed = t1.elapsed();
    let test_ms_per_sample = test_elapsed.as_secs_f64() * 1e3 / test_samples.len().max(1) as f64;

    let labels: Vec<bool> = test_samples
        .iter()
        .map(|p| p.label == PairLabel::Similar)
        .collect();
    let cm = ConfusionMatrix::from_scores(&test_scores, &labels, delta);
    ExperimentOutcome {
        detector,
        train_report: report,
        test_accuracy: cm.accuracy(),
        test_confusion: cm,
        delta,
        train_ms_per_sample,
        test_ms_per_sample,
        n_pairs: pairs.len(),
        n_graphs: graphs.len(),
        test_scores: test_scores.into_iter().zip(labels).collect(),
    }
}

/// Where [`run_training_pipeline`] left its artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineArtifacts {
    /// Binary detector artifact (model + δ).
    pub detector: PathBuf,
    /// Binary embedding-library artifact (cached corpus embeddings).
    pub library: PathBuf,
    /// Training checkpoint, when periodic checkpointing was enabled.
    pub checkpoint: Option<PathBuf>,
}

/// The v2 train/persist lifecycle over a corpus.
///
/// Forms pairs and an 80/20 split like [`run_experiment`], then:
///
/// 1. **train** with the mini-batch [`TrainEngine`] — when
///    `engine.checkpoint_every > 0`, checkpoints land in
///    `artifact_dir/checkpoint.bin`;
/// 2. **resume** — if that checkpoint already exists (a prior run died or
///    stopped mid-training), training continues from it instead of
///    starting over;
/// 3. tune δ on the training split and evaluate the held-out test split;
/// 4. write the **final artifacts**: `artifact_dir/detector.bin` and
///    `artifact_dir/library.bin` (embeddings of every corpus instance,
///    pinned to the trained weights).
///
/// A detector later restored with [`Gnn4Ip::load`] +
/// [`Gnn4Ip::load_library`] reproduces this run's scores bit-exactly.
///
/// When `engine.patience > 0`, a fifth of the training pairs is carved
/// off as the validation split for early stopping.
///
/// # Errors
///
/// Returns I/O and serialization failures as text.
///
/// # Panics
///
/// Panics if the corpus yields no pairs.
pub fn run_training_pipeline(
    corpus: &Corpus,
    model_config: Hw2VecConfig,
    engine: EngineConfig,
    max_different: usize,
    seed: u64,
    artifact_dir: &Path,
) -> Result<(ExperimentOutcome, PipelineArtifacts), String> {
    std::fs::create_dir_all(artifact_dir)
        .map_err(|e| format!("creating {}: {e}", artifact_dir.display()))?;
    let graphs = corpus_inputs(corpus);
    let pairs = corpus.pairs(max_different, seed);
    assert!(!pairs.is_empty(), "corpus produced no pairs");
    let (train_pairs, test_pairs) = split_pairs(&pairs, 0.2, seed ^ 0xDEAD);
    let all_train = to_pair_samples(&train_pairs);
    let test_samples = to_pair_samples(&test_pairs);
    let (train_samples, val_samples) = if engine.patience > 0 {
        let (t, v) = split_pairs(&train_pairs, 0.2, seed ^ 0xBEEF);
        (to_pair_samples(&t), Some(to_pair_samples(&v)))
    } else {
        (all_train, None)
    };

    let mut engine_cfg = engine;
    let checkpoint = if engine_cfg.checkpoint_every > 0 {
        let path = engine_cfg
            .checkpoint_path
            .get_or_insert_with(|| artifact_dir.join("checkpoint.bin"))
            .clone();
        Some(path)
    } else {
        None
    };

    // train → checkpoint → (resume) — pick up a prior interrupted run
    // when its checkpoint is compatible with this config AND this model
    // architecture (the engine fingerprint cannot see the architecture;
    // a checkpoint from different model hyper-parameters must retrain,
    // not silently continue the old model). Incompatible or corrupt
    // leftovers mean retrain, not fail.
    let t0 = Instant::now();
    let resumed = match &checkpoint {
        Some(path) if path.exists() => TrainEngine::resume(path, engine_cfg.clone())
            .ok()
            .filter(|t| t.model().config() == &model_config),
        _ => None,
    };
    let mut trainer = resumed
        .unwrap_or_else(|| TrainEngine::new(Hw2Vec::new(model_config, seed), engine_cfg.clone()));
    let prior_epochs = trainer.next_epoch();
    let report = trainer
        .run(&graphs, &train_samples, val_samples.as_deref())?
        .clone();
    let train_elapsed = t0.elapsed();
    // per-sample time covers only the epochs this process actually ran —
    // a resumed run must not divide its elapsed time by pre-resume epochs
    let train_samples_seen = train_samples.len() * (report.epochs.len() - prior_epochs);
    let train_ms_per_sample = train_elapsed.as_secs_f64() * 1e3 / train_samples_seen.max(1) as f64;

    let mut detector = Gnn4Ip::from_model(trainer.into_model(), 0.5);
    let train_scores = score_pairs(detector.model(), &graphs, &train_samples);
    let train_labels: Vec<PairLabel> = train_samples.iter().map(|p| p.label).collect();
    let (delta, _) = tune_delta(&train_scores, &train_labels);
    detector.set_delta(delta);

    let t1 = Instant::now();
    let test_scores = score_pairs(detector.model(), &graphs, &test_samples);
    let test_elapsed = t1.elapsed();
    let test_ms_per_sample = test_elapsed.as_secs_f64() * 1e3 / test_samples.len().max(1) as f64;

    // final artifacts: detector, then the embedding library of every
    // corpus instance (runs through the cached batch path, so the
    // library holds exactly one embedding per distinct design).
    let detector_path = artifact_dir.join("detector.bin");
    detector.save(&detector_path)?;
    let sources: Vec<(&str, Option<&str>)> = corpus
        .instances
        .iter()
        .map(|i| (i.source.as_str(), None))
        .collect();
    detector
        .embed_many(&sources)
        .map_err(|e| format!("embedding corpus for the library artifact: {e}"))?;
    let library_path = artifact_dir.join("library.bin");
    detector.save_library(&library_path)?;

    let labels: Vec<bool> = test_samples
        .iter()
        .map(|p| p.label == PairLabel::Similar)
        .collect();
    let cm = ConfusionMatrix::from_scores(&test_scores, &labels, delta);
    let outcome = ExperimentOutcome {
        detector,
        train_report: report,
        test_accuracy: cm.accuracy(),
        test_confusion: cm,
        delta,
        train_ms_per_sample,
        test_ms_per_sample,
        n_pairs: pairs.len(),
        n_graphs: graphs.len(),
        test_scores: test_scores.into_iter().zip(labels).collect(),
    };
    Ok((
        outcome,
        PipelineArtifacts {
            detector: detector_path,
            library: library_path,
            checkpoint,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_data::CorpusSpec;

    fn quick_train_config() -> TrainConfig {
        TrainConfig {
            epochs: 12,
            batch_size: 16,
            lr: 0.01,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn experiment_learns_small_rtl_corpus() {
        let corpus = Corpus::build(&CorpusSpec::rtl_small()).expect("corpus");
        let out = run_experiment(
            &corpus,
            Hw2VecConfig::default(),
            &quick_train_config(),
            150,
            1,
        );
        assert!(
            out.test_accuracy >= 0.8,
            "test accuracy {} (cm {:?})",
            out.test_accuracy,
            out.test_confusion
        );
        assert!(out.train_ms_per_sample > 0.0);
        assert!(out.test_ms_per_sample > 0.0);
        assert_eq!(out.n_graphs, corpus.graphs.len());
    }

    #[test]
    fn tuned_delta_is_in_range() {
        let corpus = Corpus::build(&CorpusSpec::rtl_small()).expect("corpus");
        let out = run_experiment(
            &corpus,
            Hw2VecConfig::default(),
            &quick_train_config(),
            100,
            2,
        );
        assert!((-1.0..=1.0).contains(&out.delta), "delta {}", out.delta);
    }

    #[test]
    fn pipeline_trains_saves_and_reloads_bit_exactly() {
        let corpus = Corpus::build(&CorpusSpec::rtl_small()).expect("corpus");
        let dir = std::env::temp_dir().join(format!("gnn4ip-pipeline-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let engine = EngineConfig {
            train: quick_train_config(),
            checkpoint_every: 4,
            ..EngineConfig::default()
        };
        let (out, artifacts) =
            run_training_pipeline(&corpus, Hw2VecConfig::default(), engine, 150, 3, &dir)
                .expect("pipeline");
        assert!(artifacts.detector.exists(), "detector artifact missing");
        assert!(artifacts.library.exists(), "library artifact missing");
        let ckpt = artifacts.checkpoint.as_ref().expect("checkpoint enabled");
        assert!(ckpt.exists(), "checkpoint missing");
        assert!(out.test_accuracy >= 0.7, "accuracy {}", out.test_accuracy);

        // a freshly loaded detector + library reproduces scores bit-exactly
        let mut loaded = Gnn4Ip::load(&artifacts.detector).expect("loads detector");
        let n = loaded.load_library(&artifacts.library).expect("loads lib");
        assert!(n > 0, "library is empty");
        let (a, b) = (&corpus.instances[0].source, &corpus.instances[1].source);
        let v_mem = out.detector.check(a, b).expect("in-memory check");
        let v_loaded = loaded.check(a, b).expect("loaded check");
        assert_eq!(v_mem.score.to_bits(), v_loaded.score.to_bits());
        assert_eq!(v_mem.piracy, v_loaded.piracy);
        // and the library served those checks from cache (no misses)
        let stats = loaded.cache_stats();
        assert_eq!(stats.misses, 0, "loaded library was not used: {stats:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pair_sample_conversion_preserves_labels() {
        let pairs = [
            LabeledPair {
                a: 0,
                b: 1,
                similar: true,
            },
            LabeledPair {
                a: 0,
                b: 2,
                similar: false,
            },
        ];
        let samples = to_pair_samples(&pairs);
        assert_eq!(samples[0].label, PairLabel::Similar);
        assert_eq!(samples[1].label, PairLabel::Different);
    }
}
