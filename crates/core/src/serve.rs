//! Snapshot publication for the serve-while-ingesting loop.
//!
//! The audit serving architecture is read-mostly: one writer ingests
//! batches and periodically publishes an immutable [`AuditSnapshot`];
//! many readers audit against whatever snapshot is current. The handoff
//! used to be an ad-hoc `Mutex<Arc<AuditSnapshot>>` each caller wired up
//! by hand; [`PublicationSlot`] standardizes it as an epoch-stamped slot
//! in the style of `arc-swap`, built from safe `std` primitives only
//! (this workspace forbids `unsafe`):
//!
//! - an `AtomicU64` **epoch** counting *completed* publications, advanced
//!   with `fetch_max(AcqRel)` only after the new value is in place, and
//! - a mutex over the `(epoch, Arc<T>)` pair, held for a counter bump and
//!   a pointer store on publish, and for a pointer clone on load — never
//!   across snapshot construction or an audit.
//!
//! Readers that track the epoch they already serve use
//! [`load_if_newer`](PublicationSlot::load_if_newer) and skip the mutex
//! entirely on the (overwhelmingly common) nothing-new path: one
//! `Acquire` load of the atomic. Because the atomic trails the
//! mutex-protected pair, a hit is *guaranteed* to find something strictly
//! newer — that ordering claim is not just argued in this comment: the
//! algorithm is modeled step-by-step in `gnn4ip-analysis::models` and
//! every bounded interleaving is exhaustively explored by the loom-lite
//! checker in CI (`ci.sh --stage analysis`), proving no torn reads,
//! per-reader epoch monotonicity, publication visibility, and writer
//! progress.
//!
//! # The single publication path
//!
//! Every snapshot a reader can observe goes through the pipeline's slot:
//! [`AuditPipeline::publish`](crate::AuditPipeline::publish) captures the
//! current state and publishes it, and
//! [`AuditPipeline::snapshot`](crate::AuditPipeline::snapshot) publishes
//! the same capture before returning it to the caller. There is no side
//! door that constructs an [`AuditSnapshot`] without the slot seeing it,
//! so a reader polling [`load_if_newer`](PublicationSlot::load_if_newer)
//! can never be staler than *any* snapshot in circulation, and the epoch
//! totally orders everything ever served.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An epoch-stamped publication of a value, returned by
/// [`PublicationSlot::load`] / [`load_if_newer`](PublicationSlot::load_if_newer).
///
/// The epoch is the publication's sequence number (1 for the first
/// publish); readers keep the epoch of what they serve and pass it back
/// to `load_if_newer` to skip re-loading an unchanged value.
#[must_use = "a loaded publication does nothing unless its value is served"]
#[derive(Debug, Clone)]
pub struct Publication<T> {
    epoch: u64,
    value: Arc<T>,
}

impl<T> Publication<T> {
    /// Sequence number of this publication (strictly increasing across
    /// publishes to one slot, starting at 1).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The published value.
    pub fn value(&self) -> &Arc<T> {
        &self.value
    }

    /// Consumes the publication into its parts.
    pub fn into_parts(self) -> (u64, Arc<T>) {
        (self.epoch, self.value)
    }
}

impl<T> std::ops::Deref for Publication<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

/// The slot's mutex-protected half: the epoch/value pair, always updated
/// together under the lock so no reader can observe one without the
/// other.
#[derive(Debug)]
struct Inner<T> {
    /// Epoch of `value`. Invariant: `>=` the atomic epoch at all times —
    /// the atomic is only advanced (via `fetch_max`) *after* this pair is
    /// written, so an atomic observation of `e` promises the slot already
    /// holds a publication stamped `>= e`.
    epoch: u64,
    value: Option<Arc<T>>,
}

/// An epoch-stamped, arc-swap-style slot for publishing immutable values
/// from a writer to concurrent readers.
///
/// See the module-level docs in `serve.rs` for the algorithm and the
/// model-checking story. In short: [`publish`](PublicationSlot::publish) is O(1) under a
/// briefly-held mutex, [`load`](PublicationSlot::load) clones an `Arc`
/// under the same mutex, and [`load_if_newer`](PublicationSlot::load_if_newer)
/// answers the nothing-new case with a single lock-free atomic load.
///
/// # Examples
///
/// ```
/// use gnn4ip_core::PublicationSlot;
///
/// let slot = PublicationSlot::new();
/// assert!(slot.load().is_none());
/// assert_eq!(slot.publish("v1"), 1);
/// let p = slot.load().expect("published");
/// assert_eq!((p.epoch(), **p.value()), (1, "v1"));
/// // nothing newer than what we hold: one atomic load, no lock
/// assert!(slot.load_if_newer(p.epoch()).is_none());
/// assert_eq!(slot.publish("v2"), 2);
/// let p2 = slot.load_if_newer(p.epoch()).expect("newer value");
/// assert_eq!((p2.epoch(), **p2.value()), (2, "v2"));
/// ```
#[derive(Debug)]
pub struct PublicationSlot<T> {
    /// Completed publications; trails `inner.epoch` (see [`Inner`]).
    epoch: AtomicU64,
    inner: Mutex<Inner<T>>,
}

impl<T> Default for PublicationSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PublicationSlot<T> {
    /// An empty slot: epoch 0, nothing published.
    pub fn new() -> Self {
        Self {
            epoch: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                epoch: 0,
                value: None,
            }),
        }
    }

    /// A slot born holding `value` at epoch 1.
    pub fn with_initial(value: T) -> Self {
        let slot = Self::new();
        slot.publish(value);
        slot
    }

    /// Publishes `value`, replacing whatever the slot held, and returns
    /// the new publication's epoch. Safe to call from multiple writers:
    /// epochs are claimed under the mutex and the atomic advances by
    /// `fetch_max`, so a slow writer's store can never regress it.
    ///
    /// The lock is held for a counter bump and a pointer store — never
    /// while constructing `value`.
    pub fn publish(&self, value: T) -> u64 {
        let epoch = {
            let mut inner = self.lock();
            inner.epoch += 1;
            inner.value = Some(Arc::new(value));
            inner.epoch
        };
        // only now does the publication count as complete; fetch_max keeps
        // concurrently-retiring writers from moving the count backwards
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
        epoch
    }

    /// The current publication, or `None` if nothing was ever published.
    /// Holds the mutex just long enough to clone the `Arc`.
    #[must_use = "loading a publication has no effect besides its return value"]
    pub fn load(&self) -> Option<Publication<T>> {
        let inner = self.lock();
        inner.value.as_ref().map(|value| Publication {
            epoch: inner.epoch,
            value: Arc::clone(value),
        })
    }

    /// [`load`](Self::load), but only if a publication newer than `seen`
    /// has completed — otherwise `None`, decided by a single lock-free
    /// `Acquire` load. A `Some` result is always stamped strictly newer
    /// than `seen`; readers serving epoch `e` poll with
    /// `load_if_newer(e)` and touch the mutex only when there is
    /// genuinely something to pick up.
    #[must_use = "loading a publication has no effect besides its return value"]
    pub fn load_if_newer(&self, seen: u64) -> Option<Publication<T>> {
        if self.epoch.load(Ordering::Acquire) <= seen {
            return None;
        }
        // the pair is written before the atomic advances, so the slot now
        // holds an epoch >= the one we just observed > seen
        self.load()
    }

    /// Epoch of the newest *completed* publication (0 = none yet). The
    /// slot may concurrently hold an in-flight newer one.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A poisoned slot mutex only means a panic happened while the pair
    /// was locked; both fields are plain stores that cannot be left
    /// half-written, so recovery is always sound.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slot_loads_nothing() {
        let slot: PublicationSlot<u32> = PublicationSlot::new();
        assert!(slot.load().is_none());
        assert!(slot.load_if_newer(0).is_none());
        assert_eq!(slot.epoch(), 0);
    }

    #[test]
    fn epochs_count_publications() {
        let slot = PublicationSlot::new();
        for i in 1..=5u64 {
            assert_eq!(slot.publish(i), i);
            assert_eq!(slot.epoch(), i);
            let p = slot.load().expect("published");
            assert_eq!(p.epoch(), i);
            assert_eq!(**p.value(), i);
        }
    }

    #[test]
    fn with_initial_starts_at_epoch_one() {
        let slot = PublicationSlot::with_initial("x");
        let p = slot.load().expect("initial value");
        assert_eq!(p.epoch(), 1);
        assert_eq!(*p, "x");
    }

    #[test]
    fn load_if_newer_skips_seen_epochs() {
        let slot = PublicationSlot::new();
        slot.publish(10u32);
        slot.publish(20u32);
        assert!(slot.load_if_newer(2).is_none());
        assert!(slot.load_if_newer(3).is_none());
        let p = slot.load_if_newer(1).expect("epoch 2 is newer than 1");
        assert_eq!((p.epoch(), **p.value()), (2, 20));
    }

    #[test]
    fn publications_outlive_replacement() {
        let slot = PublicationSlot::new();
        slot.publish(vec![1, 2, 3]);
        let held = slot.load().expect("v1");
        slot.publish(vec![4, 5]);
        // the reader's Arc still serves the old value unchanged
        assert_eq!(*held.value().as_slice(), [1, 2, 3]);
        assert_eq!(*slot.load().expect("v2").value().as_slice(), [4, 5]);
    }

    #[test]
    fn concurrent_publishers_and_pollers_stay_monotone() {
        let slot = Arc::new(PublicationSlot::new());
        std::thread::scope(|scope| {
            for w in 0..2u64 {
                let slot = Arc::clone(&slot);
                scope.spawn(move || {
                    for i in 0..50 {
                        slot.publish(w * 1000 + i);
                    }
                });
            }
            for _ in 0..4 {
                let slot = Arc::clone(&slot);
                scope.spawn(move || {
                    let mut seen = 0u64;
                    for _ in 0..200 {
                        if let Some(p) = slot.load_if_newer(seen) {
                            assert!(p.epoch() > seen, "load_if_newer returned stale epoch");
                            seen = p.epoch();
                        }
                    }
                });
            }
        });
        assert_eq!(slot.epoch(), 100);
        assert_eq!(slot.load().expect("final").epoch(), 100);
    }
}
