//! Corpus-scale audit pipeline: streaming ingest into a sharded,
//! persistent embedding index, then `check`-style verdicts at query time.
//!
//! The deployment §IV-C motivates is a *library* workload: embed every
//! owned IP once, then answer "what is this suspect closest to?" forever,
//! for a corpus that grows as designs stream in. [`AuditPipeline`] is that
//! loop made concrete:
//!
//! ```text
//! Verilog sources ── batch ──► parse → DFG → GraphInput   (fan_out workers)
//!                                   │
//!                                   ▼
//!                         Hw2Vec::embed_batch             (tape-free)
//!                                   │
//!                                   ▼
//!                      ShardedEmbeddingIndex::insert      (bounded memory)
//!                                   │
//!        audit(suspect) ──► hw2vec → top-k query ──► AuditVerdict
//! ```
//!
//! Each ingest batch is parsed in parallel, embedded through the batched
//! tape-free forward pass, inserted into fixed-capacity shards, and then
//! *dropped* — the pipeline never holds more than one batch of graphs, so
//! memory stays bounded no matter how large the corpus grows. The filled
//! index persists through the `G4IP` binary artifact format, pinned to the
//! detector's weights checksum exactly like the embedding library: an
//! index built by other weights is rejected at load rather than silently
//! serving stale similarities.
//!
//! The pipeline also *serves while it grows*:
//! [`AuditPipeline::snapshot`] captures an immutable [`AuditSnapshot`] in
//! `O(sealed shards + tail)` — the sealed embedding shards and name
//! blocks are shared by `Arc`, only the open tails are copied — and any
//! number of reader threads audit against their own snapshots while the
//! writer keeps ingesting. A snapshot can never observe a torn tail,
//! because it does not observe the writer's tail at all. The writer hands
//! snapshots to readers through the epoch-stamped
//! [`PublicationSlot`](crate::PublicationSlot)
//! ([`AuditPipeline::publish`] / [`AuditPipeline::serving_slot`]), whose
//! interleavings are exhaustively model-checked in `gnn4ip-analysis`.
//!
//! [`run_audit_scenarios`] is the acceptance harness: it pushes
//! behaviour-preserving `vary_design`/`obfuscate_netlist` variants of a
//! synthetic corpus through the pipeline and reports how often the true
//! source design is retrieved (recall@1 / recall@k).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use gnn4ip_data::{
    netlist_designs, obfuscate_netlist, rtl_designs, vary_design, Level, ObfuscationConfig,
    SynthSize, VariationConfig,
};
use gnn4ip_dfg::graph_from_verilog;
use gnn4ip_eval::{
    QueryHit, QueryOptions, RebalanceOptions, RebalanceReport, ShardStorage, ShardedEmbeddingIndex,
};
use gnn4ip_hdl::ParseVerilogError;
use gnn4ip_nn::{fan_out, GraphInput};
use gnn4ip_tensor::{read_artifact, write_artifact, BinReader, BinWriter};

use crate::api::Gnn4Ip;
use crate::serve::PublicationSlot;

/// Kind tag of the persisted audit-index artifact (names + shard index,
/// pinned to the detector weights that produced the embeddings).
pub const AUDIT_INDEX_KIND: &str = "gnn4ip-audit-index";

/// Format version the audit-index artifact is written at. Its own field
/// layout is unchanged since v1, but the nested shard-index blob became
/// v2 (sealed-shard bounds), so the envelope says v2 too — a pre-v2
/// reader is rejected up front instead of failing deep inside the
/// nested blob. v1 artifacts (nested v1 blob) still load.
const AUDIT_INDEX_VERSION: u16 = 2;

/// Tuning knobs of an [`AuditPipeline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditConfig {
    /// Rows per shard of the backing [`ShardedEmbeddingIndex`].
    pub shard_capacity: usize,
    /// Designs parsed + embedded per streaming ingest batch — the memory
    /// high-water mark of [`AuditPipeline::ingest`].
    pub batch_size: usize,
    /// Worker threads for the parse stage (`0` = one per core).
    pub threads: usize,
    /// Neighbors reported per [`AuditPipeline::audit`] verdict. `0` is a
    /// degenerate but legal setting: every verdict carries no matches and
    /// never flags piracy.
    pub top_k: usize,
    /// Query tuning (pruning, threading, the parallel-scan row gate,
    /// int8 scanning) applied to every verdict query. Results are
    /// bit-identical for every setting; only the work spent changes.
    pub query: QueryOptions,
    /// Row storage newly sealed shards adopt —
    /// [`ShardStorage::Int8`] trades ~4x less scan memory traffic for a
    /// per-shard dequantization slack, with verdicts still bit-identical
    /// (shortlist rescoring).
    pub storage: ShardStorage,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            shard_capacity: 256,
            batch_size: 64,
            threads: 0,
            top_k: 5,
            query: QueryOptions::default(),
            storage: ShardStorage::F32,
        }
    }
}

/// One design offered to [`AuditPipeline::ingest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditSource {
    /// Registry name reported back by audit verdicts.
    pub name: String,
    /// Verilog source.
    pub source: String,
    /// Top module, when the source holds more than one.
    pub top: Option<String>,
}

impl AuditSource {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, source: impl Into<String>, top: Option<&str>) -> Self {
        Self {
            name: name.into(),
            source: source.into(),
            top: top.map(str::to_string),
        }
    }
}

/// What one [`AuditPipeline::ingest`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Designs embedded and indexed.
    pub ingested: usize,
    /// Designs skipped, as `(name, parse error)` — ingest keeps going past
    /// malformed sources instead of aborting a corpus-scale run.
    pub rejected: Vec<(String, String)>,
}

/// What one [`AuditPipeline::audit_many`] call did, alongside the
/// per-suspect verdicts: the aggregate the serve loop and the `audit`
/// subcommand report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Suspects that parsed, embedded, and were scored.
    pub audited: usize,
    /// Audited suspects whose verdict flagged piracy.
    pub flagged: usize,
    /// Suspects skipped as `(name, parse error)` — like ingest, a batch
    /// audit keeps going past malformed sources instead of aborting.
    pub rejected: Vec<(String, String)>,
}

/// Failure modes of the audit-index persistence surface
/// ([`AuditPipeline::save_index`] / [`load_index`](AuditPipeline::load_index) /
/// [`load_index_bytes`](AuditPipeline::load_index_bytes)), one variant per
/// distinct cause in the style of `gnn4ip_eval::ManifestError` — so the
/// serve loop and the CLI map failures to protocol responses and exit
/// codes by matching, never by searching error strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// Reading or writing the artifact file failed (underlying I/O error
    /// as text).
    Io(String),
    /// The artifact bytes are malformed: bad magic, unsupported version,
    /// checksum failure, truncation, or a corrupt nested shard blob.
    Format(String),
    /// The artifact was produced by different detector weights —
    /// embeddings are only valid for the exact weights that made them.
    WeightsMismatch {
        /// Weights checksum stamped into the artifact.
        artifact: u64,
        /// This detector's weights checksum.
        detector: u64,
    },
    /// The artifact pairs an index and a name table of different sizes.
    NameCountMismatch {
        /// Embedding rows the index holds.
        embeddings: usize,
        /// Names the artifact carries.
        names: usize,
    },
    /// A stored label points past the artifact's name table.
    LabelOutOfRange {
        /// The out-of-range label.
        label: usize,
        /// Names the artifact carries.
        names: usize,
    },
    /// The artifact's embedding dimension does not match the detector's
    /// embedding width.
    DimMismatch {
        /// Dimension stored in the artifact.
        artifact: usize,
        /// The detector's embedding width.
        detector: usize,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "audit index i/o failed: {e}"),
            Self::Format(e) => write!(f, "audit index artifact is malformed: {e}"),
            Self::WeightsMismatch { artifact, detector } => write!(
                f,
                "audit index was built by weights {artifact:#018x}, this detector \
                 has {detector:#018x}; re-ingest instead of loading"
            ),
            Self::NameCountMismatch { embeddings, names } => write!(
                f,
                "audit index holds {embeddings} embeddings but {names} names"
            ),
            Self::LabelOutOfRange { label, names } => write!(
                f,
                "audit index references label {label} but only {names} names exist; \
                 the artifact pairs mismatched index and name tables"
            ),
            Self::DimMismatch { artifact, detector } => write!(
                f,
                "audit index dimension {artifact} != detector embedding width {detector}"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// One retrieved neighbor of an audited suspect.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditMatch {
    /// Name the neighbor was ingested under.
    pub name: String,
    /// Its global label (insertion index) in the pipeline's index.
    pub label: usize,
    /// Cosine similarity of the suspect to this neighbor.
    pub score: f32,
    /// Whether the score exceeds the detector's δ.
    pub piracy: bool,
}

/// The audit verdict for one suspect design: its nearest library
/// neighbors, highest score first.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditVerdict {
    /// Top-k matches (fewer when the index is smaller than k).
    pub matches: Vec<AuditMatch>,
    /// `true` when the best match crosses δ — Algorithm 1's piracy bit
    /// against the whole library at once.
    pub piracy: bool,
}

impl AuditVerdict {
    /// The best match, when the index is non-empty.
    pub fn best(&self) -> Option<&AuditMatch> {
        self.matches.first()
    }
}

/// Label (insertion index) → ingested name, stored with the same
/// sealed/tail discipline as the embedding shards: full blocks are
/// immutable and `Arc`-shared, only the open tail is copied by a
/// snapshot. Block size tracks the index's shard capacity so the two
/// structures seal in lockstep.
#[derive(Debug, Clone)]
struct NameLog {
    block: usize,
    sealed: Vec<Arc<Vec<String>>>,
    tail: Vec<String>,
}

impl NameLog {
    fn new(block: usize) -> Self {
        assert!(block > 0, "name block size must be positive");
        Self {
            block,
            sealed: Vec::new(),
            tail: Vec::new(),
        }
    }

    fn from_names(names: Vec<String>, block: usize) -> Self {
        let mut log = Self::new(block);
        for name in names {
            log.push(name);
        }
        log
    }

    fn push(&mut self, name: String) {
        self.tail.push(name);
        if self.tail.len() == self.block {
            self.sealed.push(Arc::new(std::mem::take(&mut self.tail)));
        }
    }

    fn len(&self) -> usize {
        self.sealed.len() * self.block + self.tail.len()
    }

    fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    fn get(&self, i: usize) -> Option<&str> {
        let b = i / self.block;
        if b < self.sealed.len() {
            self.sealed[b].get(i % self.block).map(String::as_str)
        } else {
            self.tail
                .get(i - self.sealed.len() * self.block)
                .map(String::as_str)
        }
    }

    fn iter(&self) -> impl Iterator<Item = &str> {
        self.sealed
            .iter()
            .flat_map(|b| b.iter().map(String::as_str))
            .chain(self.tail.iter().map(String::as_str))
    }
}

/// A streaming audit service: a detector plus a sharded index of every
/// ingested design's embedding.
///
/// # Examples
///
/// ```
/// use gnn4ip_core::{AuditConfig, AuditPipeline, AuditSource, Gnn4Ip};
///
/// let mut pipeline = AuditPipeline::new(Gnn4Ip::with_seed(7), AuditConfig::default());
/// let inv = "module inv(input a, output y); assign y = ~a; endmodule";
/// let report = pipeline.ingest([AuditSource::new("inv", inv, None)]);
/// assert_eq!(report.ingested, 1);
/// let verdict = pipeline.audit(inv, None)?;
/// assert_eq!(verdict.best().expect("hit").name, "inv");
/// assert!(verdict.best().expect("hit").score > 0.99);
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
#[derive(Debug)]
pub struct AuditPipeline {
    /// `Arc` so snapshots share the detector (and its embedding cache)
    /// with the pipeline instead of borrowing from it.
    detector: Arc<Gnn4Ip>,
    config: AuditConfig,
    index: ShardedEmbeddingIndex,
    names: NameLog,
    /// The serving slot [`publish`](AuditPipeline::publish) feeds;
    /// `Arc`-shared with readers via
    /// [`serving_slot`](AuditPipeline::serving_slot).
    slot: Arc<PublicationSlot<AuditSnapshot>>,
}

impl AuditPipeline {
    /// Builds an empty pipeline around a detector. The index dimension is
    /// the detector's embedding width.
    ///
    /// # Panics
    ///
    /// Panics if `config.shard_capacity` or `batch_size` is zero
    /// (`top_k == 0` is legal: verdicts then carry no matches).
    pub fn new(detector: Gnn4Ip, config: AuditConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be positive");
        let dim = detector.model().config().hidden;
        let index = ShardedEmbeddingIndex::with_storage(dim, config.shard_capacity, config.storage);
        let names = NameLog::new(config.shard_capacity);
        Self {
            detector: Arc::new(detector),
            config,
            names,
            index,
            slot: Arc::new(PublicationSlot::new()),
        }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &Gnn4Ip {
        &self.detector
    }

    /// The backing shard index.
    pub fn index(&self) -> &ShardedEmbeddingIndex {
        &self.index
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// Number of ingested designs.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name a label was ingested under, or `None` for an out-of-range
    /// label.
    pub fn try_name_of(&self, label: usize) -> Option<&str> {
        self.names.get(label)
    }

    /// Name a label was ingested under.
    ///
    /// # Panics
    ///
    /// Panics when `label` is out of bounds. Labels coming from this
    /// pipeline's own verdicts or from a successfully loaded artifact are
    /// always in range — [`AuditPipeline::load_index_bytes`] rejects
    /// artifacts whose index references names that do not exist.
    pub fn name_of(&self, label: usize) -> &str {
        self.try_name_of(label).unwrap_or_else(|| {
            panic!(
                "label {label} out of range: {} designs ingested",
                self.names.len()
            )
        })
    }

    /// Captures an immutable, self-contained serving snapshot: the sealed
    /// embedding shards and sealed name blocks are shared by `Arc` (no row
    /// or name is copied), only the open tails — at most one shard's worth
    /// — are cloned, and the detector rides along behind its own `Arc`.
    ///
    /// The snapshot audits concurrently with (and completely isolated
    /// from) further [`ingest`](AuditPipeline::ingest) calls on the
    /// pipeline: its verdicts are stable forever, so a reader can never
    /// observe a torn tail or a half-published design. The intended
    /// serving loop is: writer ingests a batch, calls
    /// [`publish`](AuditPipeline::publish); readers poll the
    /// [`serving_slot`](AuditPipeline::serving_slot) and audit against
    /// what it returns. The index side is lock-free
    /// ([`AuditSnapshot::audit_embedding`] touches no shared mutable
    /// state); source-level [`AuditSnapshot::audit`] additionally takes
    /// the detector's shared embedding-cache mutex, held only for
    /// hash-map lookups.
    ///
    /// Every snapshot goes **through the serving slot**: this method
    /// publishes the captured snapshot (advancing the slot epoch) and
    /// returns it, so there is exactly one publication path and a
    /// snapshot held by the caller is always also visible to readers
    /// polling the [`serving_slot`](AuditPipeline::serving_slot). Use
    /// [`publish`](AuditPipeline::publish) when only the epoch is
    /// needed.
    pub fn snapshot(&self) -> AuditSnapshot {
        let snapshot = self.capture();
        self.slot.publish(snapshot.clone());
        snapshot
    }

    /// Builds the immutable snapshot value — the one construction both
    /// [`snapshot`](AuditPipeline::snapshot) and
    /// [`publish`](AuditPipeline::publish) feed into the slot.
    fn capture(&self) -> AuditSnapshot {
        AuditSnapshot {
            detector: Arc::clone(&self.detector),
            index: self.index.snapshot(),
            names: self.names.clone(),
            top_k: self.config.top_k,
            query: self.config.query,
            threads: self.config.threads,
            batch_size: self.config.batch_size,
        }
    }

    /// Captures the current state and publishes it into the serving
    /// slot, returning the publication epoch. This is
    /// the writer half of the serving loop; reader threads hold the
    /// [`serving_slot`](AuditPipeline::serving_slot) and pick the new
    /// snapshot up via [`PublicationSlot::load_if_newer`].
    ///
    /// The slot lock is held for a pointer store only — the snapshot is
    /// built before it is taken — so readers are never blocked behind
    /// snapshot construction.
    #[must_use = "the epoch identifies this publication; readers poll load_if_newer with it"]
    pub fn publish(&self) -> u64 {
        self.slot.publish(self.capture())
    }

    /// The epoch-stamped slot this pipeline publishes snapshots into —
    /// the standardized writer→readers handoff of the serving loop,
    /// verified interleaving-by-interleaving by the loom-lite checker in
    /// `gnn4ip-analysis`. Clone the `Arc` into each reader thread;
    /// nothing is published until the first
    /// [`publish`](AuditPipeline::publish).
    pub fn serving_slot(&self) -> Arc<PublicationSlot<AuditSnapshot>> {
        Arc::clone(&self.slot)
    }

    /// Re-clusters the sealed shards into centroid-aligned groups
    /// ([`ShardedEmbeddingIndex::rebalance`]) and immediately publishes
    /// the re-clustered snapshot, returning the rebalance report and the
    /// new publication epoch. Readers holding earlier snapshots are
    /// unaffected (their `Arc`-shared shards are immutable); readers
    /// polling the [`serving_slot`](AuditPipeline::serving_slot) pick up
    /// the better-pruning layout atomically. Verdict names and scores
    /// are preserved (bit-identically on [`ShardStorage::F32`]).
    pub fn recluster(&mut self, opts: &RebalanceOptions) -> (RebalanceReport, u64) {
        let report = self.index.rebalance(opts);
        let epoch = self.publish();
        (report, epoch)
    }

    /// Streams designs into the index in batches of
    /// [`AuditConfig::batch_size`]: each batch is parsed to [`GraphInput`]s
    /// across [`fan_out`] workers, embedded through the tape-free
    /// [`embed_batch`](gnn4ip_nn::Hw2Vec::embed_batch), inserted into the
    /// shards, and dropped before the next batch starts — memory stays
    /// bounded by one batch regardless of corpus size. Malformed sources
    /// are recorded in the report and skipped, never aborting the stream.
    pub fn ingest<I>(&mut self, sources: I) -> IngestReport
    where
        I: IntoIterator<Item = AuditSource>,
    {
        let mut report = IngestReport::default();
        let mut batch: Vec<AuditSource> = Vec::with_capacity(self.config.batch_size);
        for source in sources {
            batch.push(source);
            if batch.len() == self.config.batch_size {
                self.flush(&mut batch, &mut report);
            }
        }
        self.flush(&mut batch, &mut report);
        report
    }

    /// Parses, embeds, and indexes one buffered batch, clearing it.
    fn flush(&mut self, batch: &mut Vec<AuditSource>, report: &mut IngestReport) {
        if batch.is_empty() {
            return;
        }
        let parsed: Vec<Result<GraphInput, ParseVerilogError>> =
            fan_out(batch, self.config.threads, |_tid, chunk| {
                chunk
                    .iter()
                    .map(|s| {
                        graph_from_verilog(&s.source, s.top.as_deref())
                            .map(|g| GraphInput::from_dfg(&g))
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        let mut graphs = Vec::new();
        let mut graph_sources = Vec::new();
        for (source, result) in batch.drain(..).zip(parsed) {
            match result {
                Ok(g) => {
                    graphs.push(g);
                    graph_sources.push(source);
                }
                Err(e) => report.rejected.push((source.name, e.to_string())),
            }
        }
        let embeddings = self.detector.model().embed_batch(&graphs);
        for (source, embedding) in graph_sources.into_iter().zip(embeddings) {
            self.index.insert(&embedding, self.names.len());
            self.names.push(source.name);
            report.ingested += 1;
        }
    }

    /// Audits one suspect source against the whole ingested corpus: embed
    /// (served by the detector's content-addressed cache on resubmission),
    /// query the shard index for the top-k neighbors, apply δ.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures for the suspect source.
    pub fn audit(
        &self,
        verilog: &str,
        top: Option<&str>,
    ) -> Result<AuditVerdict, ParseVerilogError> {
        let embedding = self.detector.hw2vec(verilog, top)?;
        Ok(self.audit_embedding(&embedding))
    }

    /// [`AuditPipeline::audit`] on a precomputed embedding (no parsing, no
    /// model pass). An empty index — or `top_k == 0` — yields an empty
    /// match list ([`AuditVerdict::best`] → `None`) with `piracy` false.
    pub fn audit_embedding(&self, embedding: &[f32]) -> AuditVerdict {
        build_verdict(
            &self.index,
            &self.names,
            self.detector.delta(),
            self.config.top_k,
            &self.config.query,
            embedding,
        )
    }

    /// Audits a whole portfolio of suspects as one pipeline: each batch of
    /// [`AuditConfig::batch_size`] suspects is parsed across [`fan_out`]
    /// workers, embedded through the tape-free
    /// [`embed_batch`](gnn4ip_nn::Hw2Vec::embed_batch), and scored with a
    /// **single** [`ShardedEmbeddingIndex::query_many`] call — one shard
    /// pass over the whole batch instead of one gemv walk per suspect —
    /// so a directory of suspects flows through the same
    /// parse → DFG → embed → query stages as ingest, with memory bounded
    /// by one batch.
    ///
    /// Returns one verdict per suspect, in input order (`None` for
    /// suspects that failed to parse, with the error recorded in the
    /// report), plus the aggregate [`BatchReport`]. Every verdict is
    /// bit-identical to what a serial [`audit`](AuditPipeline::audit)
    /// call on the same suspect returns — batching changes throughput,
    /// never results.
    pub fn audit_many(&self, suspects: &[AuditSource]) -> (Vec<Option<AuditVerdict>>, BatchReport) {
        audit_many_impl(
            &self.detector,
            &self.index,
            &self.names,
            self.config.top_k,
            &self.config.query,
            self.config.threads,
            self.config.batch_size,
            suspects,
        )
    }

    // --- persistence ---------------------------------------------------

    /// Serializes the audit index — names plus the nested shard-index
    /// artifact — pinned to the detector's weights checksum.
    pub fn index_bytes(&self) -> Vec<u8> {
        let checksum = self.detector.model().weights_checksum();
        let mut w = BinWriter::with_version(AUDIT_INDEX_KIND, AUDIT_INDEX_VERSION);
        w.u64(checksum);
        w.len_of(self.names.len());
        for name in self.names.iter() {
            w.str(name);
        }
        w.bytes(&self.index.to_bytes(checksum));
        w.finish()
    }

    /// Restores an index serialized by [`AuditPipeline::index_bytes`],
    /// replacing the current one. The loaded shard capacity comes from the
    /// artifact (it wins over [`AuditConfig::shard_capacity`], which only
    /// seeds fresh pipelines). Returns the number of designs restored.
    ///
    /// # Errors
    ///
    /// Fails on corrupt artifacts, on an index built by different weights
    /// (embeddings are only valid for the exact weights that produced
    /// them), on name/embedding count or dimension mismatches, and on an
    /// index whose stored labels reference names that do not exist — a
    /// mismatched artifact is rejected here, descriptively, instead of
    /// deferring a panic to the first query that retrieves the bad label.
    /// Every failure mode is a distinct [`AuditError`] variant.
    pub fn load_index_bytes(&mut self, bytes: &[u8]) -> Result<usize, AuditError> {
        let mut r = BinReader::open_versioned(bytes, AUDIT_INDEX_KIND, AUDIT_INDEX_VERSION)
            .map_err(AuditError::Format)?;
        let checksum = r.u64().map_err(AuditError::Format)?;
        let own = self.detector.model().weights_checksum();
        if checksum != own {
            return Err(AuditError::WeightsMismatch {
                artifact: checksum,
                detector: own,
            });
        }
        // every name carries a 4-byte length prefix
        let n = r.count_of(4).map_err(AuditError::Format)?;
        let mut names = Vec::with_capacity(n);
        for _ in 0..n {
            names.push(r.str().map_err(AuditError::Format)?);
        }
        let nested = r.bytes().map_err(AuditError::Format)?;
        // the nested blob is pinned to the same checksum the envelope
        // carries (already matched against our weights above), so any
        // failure in here — including its pin check — is artifact
        // corruption, not a weights mismatch
        let index = ShardedEmbeddingIndex::from_bytes(nested, own).map_err(AuditError::Format)?;
        r.done().map_err(AuditError::Format)?;
        if index.len() != names.len() {
            return Err(AuditError::NameCountMismatch {
                embeddings: index.len(),
                names: names.len(),
            });
        }
        if let Some(bad) = index.labels().find(|&l| l >= names.len()) {
            return Err(AuditError::LabelOutOfRange {
                label: bad,
                names: names.len(),
            });
        }
        if index.dim() != self.index.dim() {
            return Err(AuditError::DimMismatch {
                artifact: index.dim(),
                detector: self.index.dim(),
            });
        }
        // the artifact's shard capacity wins; keep names sealing in
        // lockstep with it
        self.names = NameLog::from_names(names, index.shard_capacity());
        self.index = index;
        Ok(n)
    }

    /// Writes the audit-index artifact to `path` (atomic: temp file +
    /// rename).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O failure as [`AuditError::Io`].
    pub fn save_index(&self, path: impl AsRef<std::path::Path>) -> Result<(), AuditError> {
        write_artifact(path.as_ref(), &self.index_bytes()).map_err(AuditError::Io)
    }

    /// Loads an audit-index artifact written by
    /// [`AuditPipeline::save_index`]. Returns the number of designs
    /// restored.
    ///
    /// # Errors
    ///
    /// [`AuditError::Io`] for file-system failures, otherwise whatever
    /// [`AuditPipeline::load_index_bytes`] rejects the bytes with.
    pub fn load_index(&mut self, path: impl AsRef<std::path::Path>) -> Result<usize, AuditError> {
        self.load_index_bytes(&read_artifact(path.as_ref()).map_err(AuditError::Io)?)
    }
}

/// The one verdict construction, shared by the live pipeline and its
/// snapshots so both rank, resolve, and threshold identically.
fn build_verdict(
    index: &ShardedEmbeddingIndex,
    names: &NameLog,
    delta: f32,
    top_k: usize,
    query: &QueryOptions,
    embedding: &[f32],
) -> AuditVerdict {
    let hits = if top_k == 0 || index.is_empty() {
        Vec::new()
    } else {
        index.query_opts(embedding, top_k, query).0
    };
    verdict_from_hits(hits, names, delta)
}

/// Resolves query hits into an [`AuditVerdict`] — the single
/// hit→match→δ step both the serial and the batched audit paths share,
/// so they cannot drift.
fn verdict_from_hits(hits: Vec<QueryHit>, names: &NameLog, delta: f32) -> AuditVerdict {
    let matches: Vec<AuditMatch> = hits
        .into_iter()
        .map(|h| AuditMatch {
            name: names
                .get(h.label)
                // g4check: allow(unwrap-in-lib): ingest appends the name before the row, and load_index_bytes rejects artifacts whose labels exceed the name table
                .expect("labels are validated against the name table at ingest and load")
                .to_string(),
            label: h.label,
            score: h.score,
            piracy: h.score > delta,
        })
        .collect();
    AuditVerdict {
        piracy: matches.first().is_some_and(|m| m.piracy),
        matches,
    }
}

/// The one batched-audit implementation, shared by
/// [`AuditPipeline::audit_many`] and [`AuditSnapshot::audit_many`]:
/// chunked parse (fan-out) → batched embed → one `query_many` per chunk.
#[allow(clippy::too_many_arguments)]
fn audit_many_impl(
    detector: &Gnn4Ip,
    index: &ShardedEmbeddingIndex,
    names: &NameLog,
    top_k: usize,
    query: &QueryOptions,
    threads: usize,
    batch_size: usize,
    suspects: &[AuditSource],
) -> (Vec<Option<AuditVerdict>>, BatchReport) {
    let delta = detector.delta();
    let mut verdicts: Vec<Option<AuditVerdict>> = Vec::with_capacity(suspects.len());
    let mut report = BatchReport::default();
    for chunk in suspects.chunks(batch_size.max(1)) {
        let parsed: Vec<Result<GraphInput, ParseVerilogError>> =
            fan_out(chunk, threads, |_tid, part| {
                part.iter()
                    .map(|s| {
                        graph_from_verilog(&s.source, s.top.as_deref())
                            .map(|g| GraphInput::from_dfg(&g))
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        let mut graphs = Vec::new();
        let mut slots = Vec::new(); // verdict position of each parsed graph
        for (suspect, result) in chunk.iter().zip(parsed) {
            match result {
                Ok(g) => {
                    graphs.push(g);
                    slots.push(verdicts.len());
                    verdicts.push(None);
                }
                Err(e) => {
                    report.rejected.push((suspect.name.clone(), e.to_string()));
                    verdicts.push(None);
                }
            }
        }
        let embeddings = detector.model().embed_batch(&graphs);
        report.audited += slots.len();
        if top_k == 0 || index.is_empty() {
            for slot in slots {
                verdicts[slot] = Some(AuditVerdict {
                    matches: Vec::new(),
                    piracy: false,
                });
            }
            continue;
        }
        let results = index.query_many(&embeddings, top_k, query);
        for (slot, (hits, _stats)) in slots.into_iter().zip(results) {
            let verdict = verdict_from_hits(hits, names, delta);
            if verdict.piracy {
                report.flagged += 1;
            }
            verdicts[slot] = Some(verdict);
        }
    }
    (verdicts, report)
}

/// An immutable point-in-time view of an [`AuditPipeline`], produced by
/// [`AuditPipeline::snapshot`]: the serving half of the read-mostly
/// architecture.
///
/// A snapshot owns everything it needs — `Arc`-shared sealed shards and
/// name blocks, a private copy of the tails, and the detector behind its
/// own `Arc` — so it audits without borrowing from or racing the
/// pipeline it came from. [`audit_embedding`](AuditSnapshot::audit_embedding)
/// acquires no lock at all; [`audit`](AuditSnapshot::audit) briefly takes
/// the detector's shared embedding-cache mutex (a hash-map lookup, never
/// held across an embedding), which it shares with every other user of
/// that detector. Its verdicts never change: auditing the same suspect
/// twice against one snapshot returns bit-identical results no matter
/// what the writer ingests in between.
///
/// # Examples
///
/// ```
/// use gnn4ip_core::{AuditConfig, AuditPipeline, AuditSource, Gnn4Ip};
///
/// let mut pipeline = AuditPipeline::new(Gnn4Ip::with_seed(7), AuditConfig::default());
/// let inv = "module inv(input a, output y); assign y = ~a; endmodule";
/// pipeline.ingest([AuditSource::new("inv", inv, None)]);
/// let snapshot = pipeline.snapshot();
/// // the writer moves on; the snapshot's world stays frozen
/// pipeline.ingest([AuditSource::new(
///     "buf",
///     "module b(input a, output y); assign y = a; endmodule",
///     None,
/// )]);
/// assert_eq!(snapshot.len(), 1);
/// assert_eq!(snapshot.audit(inv, None)?.best().expect("hit").name, "inv");
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
#[must_use = "a snapshot only freezes state so it can be audited or published"]
#[derive(Debug, Clone)]
pub struct AuditSnapshot {
    detector: Arc<Gnn4Ip>,
    index: ShardedEmbeddingIndex,
    names: NameLog,
    top_k: usize,
    query: QueryOptions,
    threads: usize,
    batch_size: usize,
}

impl AuditSnapshot {
    /// The shared detector (same weights, δ, and embedding cache as the
    /// pipeline's).
    pub fn detector(&self) -> &Gnn4Ip {
        &self.detector
    }

    /// The frozen shard index.
    pub fn index(&self) -> &ShardedEmbeddingIndex {
        &self.index
    }

    /// Number of designs visible to this snapshot.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the snapshot saw an empty pipeline.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name a label was ingested under, or `None` for an out-of-range
    /// label.
    pub fn try_name_of(&self, label: usize) -> Option<&str> {
        self.names.get(label)
    }

    /// Audits one suspect source against the snapshot's frozen corpus —
    /// the same embed → top-k → δ path as [`AuditPipeline::audit`], and
    /// the same cosine scores (the embedding cache is shared with the
    /// live pipeline, so resubmitted designs stay cache hits).
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures for the suspect source.
    pub fn audit(
        &self,
        verilog: &str,
        top: Option<&str>,
    ) -> Result<AuditVerdict, ParseVerilogError> {
        let embedding = self.detector.hw2vec(verilog, top)?;
        Ok(self.audit_embedding(&embedding))
    }

    /// [`AuditSnapshot::audit`] on a precomputed embedding (no parsing,
    /// no model pass).
    pub fn audit_embedding(&self, embedding: &[f32]) -> AuditVerdict {
        build_verdict(
            &self.index,
            &self.names,
            self.detector.delta(),
            self.top_k,
            &self.query,
            embedding,
        )
    }

    /// [`AuditPipeline::audit_many`] against the snapshot's frozen
    /// corpus: chunked parse → batched embed → one `query_many` per
    /// chunk. This is what serve-loop reader threads run, so a whole
    /// drained request batch is scored in one shard walk.
    pub fn audit_many(&self, suspects: &[AuditSource]) -> (Vec<Option<AuditVerdict>>, BatchReport) {
        audit_many_impl(
            &self.detector,
            &self.index,
            &self.names,
            self.top_k,
            &self.query,
            self.threads,
            self.batch_size,
            suspects,
        )
    }
}

// --- scenario-diversity harness ----------------------------------------

/// One retrieval scenario for [`run_audit_scenarios`]: a corpus of
/// distinct designs, each audited through behaviour-preserving variants.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Abstraction level — RTL variants go through
    /// [`vary_design`], netlists through [`obfuscate_netlist`].
    pub level: Level,
    /// Distinct designs ingested (named cores first, synthetic fill after).
    pub n_designs: usize,
    /// Disguised variants audited per design.
    pub variants_per_design: usize,
    /// Size of synthetic fill designs (RTL level).
    pub size: SynthSize,
    /// Gate count of synthetic netlists (netlist level).
    pub netlist_gates: usize,
    /// Master seed for the variant transforms.
    pub seed: u64,
}

impl ScenarioSpec {
    /// An RTL scenario over `n_designs` small designs.
    pub fn rtl(n_designs: usize, variants_per_design: usize) -> Self {
        Self {
            level: Level::Rtl,
            n_designs,
            variants_per_design,
            size: SynthSize::Small,
            netlist_gates: 120,
            seed: 7,
        }
    }

    /// A netlist-obfuscation scenario over `n_designs` netlists.
    pub fn netlist(n_designs: usize, variants_per_design: usize) -> Self {
        Self {
            level: Level::Netlist,
            n_designs,
            variants_per_design,
            size: SynthSize::Small,
            netlist_gates: 120,
            seed: 7,
        }
    }
}

/// What one [`run_audit_scenarios`] run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario level.
    pub level: Level,
    /// Designs offered to ingest.
    pub designs: usize,
    /// Designs actually indexed.
    pub ingested: usize,
    /// Designs the parser rejected.
    pub rejected: usize,
    /// Disguised variants audited.
    pub variants_audited: usize,
    /// Fraction of variants whose *best* match is their source design.
    pub recall_at_1: f64,
    /// Fraction whose source design appears anywhere in the top-k.
    pub recall_at_k: f64,
    /// The k used for `recall_at_k` (the pipeline's `top_k`).
    pub k: usize,
    /// Mean best-match score over all audited variants.
    pub mean_top_score: f64,
    /// Wall-clock seconds spent ingesting.
    pub ingest_secs: f64,
    /// Wall-clock seconds spent auditing variants.
    pub audit_secs: f64,
}

/// Pushes a synthetic corpus and its disguised variants through an audit
/// pipeline and measures retrieval recall — the scenario-diversity
/// harness for the corpus-scale deployment story.
///
/// The corpus designs are ingested first (canonical sources); then each
/// design is disguised `variants_per_design` times with the level's
/// behaviour-preserving transform and audited, counting how often the
/// true source design is retrieved at rank 1 and within the top-k.
///
/// # Errors
///
/// Propagates variant-generation or audit parse failures (corpus parse
/// failures are tolerated and counted as `rejected`).
pub fn run_audit_scenarios(
    pipeline: &mut AuditPipeline,
    spec: &ScenarioSpec,
) -> Result<ScenarioReport, ParseVerilogError> {
    let designs = match spec.level {
        Level::Rtl => rtl_designs(spec.n_designs, spec.size),
        Level::Netlist => netlist_designs(spec.n_designs, spec.netlist_gates),
    };
    let base = pipeline.len();
    let t0 = Instant::now();
    let ingest = pipeline.ingest(designs.iter().map(|d| AuditSource {
        name: d.name.clone(),
        source: d.source.clone(),
        top: Some(d.top.clone()),
    }));
    let ingest_secs = t0.elapsed().as_secs_f64();
    // the parser may have rejected designs, so recall only counts the ones
    // that actually landed in the index this run
    let ingested_names: HashSet<String> = (base..pipeline.len())
        .map(|l| pipeline.name_of(l).to_string())
        .collect();

    let mut audited = 0usize;
    let mut hits_at_1 = 0usize;
    let mut hits_at_k = 0usize;
    let mut top_score_sum = 0.0f64;
    let t1 = Instant::now();
    for (di, design) in designs.iter().enumerate() {
        if !ingested_names.contains(&design.name) {
            continue; // the parser rejected this design at ingest
        }
        for v in 1..=spec.variants_per_design {
            let variant_seed = spec
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(di as u64 * 1009)
                .wrapping_add(v as u64);
            let disguised = match spec.level {
                Level::Rtl => {
                    vary_design(&design.source, variant_seed, &VariationConfig::default())?
                }
                Level::Netlist => {
                    obfuscate_netlist(&design.source, variant_seed, &ObfuscationConfig::default())?
                }
            };
            let verdict = pipeline.audit(&disguised, Some(&design.top))?;
            audited += 1;
            // match by *name*, not label: a corpus re-ingested into the
            // same pipeline holds the design under several labels, and
            // retrieving any copy of the right design is a hit
            if let Some(best) = verdict.best() {
                top_score_sum += best.score as f64;
                if best.name == design.name {
                    hits_at_1 += 1;
                }
            }
            if verdict.matches.iter().any(|m| m.name == design.name) {
                hits_at_k += 1;
            }
        }
    }
    let audit_secs = t1.elapsed().as_secs_f64();
    let frac = |num: usize| {
        if audited == 0 {
            0.0
        } else {
            num as f64 / audited as f64
        }
    };
    Ok(ScenarioReport {
        level: spec.level,
        designs: designs.len(),
        ingested: ingest.ingested,
        rejected: ingest.rejected.len(),
        variants_audited: audited,
        recall_at_1: frac(hits_at_1),
        recall_at_k: frac(hits_at_k),
        k: pipeline.config().top_k,
        mean_top_score: if audited == 0 {
            0.0
        } else {
            top_score_sum / audited as f64
        },
        ingest_secs,
        audit_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const INV: &str = "module inv(input a, output y); assign y = ~a; endmodule";
    const XOR2: &str = "module x2(input a, input b, output y); assign y = a ^ b; endmodule";
    const ADD: &str = "module add(input [3:0] a, input [3:0] b, output [3:0] s);
                         assign s = a + b;
                       endmodule";

    fn small_config() -> AuditConfig {
        AuditConfig {
            shard_capacity: 2,
            batch_size: 2,
            threads: 1,
            top_k: 3,
            ..AuditConfig::default()
        }
    }

    fn pipeline() -> AuditPipeline {
        let mut p = AuditPipeline::new(Gnn4Ip::with_seed(6), small_config());
        let report = p.ingest([
            AuditSource::new("inv", INV, None),
            AuditSource::new("xor2", XOR2, None),
            AuditSource::new("add", ADD, None),
        ]);
        assert_eq!(report.ingested, 3);
        assert!(report.rejected.is_empty());
        p
    }

    #[test]
    fn ingest_spans_batches_and_shards() {
        let p = pipeline();
        assert_eq!(p.len(), 3);
        // capacity 2 -> two shards for three designs
        assert_eq!(p.index().num_shards(), 2);
        assert_eq!(p.name_of(0), "inv");
        assert_eq!(p.name_of(2), "add");
    }

    #[test]
    fn audit_retrieves_the_exact_copy_first() {
        let p = pipeline();
        let verdict = p.audit(XOR2, None).expect("audits");
        let best = verdict.best().expect("non-empty index");
        assert_eq!(best.name, "xor2");
        assert!(best.score > 0.999);
        assert_eq!(verdict.matches.len(), 3);
        for w in verdict.matches.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn audit_matches_the_batched_check_scores() {
        // the pipeline's scores are the same cosine the detector's
        // check() produces — one ranking, one metric
        let p = pipeline();
        let verdict = p.audit(INV, None).expect("audits");
        let direct = p.detector().check(INV, ADD).expect("checks");
        let add_match = verdict
            .matches
            .iter()
            .find(|m| m.name == "add")
            .expect("add indexed");
        assert_eq!(add_match.score.to_bits(), direct.score.to_bits());
    }

    #[test]
    fn malformed_sources_are_skipped_not_fatal() {
        let mut p = AuditPipeline::new(Gnn4Ip::with_seed(6), small_config());
        let report = p.ingest([
            AuditSource::new("good", INV, None),
            AuditSource::new("broken", "module broken(", None),
            AuditSource::new("also_good", XOR2, None),
        ]);
        assert_eq!(report.ingested, 2);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].0, "broken");
        assert_eq!(p.len(), 2);
        // labels stay dense: the rejected design claims no label
        assert_eq!(p.name_of(0), "good");
        assert_eq!(p.name_of(1), "also_good");
    }

    #[test]
    fn empty_pipeline_audits_to_nothing() {
        let p = AuditPipeline::new(Gnn4Ip::with_seed(6), small_config());
        let verdict = p.audit(INV, None).expect("audits");
        assert!(verdict.matches.is_empty());
        assert!(verdict.best().is_none());
        assert!(!verdict.piracy);
    }

    #[test]
    fn zero_top_k_reports_no_matches() {
        // regression: top_k == 0 used to be rejected at construction; it
        // is a legal "index only, never report" configuration and must
        // yield empty verdicts rather than panicking in the query path
        let mut p = AuditPipeline::new(
            Gnn4Ip::with_seed(6),
            AuditConfig {
                top_k: 0,
                ..small_config()
            },
        );
        let report = p.ingest([AuditSource::new("inv", INV, None)]);
        assert_eq!(report.ingested, 1);
        let verdict = p.audit(INV, None).expect("audits");
        assert!(verdict.matches.is_empty());
        assert!(verdict.best().is_none());
        assert!(!verdict.piracy);
        // snapshots inherit the setting
        let snap = p.snapshot();
        assert!(snap.audit(INV, None).expect("audits").matches.is_empty());
    }

    #[test]
    fn mismatched_name_table_is_rejected_at_load() {
        // regression: an artifact whose index labels point past the name
        // table used to load fine and panic later, inside name_of, on the
        // first query that retrieved the bad label — now it is a
        // descriptive load-time error
        let mut p = AuditPipeline::new(Gnn4Ip::with_seed(6), small_config());
        let checksum = p.detector().model().weights_checksum();
        let dim = p.index().dim();
        let mut index = ShardedEmbeddingIndex::new(dim, 2);
        let row: Vec<f32> = (0..dim).map(|j| 1.0 - j as f32 * 0.01).collect();
        index.insert(&row, 7); // label 7, but only one name below
        let mut w = BinWriter::with_version(AUDIT_INDEX_KIND, 2);
        w.u64(checksum);
        w.len_of(1);
        w.str("only_name");
        w.bytes(&index.to_bytes(checksum));
        let err = p.load_index_bytes(&w.finish()).expect_err("must reject");
        assert!(
            matches!(err, AuditError::LabelOutOfRange { label: 7, names: 1 }),
            "{err:?}"
        );
        assert!(err.to_string().contains("label 7"), "{err}");
        assert!(p.is_empty(), "a rejected artifact must not half-load");
        // out-of-range lookups on a live pipeline answer None, not garbage
        assert!(p.try_name_of(7).is_none());
    }

    #[test]
    fn audit_many_matches_serial_audits_bit_for_bit() {
        // audit_many is the batched form of audit: same parse, same
        // embedding, one query_many instead of N gemv walks — and the
        // verdicts must not drift by a single bit. batch_size 2 over 5
        // suspects also exercises the chunk boundary.
        let p = pipeline();
        let suspects = vec![
            AuditSource::new("s_inv", INV, None),
            AuditSource::new("s_xor", XOR2, None),
            AuditSource::new("s_broken", "module broken(", None),
            AuditSource::new("s_add", ADD, None),
            AuditSource::new("s_inv2", INV, None),
        ];
        let (verdicts, report) = p.audit_many(&suspects);
        assert_eq!(verdicts.len(), 5);
        assert_eq!(report.audited, 4);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].0, "s_broken");
        assert!(verdicts[2].is_none(), "parse failure yields no verdict");
        for (i, suspect) in suspects.iter().enumerate() {
            if i == 2 {
                continue;
            }
            let serial = p.audit(&suspect.source, None).expect("parses");
            let batched = verdicts[i].as_ref().expect("audited");
            assert_eq!(batched, &serial, "suspect {i} drifted from serial audit");
            for (a, b) in batched.matches.iter().zip(&serial.matches) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        let flagged = verdicts
            .iter()
            .flatten()
            .filter(|verdict| verdict.piracy)
            .count();
        assert_eq!(report.flagged, flagged);
    }

    #[test]
    fn audit_many_on_empty_pipeline_and_empty_batch() {
        let p = AuditPipeline::new(Gnn4Ip::with_seed(6), small_config());
        let (verdicts, report) = p.audit_many(&[]);
        assert!(verdicts.is_empty());
        assert_eq!(report, BatchReport::default());
        let (verdicts, report) = p.audit_many(&[AuditSource::new("s", INV, None)]);
        assert_eq!(verdicts.len(), 1);
        let verdict = verdicts[0].as_ref().expect("audited");
        assert!(verdict.matches.is_empty());
        assert!(!verdict.piracy);
        assert_eq!((report.audited, report.flagged), (1, 0));
    }

    #[test]
    fn snapshot_audit_many_matches_pipeline() {
        let p = pipeline();
        let snap = p.snapshot();
        let suspects = vec![
            AuditSource::new("a", XOR2, None),
            AuditSource::new("b", ADD, None),
        ];
        let (from_pipeline, _) = p.audit_many(&suspects);
        let (from_snapshot, report) = snap.audit_many(&suspects);
        assert_eq!(from_pipeline, from_snapshot);
        assert_eq!(report.audited, 2);
    }

    #[test]
    fn snapshot_publishes_through_the_slot() {
        // the deduplicated publication path: snapshot() is not a side
        // channel around the slot — every captured snapshot is also the
        // slot's current publication
        let p = pipeline();
        let slot = p.serving_slot();
        assert!(slot.load().is_none(), "nothing published yet");
        let snap = p.snapshot();
        let published = slot.load().expect("snapshot() must publish");
        assert_eq!(published.epoch(), 1);
        assert_eq!(published.len(), snap.len());
        // and the epoch counter is shared with publish()
        assert_eq!(p.publish(), 2);
    }

    #[test]
    fn snapshots_are_frozen_and_share_sealed_state() {
        let mut p = pipeline(); // 3 designs, capacity 2
        let snap = p.snapshot();
        let before = snap.audit(XOR2, None).expect("audits");
        p.ingest([AuditSource::new("late", ADD, None)]);
        assert_eq!(p.len(), 4);
        assert_eq!(snap.len(), 3, "snapshot must not see later ingests");
        let after = snap.audit(XOR2, None).expect("audits");
        assert_eq!(before, after, "snapshot verdicts must be stable");
        // and a fresh snapshot sees the new design
        assert_eq!(p.snapshot().len(), 4);
    }

    /// The serving smoke test: N reader threads audit from snapshots
    /// published through the pipeline's [`PublicationSlot`] while one
    /// writer ingests, and every verdict every reader ever sees is
    /// internally consistent — scores sorted, labels resolvable against
    /// that snapshot's own name table, match counts bounded — and stable
    /// on re-audit (no torn tail is observable, because a snapshot has no
    /// shared mutable state at all). Readers track the epoch they serve
    /// and pick up newer snapshots via `load_if_newer`, asserting the
    /// epoch never goes backwards and the corpus they serve never
    /// shrinks — the live-system face of the invariants the loom-lite
    /// checker proves over every bounded interleaving.
    #[test]
    fn concurrent_readers_audit_while_writer_ingests() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let config = AuditConfig {
            shard_capacity: 4,
            batch_size: 3,
            threads: 1,
            top_k: 3,
            ..AuditConfig::default()
        };
        let mut p = AuditPipeline::new(Gnn4Ip::with_seed(6), config);
        p.ingest([
            AuditSource::new("inv", INV, None),
            AuditSource::new("xor2", XOR2, None),
        ]);
        let probe = p.detector().hw2vec(XOR2, None).expect("probe embeds");
        assert_eq!(p.publish(), 1, "first publication is epoch 1");
        let slot = p.serving_slot();
        let done = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _reader in 0..4 {
                let slot = Arc::clone(&slot);
                let (done, probe) = (&done, &probe);
                scope.spawn(move || {
                    let first = slot.load().expect("seeded publication");
                    let mut epoch = first.epoch();
                    let mut snap = Arc::clone(first.value());
                    let mut served = snap.len();
                    let mut audits = 0usize;
                    // keep reading until the writer finishes, with a floor
                    // so every reader overlaps real ingest work
                    while !done.load(Ordering::Relaxed) || audits < 40 {
                        // the common path: one atomic load when nothing new
                        if let Some(p) = slot.load_if_newer(epoch) {
                            assert!(p.epoch() > epoch, "epoch must be monotone");
                            epoch = p.epoch();
                            snap = Arc::clone(p.value());
                            assert!(snap.len() >= served, "served corpus shrank");
                            served = snap.len();
                        }
                        let verdict = snap.audit_embedding(probe);
                        assert!(!verdict.matches.is_empty(), "seeded index");
                        assert!(verdict.matches.len() <= 3);
                        assert!(verdict.matches.len() <= snap.len());
                        for w in verdict.matches.windows(2) {
                            assert!(
                                w[0].score >= w[1].score,
                                "scores must be sorted: {} < {}",
                                w[0].score,
                                w[1].score
                            );
                        }
                        for m in &verdict.matches {
                            assert!(m.label < snap.len(), "label beyond snapshot");
                            assert_eq!(
                                snap.try_name_of(m.label).expect("label resolvable"),
                                m.name
                            );
                            assert!(m.score.is_finite());
                        }
                        // immutability: the same snapshot must answer the
                        // same question identically, forever
                        assert_eq!(snap.audit_embedding(probe), verdict);
                        audits += 1;
                    }
                });
            }
            // the writer: ingest batches and publish a fresh snapshot
            // after each, crossing several shard-seal boundaries
            for wave in 0..8u64 {
                let batch: Vec<AuditSource> = (0..3)
                    .map(|i| {
                        let name = format!("gen_{wave}_{i}");
                        let ops = ["&", "|", "^"];
                        let src = format!(
                            "module m{wave}_{i}(input a, input b, output y); \
                             assign y = a {} b; endmodule",
                            ops[(wave as usize + i) % 3]
                        );
                        AuditSource::new(name, src, None)
                    })
                    .collect();
                let report = p.ingest(batch);
                assert_eq!(report.ingested, 3);
                assert_eq!(p.publish(), 2 + wave, "one epoch per publication");
            }
            done.store(true, Ordering::Relaxed);
        });

        assert_eq!(p.len(), 2 + 8 * 3);
        // the final published snapshot serves the full corpus
        let last = slot.load().expect("published");
        assert_eq!(last.epoch(), 9);
        assert_eq!(last.len(), p.len());
        let v = last.audit_embedding(&probe);
        assert_eq!(v.best().expect("hit").name, "xor2");
    }

    #[test]
    fn index_artifact_roundtrips_bit_exactly() {
        let p = pipeline();
        let bytes = p.index_bytes();
        let mut fresh = AuditPipeline::new(
            Gnn4Ip::from_bytes(&p.detector().to_bytes()).expect("loads"),
            small_config(),
        );
        assert_eq!(fresh.load_index_bytes(&bytes).expect("loads"), 3);
        assert_eq!(fresh.len(), 3);
        assert_eq!(fresh.index_bytes(), bytes, "save→load→save drifted");
        let (a, b) = (
            p.audit(XOR2, None).expect("a"),
            fresh.audit(XOR2, None).expect("b"),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn index_from_other_weights_is_rejected() {
        let p = pipeline();
        let mut other = AuditPipeline::new(Gnn4Ip::with_seed(99), small_config());
        let err = other
            .load_index_bytes(&p.index_bytes())
            .expect_err("must reject");
        assert!(matches!(err, AuditError::WeightsMismatch { .. }), "{err:?}");
        assert!(err.to_string().contains("weights"), "{err}");
    }

    #[test]
    fn index_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("gnn4ip-audit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = pipeline();
        let path = dir.join("audit-index.bin");
        p.save_index(&path).expect("saves");
        let mut fresh = AuditPipeline::new(
            Gnn4Ip::from_bytes(&p.detector().to_bytes()).expect("loads"),
            small_config(),
        );
        assert_eq!(fresh.load_index(&path).expect("loads"), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recluster_preserves_verdicts_and_republishes() {
        let config = AuditConfig {
            shard_capacity: 2,
            batch_size: 4,
            threads: 1,
            top_k: 3,
            ..AuditConfig::default()
        };
        let mut p = AuditPipeline::new(Gnn4Ip::with_seed(6), config.clone());
        let batch: Vec<AuditSource> = (0..12)
            .map(|i| {
                let ops = ["&", "|", "^"];
                AuditSource::new(
                    format!("gen{i}"),
                    format!(
                        "module g{i}(input a, input b, output y); \
                         assign y = a {} b; endmodule",
                        ops[i % 3]
                    ),
                    None,
                )
            })
            .collect();
        assert_eq!(p.ingest(batch.clone()).ingested, 12);
        let probe = p.detector().hw2vec(XOR2, None).expect("probe embeds");
        let before = p.audit_embedding(&probe);
        assert_eq!(p.publish(), 1);
        let (report, epoch) = p.recluster(&RebalanceOptions::default());
        assert_eq!(epoch, 2, "recluster must republish");
        assert_eq!(report.centroids, p.index().num_sealed_shards());
        assert_eq!(report.sealed_rows, 12);
        // f32 storage: every verdict field survives bit-identically —
        // rebalance moves storage positions, never labels or scores
        let key = |v: &AuditVerdict| -> Vec<(String, usize, u32, bool)> {
            v.matches
                .iter()
                .map(|m| (m.name.clone(), m.label, m.score.to_bits(), m.piracy))
                .collect()
        };
        let after = p.audit_embedding(&probe);
        assert_eq!(key(&before), key(&after));
        assert_eq!(before.piracy, after.piracy);
        // readers polling the slot see the re-clustered corpus
        let slot = p.serving_slot();
        let published = slot.load().expect("published");
        assert_eq!(published.epoch(), 2);
        assert_eq!(key(&published.value().audit_embedding(&probe)), key(&after));
        // an int8 pipeline over the same corpus retrieves the same best
        // match (scores may differ within the quantization step)
        let mut q = AuditPipeline::new(
            Gnn4Ip::with_seed(6),
            AuditConfig {
                storage: ShardStorage::Int8,
                ..config
            },
        );
        assert_eq!(q.ingest(batch).ingested, 12);
        q.recluster(&RebalanceOptions::default());
        let quant = q.audit_embedding(&probe);
        assert_eq!(quant.best().map(|m| &m.name), after.best().map(|m| &m.name));
    }

    #[test]
    fn scenario_harness_reports_recall() {
        let mut p = AuditPipeline::new(
            Gnn4Ip::with_seed(6),
            AuditConfig {
                shard_capacity: 4,
                ..AuditConfig::default()
            },
        );
        let report = run_audit_scenarios(&mut p, &ScenarioSpec::rtl(6, 2)).expect("harness runs");
        assert_eq!(report.designs, 6);
        assert_eq!(report.ingested, 6);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.variants_audited, 12);
        assert!((0.0..=1.0).contains(&report.recall_at_1));
        assert!(report.recall_at_k >= report.recall_at_1);
        // even an untrained detector retrieves a lightly-varied source
        // design well above chance (1/6)
        assert!(report.recall_at_k > 0.5, "recall@k {}", report.recall_at_k);
    }

    #[test]
    fn rerunning_a_scenario_on_the_same_pipeline_keeps_recall() {
        // regression: recall used to be counted by label, so a re-ingested
        // corpus (same designs, new labels) made every rank-1 hit on the
        // *older* copy look like a miss
        let mut p = AuditPipeline::new(Gnn4Ip::with_seed(6), AuditConfig::default());
        let spec = ScenarioSpec::rtl(5, 1);
        let first = run_audit_scenarios(&mut p, &spec).expect("first run");
        let second = run_audit_scenarios(&mut p, &spec).expect("second run");
        assert_eq!(p.len(), 10, "both ingests landed");
        assert!(
            second.recall_at_1 >= first.recall_at_1,
            "duplicate copies must not depress recall: {} -> {}",
            first.recall_at_1,
            second.recall_at_1
        );
    }

    #[test]
    fn netlist_scenario_runs() {
        let mut p = AuditPipeline::new(Gnn4Ip::with_seed(6), AuditConfig::default());
        let report =
            run_audit_scenarios(&mut p, &ScenarioSpec::netlist(3, 1)).expect("harness runs");
        assert_eq!(report.level, Level::Netlist);
        assert_eq!(report.variants_audited, 3);
    }
}
