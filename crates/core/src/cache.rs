//! Content-addressed embedding cache.
//!
//! GNN4IP's deployment shape (paper Table I) is many piracy checks against
//! a library of owned IPs: the same designs recur across calls. Embedding a
//! design — parse, flatten, DFG extraction, GNN forward pass — costs
//! milliseconds; a fingerprint lookup costs microseconds. The cache maps
//! the stable content fingerprint of a design
//! ([`gnn4ip_hdl::design_fingerprint`]) to its hw2vec embedding, so every
//! distinct design is embedded exactly once per detector.

use std::collections::HashMap;

use gnn4ip_hdl::Fingerprint;

/// Hit/miss counters of an [`EmbeddingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a fresh embedding.
    pub misses: u64,
    /// Distinct designs currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fingerprint-keyed store of hw2vec embeddings with hit/miss accounting.
///
/// # Examples
///
/// ```
/// use gnn4ip_core::EmbeddingCache;
/// use gnn4ip_hdl::design_fingerprint;
///
/// let mut cache = EmbeddingCache::new();
/// let fp = design_fingerprint("module inv(input a, output y); assign y = ~a; endmodule", None)?;
/// assert!(cache.get(fp).is_none());
/// cache.insert(fp, vec![1.0, 0.0]);
/// assert_eq!(cache.get(fp), Some(vec![1.0, 0.0]));
/// assert_eq!(cache.stats().hits, 1);
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EmbeddingCache {
    map: HashMap<Fingerprint, Vec<f32>>,
    /// Raw-text memo: hash of the *unpreprocessed* `(source, top)` → its
    /// content fingerprint. Byte-identical resubmissions skip even the
    /// preprocess + lex step of fingerprinting.
    raw: HashMap<u64, Fingerprint>,
    hits: u64,
    misses: u64,
}

impl EmbeddingCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an embedding, recording a hit or miss.
    pub fn get(&mut self, fp: Fingerprint) -> Option<Vec<f32>> {
        match self.map.get(&fp) {
            Some(e) => {
                self.hits += 1;
                Some(e.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up an embedding without touching the hit/miss counters.
    pub fn peek(&self, fp: Fingerprint) -> Option<&Vec<f32>> {
        self.map.get(&fp)
    }

    /// Stores an embedding for a fingerprint (overwrites a prior entry).
    pub fn insert(&mut self, fp: Fingerprint, embedding: Vec<f32>) {
        self.map.insert(fp, embedding);
    }

    /// Looks up the memoized fingerprint of a raw `(source, top)` hash.
    pub fn fingerprint_for_raw(&self, raw_key: u64) -> Option<Fingerprint> {
        self.raw.get(&raw_key).copied()
    }

    /// Memoizes the fingerprint of a raw `(source, top)` hash.
    pub fn remember_raw(&mut self, raw_key: u64, fp: Fingerprint) {
        self.raw.insert(raw_key, fp);
    }

    /// Iterates `(fingerprint, embedding)` entries in arbitrary order —
    /// the persistence path sorts by fingerprint before writing so the
    /// library artifact is deterministic.
    pub fn embeddings(&self) -> impl Iterator<Item = (Fingerprint, &[f32])> {
        self.map.iter().map(|(fp, e)| (*fp, e.as_slice()))
    }

    /// Number of cached designs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
        }
    }

    /// Drops all entries (embeddings and raw memos) and resets the counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.raw.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_hdl::design_fingerprint;

    fn fp(src: &str) -> Fingerprint {
        design_fingerprint(src, None).expect("fingerprint")
    }

    #[test]
    fn miss_then_hit() {
        let mut c = EmbeddingCache::new();
        let k = fp("module a(output y); assign y = 0; endmodule");
        assert!(c.get(k).is_none());
        c.insert(k, vec![0.5]);
        assert_eq!(c.get(k), Some(vec![0.5]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = EmbeddingCache::new();
        let k = fp("module b(output y); assign y = 1; endmodule");
        c.insert(k, vec![1.0]);
        assert!(c.peek(k).is_some());
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = EmbeddingCache::new();
        let k = fp("module c(output y); assign y = 0; endmodule");
        c.insert(k, vec![2.0]);
        let _ = c.get(k);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        assert_eq!(EmbeddingCache::new().stats().hit_rate(), 0.0);
    }
}
