//! The `gnn4ip serve` request loop: a line protocol over any
//! `BufRead`/`Write` pair (stdin/stdout, a Unix socket, or an in-memory
//! pipe in tests), with a bounded request queue for backpressure and a
//! pool of reader threads scoring batches against published
//! [`AuditSnapshot`](crate::audit::AuditSnapshot)s while the caller's thread — the only writer —
//! ingests.
//!
//! # Protocol
//!
//! One command per line; commands that carry a Verilog body read
//! subsequent lines until a line holding a single `.` (a source line
//! that itself starts with `.` is escaped by doubling the dot, SMTP
//! style). Every command produces exactly one response line, **in
//! request order** even though audits complete out of order:
//!
//! ```text
//! AUDIT <name>          → VERDICT <name> matches=<n> piracy=<0|1> best=<name>:<score>|-
//!   <verilog lines>         (parse failure: ERR audit <name>: <message>)
//! .
//! INGEST <name>         → OK ingested=<corpus size> rejected=<n>
//!   <verilog lines>
//! .
//! STATS                 → STATS requests=… audits=… flagged=… ingested=… epoch=…
//!                               queue_high_water=… p50_us=… p99_us=…
//! PUBLISH               → OK epoch=<epoch>
//! SHUTDOWN              → OK bye          (EOF acts as SHUTDOWN without the response)
//! <anything else>       → ERR unknown command: <line>
//! ```
//!
//! # Architecture and backpressure
//!
//! ```text
//! input ──► parser/writer thread ──► BoundedQueue ──► N audit workers
//!             (INGEST/PUBLISH/          (capacity-      (drain ≤ max_batch,
//!              STATS/SHUTDOWN            bounded          score one batch per
//!              handled inline)           push blocks)     snapshot query_many)
//!                    │                                         │
//!                    └────────── response tickets ─────────────┘
//!                                (responder thread writes in request order)
//! ```
//!
//! The queue is the backpressure valve: when audit workers fall behind,
//! [`BoundedQueue::push`] blocks the parser, which stops consuming
//! input, which stalls the client — requests are never dropped and
//! memory never grows past `queue_capacity` in-flight audits. Workers
//! drain up to [`ServiceConfig::max_batch`] requests at once and score
//! them with a single [`AuditSnapshot::audit_many`](crate::audit::AuditSnapshot::audit_many) call, so a saturated
//! service gets the batched shard walk, not per-request gemv. Workers
//! audit against whatever snapshot the pipeline's
//! [`PublicationSlot`](crate::PublicationSlot) currently serves
//! (`load_if_newer`: one atomic read when nothing changed); `INGEST`
//! mutates only the writer's private state until an explicit `PUBLISH`
//! makes it visible, atomically, to every worker.
//!
//! The bounded queue's writer/reader handoff — no lost wakeup, no
//! deadlock, never over capacity — is exhaustively model-checked in
//! `gnn4ip_analysis::models` (`verify_bounded_queue`), the same
//! loom-lite treatment the publication slot gets.

use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::audit::{AuditPipeline, AuditSource};

// --- bounded queue ------------------------------------------------------

/// State behind the queue mutex: the items plus the closed flag and the
/// occupancy high-water mark, always updated together.
#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A blocking MPMC queue with a hard capacity — the backpressure
/// primitive of the serve loop. `push` blocks while the queue is full
/// (that is the point: a slow consumer stalls the producer instead of
/// growing a buffer), `pop` blocks while it is empty, and
/// [`close`](BoundedQueue::close) drains: pending items are still
/// popped, then every consumer gets `None`.
///
/// Built from `Mutex` + two `Condvar`s only; the wait/notify discipline
/// (hold the lock across the predicate check, re-check in a loop after
/// every wake, `notify_all` on close) is modeled step-by-step and
/// exhaustively interleaved in `gnn4ip-analysis` — see
/// `verify_bounded_queue`.
///
/// # Examples
///
/// ```
/// use gnn4ip_core::BoundedQueue;
///
/// let q = BoundedQueue::new(2);
/// q.push(1).unwrap();
/// q.push(2).unwrap();
/// assert_eq!(q.len(), 2);
/// q.close();
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None); // closed and drained
/// ```
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueState<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity queue can never
    /// accept an item: every push would deadlock by construction).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            inner: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                high_water: 0,
            }),
            capacity,
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocks until there is room, then enqueues `item`.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue was closed (before or while
    /// waiting) — a closed queue accepts nothing new.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                break;
            }
            state = self.wait(&self.not_full, state);
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (or the queue is closed and
    /// drained) and dequeues it. `None` means no item will ever arrive
    /// again — the consumer's termination signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.wait(&self.not_empty, state);
        }
    }

    /// Dequeues an item if one is ready, without blocking. `None` means
    /// "empty right now", not "closed" — use [`pop`](BoundedQueue::pop)
    /// for the termination signal.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.lock();
        let item = state.items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: pending items remain poppable, new pushes fail,
    /// and every blocked producer and consumer is woken (`notify_all` —
    /// waking only one would strand the rest forever; the seeded bug in
    /// the analysis model proves the checker catches exactly that).
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
        drop(state);
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether nothing is currently queued.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// The capacity `push` blocks at.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The deepest occupancy ever reached — how close the service came
    /// to exerting backpressure.
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Queue state is a `VecDeque` plus two flags — no invariant can be
    /// left half-written by a panicking holder, so poisoning is always
    /// recoverable (same policy as `PublicationSlot`).
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(
        &self,
        cv: &Condvar,
        guard: std::sync::MutexGuard<'a, QueueState<T>>,
    ) -> std::sync::MutexGuard<'a, QueueState<T>> {
        cv.wait(guard).unwrap_or_else(|e| e.into_inner())
    }
}

// --- service configuration and stats ------------------------------------

/// Tuning knobs of [`run_service`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Audit worker (reader) threads.
    pub workers: usize,
    /// Capacity of the bounded request queue — the number of in-flight
    /// audits at which the parser stops consuming input (backpressure).
    pub queue_capacity: usize,
    /// Most audit requests one worker drains into a single
    /// [`AuditSnapshot::audit_many`](crate::audit::AuditSnapshot::audit_many) batch.
    pub max_batch: usize,
    /// Most bytes one AUDIT/INGEST body may hold. A dot-stuffed body
    /// arrives before the handler sees any of it, so without this cap a
    /// hostile client grows the parser's buffer without bound; an
    /// oversized body is drained (to keep the protocol in sync) and
    /// answered with a typed `ERR`.
    pub max_body_bytes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            max_batch: 32,
            max_body_bytes: 1 << 20,
        }
    }
}

/// Live counters shared between the parser, the workers, and `STATS`.
#[derive(Debug, Default)]
struct LiveStats {
    requests: AtomicU64,
    audits: AtomicU64,
    flagged: AtomicU64,
    ingested: AtomicU64,
    rejected: AtomicU64,
    publishes: AtomicU64,
    /// Per-request latency samples in microseconds (enqueue → response
    /// ready), pushed by workers, summarized by `STATS` and the final
    /// report.
    latencies_us: Mutex<Vec<u64>>,
}

impl LiveStats {
    fn latency(&self) -> LatencySummary {
        let lats = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner());
        LatencySummary::from_samples(&lats)
    }
}

/// Order statistics over the service's per-request audit latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: usize,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst latency, microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Nearest-rank percentiles of `samples` (order irrelevant; empty →
    /// all zeros).
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |p: f64| {
            let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        Self {
            count: sorted.len(),
            p50_us: rank(50.0),
            p99_us: rank(99.0),
            // g4check: allow(unwrap-in-lib): the empty case returned Default above
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

/// What one [`run_service`] session did, returned after `SHUTDOWN`/EOF.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceReport {
    /// Protocol commands processed (including the failing ones).
    pub requests: u64,
    /// Audit requests scored.
    pub audits: u64,
    /// Audits whose verdict flagged piracy.
    pub flagged: u64,
    /// Designs ingested into the corpus.
    pub ingested: u64,
    /// Audit or ingest sources rejected by the parser.
    pub rejected: u64,
    /// Snapshot publications (`PUBLISH` commands).
    pub publishes: u64,
    /// Deepest request-queue occupancy reached.
    pub queue_high_water: usize,
    /// Per-audit latency order statistics.
    pub latency: LatencySummary,
}

/// One queued audit request: the suspect plus its enqueue timestamp and
/// the one-shot channel its response line goes back through.
struct AuditJob {
    suspect: AuditSource,
    enqueued: Instant,
    reply: mpsc::Sender<String>,
}

// --- the request loop ---------------------------------------------------

/// Replaces newlines so any error message fits a single protocol line.
fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// Why [`read_body`] returned no body.
#[derive(Debug, PartialEq, Eq)]
enum BodyError {
    /// EOF (or an input error) before the `.` terminator: the session
    /// is over, there is nothing left to parse.
    Eof,
    /// The body outgrew [`ServiceConfig::max_body_bytes`]. The rest of
    /// the body was drained through the terminator, so the protocol
    /// stream is still in sync and the session continues.
    TooLarge,
}

/// Drains lines through the `.` terminator without storing them.
fn drain_to_dot(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
) -> Result<(), BodyError> {
    for line in lines {
        match line.as_deref() {
            Ok(".") => return Ok(()),
            Ok(_) => {}
            Err(_) => return Err(BodyError::Eof),
        }
    }
    Err(BodyError::Eof)
}

/// Reads a dot-terminated body (SMTP-style: a lone `.` ends the body, a
/// leading `..` unescapes to `.`), holding at most `max_body_bytes`.
fn read_body(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
    max_body_bytes: usize,
) -> Result<String, BodyError> {
    let mut body = String::new();
    while let Some(line) = lines.next() {
        let Ok(line) = line else {
            return Err(BodyError::Eof);
        };
        if line == "." {
            return Ok(body);
        }
        let projected = body.len() + line.len() + 1;
        if projected > max_body_bytes {
            drain_to_dot(lines)?;
            return Err(BodyError::TooLarge);
        }
        let unescaped = line.strip_prefix('.').filter(|_| line.starts_with(".."));
        body.push_str(unescaped.map_or(line.as_str(), |rest| rest));
        body.push('\n');
    }
    Err(BodyError::Eof)
}

/// Formats the one-line response for a scored audit.
fn verdict_line(name: &str, verdict: &crate::audit::AuditVerdict) -> String {
    let best = verdict
        .best()
        .map(|m| format!("{}:{:+.4}", m.name, m.score))
        .unwrap_or_else(|| "-".to_string());
    format!(
        "VERDICT {name} matches={} piracy={} best={best}",
        verdict.matches.len(),
        u8::from(verdict.piracy)
    )
}

/// Runs the audit service until `SHUTDOWN` or EOF: the calling thread
/// parses requests and ingests (the single writer),
/// [`ServiceConfig::workers`] reader threads score queued audits in
/// batches against published snapshots, and a responder thread writes
/// one response line per request in request order.
///
/// Generic over the transport so the same loop serves stdin/stdout, an
/// accepted Unix-socket stream, or an in-memory pipe in tests.
///
/// # Errors
///
/// Returns the first I/O error on `output`; input errors terminate the
/// session like EOF (the transport died — there is no one to answer).
pub fn run_service<R: BufRead, W: Write + Send>(
    pipeline: &mut AuditPipeline,
    config: &ServiceConfig,
    input: R,
    mut output: W,
) -> std::io::Result<ServiceReport> {
    let workers = config.workers.max(1);
    let max_batch = config.max_batch.max(1);
    let queue: Arc<BoundedQueue<AuditJob>> = Arc::new(BoundedQueue::new(config.queue_capacity));
    let stats = Arc::new(LiveStats::default());
    let slot = pipeline.serving_slot();
    // workers must always have a snapshot to serve, even before the
    // first PUBLISH — an empty corpus answers with empty verdicts
    if slot.load().is_none() {
        let _ = pipeline.publish();
    }
    let (ticket_tx, ticket_rx) = mpsc::channel::<mpsc::Receiver<String>>();

    let mut io_result: std::io::Result<()> = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let slot = Arc::clone(&slot);
            scope.spawn(move || {
                // g4check: allow(unwrap-in-lib): run_service publishes before spawning workers
                let mut current = slot.load().expect("service publishes before spawning");
                while let Some(first) = queue.pop() {
                    // drain whatever else is already queued — up to the
                    // batch cap — so a saturated service amortizes one
                    // snapshot lookup and one query_many over the batch
                    let mut jobs = vec![first];
                    jobs.extend(std::iter::from_fn(|| queue.try_pop()).take(max_batch - 1));
                    if let Some(newer) = slot.load_if_newer(current.epoch()) {
                        current = newer;
                    }
                    let suspects: Vec<AuditSource> =
                        jobs.iter().map(|j| j.suspect.clone()).collect();
                    let (verdicts, report) = current.audit_many(&suspects);
                    stats
                        .audits
                        .fetch_add(report.audited as u64, Ordering::Relaxed);
                    stats
                        .flagged
                        .fetch_add(report.flagged as u64, Ordering::Relaxed);
                    stats
                        .rejected
                        .fetch_add(report.rejected.len() as u64, Ordering::Relaxed);
                    let mut parse_errors = report.rejected.into_iter();
                    let mut samples = Vec::with_capacity(jobs.len());
                    for (job, verdict) in jobs.into_iter().zip(verdicts) {
                        let line = match verdict {
                            Some(v) => verdict_line(&job.suspect.name, &v),
                            None => {
                                let (name, err) = parse_errors
                                    .next()
                                    .unwrap_or_else(|| (job.suspect.name.clone(), String::new()));
                                format!("ERR audit {name}: {}", one_line(&err))
                            }
                        };
                        samples.push(job.enqueued.elapsed().as_micros() as u64);
                        // a dropped receiver (responder gone) just means
                        // nobody is listening anymore; keep draining
                        let _ = job.reply.send(line);
                    }
                    let mut lats = stats.latencies_us.lock().unwrap_or_else(|e| e.into_inner());
                    lats.extend(samples);
                }
            });
        }

        let responder = scope.spawn(move || -> std::io::Result<()> {
            // tickets arrive in request order; recv on each serializes
            // the out-of-order audit completions back into protocol order
            while let Ok(ticket) = ticket_rx.recv() {
                if let Ok(line) = ticket.recv() {
                    writeln!(output, "{line}")?;
                    output.flush()?;
                }
            }
            Ok(())
        });

        let mut lines = input.lines();
        while let Some(Ok(line)) = lines.next() {
            let line = line.trim_end().to_string();
            if line.is_empty() {
                continue;
            }
            stats.requests.fetch_add(1, Ordering::Relaxed);
            let (reply_tx, reply_rx) = mpsc::channel::<String>();
            if ticket_tx.send(reply_rx).is_err() {
                break; // responder died (output closed)
            }
            let (cmd, arg) = match line.split_once(' ') {
                Some((c, a)) => (c, a.trim().to_string()),
                None => (line.as_str(), String::new()),
            };
            match cmd {
                "AUDIT" if !arg.is_empty() => {
                    let body = match read_body(&mut lines, config.max_body_bytes) {
                        Ok(body) => body,
                        Err(BodyError::TooLarge) => {
                            stats.rejected.fetch_add(1, Ordering::Relaxed);
                            let _ = reply_tx.send(format!(
                                "ERR audit {arg}: body exceeds max_body_bytes={}",
                                config.max_body_bytes
                            ));
                            continue;
                        }
                        Err(BodyError::Eof) => {
                            let _ = reply_tx.send(format!(
                                "ERR audit {arg}: EOF before the '.' body terminator"
                            ));
                            break;
                        }
                    };
                    let job = AuditJob {
                        suspect: AuditSource::new(arg, body, None),
                        enqueued: Instant::now(),
                        reply: reply_tx,
                    };
                    // blocks when the queue is full: backpressure — the
                    // parser stops reading input until workers catch up
                    if queue.push(job).is_err() {
                        break; // closed queue: shutting down
                    }
                }
                "INGEST" if !arg.is_empty() => {
                    let body = match read_body(&mut lines, config.max_body_bytes) {
                        Ok(body) => body,
                        Err(BodyError::TooLarge) => {
                            stats.rejected.fetch_add(1, Ordering::Relaxed);
                            let _ = reply_tx.send(format!(
                                "ERR ingest {arg}: body exceeds max_body_bytes={}",
                                config.max_body_bytes
                            ));
                            continue;
                        }
                        Err(BodyError::Eof) => {
                            let _ = reply_tx.send(format!(
                                "ERR ingest {arg}: EOF before the '.' body terminator"
                            ));
                            break;
                        }
                    };
                    let report = pipeline.ingest([AuditSource::new(arg.clone(), body, None)]);
                    stats
                        .ingested
                        .fetch_add(report.ingested as u64, Ordering::Relaxed);
                    stats
                        .rejected
                        .fetch_add(report.rejected.len() as u64, Ordering::Relaxed);
                    let _ = reply_tx.send(match report.rejected.first() {
                        Some((name, err)) => format!("ERR ingest {name}: {}", one_line(err)),
                        None => format!(
                            "OK ingested={} rejected={}",
                            pipeline.len(),
                            report.rejected.len()
                        ),
                    });
                }
                "STATS" => {
                    let lat = stats.latency();
                    let _ = reply_tx.send(format!(
                        "STATS requests={} audits={} flagged={} ingested={} epoch={} \
                         queue_high_water={} p50_us={} p99_us={}",
                        stats.requests.load(Ordering::Relaxed),
                        stats.audits.load(Ordering::Relaxed),
                        stats.flagged.load(Ordering::Relaxed),
                        stats.ingested.load(Ordering::Relaxed),
                        slot.epoch(),
                        queue.high_water(),
                        lat.p50_us,
                        lat.p99_us,
                    ));
                }
                "PUBLISH" => {
                    let epoch = pipeline.publish();
                    stats.publishes.fetch_add(1, Ordering::Relaxed);
                    let _ = reply_tx.send(format!("OK epoch={epoch}"));
                }
                "SHUTDOWN" => {
                    let _ = reply_tx.send("OK bye".to_string());
                    break;
                }
                _ => {
                    let _ = reply_tx.send(format!("ERR unknown command: {}", one_line(&line)));
                }
            }
        }
        // EOF or SHUTDOWN: wake every worker; queued audits still drain
        queue.close();
        drop(ticket_tx); // responder exits once the last ticket resolves
        io_result = responder.join().unwrap_or(Ok(()));
    });

    let report = ServiceReport {
        requests: stats.requests.load(Ordering::Relaxed),
        audits: stats.audits.load(Ordering::Relaxed),
        flagged: stats.flagged.load(Ordering::Relaxed),
        ingested: stats.ingested.load(Ordering::Relaxed),
        rejected: stats.rejected.load(Ordering::Relaxed),
        publishes: stats.publishes.load(Ordering::Relaxed),
        queue_high_water: queue.high_water(),
        latency: stats.latency(),
    };
    io_result.map(|()| report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Gnn4Ip;
    use crate::audit::AuditConfig;

    const INV: &str = "module inv(input a, output y); assign y = ~a; endmodule";
    const XOR2: &str = "module x2(input a, input b, output y); assign y = a ^ b; endmodule";

    fn service_pipeline() -> AuditPipeline {
        AuditPipeline::new(
            Gnn4Ip::with_seed(6),
            AuditConfig {
                shard_capacity: 2,
                batch_size: 2,
                threads: 1,
                top_k: 3,
                ..AuditConfig::default()
            },
        )
    }

    #[test]
    fn queue_blocks_full_producers_and_drains_on_close() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(1u32).expect("room");
        q.push(2).expect("room");
        assert_eq!(q.len(), 2);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(3))
        };
        // the producer must be blocked, not failed; popping frees a slot
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!producer.is_finished(), "push past capacity must block");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(producer.join().expect("joins"), Ok(()));
        q.close();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None, "closed and drained");
        assert_eq!(q.push(4), Err(4), "closed queue accepts nothing");
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn try_pop_never_blocks() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        assert_eq!(q.try_pop(), None);
        q.push(9).expect("room");
        assert_eq!(q.try_pop(), Some(9));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn latency_summary_order_statistics() {
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
        let s = LatencySummary::from_samples(&[5, 1, 9, 3, 7]);
        assert_eq!((s.count, s.p50_us, s.max_us), (5, 5, 9));
        let many: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_samples(&many);
        assert_eq!(s.p50_us, 51); // nearest rank over 0..=99 indices
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }

    /// The serve-loop smoke test the issue calls for: drive the full
    /// line protocol through an in-memory pipe and check every response
    /// arrives, in order, with the right shape.
    #[test]
    fn serve_loop_speaks_the_protocol_over_a_pipe() {
        let mut input = String::new();
        input.push_str(&format!("INGEST inv\n{INV}\n.\n"));
        input.push_str(&format!("INGEST xor2\n{XOR2}\n.\n"));
        input.push_str("PUBLISH\n");
        input.push_str(&format!("AUDIT suspect_xor\n{XOR2}\n.\n"));
        input.push_str("AUDIT broken\nmodule broken(\n.\n");
        input.push_str("BOGUS\n");
        input.push_str("STATS\n");
        input.push_str("SHUTDOWN\n");
        let mut pipeline = service_pipeline();
        let mut out: Vec<u8> = Vec::new();
        let report = run_service(
            &mut pipeline,
            &ServiceConfig::default(),
            input.as_bytes(),
            &mut out,
        )
        .expect("service runs");

        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8, "one response per request:\n{text}");
        assert_eq!(lines[0], "OK ingested=1 rejected=0");
        assert_eq!(lines[1], "OK ingested=2 rejected=0");
        // epoch 1 is the pre-spawn seed publication, so PUBLISH is 2
        assert_eq!(lines[2], "OK epoch=2");
        assert!(
            lines[3].starts_with("VERDICT suspect_xor matches=2 piracy="),
            "{}",
            lines[3]
        );
        assert!(lines[3].contains("best=xor2:"), "{}", lines[3]);
        assert!(lines[4].starts_with("ERR audit broken:"), "{}", lines[4]);
        assert!(lines[5].starts_with("ERR unknown command: BOGUS"));
        assert!(lines[6].starts_with("STATS requests="), "{}", lines[6]);
        assert_eq!(lines[7], "OK bye");

        assert_eq!(report.requests, 8);
        assert_eq!(report.audits, 1);
        assert_eq!(report.ingested, 2);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.publishes, 1);
        assert_eq!(report.latency.count, 2, "both audit requests timed");
    }

    /// Workers serve the last *published* snapshot: an ingest without a
    /// PUBLISH is invisible to audits, and a PUBLISH makes it visible.
    #[test]
    fn audits_see_published_state_only() {
        let mut input = String::new();
        input.push_str(&format!("INGEST inv\n{INV}\n.\n"));
        // no PUBLISH: the worker still serves the empty seed snapshot
        input.push_str(&format!("AUDIT before\n{INV}\n.\n"));
        input.push_str("SHUTDOWN\n");
        let mut pipeline = service_pipeline();
        let mut out: Vec<u8> = Vec::new();
        run_service(
            &mut pipeline,
            &ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            input.as_bytes(),
            &mut out,
        )
        .expect("service runs");
        let text = String::from_utf8(out).expect("utf8");
        let audit_line = text
            .lines()
            .find(|l| l.starts_with("VERDICT before"))
            .expect("audited");
        assert!(
            audit_line.contains("matches=0") && audit_line.contains("best=-"),
            "unpublished ingest leaked into a verdict: {audit_line}"
        );
    }

    /// Dot-stuffing: body lines that start with '.' survive the
    /// round-trip through the escape.
    #[test]
    fn body_dot_escaping() {
        let raw = "AUDIT x\nline1\n..dotline\n.\n";
        let mut lines = raw.as_bytes().lines();
        let _cmd = lines.next();
        let body = read_body(&mut lines, 1 << 20).expect("terminated");
        assert_eq!(body, "line1\n.dotline\n");
    }

    /// An oversized body draws a typed ERR, leaves the stream in sync
    /// (the next request still parses), and never buffers the excess.
    #[test]
    fn oversized_body_is_rejected_in_sync() {
        let mut lines = "0123456789\nabcdef\n.\n".as_bytes().lines();
        assert_eq!(read_body(&mut lines, 8), Err(BodyError::TooLarge));
        assert_eq!(lines.next().map(|l| l.expect("utf8")), None, "drained");

        let mut input = String::new();
        input.push_str("INGEST big\n");
        input.push_str(&"x".repeat(256));
        input.push_str("\n.\n");
        input.push_str(&format!("INGEST inv\n{INV}\n.\n"));
        input.push_str("SHUTDOWN\n");
        let mut pipeline = service_pipeline();
        let mut out: Vec<u8> = Vec::new();
        let report = run_service(
            &mut pipeline,
            &ServiceConfig {
                max_body_bytes: 128,
                ..ServiceConfig::default()
            },
            input.as_bytes(),
            &mut out,
        )
        .expect("service runs");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one response per request:\n{text}");
        assert_eq!(lines[0], "ERR ingest big: body exceeds max_body_bytes=128");
        assert_eq!(lines[1], "OK ingested=1 rejected=0");
        assert_eq!(lines[2], "OK bye");
        assert_eq!(report.ingested, 1);
        assert_eq!(report.rejected, 1);
    }
}
