//! Behavior contract of the content-addressed [`EmbeddingCache`] as seen
//! through the detector API: hit/miss accounting, fingerprint stability
//! under semantically-neutral edits, and cache interaction between the
//! single (`check`) and batched (`check_many`) entry points.

use gnn4ip_core::{EmbeddingCache, Gnn4Ip};
use gnn4ip_hdl::design_fingerprint;

const INV: &str = "module inv(input a, output y); assign y = ~a; endmodule";
const XOR2: &str = "module x2(input a, input b, output y); assign y = a ^ b; endmodule";

#[test]
fn stats_account_every_lookup_exactly_once() {
    let mut cache = EmbeddingCache::new();
    let fp_a = design_fingerprint(INV, None).expect("fp");
    let fp_b = design_fingerprint(XOR2, None).expect("fp");

    // miss, insert, hit, hit: 2 lookups counted per key state
    assert!(cache.get(fp_a).is_none());
    cache.insert(fp_a, vec![1.0, 2.0]);
    assert_eq!(cache.get(fp_a), Some(vec![1.0, 2.0]));
    assert_eq!(cache.get(fp_a), Some(vec![1.0, 2.0]));
    assert!(cache.get(fp_b).is_none());
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.entries), (2, 2, 1));
    assert!((s.hit_rate() - 0.5).abs() < 1e-12);

    // peek must not move the counters
    assert!(cache.peek(fp_a).is_some());
    assert!(cache.peek(fp_b).is_none());
    assert_eq!(cache.stats().hits, 2);
    assert_eq!(cache.stats().misses, 2);

    // overwriting an entry does not double-count it
    cache.insert(fp_a, vec![3.0]);
    assert_eq!(cache.stats().entries, 1);
    assert_eq!(cache.get(fp_a), Some(vec![3.0]));

    // clear resets counters and entries together
    cache.clear();
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    assert_eq!(s.hit_rate(), 0.0);
}

#[test]
fn fingerprint_is_stable_across_comment_and_whitespace_edits() {
    let variants = [
        format!("// vendor resubmission\n{INV}"),
        format!("/* block\n   comment */\n{INV}"),
        INV.replace(' ', "  "),
        INV.replace("; ", ";\n\t"),
        format!("{INV}\n\n\n"),
    ];
    let base = design_fingerprint(INV, None).expect("fp");
    for v in &variants {
        let fp = design_fingerprint(v, None).expect("fp");
        assert_eq!(fp, base, "fingerprint drifted for variant: {v:?}");
    }
    // a real token change must move the fingerprint
    let changed = INV.replace("~a", "a");
    assert_ne!(design_fingerprint(&changed, None).expect("fp"), base);
}

#[test]
fn neutral_edits_share_one_cache_entry_through_the_detector() {
    let d = Gnn4Ip::with_seed(31);
    let e0 = d.hw2vec(INV, None).expect("embeds");
    let commented = format!("// rev B\n{INV}");
    let respaced = INV.replace(' ', "   ");
    let e1 = d.hw2vec(&commented, None).expect("embeds");
    let e2 = d.hw2vec(&respaced, None).expect("embeds");
    assert_eq!(e0, e1);
    assert_eq!(e0, e2);
    let s = d.cache_stats();
    assert_eq!(
        (s.hits, s.misses, s.entries),
        (2, 1, 1),
        "neutral edits must resolve to one cached embedding: {s:?}"
    );
}

#[test]
fn check_then_check_many_shares_the_same_entries() {
    let d = Gnn4Ip::with_seed(32);
    // single-pair path populates the cache ...
    let v_single = d.check(INV, XOR2).expect("single");
    let s = d.cache_stats();
    assert_eq!((s.misses, s.entries), (2, 2));

    // ... and the batched path is then all hits, with identical verdicts
    let batch = d
        .check_many(&[(INV, XOR2), (XOR2, INV), (INV, INV)])
        .expect("batch");
    let s = d.cache_stats();
    assert_eq!(s.entries, 2, "batch must not duplicate cached designs");
    assert_eq!(s.misses, 2, "batch re-embedded a cached design");
    assert_eq!(batch[0], v_single);
    assert_eq!(batch[0].score.to_bits(), batch[1].score.to_bits());
    assert!(batch[2].score > 0.999);
}

#[test]
fn check_many_then_check_is_served_from_cache() {
    let d = Gnn4Ip::with_seed(33);
    let batch = d.check_many(&[(INV, XOR2)]).expect("batch");
    let before = d.cache_stats();
    assert_eq!((before.misses, before.entries), (2, 2));
    // the single path must hit both sides
    let v = d.check(INV, XOR2).expect("single");
    let after = d.cache_stats();
    assert_eq!(after.misses, before.misses, "single path re-embedded");
    assert_eq!(after.hits, before.hits + 2);
    assert_eq!(v.score.to_bits(), batch[0].score.to_bits());
}

#[test]
fn duplicate_designs_inside_one_batch_collapse() {
    let d = Gnn4Ip::with_seed(34);
    let out = d
        .embed_many(&[(INV, None), (INV, None), (XOR2, None), (INV, None)])
        .expect("batch");
    assert_eq!(out.len(), 4);
    assert_eq!(out[0], out[1]);
    assert_eq!(out[0], out[3]);
    assert_eq!(d.cache_stats().entries, 2);
}
