//! Graph trimming — phase 5 of the paper's Fig. 2 pipeline.
//!
//! "Eventually, the redundant nodes and disconnected subgraphs are trimmed,
//! and the final DFG is generated." Trimming (a) drops every node not
//! reachable from an output root and (b) collapses redundant pass-through
//! nodes (`buf` gates and single-operand concats), which carry no behavioral
//! information.

use crate::graph::Dfg;
use crate::nodekind::NodeKind;

/// Statistics reported by [`trim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrimStats {
    /// Nodes removed because they were unreachable from any root.
    pub unreachable_removed: usize,
    /// Pass-through nodes (buffers, trivial concats) collapsed.
    pub passthrough_collapsed: usize,
}

/// Trims a DFG in place and reports what was removed.
///
/// # Examples
///
/// ```
/// use gnn4ip_dfg::{Dfg, NodeKind, trim};
///
/// let mut g = Dfg::new("t");
/// let y = g.add_node(NodeKind::Output, "y");
/// let a = g.add_node(NodeKind::Input, "a");
/// let orphan = g.add_node(NodeKind::Wire, "dead");
/// let _ = orphan;
/// g.add_edge(y, a);
/// g.add_root(y);
/// let stats = trim(&mut g);
/// assert_eq!(stats.unreachable_removed, 1);
/// assert_eq!(g.node_count(), 2);
/// ```
pub fn trim(g: &mut Dfg) -> TrimStats {
    let mut stats = TrimStats::default();
    // Remove unreachable nodes first; retain_nodes also canonicalizes the
    // edge list (sort + dedup), which the pass-through collapse relies on —
    // a node with two parallel edges to one dependency has one dependency.
    let mask = g.reachable_from_roots();
    stats.unreachable_removed = mask.iter().filter(|&&k| !k).count();
    g.retain_nodes(&mask);
    stats.passthrough_collapsed = collapse_passthrough(g);
    if stats.passthrough_collapsed > 0 {
        // canonicalize edge order again (collapse rebuilds in redirect order)
        let keep = vec![true; g.node_count()];
        g.retain_nodes(&keep);
    }
    stats
}

/// Collapses nodes that merely forward one dependency (buf gates and
/// single-child concat/repeat marks): incoming edges are redirected to the
/// single dependency and the node is removed.
fn collapse_passthrough(g: &mut Dfg) -> usize {
    let mut collapsed = 0usize;
    loop {
        let n = g.node_count();
        let mut victim: Option<(usize, usize)> = None;
        for id in 0..n {
            let kind = g.node(id).kind;
            let is_passthrough_kind =
                matches!(kind, NodeKind::Buf | NodeKind::Concat | NodeKind::Repeat);
            if !is_passthrough_kind || g.roots().contains(&id) {
                continue;
            }
            let deps: Vec<usize> = g.deps(id).collect();
            if deps.len() == 1 {
                victim = Some((id, deps[0]));
                break;
            }
        }
        let Some((id, dep)) = victim else { break };
        // redirect every edge *into* id to point at dep, then drop id
        let mut rebuilt = Dfg::new(g.name());
        let mut remap = vec![0usize; n];
        let mut next = 0usize;
        for (i, slot) in remap.iter_mut().enumerate() {
            if i != id {
                *slot = next;
                let node = g.node(i).clone();
                rebuilt.add_node(node.kind, node.label);
                next += 1;
            }
        }
        let redirect = |x: usize| if x == id { dep } else { x };
        let mut seen = std::collections::HashSet::new();
        for &(f, t) in g.edges() {
            let (f, t) = (redirect(f), redirect(t));
            if f == id || t == id || f == t {
                continue;
            }
            let e = (remap[f], remap[t]);
            if seen.insert(e) {
                rebuilt.add_edge(e.0, e.1);
            }
        }
        for &r in g.roots() {
            rebuilt.add_root(remap[redirect(r)]);
        }
        *g = rebuilt;
        collapsed += 1;
    }
    collapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_disconnected_subgraph() {
        let mut g = Dfg::new("t");
        let y = g.add_node(NodeKind::Output, "y");
        let a = g.add_node(NodeKind::Input, "a");
        let d1 = g.add_node(NodeKind::Wire, "dead1");
        let d2 = g.add_node(NodeKind::Wire, "dead2");
        g.add_edge(y, a);
        g.add_edge(d1, d2);
        g.add_root(y);
        let stats = trim(&mut g);
        assert_eq!(stats.unreachable_removed, 2);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn collapses_buffer_chain() {
        // y -> buf -> buf -> a
        let mut g = Dfg::new("t");
        let y = g.add_node(NodeKind::Output, "y");
        let b1 = g.add_node(NodeKind::Buf, "buf");
        let b2 = g.add_node(NodeKind::Buf, "buf");
        let a = g.add_node(NodeKind::Input, "a");
        g.add_edge(y, b1);
        g.add_edge(b1, b2);
        g.add_edge(b2, a);
        g.add_root(y);
        let stats = trim(&mut g);
        assert_eq!(stats.passthrough_collapsed, 2);
        assert_eq!(g.node_count(), 2);
        // y now depends directly on a
        let deps: Vec<_> = g.deps(g.roots()[0]).collect();
        assert_eq!(g.node(deps[0]).kind, NodeKind::Input);
    }

    #[test]
    fn keeps_multi_child_concat() {
        let mut g = Dfg::new("t");
        let y = g.add_node(NodeKind::Output, "y");
        let c = g.add_node(NodeKind::Concat, "concat");
        let a = g.add_node(NodeKind::Input, "a");
        let b = g.add_node(NodeKind::Input, "b");
        g.add_edge(y, c);
        g.add_edge(c, a);
        g.add_edge(c, b);
        g.add_root(y);
        let stats = trim(&mut g);
        assert_eq!(stats.passthrough_collapsed, 0);
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn collapses_single_child_concat() {
        let mut g = Dfg::new("t");
        let y = g.add_node(NodeKind::Output, "y");
        let c = g.add_node(NodeKind::Concat, "concat");
        let a = g.add_node(NodeKind::Input, "a");
        g.add_edge(y, c);
        g.add_edge(c, a);
        g.add_root(y);
        trim(&mut g);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn trim_is_idempotent() {
        let mut g = Dfg::new("t");
        let y = g.add_node(NodeKind::Output, "y");
        let op = g.add_node(NodeKind::Xor, "xor");
        let a = g.add_node(NodeKind::Input, "a");
        let b = g.add_node(NodeKind::Input, "b");
        g.add_edge(y, op);
        g.add_edge(op, a);
        g.add_edge(op, b);
        g.add_root(y);
        let first = trim(&mut g);
        assert_eq!(first, TrimStats::default());
        let snapshot = g.clone();
        let second = trim(&mut g);
        assert_eq!(second, TrimStats::default());
        assert_eq!(g, snapshot);
    }

    #[test]
    fn root_buffer_is_preserved() {
        let mut g = Dfg::new("t");
        let y = g.add_node(NodeKind::Buf, "odd-root");
        let a = g.add_node(NodeKind::Input, "a");
        g.add_edge(y, a);
        g.add_root(y);
        trim(&mut g);
        assert_eq!(g.node_count(), 2);
    }
}
