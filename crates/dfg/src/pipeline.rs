//! The end-to-end DFG generation pipeline of the paper's Fig. 2:
//! preprocess → parse → data-flow analysis → merge → trim.

use gnn4ip_hdl::ParseVerilogError;

use crate::extract::extract;
use crate::graph::Dfg;
use crate::trim::{trim, TrimStats};

/// Summary of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineReport {
    /// Nodes in the final (trimmed) graph.
    pub nodes: usize,
    /// Edges in the final graph.
    pub edges: usize,
    /// Output roots.
    pub roots: usize,
    /// What trimming removed.
    pub trim: TrimStats,
}

/// Runs the full Fig. 2 pipeline on Verilog source text.
///
/// `top` selects the root module; `None` auto-detects (the module nothing
/// else instantiates). Works for both RTL and gate-level netlists — the
/// paper's two abstraction levels.
///
/// # Errors
///
/// Propagates preprocessing, parse, and elaboration errors from
/// [`gnn4ip_hdl`].
///
/// # Examples
///
/// ```
/// use gnn4ip_dfg::graph_from_verilog;
///
/// let g = graph_from_verilog(
///     "module inv(input a, output y); assign y = ~a; endmodule", None)?;
/// assert_eq!(g.roots().len(), 1);
/// assert_eq!(g.node_count(), 3); // y -> ~ -> a
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
pub fn graph_from_verilog(source: &str, top: Option<&str>) -> Result<Dfg, ParseVerilogError> {
    Ok(graph_with_report(source, top)?.0)
}

/// Like [`graph_from_verilog`] but also returns pipeline statistics.
///
/// # Errors
///
/// Same conditions as [`graph_from_verilog`].
pub fn graph_with_report(
    source: &str,
    top: Option<&str>,
) -> Result<(Dfg, PipelineReport), ParseVerilogError> {
    let flat = gnn4ip_hdl::elaborate(source, top)?;
    let mut g = extract(&flat);
    let trim_stats = trim(&mut g);
    let report = PipelineReport {
        nodes: g.node_count(),
        edges: g.edge_count(),
        roots: g.roots().len(),
        trim: trim_stats,
    };
    Ok((g, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADDER_RTL: &str = "
        module ADDER(input Num1, input Num2, input Cin,
                     output reg Sum, output reg Cout);
          always @(Num1, Num2, Cin) begin
            Sum <= ((Num1 ^ Num2) ^ Cin);
            Cout <= (((Num1 ^ Num2) && Cin) || (Num1 && Num2));
          end
        endmodule";

    const ADDER_GATES: &str = "
        module ADDER(Num1, Num2, Cin, Sum, Cout);
          input Num1, Num2, Cin;
          output Sum, Cout;
          wire t1, t2, t3;
          xor (t1, Num1, Num2);
          and (t2, Num1, Num2);
          and (t3, t1, Cin);
          xor (Sum, t1, Cin);
          or (Cout, t3, t2);
        endmodule";

    #[test]
    fn both_fig1_adders_produce_rooted_dfgs() {
        let (g1, r1) = graph_with_report(ADDER_RTL, None).expect("rtl");
        let (g2, r2) = graph_with_report(ADDER_GATES, None).expect("gates");
        assert_eq!(r1.roots, 2);
        assert_eq!(r2.roots, 2);
        // same behaviour, different topology (the paper's motivating point)
        assert_ne!(g1.node_count(), g2.node_count());
        // every non-root reaches a root
        for g in [&g1, &g2] {
            let mask = g.reachable_from_roots();
            assert!(mask.iter().all(|&m| m), "trim left unreachable nodes");
        }
    }

    #[test]
    fn hierarchical_design_goes_through_pipeline() {
        let src = "
            module ha(input a, input b, output s, output c);
              xor (s, a, b);
              and (c, a, b);
            endmodule
            module fa(input x, input y, input cin, output sum, output cout);
              wire s1, c1, c2;
              ha h1(.a(x), .b(y), .s(s1), .c(c1));
              ha h2(.a(s1), .b(cin), .s(sum), .c(c2));
              or (cout, c1, c2);
            endmodule";
        let g = graph_from_verilog(src, Some("fa")).expect("pipeline");
        assert_eq!(g.roots().len(), 2);
        assert!(g.node_count() >= 10);
    }

    #[test]
    fn parse_error_propagates() {
        assert!(graph_from_verilog("module broken(", None).is_err());
    }

    #[test]
    fn report_counts_match_graph() {
        let (g, r) = graph_with_report(ADDER_GATES, None).expect("ok");
        assert_eq!(r.nodes, g.node_count());
        assert_eq!(r.edges, g.edge_count());
    }
}
