//! Data-flow analysis: flat module → per-signal data-flow trees, merged into
//! one design DFG (phases 3 and 4 of the paper's Fig. 2 pipeline).
//!
//! Each driven signal contributes a data-flow tree (its driving expression,
//! with `if`/`case` contexts materialized as `Branch`/`CaseItem` nodes, as
//! Pyverilog's dataflow analyzer does). Because operand identifiers resolve
//! to *shared* signal nodes, emitting all trees into one graph is exactly the
//! "merge graphs" phase: signal `t1` used by three expressions is one node
//! with three incoming dependency edges.

use std::collections::HashMap;

use gnn4ip_hdl::{
    BinaryOp, Expr, GateKind, Item, Module, NetKind, PortDir, SensItem, Stmt, UnaryOp,
};

use crate::graph::{Dfg, NodeId};
use crate::nodekind::NodeKind;

/// Extracts the merged (untrimmed) DFG of a flattened module.
///
/// Roots are the module's output ports. Run [`crate::trim`] afterwards to
/// drop unreachable subgraphs and collapse buffers — or use
/// [`crate::graph_from_verilog`] which runs the whole Fig. 2 pipeline.
///
/// # Examples
///
/// ```
/// use gnn4ip_dfg::extract;
/// use gnn4ip_hdl::elaborate;
///
/// let m = elaborate("module inv(input a, output y); assign y = ~a; endmodule", None)?;
/// let g = extract(&m);
/// assert_eq!(g.roots().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn extract(module: &Module) -> Dfg {
    Extractor::new(module).run()
}

struct Extractor<'m> {
    module: &'m Module,
    graph: Dfg,
    signal_nodes: HashMap<String, NodeId>,
    const_nodes: HashMap<u64, NodeId>,
}

impl<'m> Extractor<'m> {
    fn new(module: &'m Module) -> Self {
        Self {
            module,
            graph: Dfg::new(&module.name),
            signal_nodes: HashMap::new(),
            const_nodes: HashMap::new(),
        }
    }

    fn run(mut self) -> Dfg {
        // Declare signal nodes for ports first so outputs become roots with
        // stable low ids.
        for port in &self.module.ports {
            let kind = match port.dir {
                PortDir::Input => NodeKind::Input,
                PortDir::Output => NodeKind::Output,
                PortDir::Inout => NodeKind::Wire,
            };
            let id = self.graph.add_node(kind, &port.name);
            self.signal_nodes.insert(port.name.clone(), id);
            if port.dir == PortDir::Output {
                self.graph.add_root(id);
            }
        }
        for item in &self.module.items {
            if let Item::Decl { kind, name, .. } = item {
                let nk = match kind {
                    NetKind::Wire => NodeKind::Wire,
                    NetKind::Reg | NetKind::Integer => NodeKind::Reg,
                };
                if !self.signal_nodes.contains_key(name) {
                    let id = self.graph.add_node(nk, name);
                    self.signal_nodes.insert(name.clone(), id);
                }
            }
        }
        for item in &self.module.items {
            match item {
                Item::Decl {
                    name,
                    init: Some(e),
                    ..
                } => {
                    let target = self.signal(name);
                    let tree = self.expr_tree(e);
                    self.graph.add_edge(target, tree);
                }
                Item::Assign { lhs, rhs } => {
                    let tree = self.expr_tree(rhs);
                    self.drive(lhs, tree, &[]);
                }
                Item::Gate(g) => {
                    let kind = match g.kind {
                        GateKind::And => NodeKind::And,
                        GateKind::Or => NodeKind::Or,
                        GateKind::Nand => NodeKind::Nand,
                        GateKind::Nor => NodeKind::Nor,
                        GateKind::Xor => NodeKind::Xor,
                        GateKind::Xnor => NodeKind::Xnor,
                        GateKind::Not => NodeKind::Not,
                        GateKind::Buf => NodeKind::Buf,
                    };
                    let (outs, ins) = g.split_ports();
                    let op = self.graph.add_node(kind, g.kind.keyword());
                    for input in ins {
                        let t = self.expr_tree(input);
                        self.graph.add_edge(op, t);
                    }
                    for out in outs {
                        self.drive(out, op, &[]);
                    }
                }
                Item::Always { sensitivity, body } => {
                    let _ = sensitivity
                        .iter()
                        .any(|s| matches!(s, SensItem::Posedge(_) | SensItem::Negedge(_)));
                    let mut ctx = Vec::new();
                    self.stmt_tree(body, &mut ctx);
                }
                _ => {}
            }
        }
        self.graph
    }

    /// Node for a named signal, creating an implicit wire if undeclared.
    fn signal(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.signal_nodes.get(name) {
            return id;
        }
        let id = self.graph.add_node(NodeKind::Wire, name);
        self.signal_nodes.insert(name.to_string(), id);
        id
    }

    fn constant(&mut self, value: u64) -> NodeId {
        if let Some(&id) = self.const_nodes.get(&value) {
            return id;
        }
        let id = self.graph.add_node(NodeKind::Constant, value.to_string());
        self.const_nodes.insert(value, id);
        id
    }

    /// Connects an assignment target to its driver tree under a condition
    /// context, materializing `Branch` nodes for the context.
    fn drive(&mut self, lhs: &Expr, driver: NodeId, ctx: &[NodeId]) {
        let driver = if ctx.is_empty() {
            driver
        } else {
            let branch = self.graph.add_node(NodeKind::Branch, "branch");
            for &c in ctx {
                self.graph.add_edge(branch, c);
            }
            self.graph.add_edge(branch, driver);
            branch
        };
        match lhs {
            Expr::Ident(name) => {
                let target = self.signal(name);
                self.graph.add_edge(target, driver);
            }
            Expr::BitSelect { base, index } => {
                let sel = self.graph.add_node(NodeKind::BitSelect, "bitsel=");
                let idx = self.expr_tree(index);
                self.graph.add_edge(sel, idx);
                self.graph.add_edge(sel, driver);
                self.drive(base, sel, &[]);
            }
            Expr::PartSelect { base, msb, lsb } => {
                let sel = self.graph.add_node(NodeKind::PartSelect, "partsel=");
                let m = self.expr_tree(msb);
                let l = self.expr_tree(lsb);
                self.graph.add_edge(sel, m);
                self.graph.add_edge(sel, l);
                self.graph.add_edge(sel, driver);
                self.drive(base, sel, &[]);
            }
            Expr::Concat(parts) => {
                for part in parts {
                    let sel = self.graph.add_node(NodeKind::PartSelect, "split");
                    self.graph.add_edge(sel, driver);
                    self.drive(part, sel, &[]);
                }
            }
            // Degenerate targets: attach to each referenced signal.
            other => {
                for name in other.idents() {
                    let target = self.signal(name);
                    self.graph.add_edge(target, driver);
                }
            }
        }
    }

    fn stmt_tree(&mut self, stmt: &Stmt, ctx: &mut Vec<NodeId>) {
        match stmt {
            Stmt::Block(ss) => {
                for s in ss {
                    self.stmt_tree(s, ctx);
                }
            }
            Stmt::Blocking { lhs, rhs } | Stmt::NonBlocking { lhs, rhs } => {
                let tree = self.expr_tree(rhs);
                let ctx_now = ctx.clone();
                self.drive(lhs, tree, &ctx_now);
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let c = self.expr_tree(cond);
                ctx.push(c);
                self.stmt_tree(then_s, ctx);
                ctx.pop();
                if let Some(e) = else_s {
                    let notc = self.graph.add_node(NodeKind::LogicalNot, "!cond");
                    self.graph.add_edge(notc, c);
                    ctx.push(notc);
                    self.stmt_tree(e, ctx);
                    ctx.pop();
                }
            }
            Stmt::Case { subject, arms } => {
                let subj = self.expr_tree(subject);
                for (labels, body) in arms {
                    let item = self.graph.add_node(NodeKind::CaseItem, "case");
                    self.graph.add_edge(item, subj);
                    for l in labels {
                        let lt = self.expr_tree(l);
                        self.graph.add_edge(item, lt);
                    }
                    ctx.push(item);
                    self.stmt_tree(body, ctx);
                    ctx.pop();
                }
            }
            Stmt::For { .. } => {
                // Loops are unrolled by elaboration; a residual loop (non-
                // constant bounds) is approximated by analyzing its body once
                // without the loop context.
                if let Stmt::For { body, .. } = stmt {
                    self.stmt_tree(body, ctx);
                }
            }
            Stmt::Null => {}
        }
    }

    fn expr_tree(&mut self, expr: &Expr) -> NodeId {
        match expr {
            Expr::Ident(name) => self.signal(name),
            Expr::Number { value, .. } => self.constant(*value),
            Expr::Str(s) => {
                let id = self.graph.add_node(NodeKind::Constant, format!("\"{s}\""));
                id
            }
            Expr::Unary { op, arg } => {
                let kind = match op {
                    UnaryOp::Not => NodeKind::LogicalNot,
                    UnaryOp::BitNot => NodeKind::BitNot,
                    UnaryOp::Plus => return self.expr_tree(arg),
                    UnaryOp::Minus => NodeKind::Neg,
                    UnaryOp::ReduceAnd => NodeKind::RedAnd,
                    UnaryOp::ReduceOr => NodeKind::RedOr,
                    UnaryOp::ReduceXor => NodeKind::RedXor,
                    UnaryOp::ReduceNand => NodeKind::RedNand,
                    UnaryOp::ReduceNor => NodeKind::RedNor,
                    UnaryOp::ReduceXnor => NodeKind::RedXnor,
                };
                let id = self.graph.add_node(kind, kind.label());
                let a = self.expr_tree(arg);
                self.graph.add_edge(id, a);
                id
            }
            Expr::Binary { op, lhs, rhs } => {
                let kind = match op {
                    BinaryOp::Add => NodeKind::Add,
                    BinaryOp::Sub => NodeKind::Sub,
                    BinaryOp::Mul => NodeKind::Mul,
                    BinaryOp::Div => NodeKind::Div,
                    BinaryOp::Mod => NodeKind::Mod,
                    BinaryOp::Pow => NodeKind::Pow,
                    BinaryOp::Shl => NodeKind::Shl,
                    BinaryOp::Shr | BinaryOp::AShr => NodeKind::Shr,
                    BinaryOp::Lt => NodeKind::Lt,
                    BinaryOp::Gt => NodeKind::Gt,
                    BinaryOp::Le => NodeKind::Le,
                    BinaryOp::Ge => NodeKind::Ge,
                    BinaryOp::Eq | BinaryOp::CaseEq => NodeKind::Eq,
                    BinaryOp::Neq | BinaryOp::CaseNeq => NodeKind::Neq,
                    BinaryOp::And => NodeKind::And,
                    BinaryOp::Or => NodeKind::Or,
                    BinaryOp::Xor => NodeKind::Xor,
                    BinaryOp::Xnor => NodeKind::Xnor,
                    BinaryOp::LogicalAnd => NodeKind::LogicalAnd,
                    BinaryOp::LogicalOr => NodeKind::LogicalOr,
                };
                let id = self.graph.add_node(kind, kind.label());
                let l = self.expr_tree(lhs);
                let r = self.expr_tree(rhs);
                self.graph.add_edge(id, l);
                self.graph.add_edge(id, r);
                id
            }
            Expr::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                let id = self.graph.add_node(NodeKind::Branch, "?:");
                let c = self.expr_tree(cond);
                let t = self.expr_tree(then_e);
                let e = self.expr_tree(else_e);
                self.graph.add_edge(id, c);
                self.graph.add_edge(id, t);
                self.graph.add_edge(id, e);
                id
            }
            Expr::Concat(parts) => {
                let id = self.graph.add_node(NodeKind::Concat, "concat");
                for p in parts {
                    let t = self.expr_tree(p);
                    self.graph.add_edge(id, t);
                }
                id
            }
            Expr::Repeat { count, body } => {
                let id = self.graph.add_node(NodeKind::Repeat, "repeat");
                let c = self.expr_tree(count);
                let b = self.expr_tree(body);
                self.graph.add_edge(id, c);
                self.graph.add_edge(id, b);
                id
            }
            Expr::BitSelect { base, index } => {
                let id = self.graph.add_node(NodeKind::BitSelect, "bitsel");
                let b = self.expr_tree(base);
                let i = self.expr_tree(index);
                self.graph.add_edge(id, b);
                self.graph.add_edge(id, i);
                id
            }
            Expr::PartSelect { base, msb, lsb } => {
                let id = self.graph.add_node(NodeKind::PartSelect, "partsel");
                let b = self.expr_tree(base);
                let m = self.expr_tree(msb);
                let l = self.expr_tree(lsb);
                self.graph.add_edge(id, b);
                self.graph.add_edge(id, m);
                self.graph.add_edge(id, l);
                id
            }
            Expr::Call { name, args } => {
                let id = self.graph.add_node(NodeKind::Call, name.clone());
                for a in args {
                    let t = self.expr_tree(a);
                    self.graph.add_edge(id, t);
                }
                id
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_hdl::elaborate;

    fn graph_of(src: &str) -> Dfg {
        extract(&elaborate(src, None).expect("elaborates"))
    }

    #[test]
    fn assign_creates_dependency_chain() {
        let g = graph_of("module inv(input a, output y); assign y = ~a; endmodule");
        // y(root) -> bitnot -> a
        assert_eq!(g.roots().len(), 1);
        let y = g.roots()[0];
        let deps: Vec<_> = g.deps(y).collect();
        assert_eq!(deps.len(), 1);
        assert_eq!(g.node(deps[0]).kind, NodeKind::BitNot);
        let inner: Vec<_> = g.deps(deps[0]).collect();
        assert_eq!(g.node(inner[0]).kind, NodeKind::Input);
    }

    #[test]
    fn signal_nodes_are_shared_across_uses() {
        let g = graph_of(
            "module m(input a, output x, output y);
               assign x = a & a;
               assign y = ~a;
             endmodule",
        );
        let input_count = g
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::Input)
            .count();
        assert_eq!(input_count, 1, "merge phase must share signal nodes");
    }

    #[test]
    fn constants_are_deduplicated() {
        let g = graph_of(
            "module m(input a, output x, output y);
               assign x = a ^ 1'b1;
               assign y = a | 1'b1;
             endmodule",
        );
        let consts = g
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::Constant)
            .count();
        assert_eq!(consts, 1);
    }

    #[test]
    fn if_context_becomes_branch_node() {
        let g = graph_of(
            "module m(input c, input d, output reg q);
               always @* begin
                 if (c) q = d; else q = ~d;
               end
             endmodule",
        );
        let branches = g
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::Branch)
            .count();
        assert_eq!(branches, 2, "one branch per conditioned assignment");
        let lnot = g
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::LogicalNot)
            .count();
        assert!(lnot >= 1, "else context is negated condition");
    }

    #[test]
    fn case_context_becomes_caseitem_nodes() {
        let g = graph_of(
            "module m(input [1:0] s, input a, input b, output reg y);
               always @* case (s)
                 2'd0: y = a;
                 2'd1: y = b;
                 default: y = 1'b0;
               endcase
             endmodule",
        );
        let items = g
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::CaseItem)
            .count();
        assert_eq!(items, 3);
    }

    #[test]
    fn gates_map_to_operator_nodes() {
        let g = graph_of(
            "module fa(input a, input b, input cin, output sum, output cout);
               wire t1, t2, t3;
               xor (t1, a, b);
               and (t2, a, b);
               and (t3, t1, cin);
               xor (sum, t1, cin);
               or (cout, t3, t2);
             endmodule",
        );
        let h = g.kind_histogram();
        assert_eq!(h[NodeKind::Xor.index()], 2);
        assert_eq!(h[NodeKind::And.index()], 2);
        assert_eq!(h[NodeKind::Or.index()], 1);
        assert_eq!(g.roots().len(), 2);
    }

    #[test]
    fn ternary_is_branch() {
        let g = graph_of(
            "module m(input s, input a, input b, output y);
               assign y = s ? a : b;
             endmodule",
        );
        assert_eq!(g.kind_histogram()[NodeKind::Branch.index()], 1);
    }

    #[test]
    fn concat_lvalue_splits_driver() {
        let g = graph_of(
            "module m(input [1:0] a, output x, output y);
               assign {x, y} = a;
             endmodule",
        );
        // both outputs reach the input through their split nodes
        let mask = g.reachable_from_roots();
        let a_id = g
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::Input)
            .expect("input");
        assert!(mask[a_id]);
    }

    #[test]
    fn undeclared_signals_become_wires() {
        let g = graph_of(
            "module m(input a, output y);
               assign t = ~a;
               assign y = t;
             endmodule",
        );
        let wires = g
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::Wire && n.label == "t")
            .count();
        assert_eq!(wires, 1);
    }

    #[test]
    fn two_adder_codings_share_no_structure_but_same_roots() {
        // the motivating example of Fig. 1: RTL vs gate-level full adder
        let rtl = graph_of(
            "module fa(input a, input b, input cin, output reg sum, output reg cout);
               always @(a, b, cin) begin
                 sum <= (a ^ b) ^ cin;
                 cout <= ((a ^ b) && cin) || (a && b);
               end
             endmodule",
        );
        let gates = graph_of(
            "module fa(input a, input b, input cin, output sum, output cout);
               wire t1, t2, t3;
               xor (t1, a, b);
               and (t2, a, b);
               and (t3, t1, cin);
               xor (sum, t1, cin);
               or (cout, t3, t2);
             endmodule",
        );
        assert_eq!(rtl.roots().len(), gates.roots().len());
        assert_ne!(rtl.node_count(), gates.node_count());
    }
}
