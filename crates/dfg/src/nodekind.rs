//! The node-kind vocabulary of hardware data-flow graphs.
//!
//! The paper initializes node embeddings by "directly converting the node's
//! name to its corresponding one-hot vector". Signals are anonymized into
//! role classes (input/output/wire/reg/constant) and operations map to a
//! fixed operator vocabulary, so the one-hot dimension is stable across
//! designs — a requirement for a single shared GCN weight matrix.

use std::fmt;

/// Kind of a DFG node. The `index` of each kind is its one-hot feature
/// position; the ordering is stable and serialized with trained models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum NodeKind {
    // signal roles
    Input = 0,
    Output,
    Wire,
    Reg,
    Constant,
    // gate / bitwise operations
    And,
    Or,
    Xor,
    Xnor,
    Nand,
    Nor,
    Not,
    Buf,
    // logical operations
    LogicalAnd,
    LogicalOr,
    LogicalNot,
    // unary arithmetic / reductions
    BitNot,
    Neg,
    RedAnd,
    RedOr,
    RedXor,
    RedNand,
    RedNor,
    RedXnor,
    // binary arithmetic
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Shl,
    Shr,
    // comparisons
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Neq,
    // structure
    Concat,
    Repeat,
    BitSelect,
    PartSelect,
    // control flow
    Branch,
    CaseItem,
    // opaque
    Call,
}

/// Number of node kinds — the one-hot feature dimension of hw2vec.
pub const VOCAB_SIZE: usize = 45;

/// All kinds in index order.
pub const ALL_KINDS: [NodeKind; VOCAB_SIZE] = [
    NodeKind::Input,
    NodeKind::Output,
    NodeKind::Wire,
    NodeKind::Reg,
    NodeKind::Constant,
    NodeKind::And,
    NodeKind::Or,
    NodeKind::Xor,
    NodeKind::Xnor,
    NodeKind::Nand,
    NodeKind::Nor,
    NodeKind::Not,
    NodeKind::Buf,
    NodeKind::LogicalAnd,
    NodeKind::LogicalOr,
    NodeKind::LogicalNot,
    NodeKind::BitNot,
    NodeKind::Neg,
    NodeKind::RedAnd,
    NodeKind::RedOr,
    NodeKind::RedXor,
    NodeKind::RedNand,
    NodeKind::RedNor,
    NodeKind::RedXnor,
    NodeKind::Add,
    NodeKind::Sub,
    NodeKind::Mul,
    NodeKind::Div,
    NodeKind::Mod,
    NodeKind::Pow,
    NodeKind::Shl,
    NodeKind::Shr,
    NodeKind::Lt,
    NodeKind::Gt,
    NodeKind::Le,
    NodeKind::Ge,
    NodeKind::Eq,
    NodeKind::Neq,
    NodeKind::Concat,
    NodeKind::Repeat,
    NodeKind::BitSelect,
    NodeKind::PartSelect,
    NodeKind::Branch,
    NodeKind::CaseItem,
    NodeKind::Call,
];

impl NodeKind {
    /// One-hot feature index of this kind.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The kind at a given one-hot index.
    pub fn from_index(i: usize) -> Option<NodeKind> {
        ALL_KINDS.get(i).copied()
    }

    /// Whether this kind represents a named signal (vs an operation).
    pub fn is_signal(self) -> bool {
        matches!(
            self,
            NodeKind::Input | NodeKind::Output | NodeKind::Wire | NodeKind::Reg
        )
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::Input => "input",
            NodeKind::Output => "output",
            NodeKind::Wire => "wire",
            NodeKind::Reg => "reg",
            NodeKind::Constant => "const",
            NodeKind::And => "and",
            NodeKind::Or => "or",
            NodeKind::Xor => "xor",
            NodeKind::Xnor => "xnor",
            NodeKind::Nand => "nand",
            NodeKind::Nor => "nor",
            NodeKind::Not => "not",
            NodeKind::Buf => "buf",
            NodeKind::LogicalAnd => "land",
            NodeKind::LogicalOr => "lor",
            NodeKind::LogicalNot => "lnot",
            NodeKind::BitNot => "bitnot",
            NodeKind::Neg => "neg",
            NodeKind::RedAnd => "redand",
            NodeKind::RedOr => "redor",
            NodeKind::RedXor => "redxor",
            NodeKind::RedNand => "rednand",
            NodeKind::RedNor => "rednor",
            NodeKind::RedXnor => "redxnor",
            NodeKind::Add => "add",
            NodeKind::Sub => "sub",
            NodeKind::Mul => "mul",
            NodeKind::Div => "div",
            NodeKind::Mod => "mod",
            NodeKind::Pow => "pow",
            NodeKind::Shl => "shl",
            NodeKind::Shr => "shr",
            NodeKind::Lt => "lt",
            NodeKind::Gt => "gt",
            NodeKind::Le => "le",
            NodeKind::Ge => "ge",
            NodeKind::Eq => "eq",
            NodeKind::Neq => "neq",
            NodeKind::Concat => "concat",
            NodeKind::Repeat => "repeat",
            NodeKind::BitSelect => "bitsel",
            NodeKind::PartSelect => "partsel",
            NodeKind::Branch => "branch",
            NodeKind::CaseItem => "caseitem",
            NodeKind::Call => "call",
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, k) in ALL_KINDS.iter().enumerate() {
            assert_eq!(k.index(), i, "kind {k} has wrong index");
            assert_eq!(NodeKind::from_index(i), Some(*k));
        }
        assert_eq!(ALL_KINDS.len(), VOCAB_SIZE);
        assert_eq!(NodeKind::from_index(VOCAB_SIZE), None);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = ALL_KINDS.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), VOCAB_SIZE);
    }

    #[test]
    fn signal_classification() {
        assert!(NodeKind::Input.is_signal());
        assert!(NodeKind::Reg.is_signal());
        assert!(!NodeKind::Constant.is_signal());
        assert!(!NodeKind::Add.is_signal());
    }
}
