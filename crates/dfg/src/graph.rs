//! The hardware data-flow graph type.
//!
//! A [`Dfg`] is a rooted directed graph `G = (V, E)` as defined in §III-B of
//! the paper: nodes are signals, constants, or operations; a directed edge
//! `(i, j)` exists when the value of node `i` depends on node `j` (so edges
//! point from the circuit's output roots toward its input leaves).

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::nodekind::NodeKind;

/// Identifier of a node inside a [`Dfg`].
pub type NodeId = usize;

/// One node of a data-flow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The node's vocabulary kind (one-hot feature index source).
    pub kind: NodeKind,
    /// Human-readable label (signal name, constant value, operator) — kept
    /// for DOT export and debugging, never used as a model feature.
    pub label: String,
}

/// A rooted, directed hardware data-flow graph.
///
/// # Examples
///
/// ```
/// use gnn4ip_dfg::{Dfg, NodeKind};
///
/// let mut g = Dfg::new("demo");
/// let y = g.add_node(NodeKind::Output, "y");
/// let op = g.add_node(NodeKind::Xor, "xor");
/// let a = g.add_node(NodeKind::Input, "a");
/// let b = g.add_node(NodeKind::Input, "b");
/// g.add_edge(y, op);
/// g.add_edge(op, a);
/// g.add_edge(op, b);
/// g.add_root(y);
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dfg {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<(NodeId, NodeId)>,
    roots: Vec<NodeId>,
}

impl Dfg {
    /// Creates an empty graph with a design name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The design name this graph was extracted from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, label: impl Into<String>) -> NodeId {
        self.nodes.push(Node {
            kind,
            label: label.into(),
        });
        self.nodes.len() - 1
    }

    /// Adds a dependency edge `from → to` ("`from` depends on `to`").
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        assert!(
            from < self.nodes.len() && to < self.nodes.len(),
            "edge ({from},{to}) out of bounds"
        );
        self.edges.push((from, to));
    }

    /// Marks a node as a root (an output signal of the design).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn add_root(&mut self, id: NodeId) {
        assert!(id < self.nodes.len(), "root {id} out of bounds");
        if !self.roots.contains(&id) {
            self.roots.push(id);
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges `(from, to)`.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Root node ids (output signals).
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// One-hot feature index per node, in id order (input to hw2vec).
    pub fn kind_indices(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.kind.index()).collect()
    }

    /// Out-neighbors (dependencies) of a node.
    pub fn deps(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.edges
            .iter()
            .filter(move |(f, _)| *f == id)
            .map(|(_, t)| *t)
    }

    /// Nodes reachable from the roots along dependency edges (including the
    /// roots themselves), as a boolean mask.
    pub fn reachable_from_roots(&self) -> Vec<bool> {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for &(f, t) in &self.edges {
            adj[f].push(t);
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: VecDeque<NodeId> = self.roots.iter().copied().collect();
        for &r in &self.roots {
            seen[r] = true;
        }
        while let Some(n) = queue.pop_front() {
            for &m in &adj[n] {
                if !seen[m] {
                    seen[m] = true;
                    queue.push_back(m);
                }
            }
        }
        seen
    }

    /// Keeps only the nodes where `mask` is true, remapping ids and dropping
    /// dangling edges/roots. Returns the old→new id map (`None` = removed).
    pub fn retain_nodes(&mut self, mask: &[bool]) -> Vec<Option<NodeId>> {
        assert_eq!(mask.len(), self.nodes.len(), "mask length mismatch");
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut new_nodes = Vec::with_capacity(self.nodes.len());
        for (i, keep) in mask.iter().enumerate() {
            if *keep {
                remap[i] = Some(new_nodes.len());
                new_nodes.push(self.nodes[i].clone());
            }
        }
        self.nodes = new_nodes;
        self.edges = self
            .edges
            .iter()
            .filter_map(|&(f, t)| Some((remap[f]?, remap[t]?)))
            .collect();
        self.edges.sort_unstable();
        self.edges.dedup();
        self.roots = self.roots.iter().filter_map(|&r| remap[r]).collect();
        remap
    }

    /// Counts nodes per kind (index-aligned with the vocabulary).
    pub fn kind_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; crate::nodekind::VOCAB_SIZE];
        for n in &self.nodes {
            h[n.kind.index()] += 1;
        }
        h
    }

    /// Exports Graphviz DOT text for inspection.
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=TB;");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = if n.kind.is_signal() {
                "ellipse"
            } else if n.kind == NodeKind::Constant {
                "plaintext"
            } else {
                "box"
            };
            let peripheries = if self.roots.contains(&i) { 2 } else { 1 };
            let _ = writeln!(
                s,
                "  n{i} [label=\"{}\", shape={shape}, peripheries={peripheries}];",
                n.label.replace('"', "'")
            );
        }
        for &(f, t) in &self.edges {
            let _ = writeln!(s, "  n{f} -> n{t};");
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Dfg {
        // y -> op -> a ; orphan node d
        let mut g = Dfg::new("t");
        let y = g.add_node(NodeKind::Output, "y");
        let op = g.add_node(NodeKind::Not, "not");
        let a = g.add_node(NodeKind::Input, "a");
        let _d = g.add_node(NodeKind::Wire, "orphan");
        g.add_edge(y, op);
        g.add_edge(op, a);
        g.add_root(y);
        g
    }

    #[test]
    fn reachability_excludes_orphans() {
        let g = chain();
        let mask = g.reachable_from_roots();
        assert_eq!(mask, vec![true, true, true, false]);
    }

    #[test]
    fn retain_nodes_remaps_edges_and_roots() {
        let mut g = chain();
        let mask = g.reachable_from_roots();
        let remap = g.retain_nodes(&mask);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.roots(), &[0]);
        assert_eq!(remap[3], None);
    }

    #[test]
    fn duplicate_roots_are_ignored() {
        let mut g = Dfg::new("t");
        let y = g.add_node(NodeKind::Output, "y");
        g.add_root(y);
        g.add_root(y);
        assert_eq!(g.roots().len(), 1);
    }

    #[test]
    fn kind_histogram_counts() {
        let g = chain();
        let h = g.kind_histogram();
        assert_eq!(h[NodeKind::Output.index()], 1);
        assert_eq!(h[NodeKind::Not.index()], 1);
        assert_eq!(h[NodeKind::Input.index()], 1);
        assert_eq!(h[NodeKind::Wire.index()], 1);
    }

    #[test]
    fn dot_export_mentions_every_node() {
        let g = chain();
        let dot = g.to_dot();
        assert!(dot.contains("n0"));
        assert!(dot.contains("n3"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn deps_iterates_dependencies() {
        let g = chain();
        let d: Vec<_> = g.deps(0).collect();
        assert_eq!(d, vec![1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_validates() {
        let mut g = Dfg::new("t");
        let a = g.add_node(NodeKind::Wire, "a");
        g.add_edge(a, 7);
    }
}
