//! # gnn4ip-dfg
//!
//! Hardware data-flow-graph (DFG) extraction for the GNN4IP reproduction —
//! phases 3-5 of the paper's Fig. 2 pipeline (data-flow analysis, merge,
//! trim) on top of the `gnn4ip-hdl` front end.
//!
//! A [`Dfg`] is the rooted directed graph of §III-B: vertices are signals,
//! constants, and operations; a directed edge `(i, j)` exists when node `i`'s
//! value depends on node `j`. Roots are the design's output signals; leaves
//! are its inputs and constants.
//!
//! # Examples
//!
//! Extract the DFG of the paper's Fig. 1 full adder:
//!
//! ```
//! use gnn4ip_dfg::graph_from_verilog;
//!
//! let src = "
//!     module ADDER(input Num1, input Num2, input Cin,
//!                  output reg Sum, output reg Cout);
//!       always @(Num1, Num2, Cin) begin
//!         Sum <= ((Num1 ^ Num2) ^ Cin);
//!         Cout <= (((Num1 ^ Num2) && Cin) || (Num1 && Num2));
//!       end
//!     endmodule";
//! let g = graph_from_verilog(src, None)?;
//! assert_eq!(g.roots().len(), 2); // Sum, Cout
//! # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod extract;
mod graph;
mod nodekind;
mod pipeline;
mod trim;

pub use extract::extract;
pub use graph::{Dfg, Node, NodeId};
pub use nodekind::{NodeKind, ALL_KINDS, VOCAB_SIZE};
pub use pipeline::{graph_from_verilog, graph_with_report, PipelineReport};
pub use trim::{trim, TrimStats};
