//! ISCAS'85-style gate-level benchmark netlists.
//!
//! TrustHub distributes the obfuscated ISCAS'85 netlists the paper tests on
//! (Table III), but behind registration. We regenerate structural netlists
//! for the *same six functions* the benchmark suite implements, at the same
//! gate-count scale, from first principles:
//!
//! | ours | models | function (paper Table III) |
//! |------|--------|-----------------------------|
//! | [`c432`]  | c432  | 27-channel interrupt controller |
//! | [`c499`]  | c499  | 32-bit single-error-correcting  |
//! | [`c880`]  | c880  | 8-bit ALU                       |
//! | [`c1355`] | c1355 | 32-bit SEC (XORs expanded to NAND, as in the original suite) |
//! | [`c1908`] | c1908 | 16-bit single/double error detecting |
//! | [`c6288`] | c6288 | 16 × 16 multiplier (full-adder array) |
//!
//! Every netlist is a flat single module of gate primitives — exactly what a
//! reverse-engineered or synthesized firm IP looks like, which is the threat
//! model of §III-A.

use std::fmt::Write as _;

/// Emits gates for `z = a XOR b`, either as one `xor` or as the classic
/// 4-NAND expansion (used by [`c1355`], mirroring its historical relation to
/// c499).
struct GateEmitter {
    body: String,
    tmp: usize,
    xor_as_nand: bool,
}

impl GateEmitter {
    fn new(xor_as_nand: bool) -> Self {
        Self {
            body: String::new(),
            tmp: 0,
            xor_as_nand,
        }
    }

    fn fresh(&mut self) -> String {
        let n = format!("n{}", self.tmp);
        self.tmp += 1;
        let _ = writeln!(self.body, "  wire {n};");
        n
    }

    fn gate(&mut self, kind: &str, out: &str, ins: &[&str]) {
        let _ = writeln!(self.body, "  {kind} ({out}, {});", ins.join(", "));
    }

    fn xor2(&mut self, out: &str, a: &str, b: &str) {
        if self.xor_as_nand {
            let t0 = self.fresh();
            let t1 = self.fresh();
            let t2 = self.fresh();
            self.gate("nand", &t0, &[a, b]);
            self.gate("nand", &t1, &[a, &t0]);
            self.gate("nand", &t2, &[b, &t0]);
            self.gate("nand", out, &[&t1, &t2]);
        } else {
            self.gate("xor", out, &[a, b]);
        }
    }

    /// XOR tree over many inputs into `out`.
    ///
    /// # Panics
    ///
    /// Panics when `ins` is empty — every call site supplies at least
    /// one input wire.
    fn xor_tree(&mut self, out: &str, ins: &[String]) {
        match ins.len() {
            0 => panic!("empty xor tree"),
            1 => self.gate("buf", out, &[&ins[0]]),
            _ => {
                let mut level: Vec<String> = ins.to_vec();
                while level.len() > 2 {
                    let mut next = Vec::new();
                    for pair in level.chunks(2) {
                        if pair.len() == 2 {
                            let t = self.fresh();
                            self.xor2(&t, &pair[0], &pair[1]);
                            next.push(t);
                        } else {
                            next.push(pair[0].clone());
                        }
                    }
                    level = next;
                }
                if level.len() == 2 {
                    self.xor2(out, &level[0], &level[1]);
                } else {
                    self.gate("buf", out, &[&level[0]]);
                }
            }
        }
    }

    /// Full adder from gates: sum + carry.
    fn full_adder(&mut self, sum: &str, cout: &str, a: &str, b: &str, cin: &str) {
        let axb = self.fresh();
        let ab = self.fresh();
        let axb_c = self.fresh();
        self.xor2(&axb, a, b);
        self.xor2(sum, &axb, cin);
        self.gate("and", &ab, &[a, b]);
        self.gate("and", &axb_c, &[&axb, cin]);
        self.gate("or", cout, &[&ab, &axb_c]);
    }
}

fn module_header(name: &str, inputs: &[String], outputs: &[String]) -> String {
    let mut s = format!("module {name}(");
    let all: Vec<String> = inputs
        .iter()
        .map(|i| format!("input {i}"))
        .chain(outputs.iter().map(|o| format!("output {o}")))
        .collect();
    s.push_str(&all.join(", "));
    s.push_str(");\n");
    s
}

/// c432-class netlist: 27-channel (3 groups x 9) priority interrupt
/// controller.
pub fn c432() -> String {
    let mut e = GateEmitter::new(false);
    let inputs: Vec<String> = (0..9)
        .flat_map(|i| [format!("ra{i}"), format!("rb{i}"), format!("rc{i}")])
        .chain((0..9).map(|i| format!("m{i}")))
        .collect();
    let outputs: Vec<String> = (0..9)
        .map(|i| format!("g{i}"))
        .chain(["anyint".to_string()])
        .collect();
    // per-channel masked request per group, then cross-group OR,
    // then priority chain: g_i = req_i AND NOT(any higher request)
    let mut chan = Vec::new();
    for i in 0..9 {
        let ma = e.fresh();
        let mb = e.fresh();
        let mc = e.fresh();
        e.gate("and", &ma, &[&format!("ra{i}"), &format!("m{i}")]);
        e.gate("and", &mb, &[&format!("rb{i}"), &format!("m{i}")]);
        e.gate("and", &mc, &[&format!("rc{i}"), &format!("m{i}")]);
        let any = e.fresh();
        e.gate("or", &any, &[&ma, &mb, &mc]);
        chan.push(any);
    }
    // priority chain (channel 8 highest)
    let mut higher: Option<String> = None;
    for i in (0..9).rev() {
        match &higher {
            None => e.gate("buf", &format!("g{i}"), &[&chan[i]]),
            Some(h) => {
                let nh = e.fresh();
                e.gate("not", &nh, &[h]);
                e.gate("and", &format!("g{i}"), &[&chan[i], &nh]);
            }
        }
        let new_h = e.fresh();
        match &higher {
            None => e.gate("buf", &new_h, &[&chan[i]]),
            Some(h) => e.gate("or", &new_h, &[h, &chan[i]]),
        }
        higher = Some(new_h);
    }
    let chan_refs: Vec<String> = chan.clone();
    e.gate(
        "or",
        "anyint",
        &chan_refs.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut src = module_header("c432", &inputs, &outputs);
    src.push_str(&e.body);
    src.push_str("endmodule\n");
    src
}

/// Shared builder for the SEC netlists (c499 class, and c1355 with NAND
/// expansion): `width`-bit data + parity check bits, syndrome decode, and
/// corrected outputs.
fn sec_netlist(name: &str, width: usize, check_bits: usize, xor_as_nand: bool) -> String {
    let mut e = GateEmitter::new(xor_as_nand);
    let inputs: Vec<String> = (0..width)
        .map(|i| format!("d{i}"))
        .chain((0..check_bits).map(|i| format!("p{i}")))
        .collect();
    let outputs: Vec<String> = (0..width).map(|i| format!("q{i}")).collect();
    // syndrome bit j = p_j XOR parity(data bits whose index has bit j set)
    let mut syndrome = Vec::new();
    for j in 0..check_bits {
        let covered: Vec<String> = (0..width)
            .filter(|i| (i + 1) & (1 << j) != 0)
            .map(|i| format!("d{i}"))
            .chain([format!("p{j}")])
            .collect();
        let s = e.fresh();
        e.xor_tree(&s, &covered);
        syndrome.push(s);
    }
    // inverted syndrome lines for the decoder
    let mut nsyn = Vec::new();
    for s in &syndrome {
        let ns = e.fresh();
        e.gate("not", &ns, &[s]);
        nsyn.push(ns);
    }
    // per-bit correction: flip_i = AND over syndrome pattern of (i+1)
    for i in 0..width {
        let pattern = i + 1;
        let terms: Vec<&str> = (0..check_bits)
            .map(|j| {
                if pattern & (1 << j) != 0 {
                    syndrome[j].as_str()
                } else {
                    nsyn[j].as_str()
                }
            })
            .collect();
        let flip = e.fresh();
        e.gate("and", &flip, &terms);
        e.xor2(&format!("q{i}"), &format!("d{i}"), &flip);
    }
    let mut src = module_header(name, &inputs, &outputs);
    src.push_str(&e.body);
    src.push_str("endmodule\n");
    src
}

/// c499-class netlist: 32-bit single-error-correcting circuit (XOR trees +
/// syndrome decoder).
pub fn c499() -> String {
    sec_netlist("c499", 32, 6, false)
}

/// c1355-class netlist: the same SEC function as [`c499`] with every XOR
/// expanded into its 4-NAND equivalent — the historical c499/c1355 relation.
pub fn c1355() -> String {
    sec_netlist("c1355", 32, 6, true)
}

/// c1908-class netlist: 16-bit single-error-correcting / double-error-
/// detecting circuit (SEC plus an overall-parity DED flag).
pub fn c1908() -> String {
    let mut src = sec_netlist("c1908_sec", 16, 5, false);
    // wrap with an overall parity for double-error detection
    let mut e = GateEmitter::new(false);
    let inputs: Vec<String> = (0..16)
        .map(|i| format!("d{i}"))
        .chain((0..5).map(|i| format!("p{i}")))
        .chain(["pall".to_string()])
        .collect();
    let outputs: Vec<String> = (0..16)
        .map(|i| format!("q{i}"))
        .chain(["ded".to_string()])
        .collect();
    let mut hdr = module_header("c1908", &inputs, &outputs);
    // instantiate the SEC core
    let conns: Vec<String> = (0..16)
        .map(|i| format!(".d{i}(d{i})"))
        .chain((0..5).map(|i| format!(".p{i}(p{i})")))
        .chain((0..16).map(|i| format!(".q{i}(q{i})")))
        .collect();
    let _ = writeln!(hdr, "  c1908_sec core({});", conns.join(", "));
    // ded = (syndrome nonzero) XOR overall-parity mismatch — approximated
    // structurally: parity over all received bits vs pall
    let all: Vec<String> = (0..16)
        .map(|i| format!("d{i}"))
        .chain((0..5).map(|i| format!("p{i}")))
        .collect();
    let par = e.fresh();
    e.xor_tree(&par, &all);
    e.xor2("ded", &par, "pall");
    hdr.push_str(&e.body);
    hdr.push_str("endmodule\n");
    src.push_str(&hdr);
    src
}

/// c880-class netlist: 8-bit ALU (ripple add/sub, AND/OR/XOR, function
/// select muxes, zero flag).
pub fn c880() -> String {
    let mut e = GateEmitter::new(false);
    let inputs: Vec<String> = (0..8)
        .map(|i| format!("a{i}"))
        .chain((0..8).map(|i| format!("b{i}")))
        .chain(["s0".to_string(), "s1".to_string(), "sub".to_string()])
        .collect();
    let outputs: Vec<String> = (0..8)
        .map(|i| format!("f{i}"))
        .chain(["cout".to_string(), "zero".to_string()])
        .collect();
    // b xor sub (for subtraction), ripple adder
    let mut carry = "sub".to_string();
    let mut sums = Vec::new();
    for i in 0..8 {
        let bx = e.fresh();
        e.xor2(&bx, &format!("b{i}"), "sub");
        let sum = e.fresh();
        let c = e.fresh();
        let a = format!("a{i}");
        let carry_in = carry.clone();
        e.full_adder(&sum, &c, &a, &bx, &carry_in);
        sums.push(sum);
        carry = c;
    }
    e.gate("buf", "cout", &[&carry]);
    // logic units + 4:1 mux per bit: s1s0 = 00 add, 01 and, 10 or, 11 xor
    let ns0 = e.fresh();
    let ns1 = e.fresh();
    e.gate("not", &ns0, &["s0"]);
    e.gate("not", &ns1, &["s1"]);
    let mut fbits = Vec::new();
    for (i, sum) in sums.iter().enumerate() {
        let (a, b) = (format!("a{i}"), format!("b{i}"));
        let andu = e.fresh();
        let oru = e.fresh();
        let xoru = e.fresh();
        e.gate("and", &andu, &[&a, &b]);
        e.gate("or", &oru, &[&a, &b]);
        e.xor2(&xoru, &a, &b);
        let t_add = e.fresh();
        let t_and = e.fresh();
        let t_or = e.fresh();
        let t_xor = e.fresh();
        e.gate("and", &t_add, &[sum, &ns1, &ns0]);
        e.gate("and", &t_and, &[&andu, &ns1, "s0"]);
        e.gate("and", &t_or, &[&oru, "s1", &ns0]);
        e.gate("and", &t_xor, &[&xoru, "s1", "s0"]);
        e.gate("or", &format!("f{i}"), &[&t_add, &t_and, &t_or, &t_xor]);
        fbits.push(format!("f{i}"));
    }
    // zero flag
    let anyf = e.fresh();
    e.gate(
        "or",
        &anyf,
        &fbits.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    e.gate("not", "zero", &[&anyf]);
    let mut src = module_header("c880", &inputs, &outputs);
    src.push_str(&e.body);
    src.push_str("endmodule\n");
    src
}

/// c6288-class netlist: 16 x 16 array multiplier built from AND partial
/// products and a carry-save full-adder array (~2400 gates).
pub fn c6288() -> String {
    c6288_sized(16)
}

/// Array multiplier with configurable operand width (the c6288 family;
/// width 16 reproduces the benchmark scale).
pub fn c6288_sized(width: usize) -> String {
    let mut e = GateEmitter::new(false);
    let inputs: Vec<String> = (0..width)
        .map(|i| format!("x{i}"))
        .chain((0..width).map(|i| format!("y{i}")))
        .collect();
    let outputs: Vec<String> = (0..2 * width).map(|i| format!("p{i}")).collect();
    // partial products
    let mut pp: Vec<Vec<String>> = Vec::new();
    for j in 0..width {
        let mut row = Vec::new();
        for i in 0..width {
            let t = e.fresh();
            e.gate("and", &t, &[&format!("x{i}"), &format!("y{j}")]);
            row.push(t);
        }
        pp.push(row);
    }
    // Ripple rows of full adders (school-book array).
    //
    // Invariant: entering row `j`, `acc[i]` carries the partial sum of
    // weight `j + i`. Row `j` adds `pp[j][i]` (weight `j + i`), emits its
    // low bit as final output `p_j`, and shifts up for the next row.
    let zero = e.fresh();
    e.gate("xor", &zero, &["x0", "x0"]);
    e.gate("buf", "p0", &[&pp[0][0]]);
    let mut acc: Vec<String> = pp[0][1..].to_vec();
    acc.push(zero.clone());
    for (j, pp_j) in pp.iter().enumerate().skip(1) {
        let mut carry: Option<String> = None;
        let mut next: Vec<String> = Vec::new();
        for i in 0..width {
            let a = acc[i].clone();
            let b = pp_j[i].clone();
            let s = e.fresh();
            match carry {
                None => {
                    let c = e.fresh();
                    // half adder in the carry-free column
                    e.xor2(&s, &a, &b);
                    e.gate("and", &c, &[&a, &b]);
                    carry = Some(c);
                }
                Some(cin) => {
                    let c = e.fresh();
                    e.full_adder(&s, &c, &a, &b, &cin);
                    carry = Some(c);
                }
            }
            next.push(s);
        }
        // the low bit of this row is final output bit j
        e.gate("buf", &format!("p{j}"), &[&next[0]]);
        let mut shifted: Vec<String> = next[1..].to_vec();
        // g4check: allow(unwrap-in-lib): width >= 2, so the adder row above always ran at least once and set the carry
        shifted.push(carry.expect("carry chain"));
        if j == width - 1 {
            for (k, s) in shifted.iter().enumerate() {
                let bit = width + k;
                if bit < 2 * width {
                    e.gate("buf", &format!("p{bit}"), &[s]);
                }
            }
        }
        acc = shifted;
    }
    let mut src = module_header("c6288", &inputs, &outputs);
    src.push_str(&e.body);
    src.push_str("endmodule\n");
    src
}

/// Seeded synthetic gate-level netlist (random layered gate DAG) — fills the
/// netlist corpus beyond the six named benchmarks.
pub fn synth_netlist(seed: u64, gates: usize) -> String {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xD1B54A32D192ED03));
    let n_in = rng.gen_range(6..14);
    let n_out = rng.gen_range(3..7);
    let inputs: Vec<String> = (0..n_in).map(|i| format!("i{i}")).collect();
    let outputs: Vec<String> = (0..n_out).map(|i| format!("o{i}")).collect();
    let mut e = GateEmitter::new(false);
    let mut avail = inputs.clone();
    for _ in 0..gates {
        let t = e.fresh();
        let kind = ["and", "or", "nand", "nor", "xor", "xnor", "not"][rng.gen_range(0..7usize)];
        // chain each gate off the most recent net so the whole DAG stays
        // reachable from the outputs (otherwise trim would discard most of it)
        // g4check: allow(unwrap-in-lib): avail starts as the non-empty input list and only grows
        let a = avail.last().expect("inputs nonempty").clone();
        if kind == "not" {
            e.gate("not", &t, &[&a]);
        } else {
            let b = avail[rng.gen_range(0..avail.len())].clone();
            e.gate(kind, &t, &[&a, &b]);
        }
        avail.push(t);
    }
    for o in &outputs {
        let a = avail[avail.len() - 1 - rng.gen_range(0..avail.len() / 2)].clone();
        e.gate("buf", o, &[&a]);
    }
    let mut src = module_header(&format!("synthnet_{seed}"), &inputs, &outputs);
    src.push_str(&e.body);
    src.push_str("endmodule\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_dfg::graph_from_verilog;
    use gnn4ip_hdl::{elaborate, Evaluator};
    use std::collections::HashMap;

    fn eval_of(src: &str, top: &str) -> Evaluator {
        Evaluator::new(&elaborate(src, Some(top)).expect("flat")).expect("eval")
    }

    fn bits(prefix: &str, width: usize, value: u64) -> Vec<(String, u64)> {
        (0..width)
            .map(|i| (format!("{prefix}{i}"), (value >> i) & 1))
            .collect()
    }

    #[test]
    fn c880_adds_and_subtracts() {
        let e = eval_of(&c880(), "c880");
        let run = |a: u64, b: u64, s0: u64, s1: u64, sub: u64| {
            let mut ins: HashMap<String, u64> = HashMap::new();
            ins.extend(bits("a", 8, a));
            ins.extend(bits("b", 8, b));
            ins.insert("s0".to_string(), s0);
            ins.insert("s1".to_string(), s1);
            ins.insert("sub".to_string(), sub);
            let out = e.eval_outputs(&ins).expect("runs");
            (0..8).fold(0u64, |acc, i| acc | (out[&format!("f{i}")] << i))
        };
        assert_eq!(run(100, 27, 0, 0, 0), 127); // add
        assert_eq!(run(100, 27, 0, 0, 1), 73); // sub
        assert_eq!(run(0b1100, 0b1010, 1, 0, 0), 0b1000); // and
        assert_eq!(run(0b1100, 0b1010, 0, 1, 0), 0b1110); // or
        assert_eq!(run(0b1100, 0b1010, 1, 1, 0), 0b0110); // xor
    }

    #[test]
    fn c880_zero_flag() {
        let e = eval_of(&c880(), "c880");
        let mut ins: HashMap<String, u64> = HashMap::new();
        ins.extend(bits("a", 8, 55));
        ins.extend(bits("b", 8, 55));
        ins.insert("s0".to_string(), 0);
        ins.insert("s1".to_string(), 0);
        ins.insert("sub".to_string(), 1);
        let out = e.eval_outputs(&ins).expect("runs");
        assert_eq!(out["zero"], 1, "55 - 55 must set zero");
    }

    #[test]
    fn c499_corrects_single_errors() {
        let e = eval_of(&c499(), "c499");
        let data = 0xDEADBEEFu64 & 0xFFFF_FFFF;
        // compute correct parities first (send with no error)
        let mut parities = vec![0u64; 6];
        for (j, parity) in parities.iter_mut().enumerate() {
            let mut p = 0u64;
            for i in 0..32 {
                if (i + 1) & (1usize << j) != 0 {
                    p ^= (data >> i) & 1;
                }
            }
            *parity = p;
        }
        let run = |d: u64, ps: &[u64]| {
            let mut ins: HashMap<String, u64> = HashMap::new();
            ins.extend(bits("d", 32, d));
            for (j, p) in ps.iter().enumerate() {
                ins.insert(format!("p{j}"), *p);
            }
            let out = e.eval_outputs(&ins).expect("runs");
            (0..32).fold(0u64, |acc, i| acc | (out[&format!("q{i}")] << i))
        };
        assert_eq!(run(data, &parities), data, "clean word passes through");
        for flip in [0usize, 7, 15, 31] {
            let corrupted = data ^ (1 << flip);
            assert_eq!(run(corrupted, &parities), data, "flip bit {flip}");
        }
    }

    #[test]
    fn c1355_matches_c499_function() {
        let e499 = eval_of(&c499(), "c499");
        let e1355 = eval_of(&c1355(), "c1355");
        let mut ins: HashMap<String, u64> = HashMap::new();
        ins.extend(bits("d", 32, 0x12345678));
        for j in 0..6 {
            ins.insert(format!("p{j}"), (j % 2) as u64);
        }
        assert_eq!(
            e499.eval_outputs(&ins).expect("c499"),
            e1355.eval_outputs(&ins).expect("c1355"),
            "c1355 must be the NAND expansion of c499"
        );
    }

    #[test]
    fn c1355_is_larger_than_c499() {
        let g499 = graph_from_verilog(&c499(), Some("c499")).expect("c499");
        let g1355 = graph_from_verilog(&c1355(), Some("c1355")).expect("c1355");
        assert!(
            g1355.node_count() > g499.node_count() * 2,
            "{} vs {}",
            g1355.node_count(),
            g499.node_count()
        );
    }

    #[test]
    fn c6288_multiplies() {
        let src = c6288_sized(4); // 4x4 for the truth check
        let e = eval_of(&src, "c6288");
        for (x, y) in [(0u64, 0u64), (15, 15), (7, 9), (12, 5), (1, 13)] {
            let mut ins: HashMap<String, u64> = HashMap::new();
            ins.extend(bits("x", 4, x));
            ins.extend(bits("y", 4, y));
            let out = e.eval_outputs(&ins).expect("runs");
            let p = (0..8).fold(0u64, |acc, i| acc | (out[&format!("p{i}")] << i));
            assert_eq!(p, x * y, "{x} * {y}");
        }
    }

    #[test]
    fn c6288_full_width_is_benchmark_scale() {
        let g = graph_from_verilog(&c6288(), Some("c6288")).expect("c6288");
        assert!(
            g.node_count() > 1500,
            "c6288-scale netlist too small: {}",
            g.node_count()
        );
    }

    #[test]
    fn c432_prioritizes_channels() {
        let e = eval_of(&c432(), "c432");
        let mut ins: HashMap<String, u64> = HashMap::new();
        for i in 0..9 {
            ins.insert(format!("ra{i}"), 0);
            ins.insert(format!("rb{i}"), 0);
            ins.insert(format!("rc{i}"), 0);
            ins.insert(format!("m{i}"), 1);
        }
        ins.insert("ra2".to_string(), 1);
        ins.insert("rb7".to_string(), 1);
        let out = e.eval_outputs(&ins).expect("runs");
        assert_eq!(out["g7"], 1, "higher channel wins");
        assert_eq!(out["g2"], 0, "lower channel suppressed");
        assert_eq!(out["anyint"], 1);
    }

    #[test]
    fn c1908_flags_double_errors() {
        let e = eval_of(&c1908(), "c1908");
        let mut ins: HashMap<String, u64> = HashMap::new();
        ins.extend(bits("d", 16, 0xABCD));
        for j in 0..5 {
            ins.insert(format!("p{j}"), 0);
        }
        // overall parity of all 21 received bits
        let par: u64 = (0..16).map(|i| (0xABCDu64 >> i) & 1).sum::<u64>() % 2;
        ins.insert("pall".to_string(), par);
        let out = e.eval_outputs(&ins).expect("runs");
        assert_eq!(out["ded"], 0, "consistent parity, no DED flag");
        ins.insert("pall".to_string(), par ^ 1);
        let out = e.eval_outputs(&ins).expect("runs");
        assert_eq!(out["ded"], 1, "parity mismatch raises DED");
    }

    #[test]
    fn synth_netlists_extract_at_scale() {
        for seed in 0..5u64 {
            let src = synth_netlist(seed, 200);
            let g = graph_from_verilog(&src, None).expect("netlist");
            assert!(g.node_count() > 100, "seed {seed}: {}", g.node_count());
        }
    }
}
