//! Netlist obfuscation transforms (the Table III workload).
//!
//! "Obfuscation complicates the circuit and confuses reverse engineering but
//! does not change the behavior of the circuit." These are the standard
//! structural moves found in the TrustHub obfuscated-ISCAS'85 benchmarks:
//!
//! - wire renaming
//! - buffer-chain insertion on internal nets
//! - double-inverter insertion (`w → not not w`)
//! - gate decomposition via De Morgan (`and → nand + not`, `or → nor + not`,
//!   `xor → 4 nand`)
//! - fan-out duplication (clone a gate so each sink has a private driver)
//! - dummy logic guarded by an always-true/false net (key-style camouflage)
//!
//! Every transform is function-preserving; tests verify against the
//! gate-level evaluation oracle.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gnn4ip_hdl::{parse, preprocess, Expr, GateInstance, GateKind, Item, Module, NetKind};

use crate::emit::emit_module;

/// Obfuscation intensity.
#[derive(Debug, Clone, PartialEq)]
pub struct ObfuscationConfig {
    /// Probability of decomposing an eligible gate.
    pub decompose_prob: f64,
    /// Probability of inserting a double inverter after a gate output.
    pub double_inv_prob: f64,
    /// Number of buffer chains to insert.
    pub buffer_chains: usize,
    /// Number of dummy key-guarded gates to add.
    pub dummy_gates: usize,
    /// Rename internal wires.
    pub rename: bool,
}

impl Default for ObfuscationConfig {
    fn default() -> Self {
        Self {
            decompose_prob: 0.3,
            double_inv_prob: 0.2,
            buffer_chains: 4,
            dummy_gates: 3,
            rename: true,
        }
    }
}

/// Produces an obfuscated instance of a gate-level netlist.
///
/// Variant 0 returns the input unchanged; other variants apply a seeded
/// transform stream.
///
/// # Errors
///
/// Returns the underlying parse error if `source` is not valid Verilog.
pub fn obfuscate_netlist(
    source: &str,
    variant: u64,
    config: &ObfuscationConfig,
) -> Result<String, gnn4ip_hdl::ParseVerilogError> {
    if variant == 0 {
        return Ok(source.to_string());
    }
    let unit = parse(&preprocess(source, &Default::default())?)?;
    let mut rng = StdRng::seed_from_u64(variant.wrapping_mul(0xB5297A4D3F84D5B5));
    let mut out = String::new();
    for module in &unit.modules {
        let obf = obfuscate_module(module, &mut rng, config);
        out.push_str(&emit_module(&obf));
        out.push('\n');
    }
    Ok(out)
}

struct WireMint {
    counter: u32,
    salt: u32,
}

impl WireMint {
    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("obf_{}_{}", self.salt, self.counter)
    }
}

fn obfuscate_module(module: &Module, rng: &mut StdRng, config: &ObfuscationConfig) -> Module {
    let mut m = module.clone();
    let mut mint = WireMint {
        counter: 0,
        salt: rng.gen_range(0..1_000_000),
    };

    // 1. gate decomposition + double-inverter insertion
    let mut new_items: Vec<Item> = Vec::new();
    let mut decls: Vec<Item> = Vec::new();
    for item in &m.items {
        match item {
            Item::Gate(g) if rng.gen_bool(config.decompose_prob) => {
                decompose_gate(g, &mut new_items, &mut decls, &mut mint);
            }
            Item::Gate(g) if rng.gen_bool(config.double_inv_prob) => {
                // out = g(...) becomes t = g(...); t2 = ~t; out = ~t2
                let (outs, ins) = g.split_ports();
                if outs.len() == 1 {
                    let t = mint.fresh();
                    let t2 = mint.fresh();
                    for w in [&t, &t2] {
                        decls.push(wire_decl(w));
                    }
                    let mut conns = vec![Expr::ident(&t)];
                    conns.extend(ins.iter().map(|e| (*e).clone()));
                    new_items.push(Item::Gate(GateInstance {
                        kind: g.kind,
                        name: None,
                        conns,
                    }));
                    new_items.push(gate2(GateKind::Not, &t2, &t));
                    new_items.push(gate2(GateKind::Not, &expr_name(outs[0]), &t2));
                } else {
                    new_items.push(item.clone());
                }
            }
            other => new_items.push(other.clone()),
        }
    }
    m.items = decls;
    m.items.extend(new_items);

    // 2. buffer chains on random internal wires
    let internal: Vec<String> = m
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Decl {
                name, range: None, ..
            } => Some(name.clone()),
            _ => None,
        })
        .collect();
    if !internal.is_empty() {
        for _ in 0..config.buffer_chains {
            // pick a wire, reroute one *reader* through a buffer chain: since
            // rerouting readers needs use-site rewriting, we instead add a
            // chain hanging off the wire feeding a dummy (trimmed) sink plus
            // a live double-buffer on a fresh tap used by a dummy output-less
            // gate — simplest sound variant: chain that feeds nothing.
            let src = internal[rng.gen_range(0..internal.len())].clone();
            let mut prev = src;
            for _ in 0..rng.gen_range(2..5) {
                let t = mint.fresh();
                m.items.push(wire_decl(&t));
                m.items.push(gate2(GateKind::Buf, &t, &prev));
                prev = t;
            }
        }
    }

    // 3. dummy key-guarded logic: key = in0 OR NOT in0 (always 1), junk
    //    gates combined with AND(key) so downstream values are unchanged —
    //    attached to a fresh net that feeds a chain (camouflage noise).
    let first_input = m.inputs().first().map(|s| s.to_string());
    if let Some(inp) = first_input {
        let ninp = mint.fresh();
        let key = mint.fresh();
        m.items.push(wire_decl(&ninp));
        m.items.push(wire_decl(&key));
        m.items.push(gate2(GateKind::Not, &ninp, &inp));
        m.items.push(Item::Gate(GateInstance {
            kind: GateKind::Or,
            name: None,
            conns: vec![Expr::ident(&key), Expr::ident(&inp), Expr::ident(&ninp)],
        }));
        for _ in 0..config.dummy_gates {
            let t = mint.fresh();
            m.items.push(wire_decl(&t));
            m.items.push(Item::Gate(GateInstance {
                kind: GateKind::And,
                name: None,
                conns: vec![Expr::ident(&t), Expr::ident(&key), Expr::ident(&inp)],
            }));
        }
    }

    // 4. wire renaming
    if config.rename {
        let ports: std::collections::HashSet<&str> =
            m.ports.iter().map(|p| p.name.as_str()).collect();
        let mapping: std::collections::HashMap<String, String> = m
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Decl { name, .. } if !ports.contains(name.as_str()) => Some((
                    name.clone(),
                    format!("net_{}_{}", mint.salt, rng.gen_range(0..10_000_000u32)),
                )),
                _ => None,
            })
            .collect();
        m = rename_gate_module(&m, &mapping);
    }
    m
}

fn wire_decl(name: &str) -> Item {
    Item::Decl {
        kind: NetKind::Wire,
        name: name.to_string(),
        range: None,
        init: None,
    }
}

fn gate2(kind: GateKind, out: &str, input: &str) -> Item {
    Item::Gate(GateInstance {
        kind,
        name: None,
        conns: vec![Expr::ident(out), Expr::ident(input)],
    })
}

fn expr_name(e: &Expr) -> String {
    match e {
        Expr::Ident(n) => n.clone(),
        other => crate::emit::emit_expr(other),
    }
}

/// Decomposes a gate into a function-equivalent network.
fn decompose_gate(
    g: &GateInstance,
    items: &mut Vec<Item>,
    decls: &mut Vec<Item>,
    mint: &mut WireMint,
) {
    let (outs, ins) = g.split_ports();
    // only decompose the canonical 2-input single-output shapes
    if outs.len() != 1 || ins.len() != 2 {
        items.push(Item::Gate(g.clone()));
        return;
    }
    let out = expr_name(outs[0]);
    let a = expr_name(ins[0]);
    let b = expr_name(ins[1]);
    match g.kind {
        GateKind::And => {
            // and = not(nand)
            let t = mint.fresh();
            decls.push(wire_decl(&t));
            items.push(Item::Gate(GateInstance {
                kind: GateKind::Nand,
                name: None,
                conns: vec![Expr::ident(&t), Expr::ident(&a), Expr::ident(&b)],
            }));
            items.push(gate2(GateKind::Not, &out, &t));
        }
        GateKind::Or => {
            // or = not(nor)
            let t = mint.fresh();
            decls.push(wire_decl(&t));
            items.push(Item::Gate(GateInstance {
                kind: GateKind::Nor,
                name: None,
                conns: vec![Expr::ident(&t), Expr::ident(&a), Expr::ident(&b)],
            }));
            items.push(gate2(GateKind::Not, &out, &t));
        }
        GateKind::Xor => {
            // 4-nand xor
            let t0 = mint.fresh();
            let t1 = mint.fresh();
            let t2 = mint.fresh();
            for w in [&t0, &t1, &t2] {
                decls.push(wire_decl(w));
            }
            let nand = |o: &str, x: &str, y: &str| {
                Item::Gate(GateInstance {
                    kind: GateKind::Nand,
                    name: None,
                    conns: vec![Expr::ident(o), Expr::ident(x), Expr::ident(y)],
                })
            };
            items.push(nand(&t0, &a, &b));
            items.push(nand(&t1, &a, &t0));
            items.push(nand(&t2, &b, &t0));
            items.push(nand(&out, &t1, &t2));
        }
        GateKind::Nand => {
            // nand = not(and)
            let t = mint.fresh();
            decls.push(wire_decl(&t));
            items.push(Item::Gate(GateInstance {
                kind: GateKind::And,
                name: None,
                conns: vec![Expr::ident(&t), Expr::ident(&a), Expr::ident(&b)],
            }));
            items.push(gate2(GateKind::Not, &out, &t));
        }
        GateKind::Nor => {
            let t = mint.fresh();
            decls.push(wire_decl(&t));
            items.push(Item::Gate(GateInstance {
                kind: GateKind::Or,
                name: None,
                conns: vec![Expr::ident(&t), Expr::ident(&a), Expr::ident(&b)],
            }));
            items.push(gate2(GateKind::Not, &out, &t));
        }
        GateKind::Xnor => {
            let t = mint.fresh();
            decls.push(wire_decl(&t));
            items.push(Item::Gate(GateInstance {
                kind: GateKind::Xor,
                name: None,
                conns: vec![Expr::ident(&t), Expr::ident(&a), Expr::ident(&b)],
            }));
            items.push(gate2(GateKind::Not, &out, &t));
        }
        GateKind::Not | GateKind::Buf => items.push(Item::Gate(g.clone())),
    }
}

fn rename_gate_module(m: &Module, mapping: &std::collections::HashMap<String, String>) -> Module {
    let rename = |n: &str| mapping.get(n).cloned().unwrap_or_else(|| n.to_string());
    let mut out = m.clone();
    for item in &mut out.items {
        match item {
            Item::Decl { name, .. } => *name = rename(name),
            Item::Gate(g) => {
                for c in &mut g.conns {
                    if let Expr::Ident(n) = c {
                        *c = Expr::Ident(rename(n));
                    }
                }
            }
            Item::Assign { lhs, rhs } => {
                if let Expr::Ident(n) = lhs {
                    *lhs = Expr::Ident(rename(n));
                }
                if let Expr::Ident(n) = rhs {
                    *rhs = Expr::Ident(rename(n));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iscas;
    use gnn4ip_hdl::{elaborate, Evaluator};
    use std::collections::HashMap;

    fn assert_obfuscation_equivalent(src: &str, top: &str, variants: u64) {
        let base_flat = elaborate(src, Some(top)).expect("base flat");
        let base = Evaluator::new(&base_flat).expect("base eval");
        let inputs: Vec<String> = base_flat.inputs().iter().map(|s| s.to_string()).collect();
        let stimuli: Vec<HashMap<String, u64>> = (0..8u64)
            .map(|k| {
                inputs
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (n.clone(), (k >> (i % 4)) & 1))
                    .collect()
            })
            .collect();
        for v in 1..=variants {
            let obf = obfuscate_netlist(src, v, &ObfuscationConfig::default()).expect("obfuscates");
            assert_ne!(obf, src, "variant {v} unchanged");
            let ev =
                Evaluator::new(&elaborate(&obf, Some(top)).expect("obf flat")).expect("obf eval");
            for stim in &stimuli {
                assert_eq!(
                    base.eval_outputs(stim).expect("base"),
                    ev.eval_outputs(stim).expect("obf"),
                    "variant {v} diverges"
                );
            }
        }
    }

    #[test]
    fn full_adder_netlist_obfuscation_is_equivalent() {
        assert_obfuscation_equivalent(
            "module fa(input a, input b, input cin, output sum, output cout);
               wire t1;
               wire t2;
               wire t3;
               xor (t1, a, b);
               and (t2, a, b);
               and (t3, t1, cin);
               xor (sum, t1, cin);
               or (cout, t3, t2);
             endmodule",
            "fa",
            10,
        );
    }

    #[test]
    fn c880_obfuscation_is_equivalent_on_samples() {
        let src = iscas::c880();
        let base = Evaluator::new(&elaborate(&src, Some("c880")).expect("flat")).expect("eval");
        let obf = obfuscate_netlist(&src, 5, &ObfuscationConfig::default()).expect("obf");
        let ev = Evaluator::new(&elaborate(&obf, Some("c880")).expect("flat")).expect("eval");
        let mut ins: HashMap<String, u64> = HashMap::new();
        for i in 0..8 {
            ins.insert(format!("a{i}"), ((0xB7 >> i) & 1) as u64);
            ins.insert(format!("b{i}"), ((0x2C >> i) & 1) as u64);
        }
        ins.insert("s0".to_string(), 0);
        ins.insert("s1".to_string(), 0);
        ins.insert("sub".to_string(), 0);
        assert_eq!(
            base.eval_outputs(&ins).expect("base"),
            ev.eval_outputs(&ins).expect("obf")
        );
    }

    #[test]
    fn obfuscation_grows_the_netlist() {
        let src = iscas::c432();
        let obf = obfuscate_netlist(
            &src,
            3,
            &ObfuscationConfig {
                decompose_prob: 0.8,
                ..ObfuscationConfig::default()
            },
        )
        .expect("obf");
        let g0 = gnn4ip_dfg::graph_from_verilog(&src, Some("c432")).expect("g0");
        let g1 = gnn4ip_dfg::graph_from_verilog(&obf, Some("c432")).expect("g1");
        assert!(
            g1.node_count() > g0.node_count(),
            "{} !> {}",
            g1.node_count(),
            g0.node_count()
        );
    }

    #[test]
    fn variant_zero_is_identity() {
        let src = iscas::c432();
        assert_eq!(
            obfuscate_netlist(&src, 0, &ObfuscationConfig::default()).expect("ok"),
            src
        );
    }

    #[test]
    fn variants_are_distinct() {
        let src = iscas::c432();
        let a = obfuscate_netlist(&src, 1, &ObfuscationConfig::default()).expect("a");
        let b = obfuscate_netlist(&src, 2, &ObfuscationConfig::default()).expect("b");
        assert_ne!(a, b);
    }
}
