//! Corpus assembly: designs → instances → DFGs → labeled pairs.
//!
//! Mirrors §IV-A of the paper: a collection of distinct circuit designs with
//! several instances each (RTL codes or netlists), from which *similar*
//! pairs (two instances of one design = piracy) and *different* pairs
//! (instances of two designs = no piracy) are formed, then split 80/20 into
//! train and test sets.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use gnn4ip_dfg::{graph_from_verilog, Dfg};
use gnn4ip_hdl::{elaborate, Evaluator, ParseVerilogError};

use crate::designs::{netlist_designs, rtl_designs, Design, Level, SynthSize};
use crate::obfuscate::{obfuscate_netlist, ObfuscationConfig};
use crate::variation::{vary_design, VariationConfig};

/// Specification of a corpus to build.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Abstraction level.
    pub level: Level,
    /// Number of distinct designs.
    pub n_designs: usize,
    /// Instances generated per design (including the canonical variant 0).
    pub instances_per_design: usize,
    /// Size of synthetic fill designs.
    pub size: SynthSize,
    /// Gate count for synthetic netlists.
    pub netlist_gates: usize,
    /// Master seed.
    pub seed: u64,
    /// Verify each variant of a verifiable design against the evaluation
    /// oracle on sampled stimuli (slower; catches transform bugs).
    pub verify: bool,
}

impl CorpusSpec {
    /// A small RTL corpus for tests and examples.
    pub fn rtl_small() -> Self {
        Self {
            level: Level::Rtl,
            n_designs: 8,
            instances_per_design: 4,
            size: SynthSize::Small,
            netlist_gates: 120,
            seed: 7,
            verify: false,
        }
    }

    /// The paper-scale RTL corpus: 50 designs, ~390 instances.
    pub fn rtl_paper() -> Self {
        Self {
            level: Level::Rtl,
            n_designs: 50,
            instances_per_design: 8,
            size: SynthSize::Large,
            netlist_gates: 400,
            seed: 7,
            verify: false,
        }
    }

    /// A small netlist corpus for tests and examples.
    pub fn netlist_small() -> Self {
        Self {
            level: Level::Netlist,
            n_designs: 6,
            instances_per_design: 3,
            size: SynthSize::Small,
            netlist_gates: 120,
            seed: 7,
            verify: false,
        }
    }

    /// The paper-scale netlist corpus: ~143 instances.
    pub fn netlist_paper() -> Self {
        Self {
            level: Level::Netlist,
            n_designs: 20,
            instances_per_design: 7,
            size: SynthSize::Medium,
            netlist_gates: 500,
            seed: 7,
            verify: false,
        }
    }
}

/// One concrete hardware instance (a Verilog file in the paper's terms).
#[derive(Debug, Clone)]
pub struct Instance {
    /// Index into [`Corpus::designs`].
    pub design: usize,
    /// Variation/obfuscation seed that produced it (0 = canonical).
    pub variant: u64,
    /// Verilog source.
    pub source: String,
}

/// A labeled pair of instance indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledPair {
    /// First instance index.
    pub a: usize,
    /// Second instance index.
    pub b: usize,
    /// `true` when both instances derive from the same design (piracy).
    pub similar: bool,
}

/// A fully built corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The distinct designs.
    pub designs: Vec<Design>,
    /// All generated instances.
    pub instances: Vec<Instance>,
    /// One extracted DFG per instance (same indexing).
    pub graphs: Vec<Dfg>,
}

impl Corpus {
    /// Builds a corpus from a spec: catalog designs, derive instances,
    /// extract every DFG (in parallel), optionally verify behaviour
    /// preservation.
    ///
    /// # Errors
    ///
    /// Propagates parse/elaboration failures and reports any variant that
    /// fails the equivalence oracle.
    pub fn build(spec: &CorpusSpec) -> Result<Corpus, ParseVerilogError> {
        let designs = match spec.level {
            Level::Rtl => rtl_designs(spec.n_designs, spec.size),
            Level::Netlist => netlist_designs(spec.n_designs, spec.netlist_gates),
        };
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut instances = Vec::new();
        for (di, design) in designs.iter().enumerate() {
            for k in 0..spec.instances_per_design {
                let variant = if k == 0 {
                    0
                } else {
                    spec.seed
                        .wrapping_mul(1_000_003)
                        .wrapping_add(di as u64 * 131)
                        .wrapping_add(k as u64)
                };
                let source = match design.level {
                    Level::Rtl => {
                        vary_design(&design.source, variant, &VariationConfig::default())?
                    }
                    Level::Netlist => {
                        obfuscate_netlist(&design.source, variant, &ObfuscationConfig::default())?
                    }
                };
                if spec.verify && design.verifiable && variant != 0 {
                    verify_equivalent(design, &source)?;
                }
                instances.push(Instance {
                    design: di,
                    variant,
                    source,
                });
            }
        }
        let _ = rng.gen::<u64>();
        let graphs = extract_all(&designs, &instances)?;
        Ok(Corpus {
            designs,
            instances,
            graphs,
        })
    }

    /// Design index of each instance (label vector for clustering plots).
    pub fn labels(&self) -> Vec<usize> {
        self.instances.iter().map(|i| i.design).collect()
    }

    /// Forms labeled pairs: all same-design pairs (similar) and a seeded
    /// sample of at most `max_different` cross-design pairs.
    pub fn pairs(&self, max_different: usize, seed: u64) -> Vec<LabeledPair> {
        let n = self.instances.len();
        let mut pairs = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if self.instances[a].design == self.instances[b].design {
                    pairs.push(LabeledPair {
                        a,
                        b,
                        similar: true,
                    });
                }
            }
        }
        let mut diff: Vec<LabeledPair> = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if self.instances[a].design != self.instances[b].design {
                    diff.push(LabeledPair {
                        a,
                        b,
                        similar: false,
                    });
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        diff.shuffle(&mut rng);
        diff.truncate(max_different);
        pairs.extend(diff);
        pairs
    }

    /// Mean node count of the extracted graphs.
    pub fn mean_nodes(&self) -> f64 {
        if self.graphs.is_empty() {
            return 0.0;
        }
        self.graphs
            .iter()
            .map(|g| g.node_count() as f64)
            .sum::<f64>()
            / self.graphs.len() as f64
    }
}

/// Extracts all DFGs in parallel worker threads.
fn extract_all(designs: &[Design], instances: &[Instance]) -> Result<Vec<Dfg>, ParseVerilogError> {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let chunk = instances.len().div_ceil(threads).max(1);
    let results: Vec<Result<Vec<Dfg>, ParseVerilogError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = instances
            .chunks(chunk)
            .map(|insts| {
                scope.spawn(move || {
                    insts
                        .iter()
                        .map(|inst| {
                            let top = &designs[inst.design].top;
                            let mut g = graph_from_verilog(&inst.source, Some(top))?;
                            let _ = &mut g;
                            Ok(g)
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            // g4check: allow(unwrap-in-lib): join only fails if the worker panicked; re-raising that panic on the caller is the correct propagation
            .map(|h| h.join().expect("extraction worker panicked"))
            .collect()
    });
    let mut graphs = Vec::with_capacity(instances.len());
    for r in results {
        graphs.extend(r?);
    }
    Ok(graphs)
}

/// Oracle check: a variant must agree with its base design on sampled
/// stimuli.
fn verify_equivalent(design: &Design, variant_src: &str) -> Result<(), ParseVerilogError> {
    let base_flat = elaborate(&design.source, Some(&design.top))?;
    let var_flat = elaborate(variant_src, Some(&design.top))?;
    let base = Evaluator::new(&base_flat)?;
    let var = Evaluator::new(&var_flat)?;
    let inputs: Vec<String> = base_flat.inputs().iter().map(|s| s.to_string()).collect();
    for k in 0..4u64 {
        let stim: std::collections::HashMap<String, u64> = inputs
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), k.wrapping_mul(0x9E3779B9).rotate_left(i as u32)))
            .collect();
        let lhs = base.eval_outputs(&stim)?;
        let rhs = var.eval_outputs(&stim)?;
        if lhs != rhs {
            return Err(ParseVerilogError::msg(format!(
                "variant of '{}' diverges from base on stimulus {k}",
                design.name
            )));
        }
    }
    Ok(())
}

/// Splits pairs into train/test with the paper's 80/20 ratio (seeded).
pub fn split_pairs(
    pairs: &[LabeledPair],
    test_fraction: f64,
    seed: u64,
) -> (Vec<LabeledPair>, Vec<LabeledPair>) {
    let mut shuffled = pairs.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    shuffled.shuffle(&mut rng);
    let n_test = ((shuffled.len() as f64) * test_fraction).round() as usize;
    let test = shuffled.split_off(shuffled.len().saturating_sub(n_test));
    (shuffled, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_rtl_corpus_builds() {
        let c = Corpus::build(&CorpusSpec::rtl_small()).expect("builds");
        assert_eq!(c.designs.len(), 8);
        assert_eq!(c.instances.len(), 32);
        assert_eq!(c.graphs.len(), 32);
        assert!(c.mean_nodes() > 10.0);
    }

    #[test]
    fn small_netlist_corpus_builds() {
        let c = Corpus::build(&CorpusSpec::netlist_small()).expect("builds");
        assert_eq!(c.instances.len(), 18);
        assert!(c.graphs.iter().all(|g| !g.roots().is_empty()));
    }

    #[test]
    fn verified_corpus_builds() {
        let spec = CorpusSpec {
            verify: true,
            n_designs: 5,
            instances_per_design: 3,
            ..CorpusSpec::rtl_small()
        };
        Corpus::build(&spec).expect("verification passes");
    }

    #[test]
    fn pairs_are_labeled_correctly() {
        let c = Corpus::build(&CorpusSpec::rtl_small()).expect("builds");
        let pairs = c.pairs(100, 1);
        for p in &pairs {
            let same = c.instances[p.a].design == c.instances[p.b].design;
            assert_eq!(same, p.similar);
        }
        let n_similar = pairs.iter().filter(|p| p.similar).count();
        // 8 designs x C(4,2) = 48 similar pairs
        assert_eq!(n_similar, 48);
        assert_eq!(pairs.len() - n_similar, 100);
    }

    #[test]
    fn split_is_disjoint_and_sized() {
        let c = Corpus::build(&CorpusSpec::rtl_small()).expect("builds");
        let pairs = c.pairs(60, 2);
        let (train, test) = split_pairs(&pairs, 0.2, 3);
        assert_eq!(train.len() + test.len(), pairs.len());
        let frac = test.len() as f64 / pairs.len() as f64;
        assert!((frac - 0.2).abs() < 0.05, "test fraction {frac}");
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::build(&CorpusSpec::rtl_small()).expect("a");
        let b = Corpus::build(&CorpusSpec::rtl_small()).expect("b");
        assert_eq!(a.instances.len(), b.instances.len());
        for (x, y) in a.instances.iter().zip(&b.instances) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn labels_match_design_indices() {
        let c = Corpus::build(&CorpusSpec::rtl_small()).expect("builds");
        let labels = c.labels();
        assert_eq!(labels.len(), c.instances.len());
        assert_eq!(labels[0], 0);
        assert_eq!(*labels.last().expect("nonempty"), c.designs.len() - 1);
    }
}
