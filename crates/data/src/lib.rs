//! # gnn4ip-data
//!
//! Dataset substrate for the GNN4IP reproduction: design generators,
//! instance variation/obfuscation transforms, and corpus assembly.
//!
//! The paper's dataset (50 distinct designs, 390 RTL codes, 143 netlists,
//! plus TrustHub's obfuscated ISCAS'85 netlists) is private/registration-
//! gated; this crate regenerates equivalents with the same two axes the
//! experiments rely on:
//!
//! 1. **distinct designs** — 41 named RTL cores ([`designs`]), six
//!    ISCAS'85-class netlists ([`iscas`]), and seeded synthetic families;
//! 2. **instances per design** — behaviour-preserving source transforms
//!    ([`variation`] for RTL, [`obfuscate`] for netlists), each verifiable
//!    against the combinational evaluation oracle.
//!
//! # Examples
//!
//! ```
//! use gnn4ip_data::{Corpus, CorpusSpec};
//!
//! let corpus = Corpus::build(&CorpusSpec::rtl_small())?;
//! assert_eq!(corpus.instances.len(), corpus.graphs.len());
//! let pairs = corpus.pairs(50, 1);
//! assert!(pairs.iter().any(|p| p.similar));
//! # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod corpus_io;
pub mod designs;
pub mod emit;
pub mod iscas;
pub mod obfuscate;
pub mod variation;

pub use corpus::{split_pairs, Corpus, CorpusSpec, Instance, LabeledPair};
pub use corpus_io::{load_corpus, save_corpus};
pub use designs::{
    named_rtl_designs, netlist_designs, rtl_designs, synth_design, Design, Level, SynthSize,
};
pub use emit::{emit_expr, emit_module};
pub use obfuscate::{obfuscate_netlist, ObfuscationConfig};
pub use variation::{vary_design, VariationConfig};
