//! Semantics-preserving RTL variation transforms.
//!
//! The paper's dataset has "several hardware instances for each circuit
//! design" — different Verilog codes for the same design (390 RTL codes over
//! 50 designs). We derive instances from a base design with seeded,
//! behaviour-preserving source transforms, the moves a plagiarist actually
//! makes (§III-A: "the attack scenario may involve modification of IP design
//! to tamper piracy detection"):
//!
//! - signal renaming (non-ports)
//! - double-negation insertion `e → ~~e`
//! - De Morgan rewrites `a & b → ~(~a | ~b)`
//! - XOR expansion `a ^ b → (a & ~b) | (~a & b)`
//! - commutative operand swaps
//! - subexpression extraction into fresh wires
//! - dead-code insertion (wires never reaching an output)
//! - item reordering (declarations stay ahead of first use textually, which
//!   Verilog does not even require)
//!
//! Each transform is checked against the combinational evaluation oracle in
//! this module's tests, and the corpus builder re-verifies on sampled
//! stimuli for every generated instance of a verifiable design.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use gnn4ip_hdl::{
    parse, preprocess, BinaryOp, Expr, Item, Module, NetKind, SourceUnit, Stmt, UnaryOp,
};

use crate::emit::emit_module;

/// Which transforms to apply.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationConfig {
    /// Probability of rewriting an eligible binary op (De Morgan / XOR
    /// expansion / double negation).
    pub rewrite_prob: f64,
    /// Probability of swapping commutative operands.
    pub swap_prob: f64,
    /// Number of dead wires to insert.
    pub dead_wires: usize,
    /// Rename non-port signals.
    pub rename: bool,
    /// Shuffle item order (keeping declarations first).
    pub reorder: bool,
    /// Probability of extracting a subexpression of a continuous assign
    /// into a fresh intermediate wire.
    pub extract_prob: f64,
}

impl Default for VariationConfig {
    fn default() -> Self {
        Self {
            rewrite_prob: 0.35,
            swap_prob: 0.5,
            dead_wires: 3,
            rename: true,
            reorder: true,
            extract_prob: 0.4,
        }
    }
}

/// Derives a syntactically distinct, behaviourally identical instance of a
/// multi-module design.
///
/// The `variant` seed selects the transform stream; variant 0 applies no
/// transforms (the canonical instance).
///
/// # Errors
///
/// Returns the underlying parse error if `source` is not valid Verilog.
pub fn vary_design(
    source: &str,
    variant: u64,
    config: &VariationConfig,
) -> Result<String, gnn4ip_hdl::ParseVerilogError> {
    let unit = parse(&preprocess(source, &Default::default())?)?;
    if variant == 0 {
        return Ok(source.to_string());
    }
    let mut rng = StdRng::seed_from_u64(variant.wrapping_mul(0xA24BAED4963EE407));
    let mut out = String::new();
    for module in &unit.modules {
        let varied = vary_module(module, &unit, &mut rng, config);
        out.push_str(&emit_module(&varied));
        out.push('\n');
    }
    Ok(out)
}

fn vary_module(
    module: &Module,
    unit: &SourceUnit,
    rng: &mut StdRng,
    config: &VariationConfig,
) -> Module {
    let mut m = module.clone();

    // 1. expression rewrites inside assigns/statements
    for item in &mut m.items {
        match item {
            Item::Assign { rhs, .. } => *rhs = rewrite_expr(rhs, rng, config),
            Item::Always { body, .. } => rewrite_stmt(body, rng, config),
            Item::Decl { init: Some(e), .. } => *e = rewrite_expr(e, rng, config),
            _ => {}
        }
    }

    // 1b. subexpression extraction: assign y = f(g(..)) becomes
    //     wire t; assign t = g(..); assign y = f(t) — a recoding move that
    //     changes DFG topology more than identity rewrites do
    if config.extract_prob > 0.0 {
        let widths = declared_widths(&m);
        let mut fresh = 0usize;
        let mut new_items: Vec<Item> = Vec::new();
        for item in std::mem::take(&mut m.items) {
            match item {
                Item::Assign { lhs, rhs } if rng.gen_bool(config.extract_prob) => {
                    let tag = rng.gen_range(0..100_000u32);
                    match extract_subexpr(&rhs, &widths, &mut fresh, tag) {
                        Some((sub, replaced, wire, width)) => {
                            new_items.push(Item::Decl {
                                kind: NetKind::Wire,
                                name: wire.clone(),
                                // same width as the extracted expression so
                                // width-sensitive operators (~, comparisons)
                                // behave identically at the use site
                                range: Some(gnn4ip_hdl::Range {
                                    msb: Expr::number(width as u64 - 1),
                                    lsb: Expr::number(0),
                                }),
                                init: None,
                            });
                            new_items.push(Item::Assign {
                                lhs: Expr::ident(wire),
                                rhs: sub,
                            });
                            new_items.push(Item::Assign { lhs, rhs: replaced });
                        }
                        None => new_items.push(Item::Assign { lhs, rhs }),
                    }
                }
                other => new_items.push(other),
            }
        }
        m.items = new_items;
    }

    // 2. dead-code insertion (combinational junk off the inputs)
    let input_names: Vec<String> = m.inputs().iter().map(|s| s.to_string()).collect();
    if !input_names.is_empty() {
        for d in 0..config.dead_wires {
            let a = input_names[rng.gen_range(0..input_names.len())].clone();
            let b = input_names[rng.gen_range(0..input_names.len())].clone();
            let name = format!("unused_{d}_{}", rng.gen_range(0..10_000u32));
            let op = [BinaryOp::And, BinaryOp::Or, BinaryOp::Xor][rng.gen_range(0..3usize)];
            m.items.push(Item::Decl {
                kind: NetKind::Wire,
                name: name.clone(),
                range: None,
                init: None,
            });
            m.items.push(Item::Assign {
                lhs: Expr::ident(name),
                rhs: Expr::Binary {
                    op,
                    lhs: Box::new(Expr::Unary {
                        op: UnaryOp::ReduceXor,
                        arg: Box::new(Expr::ident(a)),
                    }),
                    rhs: Box::new(Expr::Unary {
                        op: UnaryOp::ReduceOr,
                        arg: Box::new(Expr::ident(b)),
                    }),
                },
            });
        }
    }

    // 3. rename non-port, non-instance signals
    if config.rename {
        let ports: std::collections::HashSet<&str> =
            m.ports.iter().map(|p| p.name.as_str()).collect();
        let decl_names: Vec<String> = m
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Decl { name, .. } if !ports.contains(name.as_str()) => Some(name.clone()),
                _ => None,
            })
            .collect();
        let mut mapping = std::collections::HashMap::new();
        for (i, n) in decl_names.iter().enumerate() {
            mapping.insert(
                n.clone(),
                format!("sig_{}_{i}", rng.gen_range(0..100_000u32)),
            );
        }
        // protect submodule names from accidental capture
        for sub in &unit.modules {
            mapping.remove(&sub.name);
        }
        m = rename_module_signals(&m, &mapping);
    }

    // 4. item reordering: declarations first (stable), then a shuffle of the
    //    behavioral items
    if config.reorder {
        let (mut decls, mut rest): (Vec<Item>, Vec<Item>) = m
            .items
            .into_iter()
            .partition(|i| matches!(i, Item::Decl { .. } | Item::Param { .. }));
        rest.shuffle(rng);
        decls.extend(rest);
        m.items = decls;
    }
    m
}

fn rename_module_signals(
    m: &Module,
    mapping: &std::collections::HashMap<String, String>,
) -> Module {
    let rename = |n: &str| -> String { mapping.get(n).cloned().unwrap_or_else(|| n.to_string()) };
    let mut out = m.clone();
    for item in &mut out.items {
        match item {
            Item::Decl { name, init, .. } => {
                *name = rename(name);
                if let Some(e) = init {
                    *e = rename_expr(e, &rename);
                }
            }
            Item::Assign { lhs, rhs } => {
                *lhs = rename_expr(lhs, &rename);
                *rhs = rename_expr(rhs, &rename);
            }
            Item::Always { sensitivity, body } => {
                for s in sensitivity.iter_mut() {
                    use gnn4ip_hdl::SensItem;
                    match s {
                        SensItem::Posedge(n) | SensItem::Negedge(n) | SensItem::Level(n) => {
                            *n = rename(n);
                        }
                        SensItem::Star => {}
                    }
                }
                rename_stmt_signals(body, &rename);
            }
            Item::Gate(g) => {
                for c in &mut g.conns {
                    *c = rename_expr(c, &rename);
                }
            }
            Item::Instance(mi) => {
                for (_, e) in &mut mi.conns {
                    if let Some(e) = e {
                        *e = rename_expr(e, &rename);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn rename_expr(e: &Expr, rename: &impl Fn(&str) -> String) -> Expr {
    match e {
        Expr::Ident(n) => Expr::Ident(rename(n)),
        Expr::Number { .. } | Expr::Str(_) => e.clone(),
        Expr::Unary { op, arg } => Expr::Unary {
            op: *op,
            arg: Box::new(rename_expr(arg, rename)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(rename_expr(lhs, rename)),
            rhs: Box::new(rename_expr(rhs, rename)),
        },
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => Expr::Ternary {
            cond: Box::new(rename_expr(cond, rename)),
            then_e: Box::new(rename_expr(then_e, rename)),
            else_e: Box::new(rename_expr(else_e, rename)),
        },
        Expr::Concat(parts) => Expr::Concat(parts.iter().map(|p| rename_expr(p, rename)).collect()),
        Expr::Repeat { count, body } => Expr::Repeat {
            count: Box::new(rename_expr(count, rename)),
            body: Box::new(rename_expr(body, rename)),
        },
        Expr::BitSelect { base, index } => Expr::BitSelect {
            base: Box::new(rename_expr(base, rename)),
            index: Box::new(rename_expr(index, rename)),
        },
        Expr::PartSelect { base, msb, lsb } => Expr::PartSelect {
            base: Box::new(rename_expr(base, rename)),
            msb: Box::new(rename_expr(msb, rename)),
            lsb: Box::new(rename_expr(lsb, rename)),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|a| rename_expr(a, rename)).collect(),
        },
    }
}

fn rename_stmt_signals(s: &mut Stmt, rename: &impl Fn(&str) -> String) {
    match s {
        Stmt::Block(ss) => ss.iter_mut().for_each(|s| rename_stmt_signals(s, rename)),
        Stmt::Blocking { lhs, rhs } | Stmt::NonBlocking { lhs, rhs } => {
            *lhs = rename_expr(lhs, rename);
            *rhs = rename_expr(rhs, rename);
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            *cond = rename_expr(cond, rename);
            rename_stmt_signals(then_s, rename);
            if let Some(e) = else_s {
                rename_stmt_signals(e, rename);
            }
        }
        Stmt::Case { subject, arms } => {
            *subject = rename_expr(subject, rename);
            for (labels, body) in arms {
                for l in labels.iter_mut() {
                    *l = rename_expr(l, rename);
                }
                rename_stmt_signals(body, rename);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            *init = rename_expr(init, rename);
            *cond = rename_expr(cond, rename);
            *step = rename_expr(step, rename);
            rename_stmt_signals(body, rename);
        }
        Stmt::Null => {}
    }
}

/// Declared bit widths of every port and net in a module (constant ranges
/// only; parameterized ranges are absent and block extraction).
fn declared_widths(m: &Module) -> std::collections::HashMap<String, u32> {
    let mut widths = std::collections::HashMap::new();
    let env = std::collections::HashMap::new();
    let range_width = |range: &Option<gnn4ip_hdl::Range>| -> Option<u32> {
        match range {
            None => Some(1),
            Some(r) => {
                let msb = gnn4ip_hdl::eval_const(&r.msb, &env).ok()?;
                let lsb = gnn4ip_hdl::eval_const(&r.lsb, &env).ok()?;
                Some((msb - lsb).unsigned_abs() as u32 + 1)
            }
        }
    };
    for p in &m.ports {
        if let Some(w) = range_width(&p.range) {
            widths.insert(p.name.clone(), w);
        }
    }
    for item in &m.items {
        if let Item::Decl { name, range, .. } = item {
            if let Some(w) = range_width(range) {
                widths.insert(name.clone(), w);
            }
        }
    }
    widths
}

/// Finds the first extractable subexpression (a bitwise binary op whose
/// operands are plain identifiers with known, equal-or-compatible widths)
/// and returns `(subexpr, rhs-with-placeholder, wire_name, width)`.
fn extract_subexpr(
    rhs: &Expr,
    widths: &std::collections::HashMap<String, u32>,
    fresh: &mut usize,
    tag: u32,
) -> Option<(Expr, Expr, String, u32)> {
    fn find(e: &Expr, widths: &std::collections::HashMap<String, u32>) -> Option<(Expr, u32)> {
        match e {
            Expr::Binary {
                op: BinaryOp::And | BinaryOp::Or | BinaryOp::Xor,
                lhs,
                rhs,
            } => {
                if let (Expr::Ident(a), Expr::Ident(b)) = (&**lhs, &**rhs) {
                    if let (Some(&wa), Some(&wb)) = (widths.get(a), widths.get(b)) {
                        return Some((e.clone(), wa.max(wb)));
                    }
                }
                find(lhs, widths).or_else(|| find(rhs, widths))
            }
            Expr::Unary { arg, .. } => find(arg, widths),
            Expr::Binary { lhs, rhs, .. } => find(lhs, widths).or_else(|| find(rhs, widths)),
            Expr::Ternary {
                cond,
                then_e,
                else_e,
            } => find(cond, widths)
                .or_else(|| find(then_e, widths))
                .or_else(|| find(else_e, widths)),
            Expr::Concat(parts) => parts.iter().find_map(|p| find(p, widths)),
            _ => None,
        }
    }
    fn replace(e: &Expr, target: &Expr, wire: &str) -> Expr {
        if e == target {
            return Expr::ident(wire);
        }
        match e {
            Expr::Unary { op, arg } => Expr::Unary {
                op: *op,
                arg: Box::new(replace(arg, target, wire)),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(replace(lhs, target, wire)),
                rhs: Box::new(replace(rhs, target, wire)),
            },
            Expr::Ternary {
                cond,
                then_e,
                else_e,
            } => Expr::Ternary {
                cond: Box::new(replace(cond, target, wire)),
                then_e: Box::new(replace(then_e, target, wire)),
                else_e: Box::new(replace(else_e, target, wire)),
            },
            Expr::Concat(parts) => {
                Expr::Concat(parts.iter().map(|p| replace(p, target, wire)).collect())
            }
            other => other.clone(),
        }
    }
    let (sub, width) = find(rhs, widths)?;
    *fresh += 1;
    let wire = format!("ext_{tag}_{fresh}");
    let replaced = replace(rhs, &sub, &wire);
    Some((sub, replaced, wire, width))
}

fn rewrite_stmt(s: &mut Stmt, rng: &mut StdRng, config: &VariationConfig) {
    match s {
        Stmt::Block(ss) => ss.iter_mut().for_each(|s| rewrite_stmt(s, rng, config)),
        Stmt::Blocking { rhs, .. } | Stmt::NonBlocking { rhs, .. } => {
            *rhs = rewrite_expr(rhs, rng, config);
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            *cond = rewrite_expr(cond, rng, config);
            rewrite_stmt(then_s, rng, config);
            if let Some(e) = else_s {
                rewrite_stmt(e, rng, config);
            }
        }
        Stmt::Case { arms, .. } => {
            for (_, body) in arms {
                rewrite_stmt(body, rng, config);
            }
        }
        Stmt::For { body, .. } => rewrite_stmt(body, rng, config),
        Stmt::Null => {}
    }
}

/// Recursively rewrites an expression with semantics-preserving identities.
fn rewrite_expr(e: &Expr, rng: &mut StdRng, config: &VariationConfig) -> Expr {
    let e = match e {
        Expr::Unary { op, arg } => Expr::Unary {
            op: *op,
            arg: Box::new(rewrite_expr(arg, rng, config)),
        },
        Expr::Binary { op, lhs, rhs } => {
            let mut l = rewrite_expr(lhs, rng, config);
            let mut r = rewrite_expr(rhs, rng, config);
            let commutative = matches!(
                op,
                BinaryOp::Add
                    | BinaryOp::Mul
                    | BinaryOp::And
                    | BinaryOp::Or
                    | BinaryOp::Xor
                    | BinaryOp::Xnor
                    | BinaryOp::LogicalAnd
                    | BinaryOp::LogicalOr
                    | BinaryOp::Eq
                    | BinaryOp::Neq
            );
            if commutative && rng.gen_bool(config.swap_prob) {
                std::mem::swap(&mut l, &mut r);
            }
            Expr::Binary {
                op: *op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => Expr::Ternary {
            cond: Box::new(rewrite_expr(cond, rng, config)),
            then_e: Box::new(rewrite_expr(then_e, rng, config)),
            else_e: Box::new(rewrite_expr(else_e, rng, config)),
        },
        Expr::Concat(parts) => {
            Expr::Concat(parts.iter().map(|p| rewrite_expr(p, rng, config)).collect())
        }
        other => other.clone(),
    };
    if !rng.gen_bool(config.rewrite_prob) {
        return e;
    }
    // identity rewrites on bitwise ops (width-safe)
    match &e {
        Expr::Binary {
            op: BinaryOp::And,
            lhs,
            rhs,
        } => {
            // De Morgan: a & b = ~(~a | ~b)
            Expr::Unary {
                op: UnaryOp::BitNot,
                arg: Box::new(Expr::Binary {
                    op: BinaryOp::Or,
                    lhs: Box::new(Expr::Unary {
                        op: UnaryOp::BitNot,
                        arg: lhs.clone(),
                    }),
                    rhs: Box::new(Expr::Unary {
                        op: UnaryOp::BitNot,
                        arg: rhs.clone(),
                    }),
                }),
            }
        }
        Expr::Binary {
            op: BinaryOp::Or,
            lhs,
            rhs,
        } => {
            // De Morgan: a | b = ~(~a & ~b)
            Expr::Unary {
                op: UnaryOp::BitNot,
                arg: Box::new(Expr::Binary {
                    op: BinaryOp::And,
                    lhs: Box::new(Expr::Unary {
                        op: UnaryOp::BitNot,
                        arg: lhs.clone(),
                    }),
                    rhs: Box::new(Expr::Unary {
                        op: UnaryOp::BitNot,
                        arg: rhs.clone(),
                    }),
                }),
            }
        }
        Expr::Binary {
            op: BinaryOp::Xor,
            lhs,
            rhs,
        } => {
            // a ^ b = (a & ~b) | (~a & b)
            Expr::Binary {
                op: BinaryOp::Or,
                lhs: Box::new(Expr::Binary {
                    op: BinaryOp::And,
                    lhs: lhs.clone(),
                    rhs: Box::new(Expr::Unary {
                        op: UnaryOp::BitNot,
                        arg: rhs.clone(),
                    }),
                }),
                rhs: Box::new(Expr::Binary {
                    op: BinaryOp::And,
                    lhs: Box::new(Expr::Unary {
                        op: UnaryOp::BitNot,
                        arg: lhs.clone(),
                    }),
                    rhs: rhs.clone(),
                }),
            }
        }
        Expr::Ident(_) if rng.gen_bool(0.5) => {
            // double negation on a plain signal
            Expr::Unary {
                op: UnaryOp::BitNot,
                arg: Box::new(Expr::Unary {
                    op: UnaryOp::BitNot,
                    arg: Box::new(e.clone()),
                }),
            }
        }
        _ => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_hdl::{elaborate, Evaluator};
    use std::collections::HashMap;

    /// Oracle check: every variant computes the same outputs as the base on
    /// sampled stimuli.
    fn assert_variants_equivalent(src: &str, top: &str, n_variants: u64) {
        let base_flat = elaborate(src, Some(top)).expect("base flat");
        let base = Evaluator::new(&base_flat).expect("base eval");
        let input_names: Vec<String> = base_flat.inputs().iter().map(|s| s.to_string()).collect();
        let stimuli: Vec<HashMap<String, u64>> = (0..16u64)
            .map(|k| {
                input_names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| {
                        (
                            n.clone(),
                            k.wrapping_mul(0x9E37).wrapping_add(i as u64 * 77),
                        )
                    })
                    .collect()
            })
            .collect();
        for v in 1..=n_variants {
            let varied = vary_design(src, v, &VariationConfig::default()).expect("varies");
            assert_ne!(varied, src, "variant {v} did not change the source");
            let ev = Evaluator::new(&elaborate(&varied, Some(top)).expect("variant flat"))
                .expect("variant eval");
            for stim in &stimuli {
                assert_eq!(
                    base.eval_outputs(stim).expect("base run"),
                    ev.eval_outputs(stim).expect("variant run"),
                    "variant {v} diverges on {stim:?}\n{varied}"
                );
            }
        }
    }

    #[test]
    fn variants_of_full_adder_are_equivalent() {
        assert_variants_equivalent(
            "module fa(input a, input b, input cin, output sum, output cout);
               wire t1;
               wire t2;
               wire t3;
               assign t1 = a ^ b;
               assign t2 = a & b;
               assign t3 = t1 & cin;
               assign sum = t1 ^ cin;
               assign cout = t3 | t2;
             endmodule",
            "fa",
            8,
        );
    }

    #[test]
    fn variants_of_vector_datapath_are_equivalent() {
        assert_variants_equivalent(
            "module dp(input [7:0] a, input [7:0] b, output [7:0] y, output [7:0] z);
               wire [7:0] m;
               assign m = (a & b) | (a ^ 8'd85);
               assign y = m + b;
               assign z = (a < b) ? m : (m ^ b);
             endmodule",
            "dp",
            6,
        );
    }

    #[test]
    fn variants_of_always_blocks_are_equivalent() {
        assert_variants_equivalent(
            "module m(input [3:0] s, input [7:0] a, input [7:0] b, output reg [7:0] y);
               always @* begin
                 if (s[0]) y = a & b;
                 else if (s[1]) y = a | b;
                 else y = a ^ b;
               end
             endmodule",
            "m",
            6,
        );
    }

    #[test]
    fn variant_zero_is_identity() {
        let src = "module m(input a, output y); assign y = ~a; endmodule";
        assert_eq!(
            vary_design(src, 0, &VariationConfig::default()).expect("ok"),
            src
        );
    }

    #[test]
    fn variants_differ_from_each_other() {
        let src = "module m(input [7:0] a, input [7:0] b, output [7:0] y);
                     wire [7:0] t;
                     assign t = a & b;
                     assign y = t ^ (a | b);
                   endmodule";
        let v1 = vary_design(src, 1, &VariationConfig::default()).expect("v1");
        let v2 = vary_design(src, 2, &VariationConfig::default()).expect("v2");
        assert_ne!(v1, v2);
    }

    #[test]
    fn dead_code_is_trimmed_from_dfg() {
        let src = "module m(input a, input b, output y); assign y = a & b; endmodule";
        let varied = vary_design(
            src,
            3,
            &VariationConfig {
                dead_wires: 5,
                rewrite_prob: 0.0,
                swap_prob: 0.0,
                rename: false,
                reorder: false,
                extract_prob: 0.0,
            },
        )
        .expect("varies");
        let g_base = gnn4ip_dfg::graph_from_verilog(src, None).expect("base");
        let g_var = gnn4ip_dfg::graph_from_verilog(&varied, None).expect("varied");
        // trim removes the disconnected junk, graphs end up the same size
        assert_eq!(g_base.node_count(), g_var.node_count());
    }

    #[test]
    fn variation_survives_hierarchy() {
        assert_variants_equivalent(
            "module inv(input a, output y); assign y = ~a; endmodule
             module top(input x, input w, output z);
               wire m;
               inv u1(.a(x), .y(m));
               assign z = m & w;
             endmodule",
            "top",
            4,
        );
    }
}
