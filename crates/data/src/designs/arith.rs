//! Arithmetic design family: floating-point adder (Table II's "FPA"),
//! multipliers, divider, MAC, barrel shifter, CRC, and Hamming codec.

/// Floating-point adder over a 16-bit half-precision-like format
/// (1 sign, 5 exponent, 10 mantissa): unpack → align → add/sub → normalize.
pub fn fpa() -> String {
    r#"
module fpa(input [15:0] a, input [15:0] b, output [15:0] sum);
  wire sign_a;
  wire sign_b;
  wire [4:0] exp_a;
  wire [4:0] exp_b;
  wire [10:0] man_a;
  wire [10:0] man_b;
  wire a_bigger;
  wire [4:0] exp_big;
  wire [4:0] exp_diff;
  wire [10:0] man_big;
  wire [10:0] man_small_raw;
  wire [10:0] man_small;
  wire same_sign;
  wire [11:0] man_sum;
  wire [11:0] man_diff;
  wire [11:0] man_res;
  wire sign_res;
  reg [3:0] lz;
  wire [4:0] exp_norm;
  wire [10:0] man_norm;

  assign sign_a = a[15];
  assign sign_b = b[15];
  assign exp_a = a[14:10];
  assign exp_b = b[14:10];
  assign man_a = {1'b1, a[9:0]};
  assign man_b = {1'b1, b[9:0]};
  assign a_bigger = {exp_a, a[9:0]} >= {exp_b, b[9:0]};
  assign exp_big = a_bigger ? exp_a : exp_b;
  assign exp_diff = a_bigger ? (exp_a - exp_b) : (exp_b - exp_a);
  assign man_big = a_bigger ? man_a : man_b;
  assign man_small_raw = a_bigger ? man_b : man_a;
  assign man_small = man_small_raw >> exp_diff;
  assign same_sign = (sign_a == sign_b);
  assign man_sum = {1'b0, man_big} + {1'b0, man_small};
  assign man_diff = {1'b0, man_big} - {1'b0, man_small};
  assign man_res = same_sign ? man_sum : man_diff;
  assign sign_res = a_bigger ? sign_a : sign_b;

  always @(*) begin
    if (man_res[11]) lz = 4'd0;
    else if (man_res[10]) lz = 4'd1;
    else if (man_res[9]) lz = 4'd2;
    else if (man_res[8]) lz = 4'd3;
    else if (man_res[7]) lz = 4'd4;
    else if (man_res[6]) lz = 4'd5;
    else if (man_res[5]) lz = 4'd6;
    else if (man_res[4]) lz = 4'd7;
    else lz = 4'd8;
  end
  assign exp_norm = (lz == 4'd0) ? (exp_big + 5'd1) : (exp_big - {1'b0, lz[3:0]} + 5'd1);
  assign man_norm = (lz == 4'd0) ? man_res[11:1] : (man_res[10:0] << (lz - 4'd1));
  assign sum = (man_res == 12'd0) ? 16'd0 : {sign_res, exp_norm, man_norm[9:0]};
endmodule
"#
    .to_string()
}

/// Shift-add multiplier, 8x8 → 16, fully unrolled combinational array.
pub fn array_mult() -> String {
    r#"
module array_mult(input [7:0] x, input [7:0] y, output [15:0] p);
  wire [15:0] pp0;
  wire [15:0] pp1;
  wire [15:0] pp2;
  wire [15:0] pp3;
  wire [15:0] pp4;
  wire [15:0] pp5;
  wire [15:0] pp6;
  wire [15:0] pp7;
  assign pp0 = y[0] ? {8'd0, x} : 16'd0;
  assign pp1 = y[1] ? {7'd0, x, 1'd0} : 16'd0;
  assign pp2 = y[2] ? {6'd0, x, 2'd0} : 16'd0;
  assign pp3 = y[3] ? {5'd0, x, 3'd0} : 16'd0;
  assign pp4 = y[4] ? {4'd0, x, 4'd0} : 16'd0;
  assign pp5 = y[5] ? {3'd0, x, 5'd0} : 16'd0;
  assign pp6 = y[6] ? {2'd0, x, 6'd0} : 16'd0;
  assign pp7 = y[7] ? {1'd0, x, 7'd0} : 16'd0;
  assign p = ((pp0 + pp1) + (pp2 + pp3)) + ((pp4 + pp5) + (pp6 + pp7));
endmodule
"#
    .to_string()
}

/// Restoring divider, 8/8 → quotient+remainder, unrolled.
pub fn divider() -> String {
    let mut body = String::from(
        r#"
module divider(input [7:0] num, input [7:0] den, output [7:0] quo, output [7:0] rem);
  wire [7:0] r0;
  assign r0 = 8'd0;
"#,
    );
    for i in 0..8 {
        let bit = 7 - i;
        body.push_str(&format!(
            "  wire [7:0] t{i};\n  wire [7:0] r{next};\n  wire q{bit};\n  \
             assign t{i} = {{r{i}[6:0], num[{bit}]}};\n  \
             assign q{bit} = t{i} >= den;\n  \
             assign r{next} = q{bit} ? (t{i} - den) : t{i};\n",
            next = i + 1,
        ));
    }
    body.push_str("  assign quo = {q7, q6, q5, q4, q3, q2, q1, q0};\n");
    body.push_str("  assign rem = r8;\nendmodule\n");
    body
}

/// Multiply-accumulate with saturation.
pub fn mac() -> String {
    r#"
module mac(input [7:0] x, input [7:0] y, input [15:0] acc, output [15:0] out,
           output sat);
  wire [15:0] prod;
  wire [16:0] sum;
  assign prod = {8'd0, x} * {8'd0, y};
  assign sum = {1'b0, acc} + {1'b0, prod};
  assign sat = sum[16];
  assign out = sat ? 16'd65535 : sum[15:0];
endmodule
"#
    .to_string()
}

/// Logarithmic barrel shifter (left rotate) for 16-bit words.
pub fn barrel() -> String {
    r#"
module barrel(input [15:0] din, input [3:0] amt, output [15:0] dout);
  wire [15:0] s1;
  wire [15:0] s2;
  wire [15:0] s4;
  assign s1 = amt[0] ? {din[14:0], din[15]} : din;
  assign s2 = amt[1] ? {s1[13:0], s1[15:14]} : s1;
  assign s4 = amt[2] ? {s2[11:0], s2[15:12]} : s2;
  assign dout = amt[3] ? {s4[7:0], s4[15:8]} : s4;
endmodule
"#
    .to_string()
}

/// CRC-8 (poly 0x07) over one input byte, unrolled.
pub fn crc8() -> String {
    let mut body = String::from(
        r#"
module crc8(input [7:0] data, input [7:0] crc_in, output [7:0] crc_out);
  wire [7:0] c0;
  assign c0 = crc_in ^ data;
"#,
    );
    for i in 0..8 {
        body.push_str(&format!(
            "  wire [7:0] c{next};\n  assign c{next} = c{i}[7] ? ({{c{i}[6:0], 1'b0}} ^ 8'd7) : {{c{i}[6:0], 1'b0}};\n",
            next = i + 1,
        ));
    }
    body.push_str("  assign crc_out = c8;\nendmodule\n");
    body
}

/// Hamming(7,4) encoder + decoder with single-error correction.
pub fn hamming() -> String {
    r#"
module hamming(input [3:0] data, input [6:0] rx, output [6:0] tx,
               output [3:0] corrected, output err);
  wire p1;
  wire p2;
  wire p4;
  assign p1 = data[0] ^ data[1] ^ data[3];
  assign p2 = data[0] ^ data[2] ^ data[3];
  assign p4 = data[1] ^ data[2] ^ data[3];
  assign tx = {data[3], data[2], data[1], p4, data[0], p2, p1};
  wire s1;
  wire s2;
  wire s4;
  wire [2:0] syndrome;
  assign s1 = rx[0] ^ rx[2] ^ rx[4] ^ rx[6];
  assign s2 = rx[1] ^ rx[2] ^ rx[5] ^ rx[6];
  assign s4 = rx[3] ^ rx[4] ^ rx[5] ^ rx[6];
  assign syndrome = {s4, s2, s1};
  wire [6:0] fixed;
  assign fixed = (syndrome == 3'd0) ? rx : (rx ^ (7'd1 << (syndrome - 3'd1)));
  assign corrected = {fixed[6], fixed[5], fixed[4], fixed[2]};
  assign err = syndrome != 3'd0;
endmodule
"#
    .to_string()
}

/// Integer square root (4-bit result from 8-bit input), unrolled
/// non-restoring style.
pub fn isqrt() -> String {
    r#"
module isqrt(input [7:0] x, output [3:0] root);
  wire [3:0] r3;
  wire [3:0] r2;
  wire [3:0] r1;
  wire [3:0] r0;
  wire g3;
  wire g2;
  wire g1;
  wire g0;
  assign g3 = 12'd64 <= {4'd0, x};
  assign r3 = g3 ? 4'd8 : 4'd0;
  assign g2 = ({8'd0, r3 | 4'd4} * {8'd0, r3 | 4'd4}) <= {4'd0, x};
  assign r2 = g2 ? (r3 | 4'd4) : r3;
  assign g1 = ({8'd0, r2 | 4'd2} * {8'd0, r2 | 4'd2}) <= {4'd0, x};
  assign r1 = g1 ? (r2 | 4'd2) : r2;
  assign g0 = ({8'd0, r1 | 4'd1} * {8'd0, r1 | 4'd1}) <= {4'd0, x};
  assign r0 = g0 ? (r1 | 4'd1) : r1;
  assign root = r0;
endmodule
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_hdl::{elaborate, Evaluator};
    use std::collections::HashMap;

    fn eval_of(src: &str, top: &str) -> Evaluator {
        Evaluator::new(&elaborate(src, Some(top)).expect("flat")).expect("eval")
    }

    fn f16(sign: u64, exp: u64, man: u64) -> u64 {
        (sign << 15) | (exp << 10) | man
    }

    #[test]
    fn fpa_adds_equal_exponents() {
        let e = eval_of(&fpa(), "fpa");
        // 1.0 = exp 15 man 0; 1.0 + 1.0 = 2.0 = exp 16 man 0
        let out = e
            .eval_outputs(&HashMap::from([
                ("a".to_string(), f16(0, 15, 0)),
                ("b".to_string(), f16(0, 15, 0)),
            ]))
            .expect("runs")["sum"];
        assert_eq!(out, f16(0, 16, 0), "1.0+1.0 != 2.0: {out:#x}");
    }

    #[test]
    fn fpa_cancellation_gives_zero() {
        let e = eval_of(&fpa(), "fpa");
        let out = e
            .eval_outputs(&HashMap::from([
                ("a".to_string(), f16(0, 15, 0)),
                ("b".to_string(), f16(1, 15, 0)),
            ]))
            .expect("runs")["sum"];
        assert_eq!(out, 0, "1.0 + (-1.0) != 0");
    }

    #[test]
    fn array_mult_matches_native() {
        let e = eval_of(&array_mult(), "array_mult");
        for (x, y) in [(0u64, 0u64), (255, 255), (13, 17), (200, 3)] {
            let out = e
                .eval_outputs(&HashMap::from([("x".to_string(), x), ("y".to_string(), y)]))
                .expect("runs")["p"];
            assert_eq!(out, x * y, "{x}*{y}");
        }
    }

    #[test]
    fn divider_matches_native() {
        let e = eval_of(&divider(), "divider");
        for (n, d) in [(100u64, 7u64), (255, 16), (9, 3), (5, 255)] {
            let out = e
                .eval_outputs(&HashMap::from([
                    ("num".to_string(), n),
                    ("den".to_string(), d),
                ]))
                .expect("runs");
            assert_eq!(out["quo"], n / d, "{n}/{d} quo");
            assert_eq!(out["rem"], n % d, "{n}/{d} rem");
        }
    }

    #[test]
    fn mac_saturates() {
        let e = eval_of(&mac(), "mac");
        let out = e
            .eval_outputs(&HashMap::from([
                ("x".to_string(), 255),
                ("y".to_string(), 255),
                ("acc".to_string(), 65000),
            ]))
            .expect("runs");
        assert_eq!(out["out"], 65535);
        assert_eq!(out["sat"], 1);
    }

    #[test]
    fn barrel_rotates() {
        let e = eval_of(&barrel(), "barrel");
        let out = e
            .eval_outputs(&HashMap::from([
                ("din".to_string(), 0x8001),
                ("amt".to_string(), 1),
            ]))
            .expect("runs")["dout"];
        assert_eq!(out, 0x0003);
    }

    #[test]
    fn hamming_corrects_single_bit_errors() {
        let enc = eval_of(&hamming(), "hamming");
        for data in 0..16u64 {
            let tx = enc
                .eval_outputs(&HashMap::from([
                    ("data".to_string(), data),
                    ("rx".to_string(), 0),
                ]))
                .expect("runs")["tx"];
            for flip in 0..7u64 {
                let rx = tx ^ (1 << flip);
                let out = enc
                    .eval_outputs(&HashMap::from([
                        ("data".to_string(), data),
                        ("rx".to_string(), rx),
                    ]))
                    .expect("runs");
                assert_eq!(out["corrected"], data, "data {data} flip {flip}");
                assert_eq!(out["err"], 1);
            }
        }
    }

    #[test]
    fn isqrt_is_floor_sqrt() {
        let e = eval_of(&isqrt(), "isqrt");
        for x in [0u64, 1, 3, 4, 15, 16, 17, 80, 255] {
            let out = e
                .eval_outputs(&HashMap::from([("x".to_string(), x)]))
                .expect("runs")["root"];
            let expect = (x as f64).sqrt().floor() as u64;
            assert_eq!(out, expect, "isqrt({x})");
        }
    }

    #[test]
    fn crc8_differs_for_different_inputs() {
        let e = eval_of(&crc8(), "crc8");
        let run = |d: u64| {
            e.eval_outputs(&HashMap::from([
                ("data".to_string(), d),
                ("crc_in".to_string(), 0),
            ]))
            .expect("runs")["crc_out"]
        };
        assert_ne!(run(0x01), run(0x02));
        assert_ne!(run(0x80), run(0x00));
    }
}
