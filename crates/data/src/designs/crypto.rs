//! Cryptographic design family: AES-style round, XTEA-style mixer, SHA-style
//! compressor, and a stream-cipher keystream stage.
//!
//! `aes` is one of the named designs of Table II. These are reduced-state
//! versions of the real cores (the substitution table is 4-bit, the words are
//! 32-bit) so DFG extraction and semantic verification stay fast, while the
//! *structure* — substitution, permutation, key mixing, add-rotate-xor — is
//! the real thing.

/// 4-bit S-box used by the AES-style round (a real bijective S-box).
fn sbox_module() -> String {
    let table = [
        0x6u64, 0xB, 0x5, 0x4, 0x2, 0xE, 0x7, 0xA, 0x9, 0xD, 0xF, 0xC, 0x3, 0x1, 0x0, 0x8,
    ];
    let mut arms = String::new();
    for (i, v) in table.iter().enumerate() {
        arms.push_str(&format!("      4'd{i}: sout = 4'd{v};\n"));
    }
    format!(
        r#"
module sbox(input [3:0] sin, output reg [3:0] sout);
  always @(*) begin
    case (sin)
{arms}      default: sout = 4'd0;
    endcase
  end
endmodule
"#
    )
}

/// AES-style round over a 32-bit state: SubBytes (8 x 4-bit S-boxes),
/// ShiftRows-style byte rotation, MixColumns-style XOR spread, AddRoundKey.
pub fn aes() -> String {
    let mut src = sbox_module();
    src.push_str(
        r#"
module aes(input [31:0] state, input [31:0] round_key, output [31:0] next_state);
  wire [31:0] subbed;
  wire [31:0] shifted;
  wire [31:0] mixed;
  sbox s0(.sin(state[3:0]), .sout(subbed[3:0]));
  sbox s1(.sin(state[7:4]), .sout(subbed[7:4]));
  sbox s2(.sin(state[11:8]), .sout(subbed[11:8]));
  sbox s3(.sin(state[15:12]), .sout(subbed[15:12]));
  sbox s4(.sin(state[19:16]), .sout(subbed[19:16]));
  sbox s5(.sin(state[23:20]), .sout(subbed[23:20]));
  sbox s6(.sin(state[27:24]), .sout(subbed[27:24]));
  sbox s7(.sin(state[31:28]), .sout(subbed[31:28]));
  assign shifted = {subbed[7:0], subbed[31:8]};
  assign mixed = shifted ^ {shifted[15:0], shifted[31:16]} ^ {shifted[23:0], shifted[31:24]};
  assign next_state = mixed ^ round_key;
endmodule
"#,
    );
    src
}

/// XTEA-style add-rotate-xor mixer (one Feistel half-round).
pub fn xtea() -> String {
    r#"
module xtea(input [31:0] v0, input [31:0] v1, input [31:0] key,
            input [31:0] sum, output [31:0] out0, output [31:0] out1);
  wire [31:0] shifted_mix;
  wire [31:0] keyed;
  assign shifted_mix = ((v1 << 4) ^ (v1 >> 5)) + v1;
  assign keyed = sum + key;
  assign out0 = v0 + (shifted_mix ^ keyed);
  assign out1 = v1 + (((out0 << 4) ^ (out0 >> 5)) + out0 ^ (sum + key));
endmodule
"#
    .to_string()
}

/// SHA-256-style compression step: Ch, Maj, Σ0, Σ1 over 32-bit words.
pub fn sha_round() -> String {
    r#"
module sha_round(input [31:0] a, input [31:0] b, input [31:0] c,
                 input [31:0] e, input [31:0] f, input [31:0] g,
                 input [31:0] h, input [31:0] k, input [31:0] w,
                 output [31:0] new_a, output [31:0] new_e);
  wire [31:0] ch;
  wire [31:0] maj;
  wire [31:0] sig0;
  wire [31:0] sig1;
  wire [31:0] t1;
  wire [31:0] t2;
  assign ch = (e & f) ^ (~e & g);
  assign maj = (a & b) ^ (a & c) ^ (b & c);
  assign sig0 = {a[1:0], a[31:2]} ^ {a[12:0], a[31:13]} ^ {a[21:0], a[31:22]};
  assign sig1 = {e[5:0], e[31:6]} ^ {e[10:0], e[31:11]} ^ {e[24:0], e[31:25]};
  assign t1 = h + sig1 + ch + k + w;
  assign t2 = sig0 + maj;
  assign new_e = e + t1;
  assign new_a = t1 + t2;
endmodule
"#
    .to_string()
}

/// Trivium-style keystream stage: three shift-register taps combined into a
/// keystream bit plus feedback bits.
pub fn stream_cipher() -> String {
    r#"
module stream_cipher(input [30:0] sa, input [27:0] sb, input [36:0] sc,
                     output ks, output fa, output fb, output fc);
  wire ta;
  wire tb;
  wire tc;
  assign ta = sa[27] ^ sa[30];
  assign tb = sb[24] ^ sb[27];
  assign tc = sc[33] ^ sc[36];
  assign ks = ta ^ tb ^ tc;
  assign fa = ta ^ (sa[29] & sa[28]) ^ sb[5];
  assign fb = tb ^ (sb[26] & sb[25]) ^ sc[8];
  assign fc = tc ^ (sc[35] & sc[34]) ^ sa[3];
endmodule
"#
    .to_string()
}

/// GHASH-style carry-less multiply-accumulate slice (GF(2) dot products).
pub fn gf_mult() -> String {
    r#"
module gf_mult(input [7:0] x, input [7:0] y, output [7:0] z);
  wire [7:0] p0;
  wire [7:0] p1;
  wire [7:0] p2;
  wire [7:0] p3;
  assign p0 = y[0] ? x : 8'd0;
  assign p1 = y[1] ? {x[6:0], 1'b0} ^ (x[7] ? 8'h1B : 8'd0) : 8'd0;
  assign p2 = y[2] ? {x[5:0], 2'b00} ^ (x[7] ? 8'h36 : 8'd0) ^ (x[6] ? 8'h1B : 8'd0) : 8'd0;
  assign p3 = y[3] ? {x[4:0], 3'b000} ^ (x[7] ? 8'h6C : 8'd0) ^ (x[6] ? 8'h36 : 8'd0) : 8'd0;
  assign z = p0 ^ p1 ^ p2 ^ p3;
endmodule
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_dfg::graph_from_verilog;
    use gnn4ip_hdl::{elaborate, Evaluator};
    use std::collections::HashMap;

    #[test]
    fn aes_round_is_bijective_on_samples() {
        let e = Evaluator::new(&elaborate(&aes(), Some("aes")).expect("flat")).expect("eval");
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            let state = i.wrapping_mul(0x9E3779B9) & 0xFFFF_FFFF;
            let out = e
                .eval_outputs(&HashMap::from([
                    ("state".to_string(), state),
                    ("round_key".to_string(), 0xA5A5_5A5A),
                ]))
                .expect("runs")["next_state"];
            assert!(seen.insert(out), "collision at input {state:#x}");
        }
    }

    #[test]
    fn sbox_substitution_changes_state() {
        let e = Evaluator::new(&elaborate(&aes(), Some("aes")).expect("flat")).expect("eval");
        let out = e
            .eval_outputs(&HashMap::from([
                ("state".to_string(), 0u64),
                ("round_key".to_string(), 0u64),
            ]))
            .expect("runs")["next_state"];
        // S(0)=6 in every nibble, then rotated/mixed — never zero
        assert_ne!(out, 0);
    }

    #[test]
    fn all_crypto_designs_extract() {
        for (top, src) in [
            ("aes", aes()),
            ("xtea", xtea()),
            ("sha_round", sha_round()),
            ("stream_cipher", stream_cipher()),
            ("gf_mult", gf_mult()),
        ] {
            let g = graph_from_verilog(&src, Some(top)).expect(top);
            assert!(g.node_count() > 10, "{top}: {}", g.node_count());
        }
    }

    #[test]
    fn sha_round_mixes_all_inputs() {
        let e = Evaluator::new(&elaborate(&sha_round(), Some("sha_round")).expect("flat"))
            .expect("eval");
        let base: HashMap<String, u64> = ["a", "b", "c", "e", "f", "g", "h", "k", "w"]
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), (i as u64 + 1) * 0x1111))
            .collect();
        let out0 = e.eval_outputs(&base).expect("runs");
        for key in ["a", "b", "c", "e", "f", "g", "h", "k", "w"] {
            // some single-bit flip must propagate (masked positions exist,
            // e.g. `maj` only passes `b` where a and c disagree)
            let affected = (0..16u64).any(|bit| {
                let mut flipped = base.clone();
                *flipped.get_mut(key).expect("key") ^= 1 << bit;
                let out1 = e.eval_outputs(&flipped).expect("runs");
                out0["new_a"] != out1["new_a"] || out0["new_e"] != out1["new_e"]
            });
            assert!(affected, "input {key} does not affect the round");
        }
    }
}
