//! Seeded synthetic RTL design families.
//!
//! The paper's corpus has 50 distinct circuit designs; a dozen are named
//! (processors, AES, RS232, FPA, ...) and the rest are unnamed. We
//! reproduce the long tail with a seeded generator: each `family_seed`
//! deterministically produces a structurally distinct combinational datapath
//! (random layered DAG of arithmetic/logic operations). Distinct seeds give
//! distinct functions; *instances* of one family come from the
//! semantics-preserving variation transforms, never from re-seeding.
//!
//! Generated designs are combinational on purpose: the corpus verifies every
//! variation transform against the [`gnn4ip_hdl::Evaluator`] oracle, which
//! needs a combinational cone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Size knob for generated designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthSize {
    /// ~30-120 DFG nodes: fast tests.
    Small,
    /// ~100-300 DFG nodes: RTL-corpus scale.
    Medium,
    /// ~300-700 DFG nodes: approaching the paper's mean RTL graph size (~1000).
    Large,
}

impl SynthSize {
    fn layers(self, rng: &mut StdRng) -> usize {
        match self {
            SynthSize::Small => rng.gen_range(2..4),
            SynthSize::Medium => rng.gen_range(4..7),
            SynthSize::Large => rng.gen_range(8..13),
        }
    }

    fn wires_per_layer(self, rng: &mut StdRng) -> usize {
        match self {
            SynthSize::Small => rng.gen_range(2..4),
            SynthSize::Medium => rng.gen_range(4..8),
            SynthSize::Large => rng.gen_range(8..14),
        }
    }
}

/// Generates the Verilog source of synthetic design family `family_seed`.
///
/// The module is named `synth_<family_seed>`; the top is self-contained and
/// purely combinational.
pub fn synth_design(family_seed: u64, size: SynthSize) -> String {
    let mut rng = StdRng::seed_from_u64(family_seed.wrapping_mul(0x9E3779B97F4A7C15));
    let width = [8usize, 12, 16][rng.gen_range(0..3usize)];
    let n_inputs = rng.gen_range(3..6);
    let n_outputs = rng.gen_range(2..4);
    let layers = size.layers(&mut rng);
    let per_layer = size.wires_per_layer(&mut rng);

    let mut src = String::new();
    let inputs: Vec<String> = (0..n_inputs).map(|i| format!("in{i}")).collect();
    let outputs: Vec<String> = (0..n_outputs).map(|i| format!("out{i}")).collect();
    let header_in: Vec<String> = inputs
        .iter()
        .map(|n| format!("input [{}:0] {n}", width - 1))
        .collect();
    let header_out: Vec<String> = outputs
        .iter()
        .map(|n| format!("output [{}:0] {n}", width - 1))
        .collect();
    let _ = writeln!(
        src,
        "module synth_{family_seed}({}, {});",
        header_in.join(", "),
        header_out.join(", ")
    );

    // Layered wires: each refers only to earlier signals (acyclic).
    let mut avail: Vec<String> = inputs.clone();
    let mut wire_no = 0usize;
    for _layer in 0..layers {
        let mut new_names = Vec::new();
        for _ in 0..per_layer {
            let name = format!("w{wire_no}");
            wire_no += 1;
            let expr = random_expr(&mut rng, &avail, width, 0);
            let _ = writeln!(src, "  wire [{}:0] {name};", width - 1);
            let _ = writeln!(src, "  assign {name} = {expr};");
            new_names.push(name);
        }
        avail.extend(new_names);
    }
    // Outputs fold over a wide sample of late-layer wires so the whole DAG
    // stays reachable from the roots (otherwise trim discards most layers
    // and graph sizes collapse).
    let tail = &avail[avail.len().saturating_sub(layers * per_layer / 2 + 2)..];
    for (oi, out) in outputs.iter().enumerate() {
        let mut expr = random_expr(&mut rng, &avail, width, 1);
        for (k, w) in tail.iter().enumerate() {
            if (k + oi) % n_outputs == 0 {
                let op = ["^", "&", "|", "+"][rng.gen_range(0..4usize)];
                expr = format!("({expr} {op} {w})");
            }
        }
        let _ = writeln!(src, "  assign {out} = {expr};");
    }
    src.push_str("endmodule\n");
    src
}

/// Picks a signal with recency bias: later wires are preferred, so layers
/// chain into deep dependency cones instead of isolated islands.
fn pick<'a>(rng: &mut StdRng, pool: &'a [String]) -> &'a str {
    let n = pool.len();
    if n > 8 && rng.gen_bool(0.7) {
        &pool[n - 1 - rng.gen_range(0..n / 2)]
    } else {
        &pool[rng.gen_range(0..n)]
    }
}

/// Random width-preserving expression over available signals.
fn random_expr(rng: &mut StdRng, pool: &[String], width: usize, depth: usize) -> String {
    // Prefer leaves as depth grows.
    if depth >= 3 || rng.gen_bool(0.25 + 0.2 * depth as f64) {
        return if rng.gen_bool(0.85) {
            pick(rng, pool).to_string()
        } else {
            format!("{width}'d{}", rng.gen_range(0..(1u64 << (width.min(16)))))
        };
    }
    let a = random_expr(rng, pool, width, depth + 1);
    let b = random_expr(rng, pool, width, depth + 1);
    match rng.gen_range(0..10) {
        0 => format!("({a} + {b})"),
        1 => format!("({a} - {b})"),
        2 => format!("({a} & {b})"),
        3 => format!("({a} | {b})"),
        4 => format!("({a} ^ {b})"),
        5 => format!("(~{a})"),
        6 => {
            let sh = rng.gen_range(1..width.min(7));
            format!("({a} << {sh})")
        }
        7 => {
            let sh = rng.gen_range(1..width.min(7));
            format!("({a} >> {sh})")
        }
        8 => {
            let c = random_expr(rng, pool, width, depth + 1);
            format!(
                "(({a} < {b}) ? {c} : ({a} ^ {width}'d{}))",
                rng.gen_range(1..255)
            )
        }
        _ => {
            // part-select concat: bases must be plain identifiers
            let x = pick(rng, pool).to_string();
            let y = pick(rng, pool).to_string();
            let half = width / 2;
            format!("{{{x}[{}:0], {y}[{}:{half}]}}", half - 1, width - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_dfg::graph_from_verilog;
    use gnn4ip_hdl::{elaborate, Evaluator};
    use std::collections::HashMap;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            synth_design(5, SynthSize::Medium),
            synth_design(5, SynthSize::Medium)
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            synth_design(1, SynthSize::Medium),
            synth_design(2, SynthSize::Medium)
        );
    }

    #[test]
    fn many_seeds_parse_and_extract() {
        for seed in 0..30u64 {
            let src = synth_design(seed, SynthSize::Small);
            let g = graph_from_verilog(&src, None)
                .unwrap_or_else(|e| panic!("seed {seed} failed: {e}\n{src}"));
            assert!(g.node_count() > 10, "seed {seed} too small");
            assert!(!g.roots().is_empty());
        }
    }

    #[test]
    fn generated_designs_are_combinationally_evaluable() {
        for seed in 0..10u64 {
            let src = synth_design(seed, SynthSize::Small);
            let flat = elaborate(&src, None).expect("flat");
            let eval = Evaluator::new(&flat).expect("eval");
            let inputs: HashMap<String, u64> = flat
                .inputs()
                .iter()
                .enumerate()
                .map(|(i, n)| (n.to_string(), (i as u64 + 1) * 37))
                .collect();
            let out = eval.eval_outputs(&inputs).expect("settles");
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn different_families_compute_different_functions() {
        // Check on a fixed stimulus that at least one output differs.
        let mut behaviors = std::collections::HashSet::new();
        for seed in 0..8u64 {
            let src = synth_design(seed, SynthSize::Small);
            let flat = elaborate(&src, None).expect("flat");
            let eval = Evaluator::new(&flat).expect("eval");
            let inputs: HashMap<String, u64> = flat
                .inputs()
                .iter()
                .map(|n| (n.to_string(), 0xABu64))
                .collect();
            let out = eval.eval_outputs(&inputs).expect("settles");
            let mut sig: Vec<(String, u64)> = out.into_iter().collect();
            sig.sort();
            behaviors.insert(format!("{sig:?}"));
        }
        assert!(
            behaviors.len() >= 7,
            "families collide: {}",
            behaviors.len()
        );
    }

    #[test]
    fn size_knob_scales_graphs() {
        let small = graph_from_verilog(&synth_design(3, SynthSize::Small), None)
            .expect("small")
            .node_count();
        let large = graph_from_verilog(&synth_design(3, SynthSize::Large), None)
            .expect("large")
            .node_count();
        assert!(large > small * 2, "large {large} vs small {small}");
    }
}
