//! Processor design family: a shared ALU block and three MIPS-style
//! processors built around it.
//!
//! These mirror the named designs of the paper's evaluation:
//! - `alu` — the stand-alone block used in Table II case 3 (design vs
//!   subset): every MIPS variant *instantiates this exact module*, so a MIPS
//!   DFG literally contains the ALU DFG as a subgraph.
//! - `mips_single` — single-cycle datapath (Fig. 4's "Single-cycle MIPS").
//! - `mips_pipeline` — pipelined datapath with stage registers (Fig. 4's
//!   "Pipeline MIPS").
//! - `mips_multi` — multi-cycle FSM sharing one ALU (Table II "M.MIPS").
//!
//! All three processors implement the same small instruction subset (add, sub,
//! and, or, xor, slt, shifts, lw/sw-style addressing arithmetic) over the
//! same ALU, differing only in design style — exactly the "same
//! functionality, different design" contrast §IV-C highlights.

/// The shared ALU block (8 ops, parameterized width fixed at 32).
pub fn alu_module() -> String {
    r#"
module alu(input [31:0] op_a, input [31:0] op_b, input [2:0] ctl,
           output reg [31:0] result, output zero);
  wire [31:0] sum;
  wire [31:0] diff;
  assign sum = op_a + op_b;
  assign diff = op_a - op_b;
  always @(*) begin
    case (ctl)
      3'd0: result = op_a & op_b;
      3'd1: result = op_a | op_b;
      3'd2: result = sum;
      3'd3: result = op_a ^ op_b;
      3'd4: result = op_a << op_b[4:0];
      3'd5: result = op_a >> op_b[4:0];
      3'd6: result = diff;
      default: result = {31'd0, diff[31]};
    endcase
  end
  assign zero = (result == 32'd0);
endmodule
"#
    .to_string()
}

/// Stand-alone ALU design (top = `alu`).
pub fn alu() -> String {
    alu_module()
}

/// Instruction decoder shared by the processors (kept as a separate module
/// so processor DFGs share more than just the ALU structure).
fn decoder_module() -> String {
    r#"
module decoder(input [31:0] instr,
               output [4:0] rs, output [4:0] rt, output [4:0] rd,
               output [15:0] imm, output [5:0] opcode, output [5:0] funct,
               output reg [2:0] alu_ctl, output reg reg_write,
               output reg mem_to_reg, output reg alu_src);
  assign opcode = instr[31:26];
  assign rs = instr[25:21];
  assign rt = instr[20:16];
  assign rd = instr[15:11];
  assign imm = instr[15:0];
  assign funct = instr[5:0];
  always @(*) begin
    reg_write = 1'b1;
    mem_to_reg = 1'b0;
    alu_src = 1'b0;
    case (opcode)
      6'd0: begin
        case (funct)
          6'd36: alu_ctl = 3'd0;
          6'd37: alu_ctl = 3'd1;
          6'd32: alu_ctl = 3'd2;
          6'd38: alu_ctl = 3'd3;
          6'd0:  alu_ctl = 3'd4;
          6'd2:  alu_ctl = 3'd5;
          6'd34: alu_ctl = 3'd6;
          default: alu_ctl = 3'd7;
        endcase
      end
      6'd8: begin alu_ctl = 3'd2; alu_src = 1'b1; end
      6'd12: begin alu_ctl = 3'd0; alu_src = 1'b1; end
      6'd13: begin alu_ctl = 3'd1; alu_src = 1'b1; end
      6'd35: begin alu_ctl = 3'd2; alu_src = 1'b1; mem_to_reg = 1'b1; end
      6'd43: begin alu_ctl = 3'd2; alu_src = 1'b1; reg_write = 1'b0; end
      default: begin alu_ctl = 3'd2; reg_write = 1'b0; end
    endcase
  end
endmodule
"#
    .to_string()
}

/// Register-file read/forwarding block (small; modeled combinationally so
/// the datapath cone stays analyzable).
fn regread_module() -> String {
    r#"
module regread(input [4:0] addr_a, input [4:0] addr_b,
               input [31:0] wdata, input [4:0] waddr, input wen,
               output [31:0] rdata_a, output [31:0] rdata_b);
  wire hit_a;
  wire hit_b;
  assign hit_a = wen && (waddr == addr_a) && (addr_a != 5'd0);
  assign hit_b = wen && (waddr == addr_b) && (addr_b != 5'd0);
  assign rdata_a = hit_a ? wdata : {27'd0, addr_a};
  assign rdata_b = hit_b ? wdata : {27'd0, addr_b};
endmodule
"#
    .to_string()
}

/// Single-cycle MIPS-style processor.
pub fn mips_single() -> String {
    let mut src = String::new();
    src.push_str(&alu_module());
    src.push_str(&decoder_module());
    src.push_str(&regread_module());
    src.push_str(
        r#"
module mips_single(input clk, input reset, input [31:0] instr,
                   input [31:0] mem_rdata,
                   output [31:0] mem_addr, output [31:0] mem_wdata,
                   output mem_write, output [31:0] wb_data);
  wire [4:0] rs;
  wire [4:0] rt;
  wire [4:0] rd;
  wire [15:0] imm;
  wire [5:0] opcode;
  wire [5:0] funct;
  wire [2:0] alu_ctl;
  wire reg_write;
  wire mem_to_reg;
  wire alu_src;
  wire [31:0] reg_a;
  wire [31:0] reg_b;
  wire [31:0] alu_b;
  wire [31:0] alu_out;
  wire alu_zero;
  wire [31:0] sign_ext;
  reg [31:0] pc;

  decoder dec(.instr(instr), .rs(rs), .rt(rt), .rd(rd), .imm(imm),
              .opcode(opcode), .funct(funct), .alu_ctl(alu_ctl),
              .reg_write(reg_write), .mem_to_reg(mem_to_reg), .alu_src(alu_src));
  regread rf(.addr_a(rs), .addr_b(rt), .wdata(wb_data),
             .waddr(rd), .wen(reg_write), .rdata_a(reg_a), .rdata_b(reg_b));
  assign sign_ext = {{16{imm[15]}}, imm};
  assign alu_b = alu_src ? sign_ext : reg_b;
  alu main_alu(.op_a(reg_a), .op_b(alu_b), .ctl(alu_ctl),
               .result(alu_out), .zero(alu_zero));
  assign mem_addr = alu_out;
  assign mem_wdata = reg_b;
  assign mem_write = (opcode == 6'd43);
  assign wb_data = mem_to_reg ? mem_rdata : alu_out;
  always @(posedge clk) begin
    if (reset) pc <= 32'd0;
    else pc <= pc + (alu_zero ? {sign_ext[29:0], 2'd0} : 32'd4);
  end
endmodule
"#,
    );
    src
}

/// Five-stage pipelined MIPS-style processor (IF/ID, ID/EX, EX/MEM, MEM/WB
/// registers around the same decoder + ALU).
pub fn mips_pipeline() -> String {
    let mut src = String::new();
    src.push_str(&alu_module());
    src.push_str(&decoder_module());
    src.push_str(&regread_module());
    src.push_str(
        r#"
module mips_pipeline(input clk, input reset, input [31:0] instr,
                     input [31:0] mem_rdata,
                     output [31:0] mem_addr, output [31:0] mem_wdata,
                     output mem_write, output [31:0] wb_data);
  // IF/ID
  reg [31:0] ifid_instr;
  // ID/EX
  reg [31:0] idex_rega;
  reg [31:0] idex_regb;
  reg [31:0] idex_signext;
  reg [2:0] idex_aluctl;
  reg idex_alusrc;
  reg idex_regwrite;
  reg idex_memtoreg;
  reg idex_memwrite;
  reg [4:0] idex_rd;
  // EX/MEM
  reg [31:0] exmem_aluout;
  reg [31:0] exmem_regb;
  reg exmem_regwrite;
  reg exmem_memtoreg;
  reg exmem_memwrite;
  reg [4:0] exmem_rd;
  // MEM/WB
  reg [31:0] memwb_aluout;
  reg [31:0] memwb_mdata;
  reg memwb_regwrite;
  reg memwb_memtoreg;
  reg [4:0] memwb_rd;

  wire [4:0] rs;
  wire [4:0] rt;
  wire [4:0] rd;
  wire [15:0] imm;
  wire [5:0] opcode;
  wire [5:0] funct;
  wire [2:0] alu_ctl;
  wire reg_write;
  wire mem_to_reg;
  wire alu_src;
  wire [31:0] reg_a;
  wire [31:0] reg_b;
  wire [31:0] alu_b;
  wire [31:0] alu_out;
  wire alu_zero;
  wire [31:0] sign_ext;

  decoder dec(.instr(ifid_instr), .rs(rs), .rt(rt), .rd(rd), .imm(imm),
              .opcode(opcode), .funct(funct), .alu_ctl(alu_ctl),
              .reg_write(reg_write), .mem_to_reg(mem_to_reg), .alu_src(alu_src));
  regread rf(.addr_a(rs), .addr_b(rt), .wdata(wb_data),
             .waddr(memwb_rd), .wen(memwb_regwrite),
             .rdata_a(reg_a), .rdata_b(reg_b));
  assign sign_ext = {{16{imm[15]}}, imm};
  assign alu_b = idex_alusrc ? idex_signext : idex_regb;
  alu main_alu(.op_a(idex_rega), .op_b(alu_b), .ctl(idex_aluctl),
               .result(alu_out), .zero(alu_zero));

  always @(posedge clk) begin
    if (reset) begin
      ifid_instr <= 32'd0;
      idex_rega <= 32'd0;
      idex_regb <= 32'd0;
      idex_signext <= 32'd0;
      idex_aluctl <= 3'd0;
      idex_alusrc <= 1'b0;
      idex_regwrite <= 1'b0;
      idex_memtoreg <= 1'b0;
      idex_memwrite <= 1'b0;
      idex_rd <= 5'd0;
      exmem_aluout <= 32'd0;
      exmem_regb <= 32'd0;
      exmem_regwrite <= 1'b0;
      exmem_memtoreg <= 1'b0;
      exmem_memwrite <= 1'b0;
      exmem_rd <= 5'd0;
      memwb_aluout <= 32'd0;
      memwb_mdata <= 32'd0;
      memwb_regwrite <= 1'b0;
      memwb_memtoreg <= 1'b0;
      memwb_rd <= 5'd0;
    end else begin
      ifid_instr <= instr;
      idex_rega <= reg_a;
      idex_regb <= reg_b;
      idex_signext <= sign_ext;
      idex_aluctl <= alu_ctl;
      idex_alusrc <= alu_src;
      idex_regwrite <= reg_write;
      idex_memtoreg <= mem_to_reg;
      idex_memwrite <= (opcode == 6'd43);
      idex_rd <= rd;
      exmem_aluout <= alu_out;
      exmem_regb <= idex_regb;
      exmem_regwrite <= idex_regwrite;
      exmem_memtoreg <= idex_memtoreg;
      exmem_memwrite <= idex_memwrite;
      exmem_rd <= idex_rd;
      memwb_aluout <= exmem_aluout;
      memwb_mdata <= mem_rdata;
      memwb_regwrite <= exmem_regwrite;
      memwb_memtoreg <= exmem_memtoreg;
      memwb_rd <= exmem_rd;
    end
  end
  assign mem_addr = exmem_aluout;
  assign mem_wdata = exmem_regb;
  assign mem_write = exmem_memwrite;
  assign wb_data = memwb_memtoreg ? memwb_mdata : memwb_aluout;
endmodule
"#,
    );
    src
}

/// Multi-cycle MIPS-style processor: one shared ALU time-multiplexed by a
/// five-state FSM.
pub fn mips_multi() -> String {
    let mut src = String::new();
    src.push_str(&alu_module());
    src.push_str(&decoder_module());
    src.push_str(&regread_module());
    src.push_str(
        r#"
module mips_multi(input clk, input reset, input [31:0] instr,
                  input [31:0] mem_rdata,
                  output [31:0] mem_addr, output [31:0] mem_wdata,
                  output mem_write, output [31:0] wb_data);
  reg [2:0] state;
  reg [31:0] ir;
  reg [31:0] areg;
  reg [31:0] breg;
  reg [31:0] alureg;
  reg [31:0] mdr;
  reg [31:0] pc;

  wire [4:0] rs;
  wire [4:0] rt;
  wire [4:0] rd;
  wire [15:0] imm;
  wire [5:0] opcode;
  wire [5:0] funct;
  wire [2:0] alu_ctl;
  wire reg_write;
  wire mem_to_reg;
  wire alu_src;
  wire [31:0] reg_a;
  wire [31:0] reg_b;
  wire [31:0] sign_ext;
  reg [31:0] alu_in_a;
  reg [31:0] alu_in_b;
  reg [2:0] alu_op;
  wire [31:0] alu_out;
  wire alu_zero;

  decoder dec(.instr(ir), .rs(rs), .rt(rt), .rd(rd), .imm(imm),
              .opcode(opcode), .funct(funct), .alu_ctl(alu_ctl),
              .reg_write(reg_write), .mem_to_reg(mem_to_reg), .alu_src(alu_src));
  regread rf(.addr_a(rs), .addr_b(rt), .wdata(wb_data),
             .waddr(rd), .wen(reg_write && (state == 3'd4)),
             .rdata_a(reg_a), .rdata_b(reg_b));
  assign sign_ext = {{16{imm[15]}}, imm};

  // shared-ALU input multiplexing per state
  always @(*) begin
    case (state)
      3'd0: begin alu_in_a = pc; alu_in_b = 32'd4; alu_op = 3'd2; end
      3'd1: begin alu_in_a = reg_a; alu_in_b = sign_ext; alu_op = 3'd2; end
      3'd2: begin
        alu_in_a = areg;
        alu_in_b = alu_src ? sign_ext : breg;
        alu_op = alu_ctl;
      end
      default: begin alu_in_a = areg; alu_in_b = breg; alu_op = alu_ctl; end
    endcase
  end
  alu shared_alu(.op_a(alu_in_a), .op_b(alu_in_b), .ctl(alu_op),
                 .result(alu_out), .zero(alu_zero));

  always @(posedge clk) begin
    if (reset) begin
      state <= 3'd0;
      ir <= 32'd0;
      areg <= 32'd0;
      breg <= 32'd0;
      alureg <= 32'd0;
      mdr <= 32'd0;
      pc <= 32'd0;
    end else begin
      case (state)
        3'd0: begin ir <= instr; pc <= alu_out; state <= 3'd1; end
        3'd1: begin areg <= reg_a; breg <= reg_b; state <= 3'd2; end
        3'd2: begin alureg <= alu_out; state <= 3'd3; end
        3'd3: begin mdr <= mem_rdata; state <= 3'd4; end
        default: state <= 3'd0;
      endcase
    end
  end
  assign mem_addr = alureg;
  assign mem_wdata = breg;
  assign mem_write = (opcode == 6'd43) && (state == 3'd3);
  assign wb_data = mem_to_reg ? mdr : alureg;
endmodule
"#,
    );
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_dfg::graph_from_verilog;
    use gnn4ip_hdl::{elaborate, Evaluator};
    use std::collections::HashMap;

    #[test]
    fn alu_is_combinational_and_correct() {
        let e = Evaluator::new(&elaborate(&alu(), Some("alu")).expect("flat")).expect("eval");
        let run = |a: u64, b: u64, ctl: u64| {
            let ins = HashMap::from([
                ("op_a".to_string(), a),
                ("op_b".to_string(), b),
                ("ctl".to_string(), ctl),
            ]);
            e.eval_outputs(&ins).expect("runs")["result"]
        };
        assert_eq!(run(12, 10, 2), 22);
        assert_eq!(run(12, 10, 6), 2);
        assert_eq!(run(0b1100, 0b1010, 0), 0b1000);
        assert_eq!(run(0b1100, 0b1010, 1), 0b1110);
        assert_eq!(run(0b1100, 0b1010, 3), 0b0110);
        assert_eq!(run(1, 4, 4), 16);
        assert_eq!(run(16, 4, 5), 1);
        assert_eq!(run(3, 5, 7), 1); // slt
    }

    #[test]
    fn all_processors_elaborate_and_extract() {
        for (name, src) in [
            ("mips_single", mips_single()),
            ("mips_pipeline", mips_pipeline()),
            ("mips_multi", mips_multi()),
        ] {
            let g = graph_from_verilog(&src, Some(name)).expect(name);
            assert!(g.node_count() > 100, "{name} too small: {}", g.node_count());
            assert!(!g.roots().is_empty(), "{name} has no outputs");
        }
    }

    #[test]
    fn pipeline_is_larger_than_single_cycle() {
        let s = graph_from_verilog(&mips_single(), Some("mips_single")).expect("s");
        let p = graph_from_verilog(&mips_pipeline(), Some("mips_pipeline")).expect("p");
        assert!(
            p.node_count() > s.node_count(),
            "pipeline {} <= single {}",
            p.node_count(),
            s.node_count()
        );
    }

    #[test]
    fn processors_share_the_alu_submodule() {
        // the Table II case-3 premise: MIPS contains the ALU as a block
        for src in [mips_single(), mips_pipeline(), mips_multi()] {
            assert!(src.contains("module alu("), "ALU module missing");
            assert!(src.contains("alu "), "ALU not instantiated");
        }
    }
}
