//! DSP design family: FIR filter, IIR biquad section, moving average,
//! population count, absolute difference, saturating clamp, fixed-point
//! multiply, and a cordic-style rotation stage.
//!
//! All combinational (oracle-verifiable); widths kept small enough that the
//! evaluation oracle's 64-bit arithmetic is exact.

/// 4-tap FIR filter, fully unrolled: y = Σ c_i * x_i with 8-bit samples and
/// fixed coefficients (3, 5, 5, 3 — a crude low-pass).
pub fn fir4() -> String {
    r#"
module fir4(input [7:0] x0, input [7:0] x1, input [7:0] x2, input [7:0] x3,
            output [15:0] y);
  wire [15:0] t0;
  wire [15:0] t1;
  wire [15:0] t2;
  wire [15:0] t3;
  assign t0 = {8'd0, x0} * 16'd3;
  assign t1 = {8'd0, x1} * 16'd5;
  assign t2 = {8'd0, x2} * 16'd5;
  assign t3 = {8'd0, x3} * 16'd3;
  assign y = (t0 + t1) + (t2 + t3);
endmodule
"#
    .to_string()
}

/// Direct-form-I IIR biquad combinational core: one output sample from
/// current/past inputs and past outputs (states supplied as ports).
pub fn biquad() -> String {
    r#"
module biquad(input [7:0] x0, input [7:0] x1, input [7:0] x2,
              input [15:0] y1, input [15:0] y2, output [15:0] y0);
  wire [15:0] ff;
  wire [15:0] fb;
  assign ff = ({8'd0, x0} * 16'd4) + ({8'd0, x1} * 16'd8) + ({8'd0, x2} * 16'd4);
  assign fb = (y1 >> 1) + (y2 >> 2);
  assign y0 = ff - fb;
endmodule
"#
    .to_string()
}

/// 4-sample moving average with truncating divide by shift.
pub fn moving_average() -> String {
    r#"
module moving_average(input [7:0] s0, input [7:0] s1, input [7:0] s2,
                      input [7:0] s3, output [7:0] avg);
  wire [9:0] sum;
  assign sum = {2'd0, s0} + {2'd0, s1} + {2'd0, s2} + {2'd0, s3};
  assign avg = sum[9:2];
endmodule
"#
    .to_string()
}

/// Population count of a 16-bit word (tree of adders).
pub fn popcount() -> String {
    r#"
module popcount(input [15:0] x, output [4:0] ones);
  wire [1:0] p0;
  wire [1:0] p1;
  wire [1:0] p2;
  wire [1:0] p3;
  wire [1:0] p4;
  wire [1:0] p5;
  wire [1:0] p6;
  wire [1:0] p7;
  assign p0 = {1'd0, x[0]} + {1'd0, x[1]};
  assign p1 = {1'd0, x[2]} + {1'd0, x[3]};
  assign p2 = {1'd0, x[4]} + {1'd0, x[5]};
  assign p3 = {1'd0, x[6]} + {1'd0, x[7]};
  assign p4 = {1'd0, x[8]} + {1'd0, x[9]};
  assign p5 = {1'd0, x[10]} + {1'd0, x[11]};
  assign p6 = {1'd0, x[12]} + {1'd0, x[13]};
  assign p7 = {1'd0, x[14]} + {1'd0, x[15]};
  wire [2:0] q0;
  wire [2:0] q1;
  wire [2:0] q2;
  wire [2:0] q3;
  assign q0 = {1'd0, p0} + {1'd0, p1};
  assign q1 = {1'd0, p2} + {1'd0, p3};
  assign q2 = {1'd0, p4} + {1'd0, p5};
  assign q3 = {1'd0, p6} + {1'd0, p7};
  wire [3:0] r0;
  wire [3:0] r1;
  assign r0 = {1'd0, q0} + {1'd0, q1};
  assign r1 = {1'd0, q2} + {1'd0, q3};
  assign ones = {1'd0, r0} + {1'd0, r1};
endmodule
"#
    .to_string()
}

/// Absolute difference |a - b| of two 8-bit values.
pub fn absdiff() -> String {
    r#"
module absdiff(input [7:0] a, input [7:0] b, output [7:0] d);
  assign d = (a >= b) ? (a - b) : (b - a);
endmodule
"#
    .to_string()
}

/// Saturating clamp of a 10-bit signed-magnitude-ish value into 8 bits.
pub fn clamp() -> String {
    r#"
module clamp(input [9:0] x, input [7:0] lo, input [7:0] hi, output [7:0] y);
  wire over;
  wire under;
  assign over = x > {2'd0, hi};
  assign under = x < {2'd0, lo};
  assign y = over ? hi : (under ? lo : x[7:0]);
endmodule
"#
    .to_string()
}

/// Q4.4 fixed-point multiply with rounding.
pub fn fixmul() -> String {
    r#"
module fixmul(input [7:0] a, input [7:0] b, output [7:0] p, output ovf);
  wire [15:0] full;
  wire [15:0] rounded;
  assign full = {8'd0, a} * {8'd0, b};
  assign rounded = full + 16'd8;
  assign p = rounded[11:4];
  assign ovf = rounded[15:12] != 4'd0;
endmodule
"#
    .to_string()
}

/// One CORDIC-style rotation stage (shift-add update of an (x, y) pair).
pub fn cordic_stage() -> String {
    r#"
module cordic_stage(input [11:0] xin, input [11:0] yin, input dir,
                    output [11:0] xout, output [11:0] yout);
  wire [11:0] xs;
  wire [11:0] ys;
  assign xs = xin >> 2;
  assign ys = yin >> 2;
  assign xout = dir ? (xin - ys) : (xin + ys);
  assign yout = dir ? (yin + xs) : (yin - xs);
endmodule
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_dfg::graph_from_verilog;
    use gnn4ip_hdl::{elaborate, Evaluator};
    use std::collections::HashMap;

    fn eval_of(src: &str, top: &str) -> Evaluator {
        Evaluator::new(&elaborate(src, Some(top)).expect("flat")).expect("eval")
    }

    #[test]
    fn all_dsp_designs_extract() {
        for (top, src) in [
            ("fir4", fir4()),
            ("biquad", biquad()),
            ("moving_average", moving_average()),
            ("popcount", popcount()),
            ("absdiff", absdiff()),
            ("clamp", clamp()),
            ("fixmul", fixmul()),
            ("cordic_stage", cordic_stage()),
        ] {
            let g = graph_from_verilog(&src, Some(top)).expect(top);
            assert!(g.node_count() > 6, "{top}: {}", g.node_count());
        }
    }

    #[test]
    fn fir4_computes_weighted_sum() {
        let e = eval_of(&fir4(), "fir4");
        let out = e
            .eval_outputs(&HashMap::from([
                ("x0".to_string(), 10u64),
                ("x1".to_string(), 20),
                ("x2".to_string(), 30),
                ("x3".to_string(), 40),
            ]))
            .expect("runs")["y"];
        assert_eq!(out, 10 * 3 + 20 * 5 + 30 * 5 + 40 * 3);
    }

    #[test]
    fn popcount_matches_native() {
        let e = eval_of(&popcount(), "popcount");
        for x in [0u64, 1, 0xFFFF, 0xAAAA, 0x8001, 0x1234] {
            let out = e
                .eval_outputs(&HashMap::from([("x".to_string(), x)]))
                .expect("runs")["ones"];
            assert_eq!(out, x.count_ones() as u64, "popcount({x:#x})");
        }
    }

    #[test]
    fn absdiff_is_symmetric_metric() {
        let e = eval_of(&absdiff(), "absdiff");
        for (a, b) in [(5u64, 3u64), (3, 5), (200, 200), (0, 255)] {
            let out = e
                .eval_outputs(&HashMap::from([("a".to_string(), a), ("b".to_string(), b)]))
                .expect("runs")["d"];
            assert_eq!(out, a.abs_diff(b));
        }
    }

    #[test]
    fn clamp_respects_bounds() {
        let e = eval_of(&clamp(), "clamp");
        let run = |x: u64| {
            e.eval_outputs(&HashMap::from([
                ("x".to_string(), x),
                ("lo".to_string(), 10u64),
                ("hi".to_string(), 200u64),
            ]))
            .expect("runs")["y"]
        };
        assert_eq!(run(5), 10);
        assert_eq!(run(150), 150);
        assert_eq!(run(900), 200);
    }

    #[test]
    fn moving_average_truncates() {
        let e = eval_of(&moving_average(), "moving_average");
        let out = e
            .eval_outputs(&HashMap::from([
                ("s0".to_string(), 10u64),
                ("s1".to_string(), 20),
                ("s2".to_string(), 30),
                ("s3".to_string(), 43),
            ]))
            .expect("runs")["avg"];
        assert_eq!(out, (10 + 20 + 30 + 43) / 4);
    }

    #[test]
    fn fixmul_q44() {
        let e = eval_of(&fixmul(), "fixmul");
        // 1.0 * 1.0 in Q4.4 is 16 * 16 = 256 -> (256+8)>>4 = 16 = 1.0
        let out = e
            .eval_outputs(&HashMap::from([
                ("a".to_string(), 16u64),
                ("b".to_string(), 16u64),
            ]))
            .expect("runs");
        assert_eq!(out["p"], 16);
        assert_eq!(out["ovf"], 0);
    }
}
