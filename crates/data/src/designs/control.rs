//! Control-logic design family: FIFO controller, LFSR, priority encoder,
//! interrupt controller, PWM, arbiters, counters, decoders, register file.

/// Synchronous FIFO controller (pointers + full/empty flags; storage
/// abstracted behind read/write data ports).
pub fn fifo_ctrl() -> String {
    r#"
module fifo_ctrl(input clk, input reset, input push, input pop,
                 output reg [3:0] wptr, output reg [3:0] rptr,
                 output full, output empty, output reg [4:0] count);
  assign full = count == 5'd16;
  assign empty = count == 5'd0;
  always @(posedge clk) begin
    if (reset) begin
      wptr <= 4'd0;
      rptr <= 4'd0;
      count <= 5'd0;
    end else begin
      if (push && !full) begin
        wptr <= wptr + 4'd1;
        if (!(pop && !empty)) count <= count + 5'd1;
      end
      if (pop && !empty) begin
        rptr <= rptr + 4'd1;
        if (!(push && !full)) count <= count - 5'd1;
      end
    end
  end
endmodule
"#
    .to_string()
}

/// 16-bit Fibonacci LFSR (taps 16, 15, 13, 4).
pub fn lfsr() -> String {
    r#"
module lfsr(input clk, input reset, input enable, output reg [15:0] state,
            output bit_out);
  wire feedback;
  assign feedback = state[15] ^ state[14] ^ state[12] ^ state[3];
  assign bit_out = state[15];
  always @(posedge clk) begin
    if (reset) state <= 16'd1;
    else if (enable) state <= {state[14:0], feedback};
  end
endmodule
"#
    .to_string()
}

/// 8-to-3 priority encoder with valid flag.
pub fn priority_encoder() -> String {
    r#"
module priority_encoder(input [7:0] req, output reg [2:0] grant, output valid);
  assign valid = req != 8'd0;
  always @(*) begin
    if (req[7]) grant = 3'd7;
    else if (req[6]) grant = 3'd6;
    else if (req[5]) grant = 3'd5;
    else if (req[4]) grant = 3'd4;
    else if (req[3]) grant = 3'd3;
    else if (req[2]) grant = 3'd2;
    else if (req[1]) grant = 3'd1;
    else grant = 3'd0;
  end
endmodule
"#
    .to_string()
}

/// Interrupt controller: masking, pending latching, priority resolution —
/// functionally the c432 class (27-channel controller) at RTL level.
pub fn interrupt_ctrl() -> String {
    r#"
module priority_encoder9(input [8:0] req, output reg [3:0] grant);
  always @(*) begin
    if (req[8]) grant = 4'd8;
    else if (req[7]) grant = 4'd7;
    else if (req[6]) grant = 4'd6;
    else if (req[5]) grant = 4'd5;
    else if (req[4]) grant = 4'd4;
    else if (req[3]) grant = 4'd3;
    else if (req[2]) grant = 4'd2;
    else if (req[1]) grant = 4'd1;
    else grant = 4'd0;
  end
endmodule

module interrupt_ctrl(input clk, input reset,
                      input [8:0] irq_a, input [8:0] irq_b, input [8:0] irq_c,
                      input [8:0] mask_a, input [8:0] mask_b, input [8:0] mask_c,
                      input ack,
                      output [3:0] vec_a, output [3:0] vec_b, output [3:0] vec_c,
                      output reg [1:0] active_group, output irq_out);
  wire [8:0] pend_a;
  wire [8:0] pend_b;
  wire [8:0] pend_c;
  assign pend_a = irq_a & ~mask_a;
  assign pend_b = irq_b & ~mask_b;
  assign pend_c = irq_c & ~mask_c;
  priority_encoder9 pa(.req(pend_a), .grant(vec_a));
  priority_encoder9 pb(.req(pend_b), .grant(vec_b));
  priority_encoder9 pc(.req(pend_c), .grant(vec_c));
  assign irq_out = (pend_a != 9'd0) || (pend_b != 9'd0) || (pend_c != 9'd0);
  always @(posedge clk) begin
    if (reset) active_group <= 2'd0;
    else if (ack) begin
      if (pend_a != 9'd0) active_group <= 2'd0;
      else if (pend_b != 9'd0) active_group <= 2'd1;
      else active_group <= 2'd2;
    end
  end
endmodule
"#
    .to_string()
}

/// PWM generator with duty-cycle compare and dead-band.
pub fn pwm() -> String {
    r#"
module pwm(input clk, input reset, input [7:0] duty, input [3:0] deadband,
           output pwm_high, output pwm_low);
  reg [7:0] counter;
  always @(posedge clk) begin
    if (reset) counter <= 8'd0;
    else counter <= counter + 8'd1;
  end
  wire raw;
  assign raw = counter < duty;
  assign pwm_high = raw && (counter >= {4'd0, deadband});
  assign pwm_low = !raw && (counter < (8'd255 - {4'd0, deadband}));
endmodule
"#
    .to_string()
}

/// Round-robin arbiter over four requesters.
pub fn rr_arbiter() -> String {
    r#"
module rr_arbiter(input clk, input reset, input [3:0] req,
                  output reg [3:0] grant);
  reg [1:0] last;
  wire [3:0] rot;
  reg [3:0] pick;
  assign rot = (req >> (last + 2'd1)) | (req << (3'd4 - {1'd0, last} - 3'd1));
  always @(*) begin
    if (rot[0]) pick = 4'd1;
    else if (rot[1]) pick = 4'd2;
    else if (rot[2]) pick = 4'd4;
    else if (rot[3]) pick = 4'd8;
    else pick = 4'd0;
  end
  always @(posedge clk) begin
    if (reset) begin
      last <= 2'd3;
      grant <= 4'd0;
    end else begin
      grant <= pick;
      if (pick != 4'd0) begin
        if (pick[0]) last <= last + 2'd1;
        else if (pick[1]) last <= last + 2'd2;
        else if (pick[2]) last <= last + 2'd3;
        else last <= last;
      end
    end
  end
endmodule
"#
    .to_string()
}

/// Gray-code counter with binary↔gray converters.
pub fn gray_counter() -> String {
    r#"
module gray_counter(input clk, input reset, input enable,
                    output [7:0] gray, output reg [7:0] binary);
  always @(posedge clk) begin
    if (reset) binary <= 8'd0;
    else if (enable) binary <= binary + 8'd1;
  end
  assign gray = binary ^ (binary >> 1);
endmodule
"#
    .to_string()
}

/// Seven-segment display decoder (hex).
pub fn seven_seg() -> String {
    r#"
module seven_seg(input [3:0] digit, output reg [6:0] segments);
  always @(*) begin
    case (digit)
      4'h0: segments = 7'b0111111;
      4'h1: segments = 7'b0000110;
      4'h2: segments = 7'b1011011;
      4'h3: segments = 7'b1001111;
      4'h4: segments = 7'b1100110;
      4'h5: segments = 7'b1101101;
      4'h6: segments = 7'b1111101;
      4'h7: segments = 7'b0000111;
      4'h8: segments = 7'b1111111;
      4'h9: segments = 7'b1101111;
      4'hA: segments = 7'b1110111;
      4'hB: segments = 7'b1111100;
      4'hC: segments = 7'b0111001;
      4'hD: segments = 7'b1011110;
      4'hE: segments = 7'b1111001;
      default: segments = 7'b1110001;
    endcase
  end
endmodule
"#
    .to_string()
}

/// Watchdog timer with windowed kick.
pub fn watchdog() -> String {
    r#"
module watchdog(input clk, input reset, input kick, input [15:0] timeout,
                output reg expired, output reg [15:0] counter);
  always @(posedge clk) begin
    if (reset) begin
      counter <= 16'd0;
      expired <= 1'b0;
    end else begin
      if (kick) counter <= 16'd0;
      else begin
        if (counter >= timeout) expired <= 1'b1;
        else counter <= counter + 16'd1;
      end
    end
  end
endmodule
"#
    .to_string()
}

/// Debouncer + edge detector for a mechanical input.
pub fn debounce() -> String {
    r#"
module debounce(input clk, input reset, input noisy,
                output reg clean, output rising, output falling);
  reg [3:0] history;
  reg clean_q;
  always @(posedge clk) begin
    if (reset) begin
      history <= 4'd0;
      clean <= 1'b0;
      clean_q <= 1'b0;
    end else begin
      history <= {history[2:0], noisy};
      clean_q <= clean;
      if (history == 4'b1111) clean <= 1'b1;
      else if (history == 4'b0000) clean <= 1'b0;
    end
  end
  assign rising = clean && !clean_q;
  assign falling = !clean && clean_q;
endmodule
"#
    .to_string()
}

/// BCD (double-dabble) binary→BCD converter for one byte, unrolled.
pub fn bcd_convert() -> String {
    let mut s = String::from(
        r#"
module bcd_convert(input [7:0] bin, output [3:0] hundreds, output [3:0] tens,
                   output [3:0] ones);
  wire [19:0] s0;
  assign s0 = {12'd0, bin};
"#,
    );
    for i in 0..8 {
        s.push_str(&format!(
            "  wire [19:0] a{i};\n  wire [19:0] s{next};\n  \
             assign a{i} = {{\n    s{i}[19:16],\n    (s{i}[15:12] > 4'd4) ? (s{i}[15:12] + 4'd3) : s{i}[15:12],\n    (s{i}[11:8] > 4'd4) ? (s{i}[11:8] + 4'd3) : s{i}[11:8],\n    s{i}[7:0] }};\n  \
             assign s{next} = {{a{i}[18:0], 1'b0}};\n",
            next = i + 1,
        ));
    }
    s.push_str(
        "  assign hundreds = s8[19:16];\n  assign tens = s8[15:12];\n  assign ones = s8[11:8];\nendmodule\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_dfg::graph_from_verilog;
    use gnn4ip_hdl::{elaborate, Evaluator};
    use std::collections::HashMap;

    #[test]
    fn all_control_designs_extract() {
        for (top, src) in [
            ("fifo_ctrl", fifo_ctrl()),
            ("lfsr", lfsr()),
            ("priority_encoder", priority_encoder()),
            ("interrupt_ctrl", interrupt_ctrl()),
            ("pwm", pwm()),
            ("rr_arbiter", rr_arbiter()),
            ("gray_counter", gray_counter()),
            ("seven_seg", seven_seg()),
            ("watchdog", watchdog()),
            ("debounce", debounce()),
            ("bcd_convert", bcd_convert()),
        ] {
            let g = graph_from_verilog(&src, Some(top)).expect(top);
            assert!(g.node_count() > 8, "{top}: {}", g.node_count());
            assert!(!g.roots().is_empty(), "{top} rootless");
        }
    }

    #[test]
    fn priority_encoder_is_correct() {
        let e = Evaluator::new(
            &elaborate(&priority_encoder(), Some("priority_encoder")).expect("flat"),
        )
        .expect("eval");
        for (req, want) in [(0b1000_0000u64, 7u64), (0b0001_0010, 4), (0b1, 0)] {
            let out = e
                .eval_outputs(&HashMap::from([("req".to_string(), req)]))
                .expect("runs");
            assert_eq!(out["grant"], want, "req {req:b}");
            assert_eq!(out["valid"], 1);
        }
        let out = e
            .eval_outputs(&HashMap::from([("req".to_string(), 0u64)]))
            .expect("runs");
        assert_eq!(out["valid"], 0);
    }

    #[test]
    fn bcd_convert_is_correct() {
        let e = Evaluator::new(&elaborate(&bcd_convert(), Some("bcd_convert")).expect("flat"))
            .expect("eval");
        for v in [0u64, 9, 10, 99, 100, 163, 255] {
            let out = e
                .eval_outputs(&HashMap::from([("bin".to_string(), v)]))
                .expect("runs");
            assert_eq!(
                out["hundreds"] * 100 + out["tens"] * 10 + out["ones"],
                v,
                "bcd({v})"
            );
        }
    }

    #[test]
    fn interrupt_ctrl_masks_and_prioritizes() {
        let e =
            Evaluator::new(&elaborate(&interrupt_ctrl(), Some("interrupt_ctrl")).expect("flat"))
                .expect("eval");
        let out = e
            .eval_outputs(&HashMap::from([
                ("irq_a".to_string(), 0b1_0000_0001u64),
                ("mask_a".to_string(), 0b1_0000_0000u64),
                ("irq_b".to_string(), 0),
                ("mask_b".to_string(), 0),
                ("irq_c".to_string(), 0b100),
                ("mask_c".to_string(), 0),
                ("ack".to_string(), 0),
            ]))
            .expect("runs");
        assert_eq!(out["vec_a"], 0, "bit 8 masked, bit 0 wins");
        assert_eq!(out["vec_c"], 2);
        assert_eq!(out["irq_out"], 1);
    }
}
