//! The design catalog: every distinct circuit design the corpus can draw
//! from.
//!
//! 41 named designs (processors, crypto, comm, arithmetic, control) plus a
//! seeded synthetic tail reproduce the paper's "50 distinct circuit
//! designs"; gate-level netlists come from [`crate::iscas`].

pub mod arith;
pub mod comm;
pub mod control;
pub mod crypto;
pub mod dsp;
pub mod processors;
pub mod synth;

pub use synth::{synth_design, SynthSize};

/// Abstraction level of a design (the paper's two dataset columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Register-transfer-level Verilog.
    Rtl,
    /// Gate-level structural netlist.
    Netlist,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Rtl => "RTL",
            Level::Netlist => "netlist",
        })
    }
}

/// One distinct circuit design (a *family*; instances are derived from it).
#[derive(Debug, Clone)]
pub struct Design {
    /// Human name (e.g. `aes`, `mips_pipeline`, `synth_17`).
    pub name: String,
    /// Canonical Verilog source.
    pub source: String,
    /// Top module name.
    pub top: String,
    /// Abstraction level.
    pub level: Level,
    /// Whether the design is combinational and therefore checkable against
    /// the evaluation oracle when instances are generated.
    pub verifiable: bool,
}

impl Design {
    fn rtl(name: &str, source: String, verifiable: bool) -> Self {
        Self {
            name: name.to_string(),
            top: name.to_string(),
            source,
            level: Level::Rtl,
            verifiable,
        }
    }

    fn netlist(name: &str, source: String) -> Self {
        Self {
            name: name.to_string(),
            top: name.to_string(),
            source,
            level: Level::Netlist,
            verifiable: true,
        }
    }
}

/// The named RTL designs, in a stable order.
pub fn named_rtl_designs() -> Vec<Design> {
    vec![
        Design::rtl("alu", processors::alu(), true),
        Design::rtl("mips_single", processors::mips_single(), false),
        Design::rtl("mips_pipeline", processors::mips_pipeline(), false),
        Design::rtl("mips_multi", processors::mips_multi(), false),
        Design::rtl("aes", crypto::aes(), true),
        Design::rtl("xtea", crypto::xtea(), true),
        Design::rtl("sha_round", crypto::sha_round(), true),
        Design::rtl("stream_cipher", crypto::stream_cipher(), true),
        Design::rtl("gf_mult", crypto::gf_mult(), true),
        Design::rtl("rs232", comm::rs232(), false),
        Design::rtl("spi_master", comm::spi_master(), false),
        Design::rtl("i2c_engine", comm::i2c_engine(), false),
        Design::rtl("enc_8b10b", comm::enc_8b10b(), true),
        Design::rtl("manchester", comm::manchester(), true),
        Design::rtl("fpa", arith::fpa(), true),
        Design::rtl("array_mult", arith::array_mult(), true),
        Design::rtl("divider", arith::divider(), true),
        Design::rtl("mac", arith::mac(), true),
        Design::rtl("barrel", arith::barrel(), true),
        Design::rtl("crc8", arith::crc8(), true),
        Design::rtl("hamming", arith::hamming(), true),
        Design::rtl("isqrt", arith::isqrt(), true),
        Design::rtl("fifo_ctrl", control::fifo_ctrl(), false),
        Design::rtl("lfsr", control::lfsr(), false),
        Design::rtl("priority_encoder", control::priority_encoder(), true),
        Design::rtl("interrupt_ctrl", control::interrupt_ctrl(), false),
        Design::rtl("pwm", control::pwm(), false),
        Design::rtl("rr_arbiter", control::rr_arbiter(), false),
        Design::rtl("gray_counter", control::gray_counter(), false),
        Design::rtl("seven_seg", control::seven_seg(), true),
        Design::rtl("watchdog", control::watchdog(), false),
        Design::rtl("debounce", control::debounce(), false),
        Design::rtl("bcd_convert", control::bcd_convert(), true),
        Design::rtl("fir4", dsp::fir4(), true),
        Design::rtl("biquad", dsp::biquad(), true),
        Design::rtl("moving_average", dsp::moving_average(), true),
        Design::rtl("popcount", dsp::popcount(), true),
        Design::rtl("absdiff", dsp::absdiff(), true),
        Design::rtl("clamp", dsp::clamp(), true),
        Design::rtl("fixmul", dsp::fixmul(), true),
        Design::rtl("cordic_stage", dsp::cordic_stage(), true),
    ]
}

/// A catalog of `n` distinct RTL designs: the named designs followed by
/// synthetic families sized by `size`.
pub fn rtl_designs(n: usize, size: SynthSize) -> Vec<Design> {
    let mut designs = named_rtl_designs();
    designs.truncate(n);
    let mut seed = 0u64;
    while designs.len() < n {
        let name = format!("synth_{seed}");
        designs.push(Design::rtl(&name, synth_design(seed, size), true));
        seed += 1;
    }
    designs
}

/// A catalog of `n` distinct netlist designs: the six ISCAS'85-class
/// benchmarks followed by synthetic gate DAGs of roughly `gates` gates.
pub fn netlist_designs(n: usize, gates: usize) -> Vec<Design> {
    let mut designs = vec![
        Design::netlist("c432", crate::iscas::c432()),
        Design::netlist("c499", crate::iscas::c499()),
        Design::netlist("c880", crate::iscas::c880()),
        Design::netlist("c1355", crate::iscas::c1355()),
        Design::netlist("c1908", crate::iscas::c1908()),
        Design::netlist("c6288", crate::iscas::c6288()),
    ];
    designs.truncate(n);
    let mut seed = 0u64;
    while designs.len() < n {
        let name = format!("synthnet_{seed}");
        designs.push(Design::netlist(
            &name,
            crate::iscas::synth_netlist(seed, gates),
        ));
        seed += 1;
    }
    designs
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_dfg::graph_from_verilog;

    #[test]
    fn named_designs_have_unique_names() {
        let names: std::collections::HashSet<String> =
            named_rtl_designs().into_iter().map(|d| d.name).collect();
        assert_eq!(names.len(), named_rtl_designs().len());
    }

    #[test]
    fn every_named_design_extracts_a_dfg() {
        for d in named_rtl_designs() {
            let g = graph_from_verilog(&d.source, Some(&d.top))
                .unwrap_or_else(|e| panic!("{}: {e}", d.name));
            assert!(g.node_count() > 5, "{} too small", d.name);
            assert!(!g.roots().is_empty(), "{} rootless", d.name);
        }
    }

    #[test]
    fn catalog_reaches_fifty_designs() {
        let designs = rtl_designs(50, SynthSize::Small);
        assert_eq!(designs.len(), 50);
        let names: std::collections::HashSet<&str> =
            designs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names.len(), 50);
    }

    #[test]
    fn netlist_catalog_includes_iscas() {
        let designs = netlist_designs(10, 150);
        assert_eq!(designs.len(), 10);
        assert_eq!(designs[0].name, "c432");
        assert_eq!(designs[5].name, "c6288");
        assert!(designs[9].name.starts_with("synthnet_"));
        assert!(designs.iter().all(|d| d.level == Level::Netlist));
    }
}
