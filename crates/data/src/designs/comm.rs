//! Communication design family: RS232/UART transceiver (a named design in
//! Table II), SPI master, I2C-style bit engine, and an 8b/10b-style encoder.

/// RS232 transmitter + receiver with baud-rate generator (sequential FSMs).
pub fn rs232() -> String {
    r#"
module baudgen(input clk, input reset, output reg tick);
  reg [7:0] cnt;
  always @(posedge clk) begin
    if (reset) begin
      cnt <= 8'd0;
      tick <= 1'b0;
    end else begin
      if (cnt == 8'd103) begin
        cnt <= 8'd0;
        tick <= 1'b1;
      end else begin
        cnt <= cnt + 8'd1;
        tick <= 1'b0;
      end
    end
  end
endmodule

module uart_tx(input clk, input reset, input tick, input [7:0] data,
               input start, output reg txd, output reg busy);
  reg [3:0] state;
  reg [7:0] shifter;
  always @(posedge clk) begin
    if (reset) begin
      state <= 4'd0;
      txd <= 1'b1;
      busy <= 1'b0;
      shifter <= 8'd0;
    end else begin
      if (state == 4'd0) begin
        if (start) begin
          state <= 4'd1;
          shifter <= data;
          busy <= 1'b1;
        end
      end else begin
        if (tick) begin
          if (state == 4'd1) txd <= 1'b0;
          else begin
            if (state < 4'd10) begin
              txd <= shifter[0];
              shifter <= {1'b0, shifter[7:1]};
            end else begin
              txd <= 1'b1;
              busy <= 1'b0;
            end
          end
          if (state == 4'd11) state <= 4'd0;
          else state <= state + 4'd1;
        end
      end
    end
  end
endmodule

module uart_rx(input clk, input reset, input tick, input rxd,
               output reg [7:0] data, output reg valid);
  reg [3:0] state;
  reg [7:0] shifter;
  always @(posedge clk) begin
    if (reset) begin
      state <= 4'd0;
      data <= 8'd0;
      valid <= 1'b0;
      shifter <= 8'd0;
    end else begin
      valid <= 1'b0;
      if (state == 4'd0) begin
        if (!rxd) state <= 4'd1;
      end else begin
        if (tick) begin
          if (state < 4'd9) begin
            shifter <= {rxd, shifter[7:1]};
            state <= state + 4'd1;
          end else begin
            data <= shifter;
            valid <= rxd;
            state <= 4'd0;
          end
        end
      end
    end
  end
endmodule

module rs232(input clk, input reset, input [7:0] tx_data, input tx_start,
             input rxd, output txd, output tx_busy,
             output [7:0] rx_data, output rx_valid);
  wire tick;
  baudgen bg(.clk(clk), .reset(reset), .tick(tick));
  uart_tx tx(.clk(clk), .reset(reset), .tick(tick), .data(tx_data),
             .start(tx_start), .txd(txd), .busy(tx_busy));
  uart_rx rx(.clk(clk), .reset(reset), .tick(tick), .rxd(rxd),
             .data(rx_data), .valid(rx_valid));
endmodule
"#
    .to_string()
}

/// SPI master: clock divider + shift register engine.
pub fn spi_master() -> String {
    r#"
module spi_master(input clk, input reset, input [7:0] mosi_data, input go,
                  input miso, output reg sclk, output mosi,
                  output reg [7:0] miso_data, output reg done);
  reg [3:0] bitcnt;
  reg [7:0] shifter;
  reg active;
  assign mosi = shifter[7];
  always @(posedge clk) begin
    if (reset) begin
      sclk <= 1'b0;
      bitcnt <= 4'd0;
      shifter <= 8'd0;
      miso_data <= 8'd0;
      done <= 1'b0;
      active <= 1'b0;
    end else begin
      done <= 1'b0;
      if (!active) begin
        if (go) begin
          active <= 1'b1;
          shifter <= mosi_data;
          bitcnt <= 4'd0;
        end
      end else begin
        sclk <= ~sclk;
        if (sclk) begin
          shifter <= {shifter[6:0], miso};
          miso_data <= {miso_data[6:0], miso};
          if (bitcnt == 4'd7) begin
            active <= 1'b0;
            done <= 1'b1;
          end else bitcnt <= bitcnt + 4'd1;
        end
      end
    end
  end
endmodule
"#
    .to_string()
}

/// I2C-style open-drain bit engine (start/stop/ack detection).
pub fn i2c_engine() -> String {
    r#"
module i2c_engine(input clk, input reset, input scl, input sda,
                  output reg start_cond, output reg stop_cond,
                  output reg [7:0] shift, output reg ack);
  reg sda_q;
  reg scl_q;
  reg [2:0] bitcnt;
  always @(posedge clk) begin
    if (reset) begin
      sda_q <= 1'b1;
      scl_q <= 1'b1;
      start_cond <= 1'b0;
      stop_cond <= 1'b0;
      shift <= 8'd0;
      bitcnt <= 3'd0;
      ack <= 1'b0;
    end else begin
      sda_q <= sda;
      scl_q <= scl;
      start_cond <= scl && scl_q && sda_q && !sda;
      stop_cond <= scl && scl_q && !sda_q && sda;
      if (scl && !scl_q) begin
        shift <= {shift[6:0], sda};
        if (bitcnt == 3'd7) ack <= !sda;
        bitcnt <= bitcnt + 3'd1;
      end
    end
  end
endmodule
"#
    .to_string()
}

/// 8b/10b-style disparity encoder (combinational coding table slice).
pub fn enc_8b10b() -> String {
    r#"
module enc_8b10b(input [7:0] din, input disp_in, output [9:0] dout,
                 output disp_out);
  wire [5:0] abcdei;
  wire [3:0] fghj;
  wire [2:0] ones_low;
  wire [1:0] ones_high;
  assign ones_low = {2'd0, din[0]} + {2'd0, din[1]} + {2'd0, din[2]} +
                    {2'd0, din[3]} + {2'd0, din[4]};
  assign ones_high = {1'd0, din[5]} + {1'd0, din[6]} + {1'd0, din[7]};
  assign abcdei = (ones_low > 3'd2) ? {din[4:0], 1'b0} : {din[4:0], 1'b1};
  assign fghj = (ones_high > 2'd1) ? {din[7:5], 1'b0} : {din[7:5], 1'b1};
  assign dout = {abcdei, fghj};
  assign disp_out = disp_in ^ (ones_low[0] ^ ones_high[0]);
endmodule
"#
    .to_string()
}

/// Manchester encoder/decoder pair (combinational).
pub fn manchester() -> String {
    r#"
module manchester(input [7:0] data, input phase, output [15:0] encoded,
                  output [7:0] decoded);
  wire [15:0] enc;
  assign enc = {
    data[7] ^ phase, ~(data[7] ^ phase),
    data[6] ^ phase, ~(data[6] ^ phase),
    data[5] ^ phase, ~(data[5] ^ phase),
    data[4] ^ phase, ~(data[4] ^ phase),
    data[3] ^ phase, ~(data[3] ^ phase),
    data[2] ^ phase, ~(data[2] ^ phase),
    data[1] ^ phase, ~(data[1] ^ phase),
    data[0] ^ phase, ~(data[0] ^ phase)
  };
  assign encoded = enc;
  assign decoded = {enc[15] ^ phase, enc[13] ^ phase, enc[11] ^ phase,
                    enc[9] ^ phase, enc[7] ^ phase, enc[5] ^ phase,
                    enc[3] ^ phase, enc[1] ^ phase};
  wire _unused;
  assign _unused = enc[14] & enc[12] & enc[10] & enc[8] & enc[6] & enc[4]
                 & enc[2] & enc[0];
endmodule
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_dfg::graph_from_verilog;
    use gnn4ip_hdl::{elaborate, Evaluator};
    use std::collections::HashMap;

    #[test]
    fn all_comm_designs_extract() {
        for (top, src) in [
            ("rs232", rs232()),
            ("spi_master", spi_master()),
            ("i2c_engine", i2c_engine()),
            ("enc_8b10b", enc_8b10b()),
            ("manchester", manchester()),
        ] {
            let g = graph_from_verilog(&src, Some(top)).expect(top);
            assert!(g.node_count() > 15, "{top}: {}", g.node_count());
            assert!(!g.roots().is_empty());
        }
    }

    #[test]
    fn manchester_roundtrips() {
        let e = Evaluator::new(&elaborate(&manchester(), Some("manchester")).expect("flat"))
            .expect("eval");
        for d in [0u64, 0x5A, 0xFF, 0x13] {
            for phase in [0u64, 1] {
                let out = e
                    .eval_outputs(&HashMap::from([
                        ("data".to_string(), d),
                        ("phase".to_string(), phase),
                    ]))
                    .expect("runs");
                assert_eq!(out["decoded"], d, "phase {phase} data {d:#x}");
            }
        }
    }

    #[test]
    fn rs232_is_hierarchical() {
        let src = rs232();
        assert!(src.contains("module baudgen"));
        assert!(src.contains("module uart_tx"));
        assert!(src.contains("module uart_rx"));
        let g = graph_from_verilog(&src, Some("rs232")).expect("rs232");
        // tx and rx subtrees both present
        assert!(g.node_count() > 60);
    }
}
