//! Corpus persistence: write generated instances to a directory of Verilog
//! files with a manifest, and load such a directory back — so corpora can be
//! inspected, versioned, shared, or replaced with real proprietary designs.
//!
//! Layout:
//!
//! ```text
//! <dir>/manifest.tsv            # design_idx \t design_name \t top \t level \t variant \t file
//! <dir>/<design>__v<k>.v        # one Verilog file per instance
//! ```

use std::io;
use std::path::Path;

use gnn4ip_dfg::graph_from_verilog;

use crate::corpus::{Corpus, Instance};
use crate::designs::{Design, Level};

/// Writes a corpus to `dir` (created if missing).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_corpus(corpus: &Corpus, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut manifest = String::from("design_idx\tdesign\ttop\tlevel\tvariant\tfile\n");
    for inst in &corpus.instances {
        let design = &corpus.designs[inst.design];
        let file = format!("{}__v{}.v", design.name, inst.variant);
        std::fs::write(dir.join(&file), &inst.source)?;
        manifest.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            inst.design, design.name, design.top, design.level, inst.variant, file
        ));
    }
    std::fs::write(dir.join("manifest.tsv"), manifest)
}

/// Loads a corpus previously written by [`save_corpus`] (or hand-assembled
/// in the same layout), re-extracting every DFG.
///
/// # Errors
///
/// Returns an IO error for filesystem problems and an
/// `io::ErrorKind::InvalidData` error for malformed manifests or Verilog
/// that fails to parse.
pub fn load_corpus(dir: &Path) -> io::Result<Corpus> {
    let manifest = std::fs::read_to_string(dir.join("manifest.tsv"))?;
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut designs: Vec<Design> = Vec::new();
    let mut instances: Vec<Instance> = Vec::new();
    let mut graphs = Vec::new();
    for (lineno, line) in manifest.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        let [design_idx, name, top, level, variant, file] = cols.as_slice() else {
            return Err(bad(format!("manifest line {} malformed", lineno + 1)));
        };
        let design_idx: usize = design_idx
            .parse()
            .map_err(|e| bad(format!("line {}: bad design_idx: {e}", lineno + 1)))?;
        let variant: u64 = variant
            .parse()
            .map_err(|e| bad(format!("line {}: bad variant: {e}", lineno + 1)))?;
        let level = match *level {
            "RTL" => Level::Rtl,
            "netlist" => Level::Netlist,
            other => return Err(bad(format!("line {}: bad level '{other}'", lineno + 1))),
        };
        let source = std::fs::read_to_string(dir.join(file))?;
        while designs.len() <= design_idx {
            designs.push(Design {
                name: name.to_string(),
                source: String::new(),
                top: top.to_string(),
                level,
                verifiable: false,
            });
        }
        if variant == 0 {
            designs[design_idx].source = source.clone();
        }
        let g = graph_from_verilog(&source, Some(top)).map_err(|e| bad(format!("{file}: {e}")))?;
        graphs.push(g);
        instances.push(Instance {
            design: design_idx,
            variant,
            source,
        });
    }
    if instances.is_empty() {
        return Err(bad("manifest lists no instances".to_string()));
    }
    Ok(Corpus {
        designs,
        instances,
        graphs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gnn4ip_corpus_io_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_roundtrip() {
        let spec = CorpusSpec {
            n_designs: 3,
            instances_per_design: 2,
            ..CorpusSpec::rtl_small()
        };
        let corpus = Corpus::build(&spec).expect("builds");
        let dir = tmpdir("roundtrip");
        save_corpus(&corpus, &dir).expect("saves");
        let loaded = load_corpus(&dir).expect("loads");
        assert_eq!(loaded.instances.len(), corpus.instances.len());
        assert_eq!(loaded.designs.len(), corpus.designs.len());
        for (a, b) in corpus.instances.iter().zip(&loaded.instances) {
            assert_eq!(a.source, b.source);
            assert_eq!(a.design, b.design);
        }
        for (a, b) in corpus.graphs.iter().zip(&loaded.graphs) {
            assert_eq!(a.node_count(), b.node_count());
            assert_eq!(a.edge_count(), b.edge_count());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(load_corpus(Path::new("/nonexistent/gnn4ip")).is_err());
    }

    #[test]
    fn load_rejects_malformed_manifest() {
        let dir = tmpdir("badmanifest");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("manifest.tsv"), "header\nonly three\tcols\there\n")
            .expect("write");
        let err = load_corpus(&dir).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_mentions_every_instance() {
        let spec = CorpusSpec {
            n_designs: 2,
            instances_per_design: 3,
            ..CorpusSpec::rtl_small()
        };
        let corpus = Corpus::build(&spec).expect("builds");
        let dir = tmpdir("manifest");
        save_corpus(&corpus, &dir).expect("saves");
        let manifest = std::fs::read_to_string(dir.join("manifest.tsv")).expect("reads");
        assert_eq!(manifest.lines().count(), 1 + corpus.instances.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
