//! Verilog pretty-printer: AST → source text.
//!
//! The dataset generators build and transform designs at the AST level
//! (safe, type-checked) and then emit concrete Verilog, which flows through
//! the *full* Fig. 2 pipeline exactly like an external file would — the
//! reproduction never shortcuts from AST straight to DFG.

use std::fmt::Write as _;

use gnn4ip_hdl::{BinaryOp, Expr, Item, Module, NetKind, Range, SensItem, Stmt, UnaryOp};

/// Emits a module as Verilog source.
pub fn emit_module(m: &Module) -> String {
    let mut s = String::new();
    let _ = write!(s, "module {}", m.name);
    if !m.params.is_empty() {
        let ps: Vec<String> = m
            .params
            .iter()
            .map(|(n, v)| format!("parameter {n} = {}", emit_expr(v)))
            .collect();
        let _ = write!(s, " #({})", ps.join(", "));
    }
    let header: Vec<String> = m
        .ports
        .iter()
        .map(|p| {
            let mut d = format!("{}", p.dir);
            if p.is_reg {
                d.push_str(" reg");
            }
            if let Some(r) = &p.range {
                let _ = write!(d, " {}", emit_range(r));
            }
            format!("{d} {}", p.name)
        })
        .collect();
    let _ = writeln!(s, "({});", header.join(", "));
    for item in &m.items {
        emit_item(&mut s, item);
    }
    s.push_str("endmodule\n");
    s
}

fn emit_range(r: &Range) -> String {
    format!("[{}:{}]", emit_expr(&r.msb), emit_expr(&r.lsb))
}

fn emit_item(s: &mut String, item: &Item) {
    match item {
        Item::Decl {
            kind,
            name,
            range,
            init,
        } => {
            let kw = match kind {
                NetKind::Wire => "wire",
                NetKind::Reg => "reg",
                NetKind::Integer => "integer",
            };
            let r = range.as_ref().map(emit_range).unwrap_or_default();
            match init {
                Some(e) => {
                    let _ = writeln!(s, "  {kw} {r} {name} = {};", emit_expr(e));
                }
                None => {
                    let _ = writeln!(s, "  {kw} {r} {name};");
                }
            }
        }
        Item::Param { name, value } => {
            let _ = writeln!(s, "  localparam {name} = {};", emit_expr(value));
        }
        Item::Assign { lhs, rhs } => {
            let _ = writeln!(s, "  assign {} = {};", emit_expr(lhs), emit_expr(rhs));
        }
        Item::Always { sensitivity, body } => {
            let sens = if sensitivity.is_empty()
                || sensitivity.iter().any(|i| matches!(i, SensItem::Star))
            {
                "@(*)".to_string()
            } else {
                let items: Vec<String> = sensitivity
                    .iter()
                    .map(|i| match i {
                        SensItem::Posedge(n) => format!("posedge {n}"),
                        SensItem::Negedge(n) => format!("negedge {n}"),
                        SensItem::Level(n) => n.clone(),
                        SensItem::Star => "*".to_string(),
                    })
                    .collect();
                format!("@({})", items.join(" or "))
            };
            let _ = writeln!(s, "  always {sens}");
            emit_stmt(s, body, 2);
        }
        Item::Initial(body) => {
            let _ = writeln!(s, "  initial");
            emit_stmt(s, body, 2);
        }
        Item::Gate(g) => {
            let conns: Vec<String> = g.conns.iter().map(emit_expr).collect();
            let name = g.name.as_deref().unwrap_or("");
            let _ = writeln!(s, "  {} {name}({});", g.kind.keyword(), conns.join(", "));
        }
        Item::Instance(mi) => {
            let mut line = format!("  {} ", mi.module);
            if !mi.param_overrides.is_empty() {
                let ps: Vec<String> = mi
                    .param_overrides
                    .iter()
                    .map(|(n, e)| match n {
                        Some(n) => format!(".{n}({})", emit_expr(e)),
                        None => emit_expr(e),
                    })
                    .collect();
                let _ = write!(line, "#({}) ", ps.join(", "));
            }
            let conns: Vec<String> = mi
                .conns
                .iter()
                .map(|(n, e)| {
                    let ex = e.as_ref().map(emit_expr).unwrap_or_default();
                    match n {
                        Some(n) => format!(".{n}({ex})"),
                        None => ex,
                    }
                })
                .collect();
            let _ = writeln!(s, "{line}{}({});", mi.name, conns.join(", "));
        }
    }
}

fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("  ");
    }
}

fn emit_stmt(s: &mut String, stmt: &Stmt, level: usize) {
    match stmt {
        Stmt::Block(ss) => {
            indent(s, level);
            s.push_str("begin\n");
            for st in ss {
                emit_stmt(s, st, level + 1);
            }
            indent(s, level);
            s.push_str("end\n");
        }
        Stmt::Blocking { lhs, rhs } => {
            indent(s, level);
            let _ = writeln!(s, "{} = {};", emit_expr(lhs), emit_expr(rhs));
        }
        Stmt::NonBlocking { lhs, rhs } => {
            indent(s, level);
            let _ = writeln!(s, "{} <= {};", emit_expr(lhs), emit_expr(rhs));
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            indent(s, level);
            let _ = writeln!(s, "if ({})", emit_expr(cond));
            emit_stmt(s, then_s, level + 1);
            if let Some(e) = else_s {
                indent(s, level);
                s.push_str("else\n");
                emit_stmt(s, e, level + 1);
            }
        }
        Stmt::Case { subject, arms } => {
            indent(s, level);
            let _ = writeln!(s, "case ({})", emit_expr(subject));
            for (labels, body) in arms {
                indent(s, level + 1);
                if labels.is_empty() {
                    s.push_str("default:\n");
                } else {
                    let ls: Vec<String> = labels.iter().map(emit_expr).collect();
                    let _ = writeln!(s, "{}:", ls.join(", "));
                }
                emit_stmt(s, body, level + 2);
            }
            indent(s, level);
            s.push_str("endcase\n");
        }
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => {
            indent(s, level);
            let _ = writeln!(
                s,
                "for ({var} = {}; {}; {var} = {})",
                emit_expr(init),
                emit_expr(cond),
                emit_expr(step)
            );
            emit_stmt(s, body, level + 1);
        }
        Stmt::Null => {
            indent(s, level);
            s.push_str(";\n");
        }
    }
}

/// Emits an expression with full parenthesization (correct under any
/// precedence, at the cost of extra parentheses).
pub fn emit_expr(e: &Expr) -> String {
    match e {
        Expr::Ident(n) => n.clone(),
        Expr::Number { width, value } => match width {
            Some(w) => format!("{w}'d{value}"),
            None => value.to_string(),
        },
        Expr::Str(s) => format!("\"{s}\""),
        Expr::Unary { op, arg } => {
            let o = match op {
                UnaryOp::Not => "!",
                UnaryOp::BitNot => "~",
                UnaryOp::Plus => "+",
                UnaryOp::Minus => "-",
                UnaryOp::ReduceAnd => "&",
                UnaryOp::ReduceOr => "|",
                UnaryOp::ReduceXor => "^",
                UnaryOp::ReduceNand => "~&",
                UnaryOp::ReduceNor => "~|",
                UnaryOp::ReduceXnor => "~^",
            };
            format!("({o}{})", emit_expr(arg))
        }
        Expr::Binary { op, lhs, rhs } => {
            let o = match op {
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
                BinaryOp::Mod => "%",
                BinaryOp::Pow => "**",
                BinaryOp::Shl => "<<",
                BinaryOp::Shr => ">>",
                BinaryOp::AShr => ">>>",
                BinaryOp::Lt => "<",
                BinaryOp::Gt => ">",
                BinaryOp::Le => "<=",
                BinaryOp::Ge => ">=",
                BinaryOp::Eq => "==",
                BinaryOp::Neq => "!=",
                BinaryOp::CaseEq => "===",
                BinaryOp::CaseNeq => "!==",
                BinaryOp::And => "&",
                BinaryOp::Or => "|",
                BinaryOp::Xor => "^",
                BinaryOp::Xnor => "^~",
                BinaryOp::LogicalAnd => "&&",
                BinaryOp::LogicalOr => "||",
            };
            format!("({} {o} {})", emit_expr(lhs), emit_expr(rhs))
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => format!(
            "({} ? {} : {})",
            emit_expr(cond),
            emit_expr(then_e),
            emit_expr(else_e)
        ),
        Expr::Concat(parts) => {
            let ps: Vec<String> = parts.iter().map(emit_expr).collect();
            format!("{{{}}}", ps.join(", "))
        }
        Expr::Repeat { count, body } => {
            format!("{{{}{{{}}}}}", emit_expr(count), emit_expr(body))
        }
        Expr::BitSelect { base, index } => {
            format!("{}[{}]", emit_expr(base), emit_expr(index))
        }
        Expr::PartSelect { base, msb, lsb } => {
            format!("{}[{}:{}]", emit_expr(base), emit_expr(msb), emit_expr(lsb))
        }
        Expr::Call { name, args } => {
            let a: Vec<String> = args.iter().map(emit_expr).collect();
            format!("{name}({})", a.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_hdl::{elaborate, parse, Evaluator};
    use std::collections::HashMap;

    /// The strongest property: parse → emit → parse must round-trip to an
    /// equivalent design (same evaluation results).
    fn roundtrip_preserves_semantics(src: &str, top: &str, stimuli: &[Vec<(&str, u64)>]) {
        let unit = parse(src).expect("parses original");
        let emitted: String = unit.modules.iter().map(emit_module).collect();
        let e1 = Evaluator::new(&elaborate(src, Some(top)).expect("flat1")).expect("eval1");
        let e2 = Evaluator::new(&elaborate(&emitted, Some(top)).expect("flat2")).expect("eval2");
        for stim in stimuli {
            let m: HashMap<String, u64> = stim.iter().map(|(k, v)| (k.to_string(), *v)).collect();
            assert_eq!(
                e1.eval_outputs(&m).expect("run1"),
                e2.eval_outputs(&m).expect("run2"),
                "emitted source diverges for {stim:?}\n--- emitted ---\n{emitted}"
            );
        }
    }

    #[test]
    fn roundtrip_rtl_adder() {
        let src = "module fa(input a, input b, input cin, output reg sum, output reg cout);
          always @(a, b, cin) begin
            sum <= (a ^ b) ^ cin;
            cout <= ((a ^ b) && cin) || (a && b);
          end
        endmodule";
        let stim: Vec<Vec<(&str, u64)>> = (0..8u64)
            .map(|i| vec![("a", i & 1), ("b", (i >> 1) & 1), ("cin", (i >> 2) & 1)])
            .collect();
        roundtrip_preserves_semantics(src, "fa", &stim);
    }

    #[test]
    fn roundtrip_gate_netlist() {
        let src = "module fa(input a, input b, input cin, output sum, output cout);
          wire t1, t2, t3;
          xor (t1, a, b);
          and (t2, a, b);
          and (t3, t1, cin);
          xor (sum, t1, cin);
          or (cout, t3, t2);
        endmodule";
        let stim: Vec<Vec<(&str, u64)>> = (0..8u64)
            .map(|i| vec![("a", i & 1), ("b", (i >> 1) & 1), ("cin", (i >> 2) & 1)])
            .collect();
        roundtrip_preserves_semantics(src, "fa", &stim);
    }

    #[test]
    fn roundtrip_case_and_vectors() {
        let src = "module mux(input [1:0] s, input [3:0] d, output reg y);
          always @* case (s)
            2'd0: y = d[0];
            2'd1: y = d[1];
            2'd2: y = d[2];
            default: y = d[3];
          endcase
        endmodule";
        let stim: Vec<Vec<(&str, u64)>> = (0..16u64)
            .map(|i| vec![("s", i & 3), ("d", (i * 7) & 15)])
            .collect();
        roundtrip_preserves_semantics(src, "mux", &stim);
    }

    #[test]
    fn roundtrip_hierarchy() {
        let src = "module inv(input a, output y); assign y = ~a; endmodule
          module top(input x, output z);
            wire m;
            inv u1(.a(x), .y(m));
            inv u2(.a(m), .y(z));
          endmodule";
        roundtrip_preserves_semantics(src, "top", &[vec![("x", 0)], vec![("x", 1)]]);
    }

    #[test]
    fn emit_expr_parenthesizes() {
        let unit = parse(
            "module m(input a, input b, input c, output y);
               assign y = a | b & c;
             endmodule",
        )
        .expect("parses");
        let text = emit_module(&unit.modules[0]);
        assert!(text.contains("(a | (b & c))"), "{text}");
    }

    #[test]
    fn emit_concat_and_repeat() {
        let unit = parse(
            "module m(input [3:0] a, output [11:0] y);
               assign y = {{2{a}}, a};
             endmodule",
        )
        .expect("parses");
        let text = emit_module(&unit.modules[0]);
        assert!(text.contains("{{2{a}}, a}"), "{text}");
    }
}
