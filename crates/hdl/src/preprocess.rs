//! Verilog source preprocessing — phase 1 of the paper's Fig. 2 pipeline.
//!
//! Strips comments and attributes, resolves `` `define `` text macros,
//! drops non-semantic compiler directives (`` `timescale ``,
//! `` `celldefine ``, ...), and resolves `` `include `` against a
//! caller-supplied virtual filesystem (the reproduction never touches the
//! real filesystem from library code).

use std::collections::HashMap;

use crate::ParseVerilogError;

/// A virtual include resolver: maps an include path to source text.
pub type IncludeMap = HashMap<String, String>;

/// Preprocesses Verilog source text.
///
/// Supported directives: `` `define NAME body ``, `` `undef NAME ``,
/// `` `include "file" `` (resolved via `includes`), `` `ifdef/`ifndef/`else/`endif ``.
/// Unknown directives (e.g. `` `timescale ``) are dropped to end of line.
/// Comments (`//` and `/* */`) are removed; `(* attributes *)` are removed.
///
/// # Errors
///
/// Returns an error on unterminated block comments, missing include files,
/// or unbalanced conditional directives.
///
/// # Examples
///
/// ```
/// use gnn4ip_hdl::preprocess;
///
/// let out = preprocess("`define W 8\nwire [`W-1:0] x; // tail", &Default::default())?;
/// assert_eq!(out.trim(), "wire [ 8 -1:0] x;");
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
pub fn preprocess(source: &str, includes: &IncludeMap) -> Result<String, ParseVerilogError> {
    let no_comments = strip_comments(source)?;
    let mut macros: HashMap<String, String> = HashMap::new();
    let mut out = String::with_capacity(no_comments.len());
    // Stack of "currently emitting" flags for ifdef nesting.
    let mut emit_stack: Vec<bool> = Vec::new();
    expand(
        &no_comments,
        includes,
        &mut macros,
        &mut emit_stack,
        &mut out,
        0,
    )?;
    if !emit_stack.is_empty() {
        return Err(ParseVerilogError::msg("unterminated `ifdef"));
    }
    Ok(out)
}

fn emitting(stack: &[bool]) -> bool {
    stack.iter().all(|&b| b)
}

fn expand(
    source: &str,
    includes: &IncludeMap,
    macros: &mut HashMap<String, String>,
    emit_stack: &mut Vec<bool>,
    out: &mut String,
    depth: usize,
) -> Result<(), ParseVerilogError> {
    if depth > 16 {
        return Err(ParseVerilogError::msg("include/macro nesting too deep"));
    }
    for line in source.lines() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix('`') {
            let (word, tail) = split_word(rest);
            match word {
                "define" if emitting(emit_stack) => {
                    let (name, body) = split_word(tail.trim_start());
                    if name.is_empty() {
                        return Err(ParseVerilogError::msg("`define without a name"));
                    }
                    macros.insert(name.to_string(), body.trim().to_string());
                }
                "undef" if emitting(emit_stack) => {
                    let (name, _) = split_word(tail.trim_start());
                    macros.remove(name);
                }
                "include" if emitting(emit_stack) => {
                    let path = tail
                        .trim()
                        .trim_matches('"')
                        .trim_matches(|c| c == '<' || c == '>');
                    let body = includes.get(path).ok_or_else(|| {
                        ParseVerilogError::msg(format!("include file not found: {path}"))
                    })?;
                    let body = strip_comments(body)?;
                    expand(&body, includes, macros, emit_stack, out, depth + 1)?;
                }
                "ifdef" => {
                    let (name, _) = split_word(tail.trim_start());
                    emit_stack.push(macros.contains_key(name));
                }
                "ifndef" => {
                    let (name, _) = split_word(tail.trim_start());
                    emit_stack.push(!macros.contains_key(name));
                }
                "else" => {
                    let top = emit_stack
                        .last_mut()
                        .ok_or_else(|| ParseVerilogError::msg("`else without `ifdef"))?;
                    *top = !*top;
                }
                "endif" => {
                    emit_stack
                        .pop()
                        .ok_or_else(|| ParseVerilogError::msg("`endif without `ifdef"))?;
                }
                // `timescale, `celldefine, `default_nettype, ... : drop line
                _ => {}
            }
            out.push('\n');
            continue;
        }
        if emitting(emit_stack) {
            out.push_str(&substitute_macros(line, macros));
        }
        out.push('\n');
    }
    Ok(())
}

/// Splits off the leading identifier-like word.
fn split_word(s: &str) -> (&str, &str) {
    let end = s
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_' || c == '$'))
        .map_or(s.len(), |(i, _)| i);
    (&s[..end], &s[end..])
}

/// Replaces `` `NAME `` occurrences with macro bodies (one level; bodies are
/// themselves re-scanned once to support simple chained defines).
fn substitute_macros(line: &str, macros: &HashMap<String, String>) -> String {
    let mut cur = line.to_string();
    for _ in 0..4 {
        if !cur.contains('`') {
            break;
        }
        let mut next = String::with_capacity(cur.len());
        let mut rest = cur.as_str();
        while let Some(pos) = rest.find('`') {
            next.push_str(&rest[..pos]);
            let after = &rest[pos + 1..];
            let (name, tail) = split_word(after);
            if let Some(body) = macros.get(name) {
                next.push(' ');
                next.push_str(body);
                next.push(' ');
            } else {
                // Unknown macro mid-line: drop the tick, keep the name so the
                // parser reports a sensible identifier error.
                next.push_str(name);
            }
            rest = tail;
        }
        next.push_str(rest);
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

/// Removes `//`, `/* */` comments and `(* ... *)` attribute blocks while
/// preserving line structure (newlines inside block comments are kept so
/// spans stay accurate).
fn strip_comments(source: &str) -> Result<String, ParseVerilogError> {
    let bytes = source.as_bytes();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start = i;
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    let _ = start;
                    return Err(ParseVerilogError::msg("unterminated block comment"));
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                if bytes[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
        } else if c == b'('
            && i + 1 < bytes.len()
            && bytes[i + 1] == b'*'
            && bytes.get(i + 2) != Some(&b')')
        {
            // attribute block (* ... *) — but never the `@(*)` wildcard
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(ParseVerilogError::msg("unterminated attribute block"));
                }
                if bytes[i] == b'*' && bytes[i + 1] == b')' {
                    i += 2;
                    break;
                }
                if bytes[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
        } else if c == b'"' {
            // string literal: copy verbatim
            out.push('"');
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    out.push(bytes[i] as char);
                    i += 1;
                }
                out.push(bytes[i] as char);
                i += 1;
            }
            if i < bytes.len() {
                out.push('"');
                i += 1;
            }
        } else {
            out.push(c as char);
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = "a // x\nb /* y\nz */ c";
        let out = preprocess(s, &IncludeMap::new()).expect("ok");
        assert_eq!(out, "a \nb \n c\n");
    }

    #[test]
    fn strips_attributes() {
        let out = preprocess("(* keep *) wire w;", &IncludeMap::new()).expect("ok");
        assert_eq!(out.trim(), "wire w;");
    }

    #[test]
    fn define_and_substitute() {
        let out = preprocess("`define N 4\nwire [`N:0] x;", &IncludeMap::new()).expect("ok");
        assert!(out.contains("[ 4 :0]"), "{out:?}");
    }

    #[test]
    fn undef_removes_macro() {
        let s = "`define N 4\n`undef N\n`ifdef N\nyes\n`else\nno\n`endif";
        let out = preprocess(s, &IncludeMap::new()).expect("ok");
        assert!(!out.contains("yes"));
        assert!(out.contains("no"));
    }

    #[test]
    fn ifdef_controls_emission() {
        let s = "`define A\n`ifdef A\nkept\n`endif\n`ifdef B\ndropped\n`endif";
        let out = preprocess(s, &IncludeMap::new()).expect("ok");
        assert!(out.contains("kept"));
        assert!(!out.contains("dropped"));
    }

    #[test]
    fn include_resolves_from_map() {
        let mut inc = IncludeMap::new();
        inc.insert("defs.vh".to_string(), "`define W 16".to_string());
        let out = preprocess("`include \"defs.vh\"\nwire [`W-1:0] bus;", &inc).expect("ok");
        assert!(out.contains("[ 16 -1:0]"), "{out:?}");
    }

    #[test]
    fn missing_include_is_an_error() {
        let err = preprocess("`include \"nope.vh\"", &IncludeMap::new()).unwrap_err();
        assert!(err.to_string().contains("nope.vh"));
    }

    #[test]
    fn unknown_directives_are_dropped() {
        let out = preprocess("`timescale 1ns/1ps\nwire x;", &IncludeMap::new()).expect("ok");
        assert!(!out.contains("timescale"));
        assert!(out.contains("wire x;"));
    }

    #[test]
    fn unterminated_ifdef_errors() {
        assert!(preprocess("`ifdef X\n", &IncludeMap::new()).is_err());
    }

    #[test]
    fn line_numbers_preserved_through_block_comment() {
        let s = "line1 /* c\nc\nc */ line2";
        let out = preprocess(s, &IncludeMap::new()).expect("ok");
        assert_eq!(out.matches('\n').count(), 3);
    }
}
