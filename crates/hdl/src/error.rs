//! Error types for the Verilog front end.

use std::fmt;

use crate::token::Span;

/// An error produced while lexing, parsing, or elaborating Verilog source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseVerilogError {
    message: String,
    span: Option<Span>,
}

impl ParseVerilogError {
    /// Creates an error with a source location.
    pub fn at(span: Span, message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates an error without a source location (e.g. elaboration errors).
    pub fn msg(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            span: None,
        }
    }

    /// The source location, if known.
    pub fn span(&self) -> Option<Span> {
        self.span
    }
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(f, "{} at {}", self.message, s),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for ParseVerilogError {}
