//! Design elaboration: hierarchy flattening, parameter resolution, and
//! for-loop unrolling.
//!
//! The paper's preprocess phase "flattens the modular codes"; this module is
//! that step. [`flatten`] inlines every module instance into a single flat
//! [`Module`] whose only remaining items are declarations, assigns, always
//! blocks, and gate primitives.

use std::collections::HashMap;

use crate::ast::*;
use crate::ParseVerilogError;

/// Evaluates a constant expression over an integer environment.
///
/// Used for parameter values, ranges, and for-loop bounds.
///
/// # Errors
///
/// Returns an error on unresolvable identifiers, division by zero, or
/// non-constant constructs.
pub fn eval_const(expr: &Expr, env: &HashMap<String, i64>) -> Result<i64, ParseVerilogError> {
    match expr {
        Expr::Number { value, .. } => Ok(*value as i64),
        Expr::Ident(name) => env.get(name).copied().ok_or_else(|| {
            ParseVerilogError::msg(format!("'{name}' is not a constant in this context"))
        }),
        Expr::Unary { op, arg } => {
            let v = eval_const(arg, env)?;
            Ok(match op {
                UnaryOp::Minus => -v,
                UnaryOp::Plus => v,
                UnaryOp::Not => i64::from(v == 0),
                UnaryOp::BitNot => !v,
                _ => {
                    return Err(ParseVerilogError::msg(
                        "reduction operator in constant expression",
                    ))
                }
            })
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_const(lhs, env)?;
            let b = eval_const(rhs, env)?;
            Ok(match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                BinaryOp::Div => {
                    if b == 0 {
                        return Err(ParseVerilogError::msg("division by zero in constant"));
                    }
                    a / b
                }
                BinaryOp::Mod => {
                    if b == 0 {
                        return Err(ParseVerilogError::msg("modulo by zero in constant"));
                    }
                    a % b
                }
                BinaryOp::Pow => (a as f64).powi(b as i32) as i64,
                BinaryOp::Shl => a.wrapping_shl(b as u32),
                BinaryOp::Shr | BinaryOp::AShr => a.wrapping_shr(b as u32),
                BinaryOp::Lt => i64::from(a < b),
                BinaryOp::Gt => i64::from(a > b),
                BinaryOp::Le => i64::from(a <= b),
                BinaryOp::Ge => i64::from(a >= b),
                BinaryOp::Eq | BinaryOp::CaseEq => i64::from(a == b),
                BinaryOp::Neq | BinaryOp::CaseNeq => i64::from(a != b),
                BinaryOp::And => a & b,
                BinaryOp::Or => a | b,
                BinaryOp::Xor => a ^ b,
                BinaryOp::Xnor => !(a ^ b),
                BinaryOp::LogicalAnd => i64::from(a != 0 && b != 0),
                BinaryOp::LogicalOr => i64::from(a != 0 || b != 0),
            })
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            if eval_const(cond, env)? != 0 {
                eval_const(then_e, env)
            } else {
                eval_const(else_e, env)
            }
        }
        _ => Err(ParseVerilogError::msg("non-constant expression")),
    }
}

/// Substitutes parameter identifiers with their constant values throughout an
/// expression.
fn subst_expr(expr: &Expr, env: &HashMap<String, i64>) -> Expr {
    match expr {
        Expr::Ident(name) => match env.get(name) {
            Some(&v) => Expr::Number {
                width: None,
                value: v as u64,
            },
            None => expr.clone(),
        },
        Expr::Number { .. } | Expr::Str(_) => expr.clone(),
        Expr::Unary { op, arg } => Expr::Unary {
            op: *op,
            arg: Box::new(subst_expr(arg, env)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(subst_expr(lhs, env)),
            rhs: Box::new(subst_expr(rhs, env)),
        },
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => Expr::Ternary {
            cond: Box::new(subst_expr(cond, env)),
            then_e: Box::new(subst_expr(then_e, env)),
            else_e: Box::new(subst_expr(else_e, env)),
        },
        Expr::Concat(parts) => Expr::Concat(parts.iter().map(|p| subst_expr(p, env)).collect()),
        Expr::Repeat { count, body } => Expr::Repeat {
            count: Box::new(subst_expr(count, env)),
            body: Box::new(subst_expr(body, env)),
        },
        Expr::BitSelect { base, index } => Expr::BitSelect {
            base: Box::new(subst_expr(base, env)),
            index: Box::new(subst_expr(index, env)),
        },
        Expr::PartSelect { base, msb, lsb } => Expr::PartSelect {
            base: Box::new(subst_expr(base, env)),
            msb: Box::new(subst_expr(msb, env)),
            lsb: Box::new(subst_expr(lsb, env)),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|a| subst_expr(a, env)).collect(),
        },
    }
}

fn subst_stmt(stmt: &Stmt, env: &HashMap<String, i64>) -> Stmt {
    match stmt {
        Stmt::Block(ss) => Stmt::Block(ss.iter().map(|s| subst_stmt(s, env)).collect()),
        Stmt::Blocking { lhs, rhs } => Stmt::Blocking {
            lhs: subst_expr(lhs, env),
            rhs: subst_expr(rhs, env),
        },
        Stmt::NonBlocking { lhs, rhs } => Stmt::NonBlocking {
            lhs: subst_expr(lhs, env),
            rhs: subst_expr(rhs, env),
        },
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => Stmt::If {
            cond: subst_expr(cond, env),
            then_s: Box::new(subst_stmt(then_s, env)),
            else_s: else_s.as_ref().map(|s| Box::new(subst_stmt(s, env))),
        },
        Stmt::Case { subject, arms } => Stmt::Case {
            subject: subst_expr(subject, env),
            arms: arms
                .iter()
                .map(|(labels, body)| {
                    (
                        labels.iter().map(|l| subst_expr(l, env)).collect(),
                        subst_stmt(body, env),
                    )
                })
                .collect(),
        },
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => {
            // Shadow the loop variable: it is not a parameter inside the loop.
            let mut inner = env.clone();
            inner.remove(var);
            Stmt::For {
                var: var.clone(),
                init: subst_expr(init, env),
                cond: subst_expr(cond, &inner),
                step: subst_expr(step, &inner),
                body: Box::new(subst_stmt(body, &inner)),
            }
        }
        Stmt::Null => Stmt::Null,
    }
}

/// Renames every identifier in an expression via `f`.
fn rename_expr(expr: &Expr, f: &impl Fn(&str) -> String) -> Expr {
    match expr {
        Expr::Ident(name) => Expr::Ident(f(name)),
        Expr::Number { .. } | Expr::Str(_) => expr.clone(),
        Expr::Unary { op, arg } => Expr::Unary {
            op: *op,
            arg: Box::new(rename_expr(arg, f)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(rename_expr(lhs, f)),
            rhs: Box::new(rename_expr(rhs, f)),
        },
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => Expr::Ternary {
            cond: Box::new(rename_expr(cond, f)),
            then_e: Box::new(rename_expr(then_e, f)),
            else_e: Box::new(rename_expr(else_e, f)),
        },
        Expr::Concat(parts) => Expr::Concat(parts.iter().map(|p| rename_expr(p, f)).collect()),
        Expr::Repeat { count, body } => Expr::Repeat {
            count: Box::new(rename_expr(count, f)),
            body: Box::new(rename_expr(body, f)),
        },
        Expr::BitSelect { base, index } => Expr::BitSelect {
            base: Box::new(rename_expr(base, f)),
            index: Box::new(rename_expr(index, f)),
        },
        Expr::PartSelect { base, msb, lsb } => Expr::PartSelect {
            base: Box::new(rename_expr(base, f)),
            msb: Box::new(rename_expr(msb, f)),
            lsb: Box::new(rename_expr(lsb, f)),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|a| rename_expr(a, f)).collect(),
        },
    }
}

fn rename_stmt(stmt: &Stmt, f: &impl Fn(&str) -> String) -> Stmt {
    match stmt {
        Stmt::Block(ss) => Stmt::Block(ss.iter().map(|s| rename_stmt(s, f)).collect()),
        Stmt::Blocking { lhs, rhs } => Stmt::Blocking {
            lhs: rename_expr(lhs, f),
            rhs: rename_expr(rhs, f),
        },
        Stmt::NonBlocking { lhs, rhs } => Stmt::NonBlocking {
            lhs: rename_expr(lhs, f),
            rhs: rename_expr(rhs, f),
        },
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => Stmt::If {
            cond: rename_expr(cond, f),
            then_s: Box::new(rename_stmt(then_s, f)),
            else_s: else_s.as_ref().map(|s| Box::new(rename_stmt(s, f))),
        },
        Stmt::Case { subject, arms } => Stmt::Case {
            subject: rename_expr(subject, f),
            arms: arms
                .iter()
                .map(|(labels, body)| {
                    (
                        labels.iter().map(|l| rename_expr(l, f)).collect(),
                        rename_stmt(body, f),
                    )
                })
                .collect(),
        },
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => Stmt::For {
            var: f(var),
            init: rename_expr(init, f),
            cond: rename_expr(cond, f),
            step: rename_expr(step, f),
            body: Box::new(rename_stmt(body, f)),
        },
        Stmt::Null => Stmt::Null,
    }
}

/// Flattens a design hierarchy into a single module.
///
/// Parameters are resolved to constants (defaults overridden per instance),
/// every submodule instance is inlined with `inst__signal` renaming, and port
/// connections become continuous assigns. For-loops with constant bounds are
/// unrolled.
///
/// # Errors
///
/// Returns an error on unknown modules, unresolvable parameters, cyclic
/// hierarchies (depth > 64), or non-constant loop bounds.
///
/// # Examples
///
/// ```
/// use gnn4ip_hdl::{flatten, parse};
///
/// let unit = parse(
///     "module inv(input a, output y); assign y = ~a; endmodule
///      module top(input x, output z); inv u(.a(x), .y(z)); endmodule",
/// )?;
/// let flat = flatten(&unit, "top")?;
/// assert!(flat.items.iter().all(|i| !matches!(i, gnn4ip_hdl::Item::Instance(_))));
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
pub fn flatten(unit: &SourceUnit, top: &str) -> Result<Module, ParseVerilogError> {
    let top_mod = unit
        .module(top)
        .ok_or_else(|| ParseVerilogError::msg(format!("module '{top}' not found")))?;
    let mut env = HashMap::new();
    for (name, value) in &top_mod.params {
        let v = eval_const(value, &env)?;
        env.insert(name.clone(), v);
    }
    flatten_with_params(unit, top_mod, &env, 0)
}

fn flatten_with_params(
    unit: &SourceUnit,
    module: &Module,
    params: &HashMap<String, i64>,
    depth: usize,
) -> Result<Module, ParseVerilogError> {
    if depth > 64 {
        return Err(ParseVerilogError::msg(
            "module hierarchy too deep (cyclic instantiation?)",
        ));
    }
    let mut env = params.clone();
    let mut out = Module {
        name: module.name.clone(),
        port_order: module.port_order.clone(),
        ports: Vec::new(),
        params: Vec::new(),
        items: Vec::new(),
    };
    // resolve port ranges
    for p in &module.ports {
        let range = match &p.range {
            Some(r) => Some(Range {
                msb: Expr::number(eval_const(&r.msb, &env)?.max(0) as u64),
                lsb: Expr::number(eval_const(&r.lsb, &env)?.max(0) as u64),
            }),
            None => None,
        };
        out.ports.push(Port {
            name: p.name.clone(),
            dir: p.dir,
            is_reg: p.is_reg,
            range,
        });
    }
    for item in &module.items {
        match item {
            Item::Param { name, value } => {
                let v = eval_const(&subst_expr(value, &env), &env)?;
                env.insert(name.clone(), v);
            }
            Item::Decl {
                kind,
                name,
                range,
                init,
            } => {
                let range = match range {
                    Some(r) => Some(Range {
                        msb: Expr::number(
                            eval_const(&subst_expr(&r.msb, &env), &env)?.max(0) as u64
                        ),
                        lsb: Expr::number(
                            eval_const(&subst_expr(&r.lsb, &env), &env)?.max(0) as u64
                        ),
                    }),
                    None => None,
                };
                out.items.push(Item::Decl {
                    kind: *kind,
                    name: name.clone(),
                    range,
                    init: init.as_ref().map(|e| subst_expr(e, &env)),
                });
            }
            Item::Assign { lhs, rhs } => out.items.push(Item::Assign {
                lhs: subst_expr(lhs, &env),
                rhs: subst_expr(rhs, &env),
            }),
            Item::Always { sensitivity, body } => {
                let body = unroll_fors(&subst_stmt(body, &env), &env)?;
                out.items.push(Item::Always {
                    sensitivity: sensitivity.clone(),
                    body,
                });
            }
            Item::Initial(body) => out.items.push(Item::Initial(subst_stmt(body, &env))),
            Item::Gate(g) => out.items.push(Item::Gate(GateInstance {
                kind: g.kind,
                name: g.name.clone(),
                conns: g.conns.iter().map(|c| subst_expr(c, &env)).collect(),
            })),
            Item::Instance(inst) => {
                inline_instance(unit, inst, &env, &mut out, depth)?;
            }
        }
    }
    Ok(out)
}

fn inline_instance(
    unit: &SourceUnit,
    inst: &ModuleInstance,
    env: &HashMap<String, i64>,
    out: &mut Module,
    depth: usize,
) -> Result<(), ParseVerilogError> {
    let child = unit.module(&inst.module).ok_or_else(|| {
        ParseVerilogError::msg(format!(
            "module '{}' (instance '{}') not found",
            inst.module, inst.name
        ))
    })?;
    // Bind child parameters: defaults, then overrides.
    let mut child_params = HashMap::new();
    for (i, (pname, pdefault)) in child.params.iter().enumerate() {
        let mut value = None;
        for (j, (oname, oexpr)) in inst.param_overrides.iter().enumerate() {
            let matches = match oname {
                Some(n) => n == pname,
                None => j == i,
            };
            if matches {
                value = Some(eval_const(&subst_expr(oexpr, env), env)?);
            }
        }
        let v = match value {
            Some(v) => v,
            None => eval_const(&subst_expr(pdefault, env), &child_params)?,
        };
        child_params.insert(pname.clone(), v);
    }
    let flat_child = flatten_with_params(unit, child, &child_params, depth + 1)?;
    let prefix = format!("{}__", inst.name);
    let rename = |n: &str| format!("{prefix}{n}");

    // Declare a net per child port and bridge to the parent expression.
    for (i, port) in flat_child.ports.iter().enumerate() {
        out.items.push(Item::Decl {
            kind: NetKind::Wire,
            name: rename(&port.name),
            range: port.range.clone(),
            init: None,
        });
        // find the parent connection
        let conn: Option<&Expr> = {
            let mut found = None;
            for (j, (cname, cexpr)) in inst.conns.iter().enumerate() {
                let matches = match cname {
                    Some(n) => n == &port.name,
                    None => {
                        // positional: index in the child's header order
                        flat_child.port_order.get(j).map(String::as_str) == Some(port.name.as_str())
                            || (flat_child.port_order.is_empty() && j == i)
                    }
                };
                if matches {
                    found = cexpr.as_ref();
                    break;
                }
            }
            found
        };
        if let Some(parent_expr) = conn {
            match port.dir {
                PortDir::Input => out.items.push(Item::Assign {
                    lhs: Expr::ident(rename(&port.name)),
                    rhs: parent_expr.clone(),
                }),
                PortDir::Output | PortDir::Inout => out.items.push(Item::Assign {
                    lhs: parent_expr.clone(),
                    rhs: Expr::ident(rename(&port.name)),
                }),
            }
        }
    }
    // Splice renamed child items.
    for item in &flat_child.items {
        let renamed = match item {
            Item::Decl {
                kind,
                name,
                range,
                init,
            } => Item::Decl {
                kind: *kind,
                name: rename(name),
                range: range.clone(),
                init: init.as_ref().map(|e| rename_expr(e, &rename)),
            },
            Item::Assign { lhs, rhs } => Item::Assign {
                lhs: rename_expr(lhs, &rename),
                rhs: rename_expr(rhs, &rename),
            },
            Item::Always { sensitivity, body } => Item::Always {
                sensitivity: sensitivity
                    .iter()
                    .map(|s| match s {
                        SensItem::Posedge(n) => SensItem::Posedge(rename(n)),
                        SensItem::Negedge(n) => SensItem::Negedge(rename(n)),
                        SensItem::Level(n) => SensItem::Level(rename(n)),
                        SensItem::Star => SensItem::Star,
                    })
                    .collect(),
                body: rename_stmt(body, &rename),
            },
            Item::Initial(body) => Item::Initial(rename_stmt(body, &rename)),
            Item::Gate(g) => Item::Gate(GateInstance {
                kind: g.kind,
                name: g.name.as_ref().map(|n| rename(n)),
                conns: g.conns.iter().map(|c| rename_expr(c, &rename)).collect(),
            }),
            Item::Param { .. } | Item::Instance(_) => continue,
        };
        out.items.push(renamed);
    }
    Ok(())
}

/// Unrolls `for` statements with constant bounds into flat blocks, with the
/// loop variable substituted into the body on each iteration.
fn unroll_fors(stmt: &Stmt, env: &HashMap<String, i64>) -> Result<Stmt, ParseVerilogError> {
    const MAX_ITERS: usize = 4096;
    Ok(match stmt {
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        } => {
            let mut iter_env = env.clone();
            let mut v = eval_const(init, env)?;
            let mut unrolled = Vec::new();
            let mut count = 0usize;
            loop {
                iter_env.insert(var.clone(), v);
                if eval_const(cond, &iter_env)? == 0 {
                    break;
                }
                let body_i = subst_stmt(body, &iter_env);
                unrolled.push(unroll_fors(&body_i, &iter_env)?);
                v = eval_const(step, &iter_env)?;
                count += 1;
                if count > MAX_ITERS {
                    return Err(ParseVerilogError::msg(format!(
                        "for-loop over '{var}' exceeds {MAX_ITERS} iterations"
                    )));
                }
            }
            Stmt::Block(unrolled)
        }
        Stmt::Block(ss) => Stmt::Block(
            ss.iter()
                .map(|s| unroll_fors(s, env))
                .collect::<Result<_, _>>()?,
        ),
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => Stmt::If {
            cond: cond.clone(),
            then_s: Box::new(unroll_fors(then_s, env)?),
            else_s: match else_s {
                Some(s) => Some(Box::new(unroll_fors(s, env)?)),
                None => None,
            },
        },
        Stmt::Case { subject, arms } => Stmt::Case {
            subject: subject.clone(),
            arms: arms
                .iter()
                .map(|(l, b)| Ok((l.clone(), unroll_fors(b, env)?)))
                .collect::<Result<_, ParseVerilogError>>()?,
        },
        s => s.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn const_eval_arithmetic() {
        let env = HashMap::from([("N".to_string(), 8i64)]);
        let e = parse_expr("N*2-1");
        assert_eq!(eval_const(&e, &env).expect("const"), 15);
    }

    fn parse_expr(s: &str) -> Expr {
        let src = format!("module t(output [{s}:0] y); endmodule");
        let unit = parse(&src).expect("parses");
        match &unit.modules[0].ports[0].range {
            Some(r) => r.msb.clone(),
            None => panic!("no range"),
        }
    }

    #[test]
    fn flatten_single_level() {
        let unit = parse(
            "module inv(input a, output y); assign y = ~a; endmodule
             module top(input x, output z); inv u0(.a(x), .y(z)); endmodule",
        )
        .expect("parses");
        let flat = flatten(&unit, "top").expect("flattens");
        assert!(flat.items.iter().all(|i| !matches!(i, Item::Instance(_))));
        // child signals are prefixed
        let has_prefixed = flat
            .items
            .iter()
            .any(|i| matches!(i, Item::Decl { name, .. } if name.starts_with("u0__")));
        assert!(has_prefixed, "{:#?}", flat.items);
    }

    #[test]
    fn flatten_two_levels() {
        let unit = parse(
            "module inv(input a, output y); assign y = ~a; endmodule
             module pair(input a, output y);
               wire m;
               inv i1(.a(a), .y(m));
               inv i2(.a(m), .y(y));
             endmodule
             module top(input x, output z); pair p(.a(x), .y(z)); endmodule",
        )
        .expect("parses");
        let flat = flatten(&unit, "top").expect("flattens");
        let decl_names: Vec<&str> = flat
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Decl { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert!(decl_names.contains(&"p__m"), "{decl_names:?}");
        assert!(decl_names.contains(&"p__i1__a"), "{decl_names:?}");
    }

    #[test]
    fn flatten_resolves_parameters() {
        let unit = parse(
            "module w #(parameter N = 4)(input [N-1:0] a, output [N-1:0] y);
               assign y = a;
             endmodule
             module top(input [7:0] i, output [7:0] o);
               w #(.N(8)) u(.a(i), .y(o));
             endmodule",
        )
        .expect("parses");
        let flat = flatten(&unit, "top").expect("flattens");
        let port_range = flat
            .items
            .iter()
            .find_map(|i| match i {
                Item::Decl { name, range, .. } if name == "u__a" => range.clone(),
                _ => None,
            })
            .expect("u__a decl");
        assert_eq!(port_range.msb, Expr::number(7));
    }

    #[test]
    fn flatten_positional_connections() {
        let unit = parse(
            "module inv(input a, output y); assign y = ~a; endmodule
             module top(input x, output z); inv u0(x, z); endmodule",
        )
        .expect("parses");
        let flat = flatten(&unit, "top").expect("flattens");
        let bridges = flat
            .items
            .iter()
            .filter(|i| matches!(i, Item::Assign { .. }))
            .count();
        // input bridge + output bridge + internal assign
        assert_eq!(bridges, 3);
    }

    #[test]
    fn flatten_unknown_module_errors() {
        let unit = parse("module top(input x); ghost g(.a(x)); endmodule").expect("parses");
        assert!(flatten(&unit, "top").is_err());
    }

    #[test]
    fn unroll_for_loop() {
        let unit = parse(
            "module m(input [3:0] a, output reg [3:0] y);
               integer i;
               always @* begin
                 for (i = 0; i < 4; i = i + 1)
                   y[i] = a[3 - i];
               end
             endmodule",
        )
        .expect("parses");
        let flat = flatten(&unit, "m").expect("flattens");
        match &flat.items[1] {
            Item::Always {
                body: Stmt::Block(outer),
                ..
            } => match &outer[0] {
                Stmt::Block(iters) => {
                    assert_eq!(iters.len(), 4);
                    match &iters[2] {
                        Stmt::Blocking { lhs, .. } => match lhs {
                            Expr::BitSelect { index, .. } => {
                                assert_eq!(**index, Expr::number(2));
                            }
                            e => panic!("{e:?}"),
                        },
                        s => panic!("{s:?}"),
                    }
                }
                s => panic!("{s:?}"),
            },
            i => panic!("{i:?}"),
        }
    }

    #[test]
    fn gate_level_module_flattens_verbatim() {
        let unit = parse(
            "module fa(input a, input b, output s);
               xor (s, a, b);
             endmodule",
        )
        .expect("parses");
        let flat = flatten(&unit, "fa").expect("flattens");
        assert!(matches!(flat.items[0], Item::Gate(_)));
    }

    #[test]
    fn cyclic_hierarchy_errors() {
        let unit = parse(
            "module a(input x, output y); b u(.x(x), .y(y)); endmodule
             module b(input x, output y); a u(.x(x), .y(y)); endmodule",
        )
        .expect("parses");
        assert!(flatten(&unit, "a").is_err());
    }
}
