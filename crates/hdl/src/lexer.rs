//! Verilog lexer — turns preprocessed source into a token stream.

use crate::token::{Keyword, Punct, Span, Spanned, Token};
use crate::ParseVerilogError;

/// Lexes preprocessed Verilog source into spanned tokens.
///
/// # Errors
///
/// Returns an error on malformed numeric literals or unexpected characters.
///
/// # Examples
///
/// ```
/// use gnn4ip_hdl::lex;
///
/// let toks = lex("assign y = a & 1'b1;")?;
/// assert_eq!(toks.len(), 7);
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Spanned>, ParseVerilogError> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Self {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Spanned>, ParseVerilogError> {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            let span = self.span();
            let token = match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                b'\\' => self.escaped_ident(),
                b'0'..=b'9' | b'\'' => self.number(span)?,
                b'"' => self.string(span)?,
                b'$' => self.system_ident(),
                _ => self.punct(span)?,
            };
            out.push(Spanned { token, span });
        }
        Ok(out)
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if pred(c) {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn ident(&mut self) -> Token {
        let word = self.take_while(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'$');
        match Keyword::from_ident(&word) {
            Some(kw) => Token::Kw(kw),
            None => Token::Ident(word),
        }
    }

    fn escaped_ident(&mut self) -> Token {
        self.bump(); // backslash
        let word = self.take_while(|c| !c.is_ascii_whitespace());
        Token::Ident(word)
    }

    fn system_ident(&mut self) -> Token {
        // $display etc — lexed as identifier with the $.
        self.bump();
        let word = self.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
        Token::Ident(format!("${word}"))
    }

    fn string(&mut self, span: Span) -> Result<Token, ParseVerilogError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => {
                    if let Some(c) = self.bump() {
                        s.push(c as char);
                    }
                }
                Some(c) => s.push(c as char),
                None => return Err(ParseVerilogError::at(span, "unterminated string")),
            }
        }
        Ok(Token::Str(s))
    }

    fn number(&mut self, span: Span) -> Result<Token, ParseVerilogError> {
        let mut text = String::new();
        // optional decimal size prefix
        let size = self.take_while(|c| c.is_ascii_digit() || c == b'_');
        text.push_str(&size);
        if self.peek() == Some(b'\'') {
            text.push('\'');
            self.bump();
            // optional signedness
            if matches!(self.peek(), Some(b's') | Some(b'S')) {
                // g4check: allow(unwrap-in-lib): the peek in the guard just proved a byte is available
                text.push(self.bump().expect("peeked") as char);
            }
            let base = self
                .bump()
                .ok_or_else(|| ParseVerilogError::at(span, "truncated based literal"))?;
            text.push(base as char);
            let radix = match base.to_ascii_lowercase() {
                b'b' => 2,
                b'o' => 8,
                b'd' => 10,
                b'h' => 16,
                _ => {
                    return Err(ParseVerilogError::at(
                        span,
                        format!("invalid literal base '{}'", base as char),
                    ))
                }
            };
            let digits = self.take_while(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'?');
            if digits.is_empty() {
                return Err(ParseVerilogError::at(span, "based literal with no digits"));
            }
            text.push_str(&digits);
            let mut value: u64 = 0;
            for d in digits.chars() {
                if d == '_' {
                    continue;
                }
                let dv = match d.to_ascii_lowercase() {
                    'x' | 'z' | '?' => 0,
                    c => c.to_digit(radix).ok_or_else(|| {
                        ParseVerilogError::at(span, format!("digit '{c}' invalid for base {radix}"))
                    })? as u64,
                };
                value = value.wrapping_mul(radix as u64).wrapping_add(dv);
            }
            let width = if size.is_empty() {
                None
            } else {
                let w: String = size.chars().filter(|c| *c != '_').collect();
                Some(w.parse::<u32>().map_err(|_| {
                    ParseVerilogError::at(span, format!("invalid literal width '{size}'"))
                })?)
            };
            Ok(Token::Number { width, value, text })
        } else {
            // plain decimal
            if size.is_empty() {
                return Err(ParseVerilogError::at(span, "empty numeric literal"));
            }
            let clean: String = size.chars().filter(|c| *c != '_').collect();
            let value = clean
                .parse::<u64>()
                .map_err(|_| ParseVerilogError::at(span, format!("invalid number '{size}'")))?;
            Ok(Token::Number {
                width: None,
                value,
                text,
            })
        }
    }

    fn punct(&mut self, span: Span) -> Result<Token, ParseVerilogError> {
        // g4check: allow(unwrap-in-lib): next_token only dispatches here after peeking a byte
        let c = self.bump().expect("caller peeked");
        let p = match c {
            b'(' => Punct::LParen,
            b')' => Punct::RParen,
            b'[' => Punct::LBracket,
            b']' => Punct::RBracket,
            b'{' => Punct::LBrace,
            b'}' => Punct::RBrace,
            b';' => Punct::Semi,
            b',' => Punct::Comma,
            b':' => Punct::Colon,
            b'.' => Punct::Dot,
            b'#' => Punct::Hash,
            b'@' => Punct::At,
            b'?' => Punct::Question,
            b'+' => Punct::Plus,
            b'-' => Punct::Minus,
            b'/' => Punct::Slash,
            b'%' => Punct::Percent,
            b'*' => {
                if self.peek() == Some(b'*') {
                    self.bump();
                    Punct::Star2
                } else {
                    Punct::Star
                }
            }
            b'=' => match (self.peek(), self.peek2()) {
                (Some(b'='), Some(b'=')) => {
                    self.bump();
                    self.bump();
                    Punct::CaseEq
                }
                (Some(b'='), _) => {
                    self.bump();
                    Punct::EqEq
                }
                _ => Punct::Assign,
            },
            b'!' => match (self.peek(), self.peek2()) {
                (Some(b'='), Some(b'=')) => {
                    self.bump();
                    self.bump();
                    Punct::CaseNotEq
                }
                (Some(b'='), _) => {
                    self.bump();
                    Punct::NotEq
                }
                _ => Punct::Not,
            },
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Punct::LtEq
                }
                Some(b'<') => {
                    self.bump();
                    Punct::Shl
                }
                _ => Punct::Lt,
            },
            b'>' => match (self.peek(), self.peek2()) {
                (Some(b'='), _) => {
                    self.bump();
                    Punct::GtEq
                }
                (Some(b'>'), Some(b'>')) => {
                    self.bump();
                    self.bump();
                    Punct::AShr
                }
                (Some(b'>'), _) => {
                    self.bump();
                    Punct::Shr
                }
                _ => Punct::Gt,
            },
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    Punct::AndAnd
                } else {
                    Punct::And
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    Punct::OrOr
                } else {
                    Punct::Or
                }
            }
            b'^' => {
                if self.peek() == Some(b'~') {
                    self.bump();
                    Punct::Xnor
                } else {
                    Punct::Xor
                }
            }
            b'~' => match self.peek() {
                Some(b'^') => {
                    self.bump();
                    Punct::Xnor
                }
                Some(b'&') => {
                    self.bump();
                    Punct::Nand
                }
                Some(b'|') => {
                    self.bump();
                    Punct::Nor
                }
                _ => Punct::Tilde,
            },
            _ => {
                return Err(ParseVerilogError::at(
                    span,
                    format!("unexpected character '{}'", c as char),
                ))
            }
        };
        Ok(Token::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn lexes_module_header() {
        let toks = kinds("module adder(input a);");
        assert_eq!(toks[0], Token::Kw(Keyword::Module));
        assert_eq!(toks[1], Token::Ident("adder".into()));
        assert_eq!(toks[2], Token::Punct(Punct::LParen));
        assert_eq!(toks[3], Token::Kw(Keyword::Input));
    }

    #[test]
    fn lexes_based_literals() {
        match &kinds("8'hFF")[0] {
            Token::Number { width, value, .. } => {
                assert_eq!(*width, Some(8));
                assert_eq!(*value, 255);
            }
            t => panic!("unexpected {t:?}"),
        }
        match &kinds("4'b10_1x")[0] {
            Token::Number { value, .. } => assert_eq!(*value, 0b1010),
            t => panic!("unexpected {t:?}"),
        }
        match &kinds("'d42")[0] {
            Token::Number { width, value, .. } => {
                assert_eq!(*width, None);
                assert_eq!(*value, 42);
            }
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn lexes_plain_decimal() {
        match &kinds("1_000")[0] {
            Token::Number { value, .. } => assert_eq!(*value, 1000),
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn lexes_operators() {
        let toks = kinds("a <= b == c && d ~^ e >>> 2");
        assert!(toks.contains(&Token::Punct(Punct::LtEq)));
        assert!(toks.contains(&Token::Punct(Punct::EqEq)));
        assert!(toks.contains(&Token::Punct(Punct::AndAnd)));
        assert!(toks.contains(&Token::Punct(Punct::Xnor)));
        assert!(toks.contains(&Token::Punct(Punct::AShr)));
    }

    #[test]
    fn lexes_case_equality() {
        let toks = kinds("a === b !== c");
        assert!(toks.contains(&Token::Punct(Punct::CaseEq)));
        assert!(toks.contains(&Token::Punct(Punct::CaseNotEq)));
    }

    #[test]
    fn tracks_spans() {
        let toks = lex("a\n  b").expect("lexes");
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn escaped_identifier() {
        let toks = kinds("\\bus[3] x");
        assert_eq!(toks[0], Token::Ident("bus[3]".into()));
    }

    #[test]
    fn system_task_identifier() {
        let toks = kinds("$display");
        assert_eq!(toks[0], Token::Ident("$display".into()));
    }

    #[test]
    fn gate_keywords() {
        let toks = kinds("and nand xor not buf");
        assert_eq!(toks[0], Token::Kw(Keyword::GateAnd));
        assert_eq!(toks[1], Token::Kw(Keyword::GateNand));
        assert_eq!(toks[4], Token::Kw(Keyword::GateBuf));
    }

    #[test]
    fn rejects_bad_literal() {
        assert!(lex("8'q12").is_err());
        assert!(lex("4'h").is_err());
    }

    #[test]
    fn rejects_unknown_char() {
        assert!(lex("€").is_err());
    }
}
