//! Combinational evaluation of flattened modules.
//!
//! The dataset generators in `gnn4ip-data` must *prove* that their variation
//! and obfuscation transforms preserve circuit behaviour (a DESIGN.md
//! invariant). This module provides the oracle: it evaluates a flattened,
//! combinational module — RTL assigns, `always @*` blocks, and gate
//! primitives — on concrete input vectors.
//!
//! Sequential constructs (`posedge`/`negedge` blocks) are skipped; callers
//! verify the combinational cone only, which is exactly what structural
//! obfuscation touches.

use std::collections::HashMap;

use crate::ast::*;
use crate::ParseVerilogError;

/// An evaluator for one flattened combinational module.
///
/// # Examples
///
/// ```
/// use gnn4ip_hdl::{parse, flatten, Evaluator};
/// use std::collections::HashMap;
///
/// let unit = parse("module m(input a, input b, output y); assign y = a ^ b; endmodule")?;
/// let eval = Evaluator::new(&flatten(&unit, "m")?)?;
/// let out = eval.eval(&HashMap::from([("a".to_string(), 1), ("b".to_string(), 0)]))?;
/// assert_eq!(out["y"], 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator {
    module: Module,
    widths: HashMap<String, u32>,
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn range_width(range: &Option<Range>) -> Result<u32, ParseVerilogError> {
    match range {
        None => Ok(1),
        Some(r) => {
            let env = HashMap::new();
            let msb = crate::flatten::eval_const(&r.msb, &env)?;
            let lsb = crate::flatten::eval_const(&r.lsb, &env)?;
            Ok((msb - lsb).unsigned_abs() as u32 + 1)
        }
    }
}

impl Evaluator {
    /// Builds an evaluator over a flattened module.
    ///
    /// # Errors
    ///
    /// Returns an error if any declaration range is non-constant.
    pub fn new(flat: &Module) -> Result<Self, ParseVerilogError> {
        let mut widths = HashMap::new();
        for p in &flat.ports {
            widths.insert(p.name.clone(), range_width(&p.range)?);
        }
        for item in &flat.items {
            if let Item::Decl { name, range, .. } = item {
                widths.insert(name.clone(), range_width(range)?);
            }
        }
        Ok(Self {
            module: flat.clone(),
            widths,
        })
    }

    /// The module under evaluation.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Declared width of a signal (1 if unknown).
    pub fn width(&self, name: &str) -> u32 {
        self.widths.get(name).copied().unwrap_or(1)
    }

    /// Evaluates the module for one input assignment, returning the settled
    /// value of every signal (outputs included).
    ///
    /// # Errors
    ///
    /// Returns an error if the design does not settle (combinational loop) or
    /// uses unsupported constructs in the combinational cone.
    pub fn eval(
        &self,
        inputs: &HashMap<String, u64>,
    ) -> Result<HashMap<String, u64>, ParseVerilogError> {
        let mut state: HashMap<String, u64> = HashMap::new();
        for p in &self.module.ports {
            let w = self.width(&p.name);
            let v = inputs.get(&p.name).copied().unwrap_or(0);
            state.insert(p.name.clone(), v & mask(w));
        }
        for item in &self.module.items {
            if let Item::Decl { name, init, .. } = item {
                state.entry(name.clone()).or_insert(0);
                let _ = init; // handled as an item pass below
            }
        }
        // Relaxation: combinational designs settle in <= |items| passes.
        let max_passes = self.module.items.len() + 4;
        for _ in 0..max_passes {
            let before = state.clone();
            self.pass(&mut state)?;
            // re-pin inputs
            for p in &self.module.ports {
                if p.dir == PortDir::Input {
                    let w = self.width(&p.name);
                    let v = inputs.get(&p.name).copied().unwrap_or(0);
                    state.insert(p.name.clone(), v & mask(w));
                }
            }
            if state == before {
                return Ok(state);
            }
        }
        Err(ParseVerilogError::msg(
            "design did not settle (combinational loop?)",
        ))
    }

    /// Evaluates just the output ports for one input assignment.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::eval`].
    pub fn eval_outputs(
        &self,
        inputs: &HashMap<String, u64>,
    ) -> Result<HashMap<String, u64>, ParseVerilogError> {
        let all = self.eval(inputs)?;
        Ok(self
            .module
            .ports
            .iter()
            .filter(|p| p.dir == PortDir::Output)
            .map(|p| (p.name.clone(), all.get(&p.name).copied().unwrap_or(0)))
            .collect())
    }

    fn pass(&self, state: &mut HashMap<String, u64>) -> Result<(), ParseVerilogError> {
        for item in &self.module.items {
            match item {
                Item::Decl {
                    name,
                    init: Some(e),
                    ..
                } => {
                    let v = self.eval_expr(e, state)?;
                    self.assign_to(&Expr::ident(name.clone()), v, state)?;
                }
                Item::Assign { lhs, rhs } => {
                    let v = self.eval_expr(rhs, state)?;
                    self.assign_to(lhs, v, state)?;
                }
                Item::Gate(g) => self.eval_gate(g, state)?,
                Item::Always { sensitivity, body } => {
                    let is_comb = sensitivity
                        .iter()
                        .all(|s| matches!(s, SensItem::Star | SensItem::Level(_)));
                    if is_comb {
                        self.exec_stmt(body, state)?;
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn eval_gate(
        &self,
        g: &GateInstance,
        state: &mut HashMap<String, u64>,
    ) -> Result<(), ParseVerilogError> {
        let (outs, ins) = g.split_ports();
        let in_vals: Vec<u64> = ins
            .iter()
            .map(|e| self.eval_expr(e, state).map(|v| v & 1))
            .collect::<Result<_, _>>()?;
        let value = match g.kind {
            GateKind::And => in_vals.iter().fold(1, |a, &b| a & b),
            GateKind::Or => in_vals.iter().fold(0, |a, &b| a | b),
            GateKind::Nand => 1 ^ in_vals.iter().fold(1, |a, &b| a & b),
            GateKind::Nor => 1 ^ in_vals.iter().fold(0, |a, &b| a | b),
            GateKind::Xor => in_vals.iter().fold(0, |a, &b| a ^ b),
            GateKind::Xnor => 1 ^ in_vals.iter().fold(0, |a, &b| a ^ b),
            GateKind::Not => 1 ^ in_vals.first().copied().unwrap_or(0),
            GateKind::Buf => in_vals.first().copied().unwrap_or(0),
        };
        for out in outs {
            self.assign_to(out, value, state)?;
        }
        Ok(())
    }

    fn exec_stmt(
        &self,
        stmt: &Stmt,
        state: &mut HashMap<String, u64>,
    ) -> Result<(), ParseVerilogError> {
        match stmt {
            Stmt::Block(ss) => {
                for s in ss {
                    self.exec_stmt(s, state)?;
                }
                Ok(())
            }
            Stmt::Blocking { lhs, rhs } | Stmt::NonBlocking { lhs, rhs } => {
                let v = self.eval_expr(rhs, state)?;
                self.assign_to(lhs, v, state)
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                if self.eval_expr(cond, state)? != 0 {
                    self.exec_stmt(then_s, state)
                } else if let Some(e) = else_s {
                    self.exec_stmt(e, state)
                } else {
                    Ok(())
                }
            }
            Stmt::Case { subject, arms } => {
                let v = self.eval_expr(subject, state)?;
                let mut default: Option<&Stmt> = None;
                for (labels, body) in arms {
                    if labels.is_empty() {
                        default = Some(body);
                        continue;
                    }
                    for l in labels {
                        if self.eval_expr(l, state)? == v {
                            return self.exec_stmt(body, state);
                        }
                    }
                }
                match default {
                    Some(body) => self.exec_stmt(body, state),
                    None => Ok(()),
                }
            }
            Stmt::For { .. } => Err(ParseVerilogError::msg(
                "for-loop must be unrolled before evaluation (run flatten)",
            )),
            Stmt::Null => Ok(()),
        }
    }

    /// Width of an expression under Verilog-ish rules.
    pub fn width_of(&self, e: &Expr) -> u32 {
        match e {
            Expr::Ident(n) => self.width(n),
            Expr::Number { width, .. } => width.unwrap_or(32),
            Expr::Str(s) => (s.len() as u32) * 8,
            Expr::Unary { op, arg } => match op {
                UnaryOp::Not
                | UnaryOp::ReduceAnd
                | UnaryOp::ReduceOr
                | UnaryOp::ReduceXor
                | UnaryOp::ReduceNand
                | UnaryOp::ReduceNor
                | UnaryOp::ReduceXnor => 1,
                _ => self.width_of(arg),
            },
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::Lt
                | BinaryOp::Gt
                | BinaryOp::Le
                | BinaryOp::Ge
                | BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::CaseEq
                | BinaryOp::CaseNeq
                | BinaryOp::LogicalAnd
                | BinaryOp::LogicalOr => 1,
                BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr | BinaryOp::Pow => {
                    self.width_of(lhs)
                }
                _ => self.width_of(lhs).max(self.width_of(rhs)),
            },
            Expr::Ternary { then_e, else_e, .. } => {
                self.width_of(then_e).max(self.width_of(else_e))
            }
            Expr::Concat(parts) => parts.iter().map(|p| self.width_of(p)).sum(),
            Expr::Repeat { count, body } => {
                let c = match **count {
                    Expr::Number { value, .. } => value as u32,
                    _ => 1,
                };
                c * self.width_of(body)
            }
            Expr::BitSelect { .. } => 1,
            Expr::PartSelect { msb, lsb, .. } => {
                let env = HashMap::new();
                match (
                    crate::flatten::eval_const(msb, &env),
                    crate::flatten::eval_const(lsb, &env),
                ) {
                    (Ok(m), Ok(l)) => (m - l).unsigned_abs() as u32 + 1,
                    _ => 1,
                }
            }
            Expr::Call { .. } => 32,
        }
    }

    fn eval_expr(&self, e: &Expr, state: &HashMap<String, u64>) -> Result<u64, ParseVerilogError> {
        Ok(match e {
            Expr::Ident(n) => state.get(n).copied().unwrap_or(0),
            Expr::Number { width, value } => value & mask(width.unwrap_or(64)),
            Expr::Str(_) => 0,
            Expr::Unary { op, arg } => {
                let w = self.width_of(arg);
                let v = self.eval_expr(arg, state)? & mask(w);
                match op {
                    UnaryOp::Not => u64::from(v == 0),
                    UnaryOp::BitNot => !v & mask(w),
                    UnaryOp::Plus => v,
                    UnaryOp::Minus => v.wrapping_neg() & mask(w),
                    UnaryOp::ReduceAnd => u64::from(v == mask(w)),
                    UnaryOp::ReduceOr => u64::from(v != 0),
                    UnaryOp::ReduceXor => u64::from(v.count_ones() % 2 == 1),
                    UnaryOp::ReduceNand => u64::from(v != mask(w)),
                    UnaryOp::ReduceNor => u64::from(v == 0),
                    UnaryOp::ReduceXnor => u64::from(v.count_ones().is_multiple_of(2)),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval_expr(lhs, state)?;
                let b = self.eval_expr(rhs, state)?;
                let w = self.width_of(lhs).max(self.width_of(rhs));
                match op {
                    BinaryOp::Add => a.wrapping_add(b) & mask(w),
                    BinaryOp::Sub => a.wrapping_sub(b) & mask(w),
                    BinaryOp::Mul => a.wrapping_mul(b) & mask(w),
                    BinaryOp::Div => a.checked_div(b).unwrap_or(0),
                    BinaryOp::Mod => a.checked_rem(b).unwrap_or(0),
                    BinaryOp::Pow => a.wrapping_pow(b.min(63) as u32) & mask(w),
                    BinaryOp::Shl => {
                        if b >= 64 {
                            0
                        } else {
                            (a << b) & mask(self.width_of(lhs))
                        }
                    }
                    BinaryOp::Shr | BinaryOp::AShr => {
                        if b >= 64 {
                            0
                        } else {
                            a >> b
                        }
                    }
                    BinaryOp::Lt => u64::from(a < b),
                    BinaryOp::Gt => u64::from(a > b),
                    BinaryOp::Le => u64::from(a <= b),
                    BinaryOp::Ge => u64::from(a >= b),
                    BinaryOp::Eq | BinaryOp::CaseEq => u64::from(a == b),
                    BinaryOp::Neq | BinaryOp::CaseNeq => u64::from(a != b),
                    BinaryOp::And => a & b,
                    BinaryOp::Or => a | b,
                    BinaryOp::Xor => a ^ b,
                    BinaryOp::Xnor => !(a ^ b) & mask(w),
                    BinaryOp::LogicalAnd => u64::from(a != 0 && b != 0),
                    BinaryOp::LogicalOr => u64::from(a != 0 || b != 0),
                }
            }
            Expr::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                if self.eval_expr(cond, state)? != 0 {
                    self.eval_expr(then_e, state)?
                } else {
                    self.eval_expr(else_e, state)?
                }
            }
            Expr::Concat(parts) => {
                let mut acc = 0u64;
                for p in parts {
                    let w = self.width_of(p);
                    let v = self.eval_expr(p, state)? & mask(w);
                    acc = (acc << w.min(63)) | v;
                }
                acc
            }
            Expr::Repeat { count, body } => {
                let c = self.eval_expr(count, state)?;
                let w = self.width_of(body);
                let v = self.eval_expr(body, state)? & mask(w);
                let mut acc = 0u64;
                for _ in 0..c.min(64) {
                    acc = (acc << w.min(63)) | v;
                }
                acc
            }
            Expr::BitSelect { base, index } => {
                let v = self.eval_expr(base, state)?;
                let i = self.eval_expr(index, state)?;
                if i >= 64 {
                    0
                } else {
                    (v >> i) & 1
                }
            }
            Expr::PartSelect { base, msb, lsb } => {
                let v = self.eval_expr(base, state)?;
                let m = self.eval_expr(msb, state)?;
                let l = self.eval_expr(lsb, state)?;
                let (hi, lo) = if m >= l { (m, l) } else { (l, m) };
                let w = (hi - lo + 1).min(64) as u32;
                (v >> lo.min(63)) & mask(w)
            }
            Expr::Call { name, .. } => {
                return Err(ParseVerilogError::msg(format!(
                    "function call '{name}' unsupported in evaluation"
                )))
            }
        })
    }

    fn assign_to(
        &self,
        lhs: &Expr,
        value: u64,
        state: &mut HashMap<String, u64>,
    ) -> Result<(), ParseVerilogError> {
        match lhs {
            Expr::Ident(n) => {
                let w = self.width(n);
                state.insert(n.clone(), value & mask(w));
                Ok(())
            }
            Expr::BitSelect { base, index } => {
                let name = match &**base {
                    Expr::Ident(n) => n.clone(),
                    _ => return Err(ParseVerilogError::msg("unsupported lvalue base")),
                };
                let i = self.eval_expr(index, state)?;
                if i < 64 {
                    let cur = state.get(&name).copied().unwrap_or(0);
                    let bit = value & 1;
                    state.insert(name, (cur & !(1 << i)) | (bit << i));
                }
                Ok(())
            }
            Expr::PartSelect { base, msb, lsb } => {
                let name = match &**base {
                    Expr::Ident(n) => n.clone(),
                    _ => return Err(ParseVerilogError::msg("unsupported lvalue base")),
                };
                let m = self.eval_expr(msb, state)?;
                let l = self.eval_expr(lsb, state)?;
                let (hi, lo) = if m >= l { (m, l) } else { (l, m) };
                let w = (hi - lo + 1).min(64) as u32;
                let cur = state.get(&name).copied().unwrap_or(0);
                let field = (value & mask(w)) << lo.min(63);
                let hole = !(mask(w) << lo.min(63));
                state.insert(name, (cur & hole) | field);
                Ok(())
            }
            Expr::Concat(parts) => {
                // MSB-first: the first part takes the high bits.
                let total: u32 = parts.iter().map(|p| self.width_of(p)).sum();
                let mut consumed = 0u32;
                for p in parts {
                    let w = self.width_of(p);
                    let shift = total - consumed - w;
                    let field = (value >> shift.min(63)) & mask(w);
                    self.assign_to(p, field, state)?;
                    consumed += w;
                }
                Ok(())
            }
            _ => Err(ParseVerilogError::msg("unsupported lvalue form")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flatten, parse};

    fn build(src: &str, top: &str) -> Evaluator {
        let unit = parse(src).expect("parses");
        Evaluator::new(&flatten(&unit, top).expect("flattens")).expect("builds")
    }

    fn run(e: &Evaluator, ins: &[(&str, u64)]) -> HashMap<String, u64> {
        let map = ins.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        e.eval_outputs(&map).expect("evaluates")
    }

    #[test]
    fn full_adder_rtl_truth_table() {
        let e = build(
            "module fa(input a, input b, input cin, output reg sum, output reg cout);
               always @(a, b, cin) begin
                 sum <= (a ^ b) ^ cin;
                 cout <= ((a ^ b) && cin) || (a && b);
               end
             endmodule",
            "fa",
        );
        for bits in 0..8u64 {
            let (a, b, c) = (bits & 1, (bits >> 1) & 1, (bits >> 2) & 1);
            let out = run(&e, &[("a", a), ("b", b), ("cin", c)]);
            assert_eq!(out["sum"], (a ^ b) ^ c, "sum at {bits}");
            assert_eq!(out["cout"], (a & b) | (c & (a ^ b)), "cout at {bits}");
        }
    }

    #[test]
    fn full_adder_gates_match_rtl() {
        let e = build(
            "module fa(input a, input b, input cin, output sum, output cout);
               wire t1, t2, t3;
               xor (t1, a, b);
               and (t2, a, b);
               and (t3, t1, cin);
               xor (sum, t1, cin);
               or (cout, t3, t2);
             endmodule",
            "fa",
        );
        for bits in 0..8u64 {
            let (a, b, c) = (bits & 1, (bits >> 1) & 1, (bits >> 2) & 1);
            let out = run(&e, &[("a", a), ("b", b), ("cin", c)]);
            assert_eq!(out["sum"], (a ^ b) ^ c);
            assert_eq!(out["cout"], (a & b) | (c & (a ^ b)));
        }
    }

    #[test]
    fn vector_arithmetic() {
        let e = build(
            "module add8(input [7:0] a, input [7:0] b, output [7:0] s);
               assign s = a + b;
             endmodule",
            "add8",
        );
        let out = run(&e, &[("a", 200), ("b", 100)]);
        assert_eq!(out["s"], 44); // mod 256
    }

    #[test]
    fn mux_with_case() {
        let e = build(
            "module mux4(input [1:0] s, input [3:0] d, output reg y);
               always @* case (s)
                 2'd0: y = d[0];
                 2'd1: y = d[1];
                 2'd2: y = d[2];
                 default: y = d[3];
               endcase
             endmodule",
            "mux4",
        );
        let out = run(&e, &[("s", 2), ("d", 0b0100)]);
        assert_eq!(out["y"], 1);
        let out = run(&e, &[("s", 3), ("d", 0b0111)]);
        assert_eq!(out["y"], 0);
    }

    #[test]
    #[allow(clippy::unusual_byte_groupings)] // literal mirrors the {a, a[3:2], 2'b01} concat
    fn concat_and_selects() {
        let e = build(
            "module m(input [3:0] a, output [7:0] y);
               assign y = {a, a[3:2], 2'b01};
             endmodule",
            "m",
        );
        let out = run(&e, &[("a", 0b1010)]);
        assert_eq!(out["y"], 0b1010_10_01);
    }

    #[test]
    fn concat_lvalue_split() {
        let e = build(
            "module m(input [1:0] a, output x, output y);
               assign {x, y} = a;
             endmodule",
            "m",
        );
        let out = run(&e, &[("a", 0b10)]);
        assert_eq!(out["x"], 1);
        assert_eq!(out["y"], 0);
    }

    #[test]
    fn hierarchical_design_evaluates() {
        let e = build(
            "module inv(input a, output y); assign y = ~a; endmodule
             module top(input x, output z);
               wire m;
               inv u1(.a(x), .y(m));
               inv u2(.a(m), .y(z));
             endmodule",
            "top",
        );
        assert_eq!(run(&e, &[("x", 1)])["z"], 1);
        assert_eq!(run(&e, &[("x", 0)])["z"], 0);
    }

    #[test]
    fn reduction_operators() {
        let e = build(
            "module m(input [3:0] a, output x, output y, output z);
               assign x = &a;
               assign y = |a;
               assign z = ^a;
             endmodule",
            "m",
        );
        let out = run(&e, &[("a", 0b1111)]);
        assert_eq!((out["x"], out["y"], out["z"]), (1, 1, 0));
        let out = run(&e, &[("a", 0b0100)]);
        assert_eq!((out["x"], out["y"], out["z"]), (0, 1, 1));
    }

    #[test]
    fn unrolled_for_loop_reverses_bits() {
        let e = build(
            "module rev(input [3:0] a, output reg [3:0] y);
               integer i;
               always @* for (i = 0; i < 4; i = i + 1) y[i] = a[3 - i];
             endmodule",
            "rev",
        );
        assert_eq!(run(&e, &[("a", 0b0001)])["y"], 0b1000);
        assert_eq!(run(&e, &[("a", 0b0110)])["y"], 0b0110);
    }

    #[test]
    fn ternary_priority_logic() {
        let e = build(
            "module pri(input [2:0] r, output [1:0] g);
               assign g = r[0] ? 2'd0 : r[1] ? 2'd1 : r[2] ? 2'd2 : 2'd3;
             endmodule",
            "pri",
        );
        assert_eq!(run(&e, &[("r", 0b100)])["g"], 2);
        assert_eq!(run(&e, &[("r", 0b000)])["g"], 3);
        assert_eq!(run(&e, &[("r", 0b111)])["g"], 0);
    }

    #[test]
    fn sequential_blocks_are_skipped() {
        let e = build(
            "module dff(input clk, input d, output reg q, output y);
               always @(posedge clk) q <= d;
               assign y = d;
             endmodule",
            "dff",
        );
        let out = run(&e, &[("clk", 1), ("d", 1)]);
        assert_eq!(out["y"], 1);
        assert_eq!(out["q"], 0); // never clocked
    }

    #[test]
    fn combinational_loop_detected() {
        let e = build(
            "module bad(input a, output x);
               wire y;
               assign x = y ^ a;
               assign y = ~x;
             endmodule",
            "bad",
        );
        // For a = 0: x = y, y = ~x — oscillates.
        let r = e.eval(&HashMap::from([("a".to_string(), 0u64)]));
        assert!(r.is_err());
    }
}
