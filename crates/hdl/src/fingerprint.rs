//! Stable content fingerprints for hardware designs.
//!
//! The embedding cache in `gnn4ip-core` keys on *what a design says*, not
//! on pointer identity or raw source bytes: the fingerprint hashes the
//! **preprocessed, lexed token stream** (comments stripped,
//! `` `define``/`` `include`` resolved, whitespace gone) together with the
//! requested top module. Two submissions that differ only in comments,
//! macro spellings, or formatting therefore share a cache entry, while any
//! change that could alter the elaborated design changes the key.
//!
//! The hash is FNV-1a/64 — a fixed, platform-independent function, unlike
//! `std::hash`'s `DefaultHasher` whose output may change between releases.
//! Fingerprints are safe to persist alongside serialized detectors.
//!
//! **Not collision-resistant against adversaries.** FNV-1a is a speed/
//! stability choice: a submitter who can choose their source bytes can
//! engineer a 64-bit collision with a known cached design and be served
//! its embedding. Accidental collisions are negligible at library scale
//! (~10⁻¹⁰ at 10⁵ designs), but deployments that accept *hostile*
//! submissions should clear the cache per tenant or swap in a keyed hash
//! before relying on cached verdicts.

use crate::error::ParseVerilogError;
use crate::lexer::lex;
use crate::preprocess::{preprocess, IncludeMap};
use crate::token::Token;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a/64 hasher with a stable, documented output.
///
/// # Examples
///
/// ```
/// use gnn4ip_hdl::StableHasher;
///
/// let mut h = StableHasher::new();
/// h.write(b"hello");
/// assert_eq!(h.finish(), 0xa430d84680aabd0b); // published FNV-1a test vector
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a string's UTF-8 bytes.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// Absorbs a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// A stable 64-bit content fingerprint of a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The raw 64-bit value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Reconstructs a fingerprint from its raw value — the persistence
    /// path stores fingerprints as `u64`s in embedding-library artifacts.
    pub fn from_u64(raw: u64) -> Self {
        Fingerprint(raw)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Computes the content fingerprint of a Verilog design: the FNV-1a/64 hash
/// of its preprocessed token stream plus the requested top-module selector.
///
/// This is deliberately *conservative*: token differences that do not
/// change the elaborated design (wire renames, equal-valued literals
/// spelled differently) produce different fingerprints — a cache
/// false-miss costs one re-embedding, whereas a false-hit would silently
/// return the wrong embedding.
///
/// # Errors
///
/// Propagates preprocessing and lexing failures (unterminated comments,
/// recursive includes, malformed literals, ...).
///
/// # Examples
///
/// ```
/// use gnn4ip_hdl::design_fingerprint;
///
/// let a = design_fingerprint("module m(output y); assign y = 0; endmodule", None)?;
/// let commented =
///     design_fingerprint("// same design\nmodule m(output y); assign y = 0; endmodule", None)?;
/// assert_eq!(a, commented); // comments are stripped before hashing
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
pub fn design_fingerprint(
    source: &str,
    top: Option<&str>,
) -> Result<Fingerprint, ParseVerilogError> {
    let pre = preprocess(source, &IncludeMap::new())?;
    let tokens = lex(&pre)?;
    let mut h = StableHasher::new();
    for t in &tokens {
        // one domain byte per token kind, then the payload
        match &t.token {
            Token::Ident(s) => {
                h.write(&[1]);
                h.write_str(s);
            }
            // Keyword/Punct are fieldless enums: the discriminant byte is
            // the payload. Stable as long as variant order is append-only.
            Token::Kw(k) => h.write(&[2, *k as u8]),
            Token::Number { text, .. } => {
                h.write(&[3]);
                h.write_str(text);
            }
            Token::Str(s) => {
                h.write(&[4]);
                h.write_str(s);
            }
            Token::Punct(p) => h.write(&[5, *p as u8]),
        }
        // terminate variable-length payloads so token boundaries can't alias
        h.write(&[0xff]);
    }
    // Domain-separate the top selector from the token stream.
    match top {
        Some(t) => {
            h.write(&[1]);
            h.write_str(t);
        }
        None => h.write(&[0]),
    }
    Ok(Fingerprint(h.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const INV: &str = "module inv(input a, output y); assign y = ~a; endmodule";

    #[test]
    fn fnv1a_known_vectors() {
        let hash = |s: &str| {
            let mut h = StableHasher::new();
            h.write_str(s);
            h.finish()
        };
        // published FNV-1a/64 test vectors
        assert_eq!(hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let a = design_fingerprint(INV, None).expect("fp");
        let b = design_fingerprint(INV, None).expect("fp");
        assert_eq!(a, b);
    }

    #[test]
    fn comments_macros_and_formatting_do_not_change_the_fingerprint() {
        let bare = design_fingerprint(INV, None).expect("fp");
        let commented = format!("/* owned IP */ {INV} // checked");
        assert_eq!(design_fingerprint(&commented, None).expect("fp"), bare);
        let via_define = "`define OP ~\nmodule inv(input a, output y); assign y = `OP a; endmodule";
        assert_eq!(design_fingerprint(via_define, None).expect("fp"), bare);
        let reformatted = "module inv (\n  input  a,\n  output y\n);\n  assign y=~a;\nendmodule";
        assert_eq!(design_fingerprint(reformatted, None).expect("fp"), bare);
    }

    #[test]
    fn content_changes_change_the_fingerprint() {
        let a = design_fingerprint(INV, None).expect("fp");
        let b = design_fingerprint(
            "module inv(input a, output y); assign y = a; endmodule",
            None,
        )
        .expect("fp");
        assert_ne!(a, b);
    }

    #[test]
    fn top_selector_is_part_of_the_key() {
        let two = "module a(output y); assign y = 0; endmodule
                   module b(output y); assign y = 1; endmodule";
        let auto = design_fingerprint(two, None).expect("fp");
        let ta = design_fingerprint(two, Some("a")).expect("fp");
        let tb = design_fingerprint(two, Some("b")).expect("fp");
        assert_ne!(auto, ta);
        assert_ne!(ta, tb);
    }

    #[test]
    fn preprocess_errors_propagate() {
        assert!(design_fingerprint("/* unterminated", None).is_err());
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let fp = design_fingerprint(INV, None).expect("fp");
        let s = fp.to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
