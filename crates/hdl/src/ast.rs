//! Abstract syntax tree for the Verilog-2001 subset.
//!
//! The tree is deliberately close to the grammar: the data-flow analyzer in
//! `gnn4ip-dfg` walks it directly, mirroring Pyverilog's parser → dataflow
//! split in the paper's Fig. 2 pipeline.

use std::fmt;

/// A parsed source file: one or more module definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceUnit {
    /// Modules in declaration order.
    pub modules: Vec<Module>,
}

impl SourceUnit {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// The module that is not instantiated by any other (the design root).
    ///
    /// Falls back to the last module when every module is instantiated
    /// somewhere (e.g. in pathological cyclic inputs).
    pub fn top_module(&self) -> Option<&Module> {
        let instantiated: std::collections::HashSet<&str> = self
            .modules
            .iter()
            .flat_map(|m| m.items.iter())
            .filter_map(|i| match i {
                Item::Instance(inst) => Some(inst.module.as_str()),
                _ => None,
            })
            .collect();
        self.modules
            .iter()
            .find(|m| !instantiated.contains(m.name.as_str()))
            .or_else(|| self.modules.last())
    }
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDir::Input => "input",
            PortDir::Output => "output",
            PortDir::Inout => "inout",
        })
    }
}

/// Net kind of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// `wire`
    Wire,
    /// `reg`
    Reg,
    /// `integer`
    Integer,
}

/// An optional `[msb:lsb]` range; both bounds are constant expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    /// Most-significant bound.
    pub msb: Expr,
    /// Least-significant bound.
    pub lsb: Expr,
}

/// A module definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Header port order (names only; directions live in `ports`).
    pub port_order: Vec<String>,
    /// Port declarations (ANSI or non-ANSI style, normalized).
    pub ports: Vec<Port>,
    /// Parameters with default values.
    pub params: Vec<(String, Expr)>,
    /// Body items.
    pub items: Vec<Item>,
}

impl Module {
    /// Direction of a named port, if declared.
    pub fn port_dir(&self, name: &str) -> Option<PortDir> {
        self.ports.iter().find(|p| p.name == name).map(|p| p.dir)
    }

    /// Names of all output ports, in declaration order.
    pub fn outputs(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| p.dir == PortDir::Output)
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Names of all input ports, in declaration order.
    pub fn inputs(&self) -> Vec<&str> {
        self.ports
            .iter()
            .filter(|p| p.dir == PortDir::Input)
            .map(|p| p.name.as_str())
            .collect()
    }
}

/// A normalized port declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// `reg` outputs are marked.
    pub is_reg: bool,
    /// Optional bit range.
    pub range: Option<Range>,
}

/// A module body item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `wire`/`reg`/`integer` declaration (one per name after
    /// normalization).
    Decl {
        /// Net kind.
        kind: NetKind,
        /// Declared name.
        name: String,
        /// Optional bit range.
        range: Option<Range>,
        /// Optional initializer (`wire w = expr;`).
        init: Option<Expr>,
    },
    /// `localparam`/`parameter` inside the body.
    Param {
        /// Parameter name.
        name: String,
        /// Constant value expression.
        value: Expr,
    },
    /// `assign lhs = rhs;`
    Assign {
        /// Left-hand side (identifier, bit/part select, or concat).
        lhs: Expr,
        /// Right-hand side.
        rhs: Expr,
    },
    /// `always @(...) stmt`
    Always {
        /// Sensitivity list; empty means `@*`.
        sensitivity: Vec<SensItem>,
        /// Body statement.
        body: Stmt,
    },
    /// `initial stmt` (kept for completeness; ignored by dataflow).
    Initial(Stmt),
    /// Gate primitive instance, e.g. `xor g1(o, a, b);`.
    Gate(GateInstance),
    /// Module instance.
    Instance(ModuleInstance),
}

/// Gate primitive types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum GateKind {
    And,
    Or,
    Nand,
    Nor,
    Xor,
    Xnor,
    Not,
    Buf,
}

impl GateKind {
    /// Lowercase Verilog keyword for this gate.
    pub fn keyword(self) -> &'static str {
        match self {
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Not => "not",
            GateKind::Buf => "buf",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A gate primitive instance. For `and`/`or`/... the first connection is the
/// output; for `not`/`buf` every connection except the last is an output.
#[derive(Debug, Clone, PartialEq)]
pub struct GateInstance {
    /// Gate type.
    pub kind: GateKind,
    /// Optional instance name.
    pub name: Option<String>,
    /// Connections in source order.
    pub conns: Vec<Expr>,
}

impl GateInstance {
    /// `(outputs, inputs)` split according to the gate's port convention.
    pub fn split_ports(&self) -> (Vec<&Expr>, Vec<&Expr>) {
        match self.kind {
            GateKind::Not | GateKind::Buf => {
                let n = self.conns.len();
                if n < 2 {
                    (self.conns.iter().collect(), Vec::new())
                } else {
                    (
                        self.conns[..n - 1].iter().collect(),
                        self.conns[n - 1..].iter().collect(),
                    )
                }
            }
            _ => {
                if self.conns.is_empty() {
                    (Vec::new(), Vec::new())
                } else {
                    (
                        self.conns[..1].iter().collect(),
                        self.conns[1..].iter().collect(),
                    )
                }
            }
        }
    }
}

/// A module instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleInstance {
    /// Instantiated module name.
    pub module: String,
    /// Instance name.
    pub name: String,
    /// Parameter overrides `#(...)` — named or positional.
    pub param_overrides: Vec<(Option<String>, Expr)>,
    /// Port connections — named `.p(e)` or positional.
    pub conns: Vec<(Option<String>, Option<Expr>)>,
}

/// One entry of a sensitivity list.
#[derive(Debug, Clone, PartialEq)]
pub enum SensItem {
    /// `posedge sig`
    Posedge(String),
    /// `negedge sig`
    Negedge(String),
    /// plain `sig`
    Level(String),
    /// `*`
    Star,
}

/// A behavioral statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin ... end`
    Block(Vec<Stmt>),
    /// Blocking `lhs = rhs;`
    Blocking {
        /// Target.
        lhs: Expr,
        /// Value.
        rhs: Expr,
    },
    /// Non-blocking `lhs <= rhs;`
    NonBlocking {
        /// Target.
        lhs: Expr,
        /// Value.
        rhs: Expr,
    },
    /// `if (cond) then_s [else else_s]`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_s: Box<Stmt>,
        /// Optional else branch.
        else_s: Option<Box<Stmt>>,
    },
    /// `case (subject) arms endcase` (also casex/casez).
    Case {
        /// Switch subject.
        subject: Expr,
        /// `(labels, body)` arms; empty labels = `default`.
        arms: Vec<(Vec<Expr>, Stmt)>,
    },
    /// `for (init; cond; step) body` — bounded loops only.
    For {
        /// Loop variable.
        var: String,
        /// Initial value.
        init: Expr,
        /// Continuation condition.
        cond: Expr,
        /// Step assignment value (`var = step`).
        step: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// Empty statement `;` or ignored system task call.
    Null,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Not,        // !
    BitNot,     // ~
    Plus,       // +
    Minus,      // -
    ReduceAnd,  // &
    ReduceOr,   // |
    ReduceXor,  // ^
    ReduceNand, // ~&
    ReduceNor,  // ~|
    ReduceXnor, // ~^
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Shl,
    Shr,
    AShr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Neq,
    CaseEq,
    CaseNeq,
    And,        // &
    Or,         // |
    Xor,        // ^
    Xnor,       // ^~
    LogicalAnd, // &&
    LogicalOr,  // ||
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Identifier reference.
    Ident(String),
    /// Numeric literal with optional declared width.
    Number {
        /// Declared width, if given.
        width: Option<u32>,
        /// Value (x/z as 0).
        value: u64,
    },
    /// String literal.
    Str(String),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Ternary `cond ? t : f`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// True branch.
        then_e: Box<Expr>,
        /// False branch.
        else_e: Box<Expr>,
    },
    /// Concatenation `{a, b, c}`.
    Concat(Vec<Expr>),
    /// Repeat `{n{expr}}`.
    Repeat {
        /// Repetition count.
        count: Box<Expr>,
        /// Repeated expression.
        body: Box<Expr>,
    },
    /// Bit select `sig[i]`.
    BitSelect {
        /// Base expression.
        base: Box<Expr>,
        /// Index.
        index: Box<Expr>,
    },
    /// Part select `sig[m:l]`.
    PartSelect {
        /// Base expression.
        base: Box<Expr>,
        /// MSB.
        msb: Box<Expr>,
        /// LSB.
        lsb: Box<Expr>,
    },
    /// Function or system call (arguments analyzed, callee opaque).
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for an identifier.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Convenience constructor for an unsized number.
    pub fn number(value: u64) -> Expr {
        Expr::Number { width: None, value }
    }

    /// All identifier names referenced anywhere in this expression.
    pub fn idents(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out
    }

    fn collect_idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Ident(n) => out.push(n),
            Expr::Number { .. } | Expr::Str(_) => {}
            Expr::Unary { arg, .. } => arg.collect_idents(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_idents(out);
                rhs.collect_idents(out);
            }
            Expr::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                cond.collect_idents(out);
                then_e.collect_idents(out);
                else_e.collect_idents(out);
            }
            Expr::Concat(parts) => parts.iter().for_each(|p| p.collect_idents(out)),
            Expr::Repeat { count, body } => {
                count.collect_idents(out);
                body.collect_idents(out);
            }
            Expr::BitSelect { base, index } => {
                base.collect_idents(out);
                index.collect_idents(out);
            }
            Expr::PartSelect { base, msb, lsb } => {
                base.collect_idents(out);
                msb.collect_idents(out);
                lsb.collect_idents(out);
            }
            Expr::Call { args, .. } => args.iter().for_each(|a| a.collect_idents(out)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_walks_whole_tree() {
        let e = Expr::Ternary {
            cond: Box::new(Expr::ident("c")),
            then_e: Box::new(Expr::Binary {
                op: BinaryOp::Add,
                lhs: Box::new(Expr::ident("a")),
                rhs: Box::new(Expr::number(1)),
            }),
            else_e: Box::new(Expr::Concat(vec![Expr::ident("b"), Expr::ident("a")])),
        };
        assert_eq!(e.idents(), vec!["c", "a", "b", "a"]);
    }

    #[test]
    fn gate_port_split_conventions() {
        let and = GateInstance {
            kind: GateKind::And,
            name: None,
            conns: vec![Expr::ident("o"), Expr::ident("a"), Expr::ident("b")],
        };
        let (outs, ins) = and.split_ports();
        assert_eq!(outs.len(), 1);
        assert_eq!(ins.len(), 2);

        let buf = GateInstance {
            kind: GateKind::Buf,
            name: None,
            conns: vec![Expr::ident("o1"), Expr::ident("o2"), Expr::ident("i")],
        };
        let (outs, ins) = buf.split_ports();
        assert_eq!(outs.len(), 2);
        assert_eq!(ins.len(), 1);
    }

    #[test]
    fn top_module_prefers_uninstantiated() {
        let leaf = Module {
            name: "leaf".into(),
            port_order: vec![],
            ports: vec![],
            params: vec![],
            items: vec![],
        };
        let mut top = leaf.clone();
        top.name = "top".into();
        top.items.push(Item::Instance(ModuleInstance {
            module: "leaf".into(),
            name: "u0".into(),
            param_overrides: vec![],
            conns: vec![],
        }));
        let unit = SourceUnit {
            modules: vec![leaf, top],
        };
        assert_eq!(unit.top_module().expect("top").name, "top");
    }

    #[test]
    fn module_port_queries() {
        let m = Module {
            name: "m".into(),
            port_order: vec!["a".into(), "y".into()],
            ports: vec![
                Port {
                    name: "a".into(),
                    dir: PortDir::Input,
                    is_reg: false,
                    range: None,
                },
                Port {
                    name: "y".into(),
                    dir: PortDir::Output,
                    is_reg: true,
                    range: None,
                },
            ],
            params: vec![],
            items: vec![],
        };
        assert_eq!(m.port_dir("y"), Some(PortDir::Output));
        assert_eq!(m.inputs(), vec!["a"]);
        assert_eq!(m.outputs(), vec!["y"]);
    }
}
