//! Token definitions for the Verilog-2001 subset.

use std::fmt;

/// Source location (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Verilog keywords recognized by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Integer,
    Assign,
    Always,
    Initial,
    Begin,
    End,
    If,
    Else,
    Case,
    Casex,
    Casez,
    Endcase,
    Default,
    Posedge,
    Negedge,
    Or,
    Parameter,
    Localparam,
    For,
    // gate primitives
    GateAnd,
    GateOr,
    GateNand,
    GateNor,
    GateXor,
    GateXnor,
    GateNot,
    GateBuf,
}

impl Keyword {
    /// Maps an identifier to a keyword, if it is one.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s {
            "module" => Keyword::Module,
            "endmodule" => Keyword::Endmodule,
            "input" => Keyword::Input,
            "output" => Keyword::Output,
            "inout" => Keyword::Inout,
            "wire" => Keyword::Wire,
            "reg" => Keyword::Reg,
            "integer" => Keyword::Integer,
            "assign" => Keyword::Assign,
            "always" => Keyword::Always,
            "initial" => Keyword::Initial,
            "begin" => Keyword::Begin,
            "end" => Keyword::End,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "case" => Keyword::Case,
            "casex" => Keyword::Casex,
            "casez" => Keyword::Casez,
            "endcase" => Keyword::Endcase,
            "default" => Keyword::Default,
            "posedge" => Keyword::Posedge,
            "negedge" => Keyword::Negedge,
            "or" => Keyword::Or,
            "parameter" => Keyword::Parameter,
            "localparam" => Keyword::Localparam,
            "for" => Keyword::For,
            "and" => Keyword::GateAnd,
            "nand" => Keyword::GateNand,
            "nor" => Keyword::GateNor,
            "xor" => Keyword::GateXor,
            "xnor" => Keyword::GateXnor,
            "not" => Keyword::GateNot,
            "buf" => Keyword::GateBuf,
            _ => return None,
        })
    }

    /// True for gate-primitive keywords (`and`, `or`, `xor`, ...).
    ///
    /// Note `or` doubles as the sensitivity-list separator; the parser
    /// disambiguates by context.
    pub fn is_gate(self) -> bool {
        matches!(
            self,
            Keyword::GateAnd
                | Keyword::GateOr
                | Keyword::GateNand
                | Keyword::GateNor
                | Keyword::GateXor
                | Keyword::GateXnor
                | Keyword::GateNot
                | Keyword::GateBuf
                | Keyword::Or
        )
    }
}

/// A lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier (including escaped identifiers with the leading `\`
    /// stripped).
    Ident(String),
    /// Keyword.
    Kw(Keyword),
    /// Numeric literal, e.g. `8'hFF`, `1'b0`, `42`. Stored with its optional
    /// width and the parsed value (x/z digits collapse to 0).
    Number {
        /// Declared bit width, if the literal had one.
        width: Option<u32>,
        /// Parsed value with `x`/`z` digits treated as 0.
        value: u64,
        /// Original text, preserved for round-tripping.
        text: String,
    },
    /// String literal (contents only).
    Str(String),
    /// Punctuation / operator.
    Punct(Punct),
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Colon,
    Dot,
    Hash,
    At,
    Question,
    Assign,    // =
    LtEq,      // <=  (also relational; parser disambiguates)
    GtEq,      // >=
    Lt,        // <
    Gt,        // >
    EqEq,      // ==
    NotEq,     // !=
    CaseEq,    // ===
    CaseNotEq, // !==
    AndAnd,    // &&
    OrOr,      // ||
    And,       // &
    Or,        // |
    Xor,       // ^
    Xnor,      // ^~ or ~^
    Not,       // !
    Tilde,     // ~
    Nand,      // ~&
    Nor,       // ~|
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Shl,      // <<
    Shr,      // >>
    AShr,     // >>>
    PlusPlus, // not verilog, tolerated never emitted
    Star2,    // ** power
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::Semi => ";",
            Punct::Comma => ",",
            Punct::Colon => ":",
            Punct::Dot => ".",
            Punct::Hash => "#",
            Punct::At => "@",
            Punct::Question => "?",
            Punct::Assign => "=",
            Punct::LtEq => "<=",
            Punct::GtEq => ">=",
            Punct::Lt => "<",
            Punct::Gt => ">",
            Punct::EqEq => "==",
            Punct::NotEq => "!=",
            Punct::CaseEq => "===",
            Punct::CaseNotEq => "!==",
            Punct::AndAnd => "&&",
            Punct::OrOr => "||",
            Punct::And => "&",
            Punct::Or => "|",
            Punct::Xor => "^",
            Punct::Xnor => "^~",
            Punct::Not => "!",
            Punct::Tilde => "~",
            Punct::Nand => "~&",
            Punct::Nor => "~|",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::AShr => ">>>",
            Punct::PlusPlus => "++",
            Punct::Star2 => "**",
        };
        f.write_str(s)
    }
}

/// A token together with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it begins.
    pub span: Span,
}
