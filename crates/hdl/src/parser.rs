//! Recursive-descent parser for the Verilog-2001 subset — phase 2 of the
//! Fig. 2 pipeline (the Pyverilog parser substitute).

use crate::ast::*;
use crate::token::{Keyword, Punct, Span, Spanned, Token};
use crate::{lex, ParseVerilogError};

/// Parses preprocessed Verilog source into a [`SourceUnit`].
///
/// # Errors
///
/// Returns a [`ParseVerilogError`] with a source location on any lexical or
/// syntactic problem.
///
/// # Examples
///
/// ```
/// use gnn4ip_hdl::parse;
///
/// let unit = parse("module inv(input a, output y); assign y = ~a; endmodule")?;
/// assert_eq!(unit.modules[0].name, "inv");
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
pub fn parse(source: &str) -> Result<SourceUnit, ParseVerilogError> {
    let tokens = lex(source)?;
    Parser::new(tokens).source_unit()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(toks: Vec<Spanned>) -> Self {
        Self { toks, pos: 0 }
    }

    fn span(&self) -> Span {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(Span::default(), |s| s.span)
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: Punct) -> bool {
        matches!(self.peek(), Some(Token::Punct(q)) if *q == p)
    }

    fn at_kw(&self, k: Keyword) -> bool {
        matches!(self.peek(), Some(Token::Kw(q)) if *q == k)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        if self.at_kw(k) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ParseVerilogError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("'{p}'")))
        }
    }

    fn expect_kw(&mut self, k: Keyword) -> Result<(), ParseVerilogError> {
        if self.eat_kw(k) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {k:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseVerilogError> {
        match self.peek() {
            Some(Token::Ident(_)) => match self.bump() {
                Some(Token::Ident(n)) => Ok(n),
                // g4check: allow(panic-path): peek just confirmed an identifier is next
                _ => unreachable!("peeked identifier"),
            },
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseVerilogError {
        let got = match self.peek() {
            Some(t) => format!("{t:?}"),
            None => "end of input".to_string(),
        };
        ParseVerilogError::at(self.span(), format!("expected {wanted}, found {got}"))
    }

    // ---------------------------------------------------------- top level

    fn source_unit(mut self) -> Result<SourceUnit, ParseVerilogError> {
        let mut modules = Vec::new();
        while self.peek().is_some() {
            if self.at_kw(Keyword::Module) {
                modules.push(self.module()?);
            } else {
                return Err(self.unexpected("'module'"));
            }
        }
        Ok(SourceUnit { modules })
    }

    fn module(&mut self) -> Result<Module, ParseVerilogError> {
        self.expect_kw(Keyword::Module)?;
        let name = self.expect_ident()?;
        let mut module = Module {
            name,
            port_order: Vec::new(),
            ports: Vec::new(),
            params: Vec::new(),
            items: Vec::new(),
        };
        // #(parameter N = 1, ...)
        if self.eat_punct(Punct::Hash) {
            self.expect_punct(Punct::LParen)?;
            loop {
                self.eat_kw(Keyword::Parameter);
                // optional range on parameter — skip
                self.skip_optional_range()?;
                let pname = self.expect_ident()?;
                self.expect_punct(Punct::Assign)?;
                let value = self.expr()?;
                module.params.push((pname, value));
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        // port list
        if self.eat_punct(Punct::LParen) {
            if !self.at_punct(Punct::RParen) {
                self.port_list(&mut module)?;
            }
            self.expect_punct(Punct::RParen)?;
        }
        self.expect_punct(Punct::Semi)?;
        while !self.at_kw(Keyword::Endmodule) {
            if self.peek().is_none() {
                return Err(self.unexpected("'endmodule'"));
            }
            self.item(&mut module)?;
        }
        self.expect_kw(Keyword::Endmodule)?;
        Ok(module)
    }

    fn skip_optional_range(&mut self) -> Result<(), ParseVerilogError> {
        if self.at_punct(Punct::LBracket) {
            let _ = self.range()?;
        }
        Ok(())
    }

    fn range(&mut self) -> Result<Range, ParseVerilogError> {
        self.expect_punct(Punct::LBracket)?;
        let msb = self.expr()?;
        self.expect_punct(Punct::Colon)?;
        let lsb = self.expr()?;
        self.expect_punct(Punct::RBracket)?;
        Ok(Range { msb, lsb })
    }

    fn port_list(&mut self, module: &mut Module) -> Result<(), ParseVerilogError> {
        // Either ANSI (`input wire [3:0] a, output reg b`) or non-ANSI
        // (`a, b, c`). Direction/type "stick" across commas in ANSI style.
        let mut cur_dir: Option<PortDir> = None;
        let mut cur_reg = false;
        let mut cur_range: Option<Range> = None;
        loop {
            let dir = match self.peek() {
                Some(Token::Kw(Keyword::Input)) => Some(PortDir::Input),
                Some(Token::Kw(Keyword::Output)) => Some(PortDir::Output),
                Some(Token::Kw(Keyword::Inout)) => Some(PortDir::Inout),
                _ => None,
            };
            if let Some(d) = dir {
                self.bump();
                cur_dir = Some(d);
                cur_reg = false;
                cur_range = None;
                if self.eat_kw(Keyword::Wire) {
                    // plain wire
                } else if self.eat_kw(Keyword::Reg) {
                    cur_reg = true;
                }
                if self.at_punct(Punct::LBracket) {
                    cur_range = Some(self.range()?);
                }
            }
            let name = self.expect_ident()?;
            module.port_order.push(name.clone());
            if let Some(d) = cur_dir {
                module.ports.push(Port {
                    name,
                    dir: d,
                    is_reg: cur_reg,
                    range: cur_range.clone(),
                });
            }
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        Ok(())
    }

    // ---------------------------------------------------------- items

    fn item(&mut self, module: &mut Module) -> Result<(), ParseVerilogError> {
        match self.peek() {
            Some(Token::Kw(Keyword::Input)) => self.non_ansi_port(module, PortDir::Input),
            Some(Token::Kw(Keyword::Output)) => self.non_ansi_port(module, PortDir::Output),
            Some(Token::Kw(Keyword::Inout)) => self.non_ansi_port(module, PortDir::Inout),
            Some(Token::Kw(Keyword::Wire)) => self.net_decl(module, NetKind::Wire),
            Some(Token::Kw(Keyword::Reg)) => self.net_decl(module, NetKind::Reg),
            Some(Token::Kw(Keyword::Integer)) => self.net_decl(module, NetKind::Integer),
            Some(Token::Kw(Keyword::Parameter)) | Some(Token::Kw(Keyword::Localparam)) => {
                self.bump();
                self.skip_optional_range()?;
                loop {
                    let name = self.expect_ident()?;
                    self.expect_punct(Punct::Assign)?;
                    let value = self.expr()?;
                    module.items.push(Item::Param { name, value });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::Semi)?;
                Ok(())
            }
            Some(Token::Kw(Keyword::Assign)) => {
                self.bump();
                loop {
                    let lhs = self.lvalue()?;
                    self.expect_punct(Punct::Assign)?;
                    let rhs = self.expr()?;
                    module.items.push(Item::Assign { lhs, rhs });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::Semi)?;
                Ok(())
            }
            Some(Token::Kw(Keyword::Always)) => {
                self.bump();
                let sensitivity = if self.eat_punct(Punct::At) {
                    self.sensitivity_list()?
                } else {
                    Vec::new()
                };
                let body = self.stmt()?;
                module.items.push(Item::Always { sensitivity, body });
                Ok(())
            }
            Some(Token::Kw(Keyword::Initial)) => {
                self.bump();
                let body = self.stmt()?;
                module.items.push(Item::Initial(body));
                Ok(())
            }
            Some(Token::Kw(k)) if k.is_gate() && *k != Keyword::Or => {
                let kind = match k {
                    Keyword::GateAnd => GateKind::And,
                    Keyword::GateNand => GateKind::Nand,
                    Keyword::GateNor => GateKind::Nor,
                    Keyword::GateXor => GateKind::Xor,
                    Keyword::GateXnor => GateKind::Xnor,
                    Keyword::GateNot => GateKind::Not,
                    Keyword::GateBuf => GateKind::Buf,
                    // g4check: allow(panic-path): the match arm admits only gate keywords
                    _ => unreachable!("matched gate keyword"),
                };
                self.bump();
                self.gate_instances(module, kind)
            }
            Some(Token::Kw(Keyword::Or)) => {
                // `or` as a gate primitive at item level
                self.bump();
                self.gate_instances(module, GateKind::Or)
            }
            Some(Token::Ident(_)) => self.module_instance(module),
            Some(Token::Punct(Punct::Semi)) => {
                self.bump();
                Ok(())
            }
            _ => Err(self.unexpected("module item")),
        }
    }

    fn non_ansi_port(
        &mut self,
        module: &mut Module,
        dir: PortDir,
    ) -> Result<(), ParseVerilogError> {
        self.bump(); // direction keyword
        let mut is_reg = false;
        if self.eat_kw(Keyword::Wire) {
            // nothing
        } else if self.eat_kw(Keyword::Reg) {
            is_reg = true;
        }
        let range = if self.at_punct(Punct::LBracket) {
            Some(self.range()?)
        } else {
            None
        };
        loop {
            let name = self.expect_ident()?;
            // update or insert the port entry
            if let Some(p) = module.ports.iter_mut().find(|p| p.name == name) {
                p.dir = dir;
                p.is_reg |= is_reg;
                p.range = range.clone();
            } else {
                module.ports.push(Port {
                    name: name.clone(),
                    dir,
                    is_reg,
                    range: range.clone(),
                });
            }
            if !module.port_order.contains(&name) {
                module.port_order.push(name);
            }
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    fn net_decl(&mut self, module: &mut Module, kind: NetKind) -> Result<(), ParseVerilogError> {
        self.bump(); // wire/reg/integer
        let range = if self.at_punct(Punct::LBracket) {
            Some(self.range()?)
        } else {
            None
        };
        loop {
            let name = self.expect_ident()?;
            // optional memory dimension `[0:255]` — parsed and dropped
            if self.at_punct(Punct::LBracket) {
                let _ = self.range()?;
            }
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            // `output reg` already declared as port: mark reg-ness
            if let Some(p) = module.ports.iter_mut().find(|p| p.name == name) {
                p.is_reg |= kind == NetKind::Reg;
                if p.range.is_none() {
                    p.range = range.clone();
                }
                if let Some(init) = init {
                    module.items.push(Item::Assign {
                        lhs: Expr::ident(&p.name),
                        rhs: init,
                    });
                }
            } else {
                module.items.push(Item::Decl {
                    kind,
                    name,
                    range: range.clone(),
                    init,
                });
            }
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    fn gate_instances(
        &mut self,
        module: &mut Module,
        kind: GateKind,
    ) -> Result<(), ParseVerilogError> {
        loop {
            let name = if let Some(Token::Ident(_)) = self.peek() {
                Some(self.expect_ident()?)
            } else {
                None
            };
            self.expect_punct(Punct::LParen)?;
            let mut conns = Vec::new();
            if !self.at_punct(Punct::RParen) {
                loop {
                    conns.push(self.expr()?);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
            self.expect_punct(Punct::RParen)?;
            module
                .items
                .push(Item::Gate(GateInstance { kind, name, conns }));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    fn module_instance(&mut self, module: &mut Module) -> Result<(), ParseVerilogError> {
        let mod_name = self.expect_ident()?;
        let mut param_overrides = Vec::new();
        if self.eat_punct(Punct::Hash) {
            self.expect_punct(Punct::LParen)?;
            if !self.at_punct(Punct::RParen) {
                loop {
                    if self.eat_punct(Punct::Dot) {
                        let p = self.expect_ident()?;
                        self.expect_punct(Punct::LParen)?;
                        let e = self.expr()?;
                        self.expect_punct(Punct::RParen)?;
                        param_overrides.push((Some(p), e));
                    } else {
                        param_overrides.push((None, self.expr()?));
                    }
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        loop {
            let inst_name = self.expect_ident()?;
            self.expect_punct(Punct::LParen)?;
            let mut conns = Vec::new();
            if !self.at_punct(Punct::RParen) {
                loop {
                    if self.eat_punct(Punct::Dot) {
                        let p = self.expect_ident()?;
                        self.expect_punct(Punct::LParen)?;
                        let e = if self.at_punct(Punct::RParen) {
                            None
                        } else {
                            Some(self.expr()?)
                        };
                        self.expect_punct(Punct::RParen)?;
                        conns.push((Some(p), e));
                    } else {
                        conns.push((None, Some(self.expr()?)));
                    }
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
            self.expect_punct(Punct::RParen)?;
            module.items.push(Item::Instance(ModuleInstance {
                module: mod_name.clone(),
                name: inst_name,
                param_overrides: param_overrides.clone(),
                conns,
            }));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    fn sensitivity_list(&mut self) -> Result<Vec<SensItem>, ParseVerilogError> {
        // @* or @(*) or @(list)
        if self.eat_punct(Punct::Star) {
            return Ok(vec![SensItem::Star]);
        }
        self.expect_punct(Punct::LParen)?;
        if self.eat_punct(Punct::Star) {
            self.expect_punct(Punct::RParen)?;
            return Ok(vec![SensItem::Star]);
        }
        let mut items = Vec::new();
        loop {
            let item = if self.eat_kw(Keyword::Posedge) {
                SensItem::Posedge(self.expect_ident()?)
            } else if self.eat_kw(Keyword::Negedge) {
                SensItem::Negedge(self.expect_ident()?)
            } else {
                SensItem::Level(self.expect_ident()?)
            };
            items.push(item);
            if self.eat_punct(Punct::Comma) || self.eat_kw(Keyword::Or) {
                continue;
            }
            break;
        }
        self.expect_punct(Punct::RParen)?;
        Ok(items)
    }

    // ---------------------------------------------------------- statements

    fn stmt(&mut self) -> Result<Stmt, ParseVerilogError> {
        match self.peek() {
            Some(Token::Kw(Keyword::Begin)) => {
                self.bump();
                // optional block label `: name`
                if self.eat_punct(Punct::Colon) {
                    let _ = self.expect_ident()?;
                }
                let mut stmts = Vec::new();
                while !self.at_kw(Keyword::End) {
                    if self.peek().is_none() {
                        return Err(self.unexpected("'end'"));
                    }
                    stmts.push(self.stmt()?);
                }
                self.expect_kw(Keyword::End)?;
                Ok(Stmt::Block(stmts))
            }
            Some(Token::Kw(Keyword::If)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then_s = Box::new(self.stmt()?);
                let else_s = if self.eat_kw(Keyword::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_s,
                    else_s,
                })
            }
            Some(Token::Kw(Keyword::Case))
            | Some(Token::Kw(Keyword::Casex))
            | Some(Token::Kw(Keyword::Casez)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let subject = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let mut arms = Vec::new();
                while !self.at_kw(Keyword::Endcase) {
                    if self.peek().is_none() {
                        return Err(self.unexpected("'endcase'"));
                    }
                    if self.eat_kw(Keyword::Default) {
                        self.eat_punct(Punct::Colon);
                        let body = self.stmt()?;
                        arms.push((Vec::new(), body));
                    } else {
                        let mut labels = vec![self.expr()?];
                        while self.eat_punct(Punct::Comma) {
                            labels.push(self.expr()?);
                        }
                        self.expect_punct(Punct::Colon)?;
                        let body = self.stmt()?;
                        arms.push((labels, body));
                    }
                }
                self.expect_kw(Keyword::Endcase)?;
                Ok(Stmt::Case { subject, arms })
            }
            Some(Token::Kw(Keyword::For)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let var = self.expect_ident()?;
                self.expect_punct(Punct::Assign)?;
                let init = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                let var2 = self.expect_ident()?;
                if var2 != var {
                    return Err(ParseVerilogError::at(
                        self.span(),
                        format!("for-loop step must assign '{var}'"),
                    ));
                }
                self.expect_punct(Punct::Assign)?;
                let step = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    var,
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Some(Token::Punct(Punct::Semi)) => {
                self.bump();
                Ok(Stmt::Null)
            }
            Some(Token::Punct(Punct::Hash)) => {
                // delay control `#10 stmt` — skip the delay
                self.bump();
                match self.peek() {
                    Some(Token::Number { .. }) => {
                        self.bump();
                    }
                    Some(Token::Punct(Punct::LParen)) => {
                        self.bump();
                        let _ = self.expr()?;
                        self.expect_punct(Punct::RParen)?;
                    }
                    _ => {}
                }
                self.stmt()
            }
            Some(Token::Ident(name)) if name.starts_with('$') => {
                // system task call — consumed and ignored
                self.bump();
                if self.eat_punct(Punct::LParen) {
                    let mut depth = 1u32;
                    while depth > 0 {
                        match self.bump() {
                            Some(Token::Punct(Punct::LParen)) => depth += 1,
                            Some(Token::Punct(Punct::RParen)) => depth -= 1,
                            Some(_) => {}
                            None => return Err(self.unexpected("')'")),
                        }
                    }
                }
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Null)
            }
            _ => {
                let lhs = self.lvalue()?;
                if self.eat_punct(Punct::LtEq) {
                    let rhs = self.expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Ok(Stmt::NonBlocking { lhs, rhs })
                } else if self.eat_punct(Punct::Assign) {
                    let rhs = self.expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Ok(Stmt::Blocking { lhs, rhs })
                } else {
                    Err(self.unexpected("'=' or '<='"))
                }
            }
        }
    }

    /// Parses an assignment target: identifier with optional selects, or a
    /// concatenation of targets.
    fn lvalue(&mut self) -> Result<Expr, ParseVerilogError> {
        if self.at_punct(Punct::LBrace) {
            self.bump();
            let mut parts = vec![self.lvalue()?];
            while self.eat_punct(Punct::Comma) {
                parts.push(self.lvalue()?);
            }
            self.expect_punct(Punct::RBrace)?;
            return Ok(Expr::Concat(parts));
        }
        let name = self.expect_ident()?;
        let mut e = Expr::ident(name);
        while self.at_punct(Punct::LBracket) {
            e = self.postfix_select(e)?;
        }
        Ok(e)
    }

    // ---------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, ParseVerilogError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseVerilogError> {
        let cond = self.logical_or()?;
        if self.eat_punct(Punct::Question) {
            let then_e = self.expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_e = self.expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
            })
        } else {
            Ok(cond)
        }
    }

    fn binary_level(
        &mut self,
        next: impl Fn(&mut Self) -> Result<Expr, ParseVerilogError>,
        ops: &[(Punct, BinaryOp)],
    ) -> Result<Expr, ParseVerilogError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for &(p, op) in ops {
                if self.at_punct(p) {
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                    continue 'outer;
                }
            }
            break;
        }
        Ok(lhs)
    }

    fn logical_or(&mut self) -> Result<Expr, ParseVerilogError> {
        self.binary_level(Self::logical_and, &[(Punct::OrOr, BinaryOp::LogicalOr)])
    }

    fn logical_and(&mut self) -> Result<Expr, ParseVerilogError> {
        self.binary_level(Self::bit_or, &[(Punct::AndAnd, BinaryOp::LogicalAnd)])
    }

    fn bit_or(&mut self) -> Result<Expr, ParseVerilogError> {
        self.binary_level(Self::bit_xor, &[(Punct::Or, BinaryOp::Or)])
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseVerilogError> {
        self.binary_level(
            Self::bit_and,
            &[(Punct::Xor, BinaryOp::Xor), (Punct::Xnor, BinaryOp::Xnor)],
        )
    }

    fn bit_and(&mut self) -> Result<Expr, ParseVerilogError> {
        self.binary_level(Self::equality, &[(Punct::And, BinaryOp::And)])
    }

    fn equality(&mut self) -> Result<Expr, ParseVerilogError> {
        self.binary_level(
            Self::relational,
            &[
                (Punct::EqEq, BinaryOp::Eq),
                (Punct::NotEq, BinaryOp::Neq),
                (Punct::CaseEq, BinaryOp::CaseEq),
                (Punct::CaseNotEq, BinaryOp::CaseNeq),
            ],
        )
    }

    fn relational(&mut self) -> Result<Expr, ParseVerilogError> {
        self.binary_level(
            Self::shift,
            &[
                (Punct::Lt, BinaryOp::Lt),
                (Punct::Gt, BinaryOp::Gt),
                (Punct::LtEq, BinaryOp::Le),
                (Punct::GtEq, BinaryOp::Ge),
            ],
        )
    }

    fn shift(&mut self) -> Result<Expr, ParseVerilogError> {
        self.binary_level(
            Self::additive,
            &[
                (Punct::Shl, BinaryOp::Shl),
                (Punct::Shr, BinaryOp::Shr),
                (Punct::AShr, BinaryOp::AShr),
            ],
        )
    }

    fn additive(&mut self) -> Result<Expr, ParseVerilogError> {
        self.binary_level(
            Self::multiplicative,
            &[(Punct::Plus, BinaryOp::Add), (Punct::Minus, BinaryOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseVerilogError> {
        self.binary_level(
            Self::power,
            &[
                (Punct::Star, BinaryOp::Mul),
                (Punct::Slash, BinaryOp::Div),
                (Punct::Percent, BinaryOp::Mod),
            ],
        )
    }

    fn power(&mut self) -> Result<Expr, ParseVerilogError> {
        self.binary_level(Self::unary, &[(Punct::Star2, BinaryOp::Pow)])
    }

    fn unary(&mut self) -> Result<Expr, ParseVerilogError> {
        let op = match self.peek() {
            Some(Token::Punct(Punct::Not)) => Some(UnaryOp::Not),
            Some(Token::Punct(Punct::Tilde)) => Some(UnaryOp::BitNot),
            Some(Token::Punct(Punct::Plus)) => Some(UnaryOp::Plus),
            Some(Token::Punct(Punct::Minus)) => Some(UnaryOp::Minus),
            Some(Token::Punct(Punct::And)) => Some(UnaryOp::ReduceAnd),
            Some(Token::Punct(Punct::Or)) => Some(UnaryOp::ReduceOr),
            Some(Token::Punct(Punct::Xor)) => Some(UnaryOp::ReduceXor),
            Some(Token::Punct(Punct::Nand)) => Some(UnaryOp::ReduceNand),
            Some(Token::Punct(Punct::Nor)) => Some(UnaryOp::ReduceNor),
            Some(Token::Punct(Punct::Xnor)) => Some(UnaryOp::ReduceXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let arg = self.unary()?;
            Ok(Expr::Unary {
                op,
                arg: Box::new(arg),
            })
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseVerilogError> {
        match self.peek().cloned() {
            Some(Token::Number { width, value, .. }) => {
                self.bump();
                Ok(Expr::Number { width, value })
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Some(Token::Ident(name)) => {
                self.bump();
                if self.at_punct(Punct::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                    return Ok(Expr::Call { name, args });
                }
                let mut e = Expr::Ident(name);
                while self.at_punct(Punct::LBracket) {
                    e = self.postfix_select(e)?;
                }
                Ok(e)
            }
            Some(Token::Punct(Punct::LParen)) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            Some(Token::Punct(Punct::LBrace)) => {
                self.bump();
                let first = self.expr()?;
                if self.at_punct(Punct::LBrace) {
                    // repeat {n{expr, ...}}
                    self.bump();
                    let mut parts = vec![self.expr()?];
                    while self.eat_punct(Punct::Comma) {
                        parts.push(self.expr()?);
                    }
                    self.expect_punct(Punct::RBrace)?;
                    self.expect_punct(Punct::RBrace)?;
                    let body = if parts.len() == 1 {
                        // g4check: allow(unwrap-in-lib): pop of a vec whose length the branch just checked is 1
                        parts.pop().expect("one part")
                    } else {
                        Expr::Concat(parts)
                    };
                    Ok(Expr::Repeat {
                        count: Box::new(first),
                        body: Box::new(body),
                    })
                } else {
                    let mut parts = vec![first];
                    while self.eat_punct(Punct::Comma) {
                        parts.push(self.expr()?);
                    }
                    self.expect_punct(Punct::RBrace)?;
                    Ok(Expr::Concat(parts))
                }
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    fn postfix_select(&mut self, base: Expr) -> Result<Expr, ParseVerilogError> {
        self.expect_punct(Punct::LBracket)?;
        let first = self.expr()?;
        if self.eat_punct(Punct::Colon) {
            let lsb = self.expr()?;
            self.expect_punct(Punct::RBracket)?;
            Ok(Expr::PartSelect {
                base: Box::new(base),
                msb: Box::new(first),
                lsb: Box::new(lsb),
            })
        } else {
            self.expect_punct(Punct::RBracket)?;
            Ok(Expr::BitSelect {
                base: Box::new(base),
                index: Box::new(first),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Module {
        let unit = parse(src).expect("parses");
        assert_eq!(unit.modules.len(), 1);
        unit.modules.into_iter().next().expect("one module")
    }

    #[test]
    fn parses_ansi_module() {
        let m = parse_one(
            "module adder(input a, input b, input cin, output reg sum, output reg cout);
             endmodule",
        );
        assert_eq!(m.name, "adder");
        assert_eq!(m.inputs(), vec!["a", "b", "cin"]);
        assert_eq!(m.outputs(), vec!["sum", "cout"]);
        assert!(
            m.ports
                .iter()
                .find(|p| p.name == "sum")
                .expect("sum")
                .is_reg
        );
    }

    #[test]
    fn parses_non_ansi_module() {
        let m = parse_one(
            "module adder(a, b, y);
               input a, b;
               output [1:0] y;
             endmodule",
        );
        assert_eq!(m.inputs(), vec!["a", "b"]);
        assert_eq!(m.outputs(), vec!["y"]);
        assert!(m
            .ports
            .iter()
            .find(|p| p.name == "y")
            .expect("y")
            .range
            .is_some());
    }

    #[test]
    fn parses_assign_and_exprs() {
        let m = parse_one(
            "module m(input a, input b, output y);
               assign y = (a ^ b) | ~a & b;
             endmodule",
        );
        match &m.items[0] {
            Item::Assign { rhs, .. } => {
                // precedence: | at top
                match rhs {
                    Expr::Binary {
                        op: BinaryOp::Or, ..
                    } => {}
                    e => panic!("wrong precedence: {e:?}"),
                }
            }
            i => panic!("expected assign, got {i:?}"),
        }
    }

    #[test]
    fn parses_always_with_sensitivity() {
        let m = parse_one(
            "module m(input clk, input rst, input d, output reg q);
               always @(posedge clk or negedge rst)
                 if (!rst) q <= 1'b0; else q <= d;
             endmodule",
        );
        match &m.items[0] {
            Item::Always { sensitivity, body } => {
                assert_eq!(sensitivity.len(), 2);
                assert_eq!(sensitivity[0], SensItem::Posedge("clk".into()));
                assert!(matches!(body, Stmt::If { .. }));
            }
            i => panic!("expected always, got {i:?}"),
        }
    }

    #[test]
    fn parses_star_sensitivity() {
        let m = parse_one(
            "module m(input a, output reg y);
               always @(*) y = a;
             endmodule",
        );
        match &m.items[0] {
            Item::Always { sensitivity, .. } => assert_eq!(sensitivity, &vec![SensItem::Star]),
            i => panic!("{i:?}"),
        }
        let m2 = parse_one(
            "module m(input a, output reg y);
               always @* y = a;
             endmodule",
        );
        assert!(matches!(&m2.items[0], Item::Always { .. }));
    }

    #[test]
    fn parses_case_statement() {
        let m = parse_one(
            "module m(input [1:0] s, output reg y);
               always @* case (s)
                 2'b00: y = 1'b0;
                 2'b01, 2'b10: y = 1'b1;
                 default: y = 1'bx;
               endcase
             endmodule",
        );
        match &m.items[0] {
            Item::Always {
                body: Stmt::Case { arms, .. },
                ..
            } => {
                assert_eq!(arms.len(), 3);
                assert_eq!(arms[1].0.len(), 2);
                assert!(arms[2].0.is_empty());
            }
            i => panic!("{i:?}"),
        }
    }

    #[test]
    fn parses_gate_primitives() {
        let m = parse_one(
            "module fa(input a, input b, input cin, output sum, output cout);
               wire t1, t2, t3;
               xor (t1, a, b);
               and g2(t2, a, b);
               and (t3, t1, cin);
               xor (sum, t1, cin);
               or (cout, t3, t2);
             endmodule",
        );
        let gates: Vec<_> = m
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Gate(g) => Some(g.kind),
                _ => None,
            })
            .collect();
        assert_eq!(
            gates,
            vec![
                GateKind::Xor,
                GateKind::And,
                GateKind::And,
                GateKind::Xor,
                GateKind::Or
            ]
        );
    }

    #[test]
    fn parses_multiple_gate_instances_per_statement() {
        let m = parse_one(
            "module m(input a, input b, output x, output y);
               and g1(x, a, b), g2(y, b, a);
             endmodule",
        );
        let n = m
            .items
            .iter()
            .filter(|i| matches!(i, Item::Gate(_)))
            .count();
        assert_eq!(n, 2);
    }

    #[test]
    fn parses_module_instance_named_and_positional() {
        let unit = parse(
            "module leaf(input a, output y); assign y = a; endmodule
             module top(input x, output z, output w);
               leaf u0(.a(x), .y(z));
               leaf u1(x, w);
             endmodule",
        )
        .expect("parses");
        let top = unit.module("top").expect("top");
        let insts: Vec<_> = top
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Instance(mi) => Some(mi),
                _ => None,
            })
            .collect();
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].conns[0].0.as_deref(), Some("a"));
        assert!(insts[1].conns[0].0.is_none());
    }

    #[test]
    fn parses_parameters_and_overrides() {
        let unit = parse(
            "module w #(parameter N = 4)(input [N-1:0] a, output [N-1:0] y);
               assign y = a;
             endmodule
             module top(input [7:0] i, output [7:0] o);
               w #(.N(8)) u(.a(i), .y(o));
             endmodule",
        )
        .expect("parses");
        let w = unit.module("w").expect("w");
        assert_eq!(w.params.len(), 1);
        let top = unit.module("top").expect("top");
        match &top.items[0] {
            Item::Instance(mi) => assert_eq!(mi.param_overrides.len(), 1),
            i => panic!("{i:?}"),
        }
    }

    #[test]
    fn parses_concat_repeat_and_selects() {
        let m = parse_one(
            "module m(input [7:0] a, output [15:0] y);
               assign y = {{2{a[3:0]}}, a[7], 3'b010};
             endmodule",
        );
        match &m.items[0] {
            Item::Assign {
                rhs: Expr::Concat(_),
                ..
            } => {}
            Item::Assign {
                rhs: Expr::Repeat { .. },
                ..
            } => {}
            i => panic!("{i:?}"),
        }
    }

    #[test]
    fn parses_ternary_chain() {
        let m = parse_one(
            "module m(input [1:0] s, input a, input b, input c, output y);
               assign y = s == 2'd0 ? a : s == 2'd1 ? b : c;
             endmodule",
        );
        match &m.items[0] {
            Item::Assign {
                rhs: Expr::Ternary { .. },
                ..
            } => {}
            i => panic!("{i:?}"),
        }
    }

    #[test]
    fn parses_for_loop() {
        let m = parse_one(
            "module m(input [3:0] a, output reg [3:0] y);
               integer i;
               always @* begin
                 for (i = 0; i < 4; i = i + 1)
                   y[i] = a[3 - i];
               end
             endmodule",
        );
        match &m.items[1] {
            Item::Always {
                body: Stmt::Block(stmts),
                ..
            } => {
                assert!(matches!(stmts[0], Stmt::For { .. }));
            }
            i => panic!("{i:?}"),
        }
    }

    #[test]
    fn parses_reduction_operators() {
        let m = parse_one(
            "module m(input [3:0] a, output y);
               assign y = &a | ^a & ~|a;
             endmodule",
        );
        assert!(matches!(&m.items[0], Item::Assign { .. }));
    }

    #[test]
    fn skips_system_tasks_and_initial() {
        let m = parse_one(
            "module m(input a);
               initial begin
                 $display(\"hello %d\", a);
                 #10;
               end
             endmodule",
        );
        assert!(matches!(&m.items[0], Item::Initial(_)));
    }

    #[test]
    fn error_reports_location() {
        let err = parse("module m(input a;\nendmodule").unwrap_err();
        assert!(err.span().is_some());
    }

    #[test]
    fn wire_with_init_becomes_assign() {
        let m = parse_one(
            "module m(input a, output y);
               wire t = ~a;
               assign y = t;
             endmodule",
        );
        let has_decl = m
            .items
            .iter()
            .any(|i| matches!(i, Item::Decl { name, .. } if name == "t"));
        assert!(has_decl);
    }

    #[test]
    fn lvalue_concat_assignment() {
        let m = parse_one(
            "module m(input [1:0] a, output x, output y);
               assign {x, y} = a;
             endmodule",
        );
        match &m.items[0] {
            Item::Assign {
                lhs: Expr::Concat(parts),
                ..
            } => assert_eq!(parts.len(), 2),
            i => panic!("{i:?}"),
        }
    }
}
