//! # gnn4ip-hdl
//!
//! Verilog-2001-subset front end for the GNN4IP reproduction — the
//! [Pyverilog](https://github.com/PyHDI/Pyverilog) substitute of the paper's
//! Fig. 2 pipeline.
//!
//! The pipeline stages provided here:
//!
//! 1. [`preprocess`] — comment/attribute stripping, `` `define ``/`` `include ``
//!    resolution (phase "Preprocess").
//! 2. [`lex`] + [`parse`] — tokenization and recursive-descent parsing into a
//!    [`SourceUnit`] AST (phase "Parse HDL" producing the abstract syntax
//!    tree).
//! 3. [`flatten`] — hierarchy inlining, parameter resolution, and for-loop
//!    unrolling, yielding one flat [`Module`].
//!
//! Data-flow analysis (phases "Data flow analysis", "Merge graphs", "Trim
//! graphs") lives in the `gnn4ip-dfg` crate, which consumes the flat module.
//!
//! A combinational [`Evaluator`] is also provided; the dataset generators use
//! it to prove that their code transformations preserve behaviour.
//!
//! # Examples
//!
//! ```
//! use gnn4ip_hdl::{parse, flatten};
//!
//! let src = "
//!     module adder(input a, input b, input cin, output sum, output cout);
//!       wire t1, t2, t3;
//!       xor (t1, a, b);
//!       and (t2, a, b);
//!       and (t3, t1, cin);
//!       xor (sum, t1, cin);
//!       or  (cout, t3, t2);
//!     endmodule";
//! let unit = parse(src)?;
//! let flat = flatten(&unit, "adder")?;
//! assert_eq!(flat.outputs(), vec!["sum", "cout"]);
//! # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod eval;
mod fingerprint;
mod flatten;
mod lexer;
mod parser;
mod preprocess;
pub mod token;

pub use ast::{
    BinaryOp, Expr, GateInstance, GateKind, Item, Module, ModuleInstance, NetKind, Port, PortDir,
    Range, SensItem, SourceUnit, Stmt, UnaryOp,
};
pub use error::ParseVerilogError;
pub use eval::Evaluator;
pub use fingerprint::{design_fingerprint, Fingerprint, StableHasher};
pub use flatten::{eval_const, flatten};
pub use lexer::lex;
pub use parser::parse;
pub use preprocess::{preprocess, IncludeMap};

/// Parses and flattens a single-file design in one call.
///
/// When `top` is `None` the root module is auto-detected (the module no other
/// module instantiates).
///
/// # Errors
///
/// Propagates preprocessing, parse, and elaboration errors.
///
/// # Examples
///
/// ```
/// use gnn4ip_hdl::elaborate;
///
/// let flat = elaborate("module inv(input a, output y); assign y = ~a; endmodule", None)?;
/// assert_eq!(flat.name, "inv");
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
pub fn elaborate(source: &str, top: Option<&str>) -> Result<Module, ParseVerilogError> {
    let pre = preprocess(source, &IncludeMap::new())?;
    let unit = parse(&pre)?;
    let top_name = match top {
        Some(t) => t.to_string(),
        None => unit
            .top_module()
            .ok_or_else(|| ParseVerilogError::msg("no modules in source"))?
            .name
            .clone(),
    };
    flatten(&unit, &top_name)
}
