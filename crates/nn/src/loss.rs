//! The cosine-embedding loss of Eq. 7.
//!
//! ```text
//! H(Ŷ, Y) = 1 - Ŷ                    if Y = +1   (similar pair)
//!           max(0, Ŷ - margin)       if Y = -1   (different pair)
//! ```
//!
//! The margin is 0.5 throughout the paper.

use gnn4ip_tensor::Var;

/// The paper's fixed margin.
pub const DEFAULT_MARGIN: f32 = 0.5;

/// Pair label: similar (piracy) or different (no piracy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairLabel {
    /// `Y = +1`: the two designs are the same IP.
    Similar,
    /// `Y = -1`: unrelated designs.
    Different,
}

impl PairLabel {
    /// The target value `Y ∈ {+1, -1}`.
    pub fn target(self) -> f32 {
        match self {
            PairLabel::Similar => 1.0,
            PairLabel::Different => -1.0,
        }
    }
}

/// Records the cosine-embedding loss of a predicted similarity `yhat`
/// (a `1 x 1` variable from [`Var::cosine`]) against a pair label.
///
/// Returns a `1 x 1` loss variable on the same tape.
pub fn cosine_embedding_loss<'t>(yhat: Var<'t>, label: PairLabel, margin: f32) -> Var<'t> {
    match label {
        PairLabel::Similar => yhat.rsub_scalar(1.0),
        PairLabel::Different => yhat.add_scalar(-margin).relu(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_tensor::{Matrix, Tape};

    fn loss_of(yhat: f32, label: PairLabel) -> f32 {
        let tape = Tape::new();
        let v = tape.input(Matrix::scalar(yhat));
        cosine_embedding_loss(v, label, DEFAULT_MARGIN).item()
    }

    #[test]
    fn similar_pair_loss_is_one_minus_yhat() {
        assert!((loss_of(0.8, PairLabel::Similar) - 0.2).abs() < 1e-6);
        assert!((loss_of(1.0, PairLabel::Similar)).abs() < 1e-6);
        assert!((loss_of(-1.0, PairLabel::Similar) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn different_pair_loss_is_hinged_at_margin() {
        assert_eq!(loss_of(0.3, PairLabel::Different), 0.0);
        assert_eq!(loss_of(0.5, PairLabel::Different), 0.0);
        assert!((loss_of(0.9, PairLabel::Different) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn gradients_push_in_the_right_direction() {
        // For a similar pair, d loss / d yhat = -1 (increase similarity).
        let tape = Tape::new();
        let v = tape.input(Matrix::scalar(0.2));
        let l = cosine_embedding_loss(v, PairLabel::Similar, DEFAULT_MARGIN);
        let g = tape.backward(l);
        assert_eq!(g.wrt(v).expect("grad").item(), -1.0);

        // For a violating different pair, d loss / d yhat = +1 (decrease it).
        let tape = Tape::new();
        let v = tape.input(Matrix::scalar(0.9));
        let l = cosine_embedding_loss(v, PairLabel::Different, DEFAULT_MARGIN);
        let g = tape.backward(l);
        assert_eq!(g.wrt(v).expect("grad").item(), 1.0);
    }

    #[test]
    fn labels_map_to_targets() {
        assert_eq!(PairLabel::Similar.target(), 1.0);
        assert_eq!(PairLabel::Different.target(), -1.0);
    }
}
