//! The hw2vec graph-embedding model: stacked GCN layers, self-attention
//! graph pooling, and a graph readout (Fig. 3 of the paper).

use std::cell::RefCell;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gnn4ip_tensor::{
    fnv1a64, read_artifact, write_artifact, BinReader, BinWriter, Matrix, ParamId, ParamStore,
    Tape, Var, Workspace,
};

use crate::graph_input::GraphInput;
use gnn4ip_tensor::fan_out;

thread_local! {
    /// Per-thread scratch for [`Hw2Vec::embed`], so repeated single-graph
    /// embeddings reuse buffers instead of re-allocating each call.
    static EMBED_WS: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Kind tag of the binary model artifact (see [`Hw2Vec::to_bytes`]).
pub const MODEL_KIND: &str = "hw2vec-model";

/// Graph-readout operation (paper §III-C: sum-, mean-, or max-pooling; the
/// evaluation uses max).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Readout {
    /// Column-wise maximum of node embeddings (the paper's choice).
    #[default]
    Max,
    /// Column-wise mean.
    Mean,
    /// Column-wise sum.
    Sum,
}

impl Readout {
    /// Stable serialization tag.
    pub fn tag(self) -> &'static str {
        match self {
            Readout::Max => "max",
            Readout::Mean => "mean",
            Readout::Sum => "sum",
        }
    }

    /// Parses a serialization tag.
    pub fn from_tag(s: &str) -> Option<Self> {
        Some(match s {
            "max" => Readout::Max,
            "mean" => Readout::Mean,
            "sum" => Readout::Sum,
            _ => return None,
        })
    }
}

/// Graph-convolution operator. The paper's background (Eqs. 1-2) frames
/// message propagation as AGGREGATE + COMBINE; its evaluation instantiates
/// that with GCN (Eq. 5). The SAGE variant (mean-aggregate, separate
/// self/neighbor weights) is provided as the natural ablation of that
/// choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvKind {
    /// Kipf & Welling GCN: `relu(Â X W)` (the paper's choice).
    #[default]
    Gcn,
    /// GraphSAGE-mean: `relu(X W_self + mean_N(X) W_neigh)`.
    Sage,
}

impl ConvKind {
    /// Stable serialization tag.
    pub fn tag(self) -> &'static str {
        match self {
            ConvKind::Gcn => "gcn",
            ConvKind::Sage => "sage",
        }
    }

    /// Parses a serialization tag.
    pub fn from_tag(s: &str) -> Option<Self> {
        Some(match s {
            "gcn" => ConvKind::Gcn,
            "sage" => ConvKind::Sage,
            _ => return None,
        })
    }
}

/// Hyper-parameters of hw2vec. Defaults are the paper's evaluation settings
/// (§IV): 2 GCN layers, 16 hidden units, pool ratio 0.5, max readout,
/// dropout 0.1.
#[derive(Debug, Clone, PartialEq)]
pub struct Hw2VecConfig {
    /// One-hot input dimension (node-kind vocabulary size).
    pub input_dim: usize,
    /// Hidden units per GCN layer.
    pub hidden: usize,
    /// Number of GCN layers.
    pub layers: usize,
    /// Top-k pooling keep ratio.
    pub pool_ratio: f32,
    /// Dropout probability after each GCN layer (training only).
    pub dropout: f32,
    /// Readout operation.
    pub readout: Readout,
    /// Graph-convolution operator.
    pub conv: ConvKind,
}

impl Default for Hw2VecConfig {
    fn default() -> Self {
        Self {
            input_dim: gnn4ip_dfg::VOCAB_SIZE,
            hidden: 16,
            layers: 2,
            pool_ratio: 0.5,
            dropout: 0.1,
            readout: Readout::Max,
            conv: ConvKind::Gcn,
        }
    }
}

/// Forward-pass mode.
#[derive(Debug)]
pub enum Mode<'r> {
    /// Inference: dropout disabled.
    Eval,
    /// Training: dropout masks drawn from the given RNG.
    Train(&'r mut StdRng),
}

/// The hw2vec model: parameters plus architecture.
///
/// # Examples
///
/// ```
/// use gnn4ip_nn::{Hw2Vec, Hw2VecConfig, GraphInput};
/// use gnn4ip_dfg::graph_from_verilog;
///
/// let model = Hw2Vec::new(Hw2VecConfig::default(), 7);
/// let g = graph_from_verilog(
///     "module inv(input a, output y); assign y = ~a; endmodule", None)?;
/// let h = model.embed(&GraphInput::from_dfg(&g));
/// assert_eq!(h.len(), 16);
/// # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Hw2Vec {
    config: Hw2VecConfig,
    params: ParamStore,
    layer_w: Vec<ParamId>,
    /// SAGE neighbor weights (empty for GCN).
    layer_w2: Vec<ParamId>,
    layer_b: Vec<ParamId>,
    score_w: ParamId,
    score_b: ParamId,
}

impl Hw2Vec {
    /// Creates a model with Glorot-initialized weights from a seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero layers or zero hidden units.
    pub fn new(config: Hw2VecConfig, seed: u64) -> Self {
        assert!(config.layers >= 1, "at least one GCN layer required");
        assert!(config.hidden >= 1, "hidden width must be positive");
        assert!(
            config.pool_ratio > 0.0 && config.pool_ratio <= 1.0,
            "pool ratio must be in (0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamStore::new();
        let mut layer_w = Vec::new();
        let mut layer_w2 = Vec::new();
        let mut layer_b = Vec::new();
        for l in 0..config.layers {
            let fan_in = if l == 0 {
                config.input_dim
            } else {
                config.hidden
            };
            layer_w.push(params.add_glorot(format!("conv{l}.w"), fan_in, config.hidden, &mut rng));
            if config.conv == ConvKind::Sage {
                layer_w2.push(params.add_glorot(
                    format!("conv{l}.w_neigh"),
                    fan_in,
                    config.hidden,
                    &mut rng,
                ));
            }
            layer_b.push(params.add(format!("conv{l}.b"), Matrix::zeros(1, config.hidden)));
        }
        let score_w = params.add_glorot("pool.score.w", config.hidden, 1, &mut rng);
        let score_b = params.add("pool.score.b", Matrix::zeros(1, 1));
        Self {
            config,
            params,
            layer_w,
            layer_w2,
            layer_b,
            score_w,
            score_b,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &Hw2VecConfig {
        &self.config
    }

    /// The parameter store (for optimizers).
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Mutable parameter store (for optimizers).
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.params
    }

    /// Records the hw2vec forward pass on `tape`, returning the `1 x hidden`
    /// graph embedding variable.
    ///
    /// `param_vars` must come from `self.params().inject(tape)`.
    pub fn forward<'t>(
        &self,
        _tape: &'t Tape,
        param_vars: &[Var<'t>],
        graph: &GraphInput,
        mode: &mut Mode<'_>,
    ) -> Var<'t> {
        // --- message propagation: L conv layers (Eq. 5 for GCN; Eqs. 1-2
        // mean-AGGREGATE/COMBINE for SAGE) ---
        // ReLU + dropout between layers; the final layer stays linear so
        // embeddings keep signed components (an all-ReLU stack collapses the
        // cosine objective toward the zero vector — see DESIGN.md).
        // First layer exploits one-hot features: X W = W[kinds].
        let last = self.config.layers - 1;
        let w0 = param_vars[self.layer_w[0].index()];
        let mut h = match self.config.conv {
            ConvKind::Gcn => w0.select_rows(&graph.kinds).spmm(&graph.adj),
            ConvKind::Sage => {
                let wn = param_vars[self.layer_w2[0].index()];
                w0.select_rows(&graph.kinds)
                    .add(wn.select_rows(&graph.kinds).spmm(&graph.mean_adj))
            }
        };
        h = h.add_bias(param_vars[self.layer_b[0].index()]);
        if last > 0 {
            h = self.maybe_dropout(h.relu(), mode);
        }
        for l in 1..self.config.layers {
            let w = param_vars[self.layer_w[l].index()];
            let b = param_vars[self.layer_b[l].index()];
            h = match self.config.conv {
                ConvKind::Gcn => h.matmul(w).spmm(&graph.adj),
                ConvKind::Sage => {
                    let wn = param_vars[self.layer_w2[l].index()];
                    h.matmul(w).add(h.spmm(&graph.mean_adj).matmul(wn))
                }
            };
            h = h.add_bias(b);
            if l < last {
                h = self.maybe_dropout(h.relu(), mode);
            }
        }

        // --- self-attention graph pooling (top-k, GCN scorer) ---
        let sw = param_vars[self.score_w.index()];
        let sb = param_vars[self.score_b.index()];
        let score = h.matmul(sw).spmm(&graph.adj).add_bias(sb);
        let alpha = score.tanh();
        let idx = top_k_indices(&alpha.value(), self.config.pool_ratio);
        let h_pool = h.select_rows(&idx).mul_col(alpha.select_rows(&idx));

        // --- graph readout ---
        match self.config.readout {
            Readout::Max => h_pool.readout_max(),
            Readout::Mean => h_pool.readout_mean(),
            Readout::Sum => h_pool.readout_sum(),
        }
    }

    fn maybe_dropout<'t>(&self, h: Var<'t>, mode: &mut Mode<'_>) -> Var<'t> {
        match mode {
            Mode::Eval => h,
            Mode::Train(rng) => {
                if self.config.dropout <= 0.0 {
                    return h;
                }
                let (r, c) = h.shape();
                let p = self.config.dropout;
                let mask: Vec<bool> = (0..r * c).map(|_| rng.gen::<f32>() >= p).collect();
                h.dropout(&mask, p)
            }
        }
    }

    /// Tape-free forward pass for inference.
    ///
    /// Produces the same embedding as the tape-backed
    /// [`forward`](Hw2Vec::forward) in [`Mode::Eval`] — bit for bit; the two
    /// paths share every compute kernel — but records nothing, clones no
    /// parameters, and draws all scratch from `ws`, so a warm workspace
    /// serves the whole pass without allocating.
    pub fn forward_infer(&self, graph: &GraphInput, ws: &mut Workspace) -> Vec<f32> {
        let n = graph.node_count();
        let hidden = self.config.hidden;
        let last = self.config.layers - 1;

        // --- message propagation (mirrors `forward`, eval mode) ---
        // First layer exploits one-hot features: X W = W[kinds].
        let mut gathered = ws.acquire(n, hidden);
        self.params
            .get(self.layer_w[0])
            .select_rows_into(&graph.kinds, &mut gathered);
        let mut h = ws.acquire(n, hidden);
        match self.config.conv {
            ConvKind::Gcn => graph.adj.spmm_into(&gathered, &mut h),
            ConvKind::Sage => {
                let mut gn = ws.acquire(n, hidden);
                self.params
                    .get(self.layer_w2[0])
                    .select_rows_into(&graph.kinds, &mut gn);
                graph.mean_adj.spmm_into(&gn, &mut h);
                h.add_assign(&gathered);
                ws.release(gn);
            }
        }
        h.add_row_broadcast_assign(self.params.get(self.layer_b[0]));
        if last > 0 {
            h.map_assign(|v| v.max(0.0));
        }
        let mut tmp = gathered; // recycle: same n x hidden shape
        for l in 1..self.config.layers {
            let w = self.params.get(self.layer_w[l]);
            match self.config.conv {
                ConvKind::Gcn => {
                    h.matmul_into(w, &mut tmp); // tmp = H W
                    graph.adj.spmm_into(&tmp, &mut h); // h = Â (H W)
                }
                ConvKind::Sage => {
                    h.matmul_into(w, &mut tmp); // tmp = H W_self
                    let mut agg = ws.acquire(n, hidden);
                    graph.mean_adj.spmm_into(&h, &mut agg); // agg = mean_N(H)
                    agg.matmul_into(self.params.get(self.layer_w2[l]), &mut h);
                    h.add_assign(&tmp); // h = H W_self + agg W_neigh
                    ws.release(agg);
                }
            }
            h.add_row_broadcast_assign(self.params.get(self.layer_b[l]));
            if l < last {
                h.map_assign(|v| v.max(0.0));
            }
        }

        // --- self-attention graph pooling (top-k, GCN scorer) ---
        let mut score = ws.acquire(n, 1);
        h.matmul_into(self.params.get(self.score_w), &mut score);
        let mut alpha = ws.acquire(n, 1);
        graph.adj.spmm_into(&score, &mut alpha);
        alpha.add_row_broadcast_assign(self.params.get(self.score_b));
        alpha.map_assign(f32::tanh);
        let mut order = ws.acquire_idx();
        let mut idx = ws.acquire_idx();
        top_k_into(&alpha, self.config.pool_ratio, &mut order, &mut idx);

        // --- X_pool = H[idx] ⊙ α[idx], then graph readout ---
        let mut pooled = ws.acquire(idx.len(), hidden);
        for (to, &from) in idx.iter().enumerate() {
            let a = alpha.get(from, 0);
            for (d, &s) in pooled.row_mut(to).iter_mut().zip(h.row(from)) {
                *d = s * a;
            }
        }
        let mut out = ws.acquire(1, hidden);
        readout_into(&pooled, self.config.readout, &mut out);
        let embedding = out.row(0).to_vec();

        ws.release(out);
        ws.release(pooled);
        ws.release(alpha);
        ws.release(score);
        ws.release(tmp);
        ws.release(h);
        ws.release_idx(idx);
        ws.release_idx(order);
        embedding
    }

    /// Computes the graph embedding in inference mode (tape-free, with
    /// per-thread scratch reuse).
    pub fn embed(&self, graph: &GraphInput) -> Vec<f32> {
        EMBED_WS.with(|ws| self.forward_infer(graph, &mut ws.borrow_mut()))
    }

    /// Embeds every graph, fanning chunks across scoped worker threads —
    /// the batched inference entry point. Each worker owns one warm
    /// [`Workspace`], so a batch of `m` graphs costs `m` tape-free forward
    /// passes and at most one buffer warm-up per worker.
    pub fn embed_batch(&self, graphs: &[GraphInput]) -> Vec<Vec<f32>> {
        fan_out(graphs, 0, |_tid, chunk| {
            let mut ws = Workspace::new();
            chunk
                .iter()
                .map(|g| self.forward_infer(g, &mut ws))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Cosine similarity of two graphs' embeddings (Eq. 6), in `[-1, 1]`.
    pub fn similarity(&self, a: &GraphInput, b: &GraphInput) -> f32 {
        crate::trainer::cosine_of(&self.embed(a), &self.embed(b))
    }

    /// Serializes config + weights to the binary artifact format
    /// (see `gnn4ip_tensor`'s serialization module: magic/version/kind
    /// header, little-endian `f32` payload, FNV-1a content checksum).
    ///
    /// Weights round-trip **bit-exactly** through
    /// [`from_bytes`](Hw2Vec::from_bytes): a loaded model produces
    /// bit-identical embeddings.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = BinWriter::new(MODEL_KIND);
        w.len_of(self.config.input_dim);
        w.len_of(self.config.hidden);
        w.len_of(self.config.layers);
        w.f32(self.config.pool_ratio);
        w.f32(self.config.dropout);
        w.str(self.config.readout.tag());
        w.str(self.config.conv.tag());
        w.len_of(self.params.len());
        for (name, m) in self.params.iter() {
            w.str(name);
            w.matrix(m);
        }
        w.finish()
    }

    /// Deserializes a model written by [`Hw2Vec::to_bytes`], validating
    /// the checksum, architecture, parameter names, and shapes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first corrupt or mismatched section.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = BinReader::open(bytes, MODEL_KIND)?;
        let config = Hw2VecConfig {
            input_dim: r.len_of()?,
            hidden: r.len_of()?,
            layers: r.len_of()?,
            pool_ratio: r.f32()?,
            dropout: r.f32()?,
            readout: Readout::from_tag(&r.str()?).ok_or("bad readout tag")?,
            conv: ConvKind::from_tag(&r.str()?).ok_or("bad conv tag")?,
        };
        if config.input_dim == 0 || config.hidden == 0 || config.layers == 0 {
            return Err("model file declares a zero-sized architecture".to_string());
        }
        if !(config.pool_ratio > 0.0 && config.pool_ratio <= 1.0) {
            return Err(format!("bad pool ratio {}", config.pool_ratio));
        }
        // The checksum is integrity, not authentication: bound the declared
        // architecture against the payload that must carry its weights
        // BEFORE allocating anything, so a forged dims field returns Err
        // instead of a multi-exabyte allocation or a near-infinite loop.
        let min_weights = weight_count(&config)
            .ok_or_else(|| "model file declares an overflowing architecture".to_string())?;
        if min_weights.checked_mul(4).is_none_or(|b| b > r.remaining()) {
            return Err(format!(
                "model file declares {min_weights} weights but carries only {} payload bytes",
                r.remaining()
            ));
        }
        let mut model = Hw2Vec::new(config, 0);
        let n = r.len_of()?;
        if n != model.params.len() {
            return Err(format!(
                "parameter count mismatch: file has {n}, architecture needs {}",
                model.params.len()
            ));
        }
        let expected: Vec<(String, (usize, usize))> = model
            .params
            .iter()
            .map(|(name, m)| (name.to_string(), m.shape()))
            .collect();
        for ((name, shape), slot) in expected.iter().zip(model.params.values_mut()) {
            let file_name = r.str()?;
            if &file_name != name {
                return Err(format!(
                    "parameter order mismatch: expected '{name}', file has '{file_name}'"
                ));
            }
            let m = r.matrix()?;
            if m.shape() != *shape {
                return Err(format!(
                    "parameter '{name}' has shape {:?}, architecture needs {shape:?}",
                    m.shape()
                ));
            }
            *slot = m;
        }
        r.done()?;
        Ok(model)
    }

    /// Writes the binary model artifact to `path` (atomic: temp file +
    /// rename).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error as text.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        write_artifact(path.as_ref(), &self.to_bytes())
    }

    /// Loads a binary model artifact written by [`Hw2Vec::save`].
    ///
    /// # Errors
    ///
    /// Returns I/O or format errors as text.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        Self::from_bytes(&read_artifact(path.as_ref())?)
    }

    /// FNV-1a checksum over the serialized config + weights — the
    /// identity an embedding library is pinned to, so stale embeddings
    /// are never served for different weights.
    pub fn weights_checksum(&self) -> u64 {
        fnv1a64(&self.to_bytes())
    }

    /// Serializes config + weights to a self-describing text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("hw2vec-model v1\n");
        s.push_str(&format!(
            "config {} {} {} {} {} {} {}\n",
            self.config.input_dim,
            self.config.hidden,
            self.config.layers,
            self.config.pool_ratio,
            self.config.dropout,
            self.config.readout.tag(),
            self.config.conv.tag()
        ));
        for (name, m) in self.params.iter() {
            s.push_str(&format!("param {name} {} {}\n", m.rows(), m.cols()));
            for r in 0..m.rows() {
                let row: Vec<String> = m.row(r).iter().map(|v| format!("{v:e}")).collect();
                s.push_str(&row.join(" "));
                s.push('\n');
            }
        }
        s
    }

    /// Deserializes a model written by [`Hw2Vec::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty model text")?;
        if header != "hw2vec-model v1" {
            return Err(format!("unsupported model header '{header}'"));
        }
        let cfg_line = lines.next().ok_or("missing config line")?;
        let parts: Vec<&str> = cfg_line.split_whitespace().collect();
        if !(parts.len() == 7 || parts.len() == 8) || parts[0] != "config" {
            return Err(format!("bad config line '{cfg_line}'"));
        }
        let parse_usize = |s: &str| {
            s.parse::<usize>()
                .map_err(|e| format!("bad integer '{s}': {e}"))
        };
        let parse_f32 = |s: &str| {
            s.parse::<f32>()
                .map_err(|e| format!("bad float '{s}': {e}"))
        };
        let config = Hw2VecConfig {
            input_dim: parse_usize(parts[1])?,
            hidden: parse_usize(parts[2])?,
            layers: parse_usize(parts[3])?,
            pool_ratio: parse_f32(parts[4])?,
            dropout: parse_f32(parts[5])?,
            readout: Readout::from_tag(parts[6]).ok_or("bad readout tag")?,
            conv: match parts.get(7) {
                Some(tag) => ConvKind::from_tag(tag).ok_or("bad conv tag")?,
                None => ConvKind::Gcn, // legacy 7-field config
            },
        };
        let mut model = Hw2Vec::new(config, 0);
        // overwrite parameters in order
        let mut param_idx = 0usize;
        let mut lines = lines.peekable();
        while let Some(line) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 || parts[0] != "param" {
                return Err(format!("bad param header '{line}'"));
            }
            let rows = parse_usize(parts[2])?;
            let cols = parse_usize(parts[3])?;
            let mut data = Vec::with_capacity(rows * cols);
            for _ in 0..rows {
                let row = lines.next().ok_or("truncated param matrix")?;
                for tok in row.split_whitespace() {
                    data.push(parse_f32(tok)?);
                }
            }
            if data.len() != rows * cols {
                return Err(format!("param '{}' has wrong element count", parts[1]));
            }
            let mut ordered_ids: Vec<ParamId> = Vec::new();
            for l in 0..model.config.layers {
                ordered_ids.push(model.layer_w[l]);
                if model.config.conv == ConvKind::Sage {
                    ordered_ids.push(model.layer_w2[l]);
                }
                ordered_ids.push(model.layer_b[l]);
            }
            ordered_ids.extend([model.score_w, model.score_b]);
            let id = *ordered_ids
                .get(param_idx)
                .ok_or("more params in file than in architecture")?;
            *model.params.get_mut(id) = Matrix::from_vec(rows, cols, data);
            param_idx += 1;
        }
        Ok(model)
    }
}

/// Total scalar weight count of an architecture, without building it
/// (checked: `None` on overflow). Mirrors the parameter registration in
/// [`Hw2Vec::new`].
fn weight_count(config: &Hw2VecConfig) -> Option<usize> {
    let per_conv = if config.conv == ConvKind::Sage { 2 } else { 1 };
    let mut total = 0usize;
    for l in 0..config.layers {
        let fan_in = if l == 0 {
            config.input_dim
        } else {
            config.hidden
        };
        let w = fan_in.checked_mul(config.hidden)?.checked_mul(per_conv)?;
        total = total.checked_add(w)?.checked_add(config.hidden)?;
    }
    // pool scorer: hidden x 1 weight + 1 x 1 bias
    total.checked_add(config.hidden)?.checked_add(1)
}

/// Indices of the top `ceil(ratio * n)` rows of an `n x 1` score column,
/// by descending score (ties broken by node id for determinism).
pub fn top_k_indices(alpha: &Matrix, ratio: f32) -> Vec<usize> {
    let mut order = Vec::new();
    let mut idx = Vec::new();
    top_k_into(alpha, ratio, &mut order, &mut idx);
    idx
}

/// [`top_k_indices`] into caller-provided (cleared) scratch, so the
/// inference path can reuse index buffers across passes.
fn top_k_into(alpha: &Matrix, ratio: f32, order: &mut Vec<usize>, idx: &mut Vec<usize>) {
    let n = alpha.rows();
    let k = ((ratio * n as f32).ceil() as usize).clamp(1, n);
    order.clear();
    order.extend(0..n);
    order.sort_by(|&a, &b| {
        alpha
            .get(b, 0)
            .partial_cmp(&alpha.get(a, 0))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.clear();
    idx.extend_from_slice(&order[..k]);
    // preserve original node order inside the pool (stability for spmm reuse)
    idx.sort_unstable();
}

/// Writes the graph readout of `pooled` (`k x c`) into the `1 x c` buffer
/// `out`, replicating the column reductions of the tape ops exactly.
fn readout_into(pooled: &Matrix, readout: Readout, out: &mut Matrix) {
    let (rows, cols) = pooled.shape();
    debug_assert!(rows > 0, "readout on empty pool");
    debug_assert_eq!(out.shape(), (1, cols));
    match readout {
        Readout::Max => {
            out.row_mut(0).copy_from_slice(pooled.row(0));
            for r in 1..rows {
                for (m, &v) in out.row_mut(0).iter_mut().zip(pooled.row(r)) {
                    if v > *m {
                        *m = v;
                    }
                }
            }
        }
        Readout::Mean | Readout::Sum => {
            out.as_mut_slice().fill(0.0);
            for r in 0..rows {
                for (s, &v) in out.row_mut(0).iter_mut().zip(pooled.row(r)) {
                    *s += v;
                }
            }
            if readout == Readout::Mean {
                let inv = 1.0 / rows as f32;
                out.map_assign(|v| v * inv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_dfg::{Dfg, NodeKind};

    fn graph(n_extra: usize) -> GraphInput {
        let mut g = Dfg::new("g");
        let y = g.add_node(NodeKind::Output, "y");
        let op = g.add_node(NodeKind::Xor, "xor");
        let a = g.add_node(NodeKind::Input, "a");
        g.add_edge(y, op);
        g.add_edge(op, a);
        let mut prev = a;
        for i in 0..n_extra {
            let w = g.add_node(NodeKind::And, format!("n{i}"));
            g.add_edge(prev, w);
            prev = w;
        }
        g.add_root(y);
        GraphInput::from_dfg(&g)
    }

    #[test]
    fn embedding_has_hidden_width() {
        let m = Hw2Vec::new(Hw2VecConfig::default(), 1);
        let e = m.embed(&graph(5));
        assert_eq!(e.len(), 16);
        assert!(e.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn identical_graphs_have_similarity_one() {
        let m = Hw2Vec::new(Hw2VecConfig::default(), 2);
        let g = graph(4);
        let s = m.similarity(&g, &g);
        assert!((s - 1.0).abs() < 1e-5, "self-similarity {s}");
    }

    #[test]
    fn similarity_is_symmetric() {
        let m = Hw2Vec::new(Hw2VecConfig::default(), 3);
        let (a, b) = (graph(2), graph(9));
        assert!((m.similarity(&a, &b) - m.similarity(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn embedding_is_permutation_invariant() {
        // Build the same graph with nodes declared in a different order: the
        // readout over GCN features must not change.
        let m = Hw2Vec::new(Hw2VecConfig::default(), 4);
        let mut g1 = Dfg::new("p1");
        let y1 = g1.add_node(NodeKind::Output, "y");
        let op1 = g1.add_node(NodeKind::Xor, "x");
        let a1 = g1.add_node(NodeKind::Input, "a");
        g1.add_edge(y1, op1);
        g1.add_edge(op1, a1);
        g1.add_root(y1);

        let mut g2 = Dfg::new("p2");
        let a2 = g2.add_node(NodeKind::Input, "a");
        let op2 = g2.add_node(NodeKind::Xor, "x");
        let y2 = g2.add_node(NodeKind::Output, "y");
        g2.add_edge(y2, op2);
        g2.add_edge(op2, a2);
        g2.add_root(y2);

        let e1 = m.embed(&GraphInput::from_dfg(&g1));
        let e2 = m.embed(&GraphInput::from_dfg(&g2));
        for (x, y) in e1.iter().zip(&e2) {
            assert!((x - y).abs() < 1e-5, "{e1:?} vs {e2:?}");
        }
    }

    #[test]
    fn top_k_keeps_best_scores() {
        let alpha = Matrix::from_vec(4, 1, vec![0.1, 0.9, -0.5, 0.4]);
        let idx = top_k_indices(&alpha, 0.5);
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn top_k_keeps_at_least_one() {
        let alpha = Matrix::from_vec(1, 1, vec![0.0]);
        assert_eq!(top_k_indices(&alpha, 0.01), vec![0]);
    }

    #[test]
    fn readout_variants_differ() {
        let g = graph(6);
        let mk = |ro| {
            let cfg = Hw2VecConfig {
                readout: ro,
                ..Hw2VecConfig::default()
            };
            Hw2Vec::new(cfg, 5).embed(&g)
        };
        let (mx, mean, sum) = (mk(Readout::Max), mk(Readout::Mean), mk(Readout::Sum));
        assert_ne!(mx, mean);
        assert_ne!(mean, sum);
    }

    #[test]
    fn binary_roundtrip_is_bit_exact() {
        for conv in [ConvKind::Gcn, ConvKind::Sage] {
            let cfg = Hw2VecConfig {
                conv,
                ..Hw2VecConfig::default()
            };
            let m = Hw2Vec::new(cfg, 51);
            let bytes = m.to_bytes();
            let m2 = Hw2Vec::from_bytes(&bytes).expect("loads");
            assert_eq!(m2.to_bytes(), bytes, "save→load→save drifted");
            let g = graph(6);
            let (e1, e2) = (m.embed(&g), m2.embed(&g));
            let b1: Vec<u32> = e1.iter().map(|v| v.to_bits()).collect();
            let b2: Vec<u32> = e2.iter().map(|v| v.to_bits()).collect();
            assert_eq!(b1, b2, "loaded model embeds differently");
            assert_eq!(m.weights_checksum(), m2.weights_checksum());
        }
    }

    #[test]
    fn from_bytes_rejects_corruption_and_mismatch() {
        let m = Hw2Vec::new(Hw2VecConfig::default(), 52);
        let bytes = m.to_bytes();
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 1;
        assert!(Hw2Vec::from_bytes(&flipped).is_err(), "corruption accepted");
        assert!(Hw2Vec::from_bytes(&[]).is_err());
        assert!(Hw2Vec::from_bytes(b"not an artifact at all").is_err());
    }

    #[test]
    fn save_load_file_roundtrip() {
        let m = Hw2Vec::new(Hw2VecConfig::default(), 53);
        let dir = std::env::temp_dir().join(format!("gnn4ip-model-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.bin");
        m.save(&path).expect("saves");
        let m2 = Hw2Vec::load(&path).expect("loads");
        assert_eq!(m2.to_bytes(), m.to_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_load_roundtrip_preserves_embeddings() {
        let m = Hw2Vec::new(Hw2VecConfig::default(), 6);
        let g = graph(3);
        let text = m.to_text();
        let m2 = Hw2Vec::from_text(&text).expect("loads");
        assert_eq!(m.embed(&g), m2.embed(&g));
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Hw2Vec::from_text("not a model").is_err());
        assert!(Hw2Vec::from_text("hw2vec-model v1\nconfig oops").is_err());
    }

    #[test]
    fn train_mode_dropout_changes_activations() {
        let cfg = Hw2VecConfig {
            dropout: 0.5,
            ..Hw2VecConfig::default()
        };
        let m = Hw2Vec::new(cfg, 7);
        let g = graph(10);
        let tape = Tape::new();
        let vars = m.params().inject(&tape);
        let mut rng = StdRng::seed_from_u64(1);
        let h_train = m
            .forward(&tape, &vars, &g, &mut Mode::Train(&mut rng))
            .value();
        let h_eval = m.forward(&tape, &vars, &g, &mut Mode::Eval).value();
        assert_ne!(h_train, h_eval);
    }

    #[test]
    fn sage_conv_embeds_and_roundtrips() {
        let cfg = Hw2VecConfig {
            conv: ConvKind::Sage,
            ..Hw2VecConfig::default()
        };
        let m = Hw2Vec::new(cfg, 21);
        let g = graph(5);
        let e = m.embed(&g);
        assert_eq!(e.len(), 16);
        assert!(e.iter().all(|v| v.is_finite()));
        let m2 = Hw2Vec::from_text(&m.to_text()).expect("loads");
        assert_eq!(m2.config().conv, ConvKind::Sage);
        assert_eq!(m.embed(&g), m2.embed(&g));
    }

    #[test]
    fn sage_and_gcn_differ() {
        let g = graph(6);
        let gcn = Hw2Vec::new(Hw2VecConfig::default(), 22).embed(&g);
        let sage = Hw2Vec::new(
            Hw2VecConfig {
                conv: ConvKind::Sage,
                ..Hw2VecConfig::default()
            },
            22,
        )
        .embed(&g);
        assert_ne!(gcn, sage);
    }

    #[test]
    fn legacy_config_line_defaults_to_gcn() {
        let m = Hw2Vec::new(Hw2VecConfig::default(), 23);
        // strip the conv tag to emulate a v-early model file
        let text = m.to_text().replacen(" gcn\n", "\n", 1);
        let m2 = Hw2Vec::from_text(&text).expect("loads legacy");
        assert_eq!(m2.config().conv, ConvKind::Gcn);
    }

    /// Tape-backed eval-mode embedding, for equivalence tests.
    fn embed_via_tape(m: &Hw2Vec, g: &GraphInput) -> Vec<f32> {
        let tape = Tape::new();
        let vars = m.params().inject(&tape);
        m.forward(&tape, &vars, g, &mut Mode::Eval)
            .value()
            .into_vec()
    }

    #[test]
    fn forward_infer_matches_tape_forward_bitwise() {
        for conv in [ConvKind::Gcn, ConvKind::Sage] {
            for readout in [Readout::Max, Readout::Mean, Readout::Sum] {
                for layers in [1usize, 2, 3] {
                    let cfg = Hw2VecConfig {
                        conv,
                        readout,
                        layers,
                        ..Hw2VecConfig::default()
                    };
                    let m = Hw2Vec::new(cfg, 41);
                    let g = graph(7);
                    let mut ws = Workspace::new();
                    let fast = m.forward_infer(&g, &mut ws);
                    let slow = embed_via_tape(&m, &g);
                    assert_eq!(
                        fast, slow,
                        "mismatch for {conv:?}/{readout:?}/{layers} layers"
                    );
                }
            }
        }
    }

    #[test]
    fn forward_infer_reuses_workspace_without_allocating() {
        let m = Hw2Vec::new(Hw2VecConfig::default(), 42);
        let g = graph(20);
        let mut ws = Workspace::new();
        let first = m.forward_infer(&g, &mut ws);
        let warm = ws.allocations();
        for _ in 0..5 {
            assert_eq!(m.forward_infer(&g, &mut ws), first);
        }
        // smaller graph must also be served from the warm pool
        let _ = m.forward_infer(&graph(3), &mut ws);
        assert_eq!(ws.allocations(), warm, "warm workspace re-allocated");
    }

    #[test]
    fn embed_batch_matches_sequential_embed() {
        let m = Hw2Vec::new(Hw2VecConfig::default(), 43);
        let graphs: Vec<GraphInput> = (0..13).map(|i| graph(i % 5)).collect();
        let batch = m.embed_batch(&graphs);
        assert_eq!(batch.len(), graphs.len());
        for (b, g) in batch.iter().zip(&graphs) {
            assert_eq!(b, &m.embed(g));
        }
    }

    #[test]
    fn single_layer_config_works() {
        let cfg = Hw2VecConfig {
            layers: 1,
            ..Hw2VecConfig::default()
        };
        let m = Hw2Vec::new(cfg, 8);
        assert_eq!(m.embed(&graph(2)).len(), 16);
    }
}
