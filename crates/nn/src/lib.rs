//! # gnn4ip-nn
//!
//! The hw2vec graph neural network of the GNN4IP paper (Fig. 3): stacked
//! graph-convolution layers (Eq. 5), self-attention graph pooling with top-k
//! filtering, a graph readout, cosine similarity (Eq. 6), and the
//! cosine-embedding loss (Eq. 7) with a siamese pair [`train`]er.
//!
//! # Examples
//!
//! Embed a circuit and compare two designs:
//!
//! ```
//! use gnn4ip_dfg::graph_from_verilog;
//! use gnn4ip_nn::{GraphInput, Hw2Vec, Hw2VecConfig};
//!
//! let inv = graph_from_verilog(
//!     "module inv(input a, output y); assign y = ~a; endmodule", None)?;
//! let buf = graph_from_verilog(
//!     "module pass(input a, output y); assign y = a; endmodule", None)?;
//! let model = Hw2Vec::new(Hw2VecConfig::default(), 42);
//! let s = model.similarity(&GraphInput::from_dfg(&inv), &GraphInput::from_dfg(&buf));
//! assert!((-1.0..=1.0).contains(&s));
//! # Ok::<(), gnn4ip_hdl::ParseVerilogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod graph_input;
mod loss;
mod model;
mod trainer;

pub use engine::{EngineConfig, LrSchedule, TrainEngine, CHECKPOINT_KIND};
pub use gnn4ip_tensor::{fan_out, worker_count};
pub use graph_input::GraphInput;
pub use loss::{cosine_embedding_loss, PairLabel, DEFAULT_MARGIN};
pub use model::{top_k_indices, ConvKind, Hw2Vec, Hw2VecConfig, Mode, Readout, MODEL_KIND};
pub use trainer::{
    cosine_of, embed_all, score_pairs, train, train_with_validation, tune_delta, validation_loss,
    EpochStats, OptimizerKind, PairSample, TrainConfig, TrainReport,
};

// Re-exported so batched-inference callers need only this crate.
pub use gnn4ip_tensor::Workspace;
