//! Shared thread fan-out for the trainer and batched inference.
//!
//! Both the minibatch gradient loop and
//! [`Hw2Vec::embed_batch`](crate::Hw2Vec::embed_batch) split a slice of
//! independent work items across scoped worker threads. The chunking policy
//! lives here, once, so the two paths cannot drift.

/// Splits `items` into at most `threads` contiguous chunks and runs `f` on
/// each chunk from a scoped worker thread, returning per-chunk results in
/// chunk order.
///
/// `f` receives `(chunk_index, chunk)`; the chunk index is stable and
/// deterministic, so callers may fold it into per-worker RNG seeds.
/// `threads == 0` means one chunk per available core. A single-chunk fan-out
/// runs inline on the caller's thread — no spawn overhead for small inputs.
///
/// # Panics
///
/// Propagates a panic from any worker.
///
/// # Examples
///
/// ```
/// use gnn4ip_nn::fan_out;
///
/// let squares: Vec<Vec<i32>> = fan_out(&[1, 2, 3, 4, 5], 2, |_tid, chunk| {
///     chunk.iter().map(|x| x * x).collect()
/// });
/// let flat: Vec<i32> = squares.into_iter().flatten().collect();
/// assert_eq!(flat, vec![1, 4, 9, 16, 25]);
/// ```
pub fn fan_out<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    let chunk = items.len().div_ceil(threads).max(1);
    if chunk >= items.len() {
        return vec![f(0, items)];
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(tid, c)| scope.spawn(move || f(tid, c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan-out worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_across_chunks() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 3, 8, 0] {
            let flat: Vec<usize> = fan_out(&items, threads, |_t, c| c.to_vec())
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    fn chunk_count_never_exceeds_threads() {
        let items: Vec<u8> = vec![0; 50];
        for threads in 1..=8 {
            let n_chunks = fan_out(&items, threads, |_t, _c| ()).len();
            assert!(
                n_chunks <= threads,
                "{n_chunks} chunks for {threads} threads"
            );
        }
    }

    #[test]
    fn chunk_indices_are_sequential() {
        let items: Vec<u8> = vec![0; 40];
        let tids: Vec<usize> = fan_out(&items, 4, |tid, _c| tid);
        assert_eq!(tids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let out: Vec<()> = fan_out::<u8, (), _>(&[], 4, |_t, _c| ());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let flat: Vec<i32> = fan_out(&[1, 2], 16, |_t, c| c.to_vec())
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(flat, vec![1, 2]);
    }
}
