//! Siamese pair training of hw2vec (Algorithm 1 + Eq. 7).
//!
//! Both sides of a pair share the same weights; each training step computes
//! the cosine similarity of the two graph embeddings, applies the
//! cosine-embedding loss, and updates the shared parameters with batch
//! gradient descent (batch 64, lr 0.001 in the paper). Pairs inside a batch
//! are independent, so their backward passes run on worker threads.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gnn4ip_tensor::{Adam, GradAccum, Matrix, Optimizer, Sgd, Tape};

use crate::graph_input::GraphInput;
use crate::loss::{cosine_embedding_loss, PairLabel, DEFAULT_MARGIN};
use crate::model::{Hw2Vec, Mode};
use gnn4ip_tensor::fan_out;

/// One labeled training pair, indexing into a shared graph list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairSample {
    /// Index of the first graph.
    pub a: usize,
    /// Index of the second graph.
    pub b: usize,
    /// Similar (piracy) or different.
    pub label: PairLabel,
}

/// Optimizer selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerKind {
    /// Plain batch gradient descent (the paper's stated algorithm).
    Sgd,
    /// Adam — converges in far fewer epochs; the practical default.
    #[default]
    Adam,
}

/// Training hyper-parameters. Defaults mirror §IV of the paper
/// (batch 64, lr 0.001, margin 0.5).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Number of passes over the pair list.
    pub epochs: usize,
    /// Cosine-embedding-loss margin.
    pub margin: f32,
    /// Shuffling / dropout seed.
    pub seed: u64,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Global gradient-norm clip (0 disables). Guards the cosine loss's
    /// steep gradients near zero-norm embeddings.
    pub grad_clip: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            batch_size: 64,
            lr: 1e-3,
            epochs: 20,
            margin: DEFAULT_MARGIN,
            seed: 42,
            optimizer: OptimizerKind::Adam,
            threads: 0,
            grad_clip: 5.0,
        }
    }
}

/// Scales gradients so their global L2 norm does not exceed `max_norm`.
pub(crate) fn clip_global_norm(grads: &mut [Matrix], max_norm: f32) {
    if max_norm <= 0.0 {
        return;
    }
    let total: f32 = grads.iter().map(|g| g.norm().powi(2)).sum::<f32>().sqrt();
    if total > max_norm {
        let scale = max_norm / total;
        for g in grads.iter_mut() {
            *g = g.scale(scale);
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch number (0-based).
    pub epoch: usize,
    /// Mean cosine-embedding loss over the epoch.
    pub mean_loss: f32,
    /// Mean validation loss, when a validation set was supplied.
    pub val_loss: Option<f32>,
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    /// Loss trajectory, one entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// Final mean loss (`NaN` if no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::NAN, |e| e.mean_loss)
    }
}

/// Trains `model` on labeled pairs over `graphs`.
///
/// # Panics
///
/// Panics if a pair indexes outside `graphs` or if `pairs` is empty.
pub fn train(
    model: &mut Hw2Vec,
    graphs: &[GraphInput],
    pairs: &[PairSample],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!pairs.is_empty(), "no training pairs");
    for p in pairs {
        assert!(
            p.a < graphs.len() && p.b < graphs.len(),
            "pair out of range"
        );
    }
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.threads
    };
    let mut sgd;
    let mut adam;
    let optimizer: &mut dyn Optimizer = match cfg.optimizer {
        OptimizerKind::Sgd => {
            sgd = Sgd::new(cfg.lr);
            &mut sgd
        }
        OptimizerKind::Adam => {
            adam = Adam::new(cfg.lr);
            &mut adam
        }
    };
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    let mut shuffle_rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = TrainReport::default();
    for epoch in 0..cfg.epochs {
        order.shuffle(&mut shuffle_rng);
        let mut epoch_loss = 0.0f64;
        let mut seen = 0usize;
        for (batch_no, batch) in order.chunks(cfg.batch_size).enumerate() {
            let (mut grads, loss_sum) =
                batch_gradients(model, graphs, pairs, batch, cfg, epoch, batch_no, threads);
            clip_global_norm(&mut grads, cfg.grad_clip);
            optimizer.step(model.params_mut(), &grads);
            epoch_loss += loss_sum as f64;
            seen += batch.len();
        }
        report.epochs.push(EpochStats {
            epoch,
            mean_loss: (epoch_loss / seen.max(1) as f64) as f32,
            val_loss: None,
        });
    }
    report
}

/// Like [`train`], but evaluates `val_pairs` after every epoch and stops
/// early when the validation loss has not improved for `patience` epochs,
/// restoring the best-seen parameters.
///
/// # Panics
///
/// Panics under the same conditions as [`train`], or if `val_pairs` is
/// empty or `patience` is zero.
pub fn train_with_validation(
    model: &mut Hw2Vec,
    graphs: &[GraphInput],
    train_pairs: &[PairSample],
    val_pairs: &[PairSample],
    cfg: &TrainConfig,
    patience: usize,
) -> TrainReport {
    assert!(!val_pairs.is_empty(), "no validation pairs");
    assert!(patience > 0, "patience must be positive");
    let mut report = TrainReport::default();
    let mut best_loss = f32::INFINITY;
    let mut best_params = model.params().clone();
    let mut since_best = 0usize;
    for epoch in 0..cfg.epochs {
        let one = TrainConfig {
            epochs: 1,
            seed: cfg.seed.wrapping_add(epoch as u64),
            ..cfg.clone()
        };
        let partial = train(model, graphs, train_pairs, &one);
        let val = validation_loss(model, graphs, val_pairs, cfg.margin);
        report.epochs.push(EpochStats {
            epoch,
            mean_loss: partial.epochs[0].mean_loss,
            val_loss: Some(val),
        });
        if val < best_loss {
            best_loss = val;
            best_params = model.params().clone();
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= patience {
                break;
            }
        }
    }
    *model.params_mut() = best_params;
    report
}

/// Mean cosine-embedding loss of a pair set in inference mode.
pub fn validation_loss(
    model: &Hw2Vec,
    graphs: &[GraphInput],
    pairs: &[PairSample],
    margin: f32,
) -> f32 {
    let scores = score_pairs(model, graphs, pairs);
    let total: f32 = scores
        .iter()
        .zip(pairs)
        .map(|(&s, p)| match p.label {
            PairLabel::Similar => 1.0 - s,
            PairLabel::Different => (s - margin).max(0.0),
        })
        .sum();
    total / pairs.len().max(1) as f32
}

/// Computes mean gradients and summed loss for one batch, fanning pairs out
/// across worker threads.
#[allow(clippy::too_many_arguments)]
fn batch_gradients(
    model: &Hw2Vec,
    graphs: &[GraphInput],
    pairs: &[PairSample],
    batch: &[usize],
    cfg: &TrainConfig,
    epoch: usize,
    batch_no: usize,
    threads: usize,
) -> (Vec<Matrix>, f32) {
    let results: Vec<(GradAccum, f32)> = fan_out(batch, threads, |tid, chunk| {
        let mut acc = GradAccum::zeros_like(model.params());
        let mut loss_sum = 0.0f32;
        // per-worker seed stream: `tid` is dense in 0..worker_count(..)
        // (fan_out's contract), so streams never alias within one batch
        let mut rng = StdRng::seed_from_u64(
            cfg.seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((epoch as u64) << 32)
                .wrapping_add((batch_no as u64) << 16)
                .wrapping_add(tid as u64),
        );
        for &pi in chunk.iter() {
            let pair = pairs[pi];
            let tape = Tape::new();
            let vars = model.params().inject(&tape);
            let ha = model.forward(&tape, &vars, &graphs[pair.a], &mut Mode::Train(&mut rng));
            let hb = model.forward(&tape, &vars, &graphs[pair.b], &mut Mode::Train(&mut rng));
            let yhat = ha.cosine(hb);
            let loss = cosine_embedding_loss(yhat, pair.label, cfg.margin);
            loss_sum += loss.item();
            let grads = tape.backward(loss);
            acc.absorb(&grads, &vars);
        }
        (acc, loss_sum)
    });
    let mut sums: Vec<Matrix> = GradAccum::zeros_like(model.params()).means();
    let mut total = 0usize;
    let mut loss_total = 0.0f32;
    for (acc, loss) in &results {
        let means = acc.means();
        for (s, m) in sums.iter_mut().zip(&means) {
            s.add_scaled_assign(m, acc.count() as f32);
        }
        total += acc.count();
        loss_total += loss;
    }
    let inv = if total == 0 { 0.0 } else { 1.0 / total as f32 };
    for s in &mut sums {
        *s = s.scale(inv);
    }
    (sums, loss_total)
}

/// Similarity scores for a set of pairs (inference mode), in pair order.
pub fn score_pairs(model: &Hw2Vec, graphs: &[GraphInput], pairs: &[PairSample]) -> Vec<f32> {
    let embeddings: Vec<Vec<f32>> = embed_all(model, graphs);
    pairs
        .iter()
        .map(|p| cosine_of(&embeddings[p.a], &embeddings[p.b]))
        .collect()
}

/// Embeds every graph (parallel across available cores).
///
/// Alias for [`Hw2Vec::embed_batch`], kept for the evaluation-path callers.
pub fn embed_all(model: &Hw2Vec, graphs: &[GraphInput]) -> Vec<Vec<f32>> {
    model.embed_batch(graphs)
}

/// Plain cosine similarity of two embedding vectors.
pub fn cosine_of(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    dot / (na * nb)
}

/// Tunes the decision boundary δ on labeled scores by maximizing accuracy
/// (paper §IV-D: "we have tuned the δ to achieve maximum accuracy").
///
/// Returns `(delta, accuracy_at_delta)`.
///
/// # Panics
///
/// Panics if `scores` and `labels` differ in length or are empty.
pub fn tune_delta(scores: &[f32], labels: &[PairLabel]) -> (f32, f32) {
    assert_eq!(scores.len(), labels.len(), "scores/labels mismatch");
    assert!(!scores.is_empty(), "cannot tune on empty data");
    let mut sorted: Vec<f32> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    sorted.dedup();
    let mut candidates = vec![-1.0f32];
    for w in sorted.windows(2) {
        candidates.push((w[0] + w[1]) / 2.0);
    }
    candidates.push(1.0);
    let mut best = (0.0f32, -1.0f32);
    for &delta in &candidates {
        let correct = scores
            .iter()
            .zip(labels)
            .filter(|(&s, &l)| (s > delta) == (l == PairLabel::Similar))
            .count();
        let acc = correct as f32 / scores.len() as f32;
        if acc > best.1 {
            best = (delta, acc);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hw2VecConfig;
    use gnn4ip_dfg::{Dfg, NodeKind};

    /// Two structurally different graph families.
    fn family_a(variant: u64) -> GraphInput {
        let mut g = Dfg::new(format!("a{variant}"));
        let y = g.add_node(NodeKind::Output, "y");
        let mut prev = y;
        for i in 0..4 + (variant % 3) {
            let op = g.add_node(NodeKind::Xor, format!("x{i}"));
            g.add_edge(prev, op);
            prev = op;
        }
        let a = g.add_node(NodeKind::Input, "a");
        g.add_edge(prev, a);
        g.add_root(y);
        GraphInput::from_dfg(&g)
    }

    fn family_b(variant: u64) -> GraphInput {
        let mut g = Dfg::new(format!("b{variant}"));
        let y = g.add_node(NodeKind::Output, "y");
        let add = g.add_node(NodeKind::Add, "add");
        g.add_edge(y, add);
        for i in 0..3 + (variant % 2) {
            let inp = g.add_node(NodeKind::Input, format!("i{i}"));
            let m = g.add_node(NodeKind::Mul, format!("m{i}"));
            g.add_edge(add, m);
            g.add_edge(m, inp);
        }
        g.add_root(y);
        GraphInput::from_dfg(&g)
    }

    fn toy_dataset() -> (Vec<GraphInput>, Vec<PairSample>) {
        let graphs: Vec<GraphInput> = (0..4).map(family_a).chain((0..4).map(family_b)).collect();
        let mut pairs = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                pairs.push(PairSample {
                    a: i,
                    b: j,
                    label: PairLabel::Similar,
                });
                pairs.push(PairSample {
                    a: 4 + i,
                    b: 4 + j,
                    label: PairLabel::Similar,
                });
            }
        }
        for i in 0..4 {
            for j in 0..4 {
                pairs.push(PairSample {
                    a: i,
                    b: 4 + j,
                    label: PairLabel::Different,
                });
            }
        }
        (graphs, pairs)
    }

    #[test]
    fn training_reduces_loss() {
        let (graphs, pairs) = toy_dataset();
        let mut model = Hw2Vec::new(Hw2VecConfig::default(), 11);
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 8,
            lr: 0.01,
            threads: 2,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &graphs, &pairs, &cfg);
        let first = report.epochs.first().expect("epochs").mean_loss;
        let last = report.final_loss();
        assert!(
            last < first * 0.8,
            "loss did not drop: {first} -> {last} ({:?})",
            report.epochs
        );
    }

    #[test]
    fn trained_model_separates_families() {
        let (graphs, pairs) = toy_dataset();
        let mut model = Hw2Vec::new(Hw2VecConfig::default(), 12);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 8,
            lr: 0.01,
            threads: 2,
            ..TrainConfig::default()
        };
        train(&mut model, &graphs, &pairs, &cfg);
        let scores = score_pairs(&model, &graphs, &pairs);
        let labels: Vec<PairLabel> = pairs.iter().map(|p| p.label).collect();
        let (_, acc) = tune_delta(&scores, &labels);
        assert!(acc >= 0.9, "tuned accuracy {acc}");
    }

    #[test]
    fn score_pairs_matches_direct_similarity() {
        let (graphs, _) = toy_dataset();
        let model = Hw2Vec::new(Hw2VecConfig::default(), 13);
        let pairs = [PairSample {
            a: 0,
            b: 5,
            label: PairLabel::Different,
        }];
        let via_pairs = score_pairs(&model, &graphs, &pairs)[0];
        let direct = model.similarity(&graphs[0], &graphs[5]);
        assert!((via_pairs - direct).abs() < 1e-5);
    }

    #[test]
    fn tune_delta_perfectly_separable() {
        let scores = [0.9, 0.8, -0.1, -0.3];
        let labels = [
            PairLabel::Similar,
            PairLabel::Similar,
            PairLabel::Different,
            PairLabel::Different,
        ];
        let (delta, acc) = tune_delta(&scores, &labels);
        assert_eq!(acc, 1.0);
        assert!(delta > -0.1 && delta < 0.8, "delta {delta}");
    }

    #[test]
    fn cosine_of_unit_vectors() {
        assert!((cosine_of(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_of(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine_of(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let (graphs, pairs) = toy_dataset();
        let run = || {
            let mut m = Hw2Vec::new(Hw2VecConfig::default(), 14);
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 4,
                threads: 1,
                ..TrainConfig::default()
            };
            train(&mut m, &graphs, &pairs, &cfg);
            m.embed(&graphs[0])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn early_stopping_restores_best_params() {
        let (graphs, pairs) = toy_dataset();
        let (train_p, val_p) = pairs.split_at(pairs.len() - 8);
        let mut model = Hw2Vec::new(Hw2VecConfig::default(), 31);
        let cfg = TrainConfig {
            epochs: 25,
            batch_size: 8,
            lr: 0.02,
            threads: 1,
            ..TrainConfig::default()
        };
        let report = train_with_validation(&mut model, &graphs, train_p, val_p, &cfg, 4);
        assert!(!report.epochs.is_empty());
        assert!(report.epochs.iter().all(|e| e.val_loss.is_some()));
        // the restored model's validation loss equals the best seen
        let final_val = validation_loss(&model, &graphs, val_p, cfg.margin);
        let best_seen = report
            .epochs
            .iter()
            .filter_map(|e| e.val_loss)
            .fold(f32::INFINITY, f32::min);
        assert!(
            (final_val - best_seen).abs() < 1e-4,
            "restored {final_val} vs best {best_seen}"
        );
    }

    #[test]
    fn early_stopping_can_stop_before_epoch_budget() {
        let (graphs, pairs) = toy_dataset();
        let (train_p, val_p) = pairs.split_at(pairs.len() - 8);
        let mut model = Hw2Vec::new(Hw2VecConfig::default(), 32);
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 8,
            lr: 0.05,
            threads: 1,
            ..TrainConfig::default()
        };
        let report = train_with_validation(&mut model, &graphs, train_p, val_p, &cfg, 2);
        assert!(
            report.epochs.len() < 200,
            "never stopped early ({} epochs)",
            report.epochs.len()
        );
    }

    #[test]
    #[should_panic(expected = "no training pairs")]
    fn empty_pairs_panics() {
        let (graphs, _) = toy_dataset();
        let mut model = Hw2Vec::new(Hw2VecConfig::default(), 15);
        train(&mut model, &graphs, &[], &TrainConfig::default());
    }
}
