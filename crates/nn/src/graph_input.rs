//! Model-ready graph representation.
//!
//! hw2vec consumes a graph `G` as `(X, A)`: `X` the one-hot node features and
//! `A` the adjacency information. [`GraphInput`] stores the one-hot rows
//! implicitly (as kind indices — `X · W` is then a row gather of `W`) and the
//! symmetric-normalized adjacency `Â` of Eq. 5 explicitly.

use gnn4ip_dfg::{Dfg, VOCAB_SIZE};
use gnn4ip_tensor::{mean_adjacency, normalized_adjacency, CsrMatrix};

/// A graph prepared for the hw2vec model.
#[derive(Debug, Clone)]
pub struct GraphInput {
    /// Design name (for reports; not a model feature).
    pub name: String,
    /// Per-node one-hot index into the node-kind vocabulary.
    pub kinds: Vec<usize>,
    /// Raw (deduplicated, undirected-ized during normalization) edges.
    pub edges: Vec<(usize, usize)>,
    /// `Â = D^-1/2 (A + I) D^-1/2` (GCN propagation operator, Eq. 5).
    pub adj: CsrMatrix,
    /// `D^-1 A` neighbor-mean operator (SAGE-style AGGREGATE, Eq. 1).
    pub mean_adj: CsrMatrix,
}

impl GraphInput {
    /// Prepares a DFG for the model.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no nodes (an empty design cannot be embedded).
    pub fn from_dfg(g: &Dfg) -> Self {
        assert!(g.node_count() > 0, "cannot embed an empty graph");
        let kinds = g.kind_indices();
        debug_assert!(kinds.iter().all(|&k| k < VOCAB_SIZE));
        let edges = g.edges().to_vec();
        let adj = normalized_adjacency(g.node_count(), &edges);
        let mean_adj = mean_adjacency(g.node_count(), &edges);
        Self {
            name: g.name().to_string(),
            kinds,
            edges,
            adj,
            mean_adj,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Recomputes the normalized adjacency of the subgraph induced by `idx`
    /// (the `A_pool` step of self-attention pooling).
    pub fn pooled_adjacency(&self, idx: &[usize]) -> CsrMatrix {
        let mut pos = vec![usize::MAX; self.node_count()];
        for (new, &old) in idx.iter().enumerate() {
            pos[old] = new;
        }
        let sub_edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter_map(|&(f, t)| {
                let (nf, nt) = (pos[f], pos[t]);
                (nf != usize::MAX && nt != usize::MAX).then_some((nf, nt))
            })
            .collect();
        normalized_adjacency(idx.len(), &sub_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn4ip_dfg::NodeKind;

    fn tiny_dfg() -> Dfg {
        let mut g = Dfg::new("tiny");
        let y = g.add_node(NodeKind::Output, "y");
        let op = g.add_node(NodeKind::Xor, "xor");
        let a = g.add_node(NodeKind::Input, "a");
        let b = g.add_node(NodeKind::Input, "b");
        g.add_edge(y, op);
        g.add_edge(op, a);
        g.add_edge(op, b);
        g.add_root(y);
        g
    }

    #[test]
    fn from_dfg_builds_normalized_adjacency() {
        let gi = GraphInput::from_dfg(&tiny_dfg());
        assert_eq!(gi.node_count(), 4);
        let d = gi.adj.to_dense();
        assert!(d.is_finite());
        // symmetric because propagation treats edges as undirected
        assert!(d.approx_eq(&d.transpose(), 1e-6));
    }

    #[test]
    fn pooled_adjacency_restricts_to_subset() {
        let gi = GraphInput::from_dfg(&tiny_dfg());
        let sub = gi.pooled_adjacency(&[0, 1]);
        assert_eq!(sub.rows(), 2);
        let d = sub.to_dense();
        // edge y-op survives, with self loops
        assert!(d.get(0, 1) > 0.0);
        assert!(d.get(0, 0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_panics() {
        let _ = GraphInput::from_dfg(&Dfg::new("void"));
    }
}
