//! Training engine v2: mini-batch data-parallel training with gradient
//! accumulation, an LR schedule, early stopping, and checkpoint/resume.
//!
//! The v1 [`train`](crate::train) loop opens one tape **per pair** —
//! every pair re-clones all parameters onto a fresh tape and runs its own
//! backward traversal. The engine instead records each worker's share of
//! a mini-batch on **one shared tape**: parameters are injected once per
//! worker per micro-batch, pair losses are summed into a single root, and
//! one backward pass yields the summed gradients. That removes the
//! per-pair parameter clones and backward bookkeeping even on a single
//! thread; with `threads > 1` the micro-batch additionally fans out
//! across workers (per-thread tapes, summed gradients).
//!
//! Every per-epoch decision (shuffle order, dropout masks) is a pure
//! function of `(seed, epoch, batch, worker)`, so a run resumed from a
//! checkpoint continues **bit-exactly** where the original left off —
//! same loss trajectory, same final weights — as long as the engine
//! config (including `threads`) is unchanged. Checkpoints carry the
//! model, the full optimizer state (Adam moments included), the report
//! so far, and the early-stopping bookkeeping.

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gnn4ip_tensor::{
    fnv1a64, read_adam, read_artifact, read_sgd, write_adam, write_artifact, write_sgd, Adam,
    BinReader, BinWriter, Matrix, Optimizer, ParamStore, Sgd, Tape, Var, OPT_TAG_ADAM, OPT_TAG_SGD,
};

use crate::graph_input::GraphInput;
use crate::loss::cosine_embedding_loss;
use crate::model::{Hw2Vec, Mode};
use crate::trainer::{
    clip_global_norm, validation_loss, EpochStats, OptimizerKind, PairSample, TrainConfig,
    TrainReport,
};
use gnn4ip_tensor::fan_out;

/// Kind tag of the binary checkpoint artifact.
pub const CHECKPOINT_KIND: &str = "gnn4ip-checkpoint";

/// Learning-rate schedule applied on top of the base LR each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LrSchedule {
    /// Fixed learning rate (the paper's setting).
    #[default]
    Constant,
    /// Multiply the LR by `factor` every `every` epochs.
    StepDecay {
        /// Epochs between decays.
        every: usize,
        /// Multiplicative decay per step (e.g. 0.5).
        factor: f32,
    },
    /// Cosine annealing from the base LR down to `min_lr` over the
    /// configured epoch budget.
    CosineAnneal {
        /// Final learning rate at the last epoch.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` out of `total_epochs`.
    pub fn lr_at(self, base: f32, epoch: usize, total_epochs: usize) -> f32 {
        match self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every, factor } => {
                base * factor.powi((epoch / every.max(1)) as i32)
            }
            LrSchedule::CosineAnneal { min_lr } => {
                if total_epochs <= 1 {
                    base
                } else {
                    let t = epoch as f32 / (total_epochs - 1) as f32;
                    min_lr + 0.5 * (base - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
                }
            }
        }
    }

    fn tag(self) -> u8 {
        match self {
            LrSchedule::Constant => 0,
            LrSchedule::StepDecay { .. } => 1,
            LrSchedule::CosineAnneal { .. } => 2,
        }
    }
}

/// Configuration of the v2 training engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Core hyper-parameters (batch size, LR, epochs, seed, threads, …).
    pub train: TrainConfig,
    /// Micro-batches accumulated per optimizer step (1 = step every
    /// micro-batch). The effective batch is `batch_size * accum_steps`
    /// without the memory cost of a larger tape.
    pub accum_steps: usize,
    /// Per-epoch learning-rate schedule.
    pub schedule: LrSchedule,
    /// Early-stopping patience in epochs (0 disables). Requires
    /// validation pairs; the best-seen parameters are restored when
    /// training ends.
    pub patience: usize,
    /// Write a checkpoint every N epochs (0 disables).
    pub checkpoint_every: usize,
    /// Where periodic checkpoints go (required when `checkpoint_every >
    /// 0`).
    pub checkpoint_path: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            accum_steps: 1,
            schedule: LrSchedule::Constant,
            patience: 0,
            checkpoint_every: 0,
            checkpoint_path: None,
        }
    }
}

/// `threads == 0` means one worker per available core; every trajectory
/// decision (chunking, per-worker dropout seeds, f32 summation order)
/// depends on the **resolved** count, so both the epoch loop and the
/// config fingerprint go through this.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

impl EngineConfig {
    /// Fingerprint of every field that affects the training trajectory.
    /// Stored in checkpoints so a resume with a drifted config (different
    /// seed, batch size, thread count, …) is rejected instead of silently
    /// diverging. The thread count is fingerprinted **resolved**: a
    /// `threads = 0` checkpoint carried to a machine with a different
    /// core count is a real divergence and must be rejected.
    fn fingerprint(&self) -> u64 {
        let mut w = BinWriter::new("engine-config");
        w.len_of(self.train.batch_size);
        w.f32(self.train.lr);
        w.len_of(self.train.epochs);
        w.f32(self.train.margin);
        w.u64(self.train.seed);
        w.u8(match self.train.optimizer {
            OptimizerKind::Sgd => OPT_TAG_SGD,
            OptimizerKind::Adam => OPT_TAG_ADAM,
        });
        w.len_of(resolve_threads(self.train.threads));
        w.f32(self.train.grad_clip);
        w.len_of(self.accum_steps);
        w.u8(self.schedule.tag());
        match self.schedule {
            LrSchedule::Constant => {}
            LrSchedule::StepDecay { every, factor } => {
                w.len_of(every);
                w.f32(factor);
            }
            LrSchedule::CosineAnneal { min_lr } => w.f32(min_lr),
        }
        w.len_of(self.patience);
        fnv1a64(&w.finish())
    }
}

/// Concrete optimizer state — kept as an enum (not `dyn Optimizer`) so
/// checkpoints can serialize it.
#[derive(Debug, Clone)]
enum EngineOpt {
    Sgd(Sgd),
    Adam(Adam),
}

impl EngineOpt {
    fn new(kind: OptimizerKind, lr: f32) -> Self {
        match kind {
            OptimizerKind::Sgd => EngineOpt::Sgd(Sgd::new(lr)),
            OptimizerKind::Adam => EngineOpt::Adam(Adam::new(lr)),
        }
    }

    fn as_optimizer(&mut self) -> &mut dyn Optimizer {
        match self {
            EngineOpt::Sgd(s) => s,
            EngineOpt::Adam(a) => a,
        }
    }

    fn write(&self, w: &mut BinWriter) {
        match self {
            EngineOpt::Sgd(s) => write_sgd(w, s),
            EngineOpt::Adam(a) => write_adam(w, a),
        }
    }

    fn read(r: &mut BinReader<'_>) -> Result<Self, String> {
        match r.u8()? {
            OPT_TAG_SGD => Ok(EngineOpt::Sgd(read_sgd(r)?)),
            OPT_TAG_ADAM => Ok(EngineOpt::Adam(read_adam(r)?)),
            other => Err(format!("unknown optimizer tag {other}")),
        }
    }
}

/// Early-stopping bookkeeping: the best validation loss seen and the
/// parameters that produced it.
#[derive(Debug, Clone)]
struct BestState {
    val_loss: f32,
    since: usize,
    params: ParamStore,
}

/// The v2 trainer: owns the model and optimizer across epochs so
/// training can pause at a checkpoint and resume bit-exactly.
///
/// # Examples
///
/// ```
/// use gnn4ip_nn::{EngineConfig, Hw2Vec, Hw2VecConfig, TrainConfig, TrainEngine};
/// # use gnn4ip_nn::{GraphInput, PairLabel, PairSample};
/// # use gnn4ip_dfg::{Dfg, NodeKind};
/// # let mut g = Dfg::new("g");
/// # let y = g.add_node(NodeKind::Output, "y");
/// # let a = g.add_node(NodeKind::Input, "a");
/// # g.add_edge(y, a);
/// # g.add_root(y);
/// # let graphs = vec![GraphInput::from_dfg(&g)];
/// # let pairs = [PairSample { a: 0, b: 0, label: PairLabel::Similar }];
/// let cfg = EngineConfig {
///     train: TrainConfig { epochs: 2, batch_size: 4, ..TrainConfig::default() },
///     ..EngineConfig::default()
/// };
/// let mut engine = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 1), cfg);
/// let report = engine.run(&graphs, &pairs, None)?;
/// assert_eq!(report.epochs.len(), 2);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct TrainEngine {
    model: Hw2Vec,
    opt: EngineOpt,
    cfg: EngineConfig,
    next_epoch: usize,
    report: TrainReport,
    best: Option<BestState>,
    /// Early stopping fired — persisted in checkpoints so a resume never
    /// trains past the stop point.
    stopped: bool,
}

impl TrainEngine {
    /// Creates an engine around a freshly initialized (or pre-trained)
    /// model.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configs: zero batch size, zero accumulation
    /// steps, or periodic checkpointing without a path.
    pub fn new(model: Hw2Vec, cfg: EngineConfig) -> Self {
        assert!(cfg.train.batch_size > 0, "batch size must be positive");
        assert!(cfg.accum_steps > 0, "accum_steps must be positive");
        assert!(
            cfg.checkpoint_every == 0 || cfg.checkpoint_path.is_some(),
            "checkpoint_every > 0 requires a checkpoint_path"
        );
        let opt = EngineOpt::new(cfg.train.optimizer, cfg.train.lr);
        Self {
            model,
            opt,
            cfg,
            next_epoch: 0,
            report: TrainReport::default(),
            best: None,
            stopped: false,
        }
    }

    /// The model in its current training state.
    pub fn model(&self) -> &Hw2Vec {
        &self.model
    }

    /// Consumes the engine, yielding the trained model.
    pub fn into_model(self) -> Hw2Vec {
        self.model
    }

    /// The loss trajectory accumulated so far.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// The next epoch `run` will execute (equals epochs completed).
    pub fn next_epoch(&self) -> usize {
        self.next_epoch
    }

    /// Runs training from the current epoch to the configured budget
    /// (or until early stopping fires), checkpointing periodically when
    /// configured. Returns the full loss trajectory.
    ///
    /// When `patience > 0`, `val_pairs` must be supplied; the best-seen
    /// parameters are restored into the model when training ends.
    ///
    /// # Errors
    ///
    /// Returns checkpoint I/O failures as text.
    ///
    /// # Panics
    ///
    /// Panics if `train_pairs` is empty, a pair indexes outside
    /// `graphs`, or `patience > 0` without validation pairs.
    pub fn run(
        &mut self,
        graphs: &[GraphInput],
        train_pairs: &[PairSample],
        val_pairs: Option<&[PairSample]>,
    ) -> Result<&TrainReport, String> {
        assert!(!train_pairs.is_empty(), "no training pairs");
        for p in train_pairs.iter().chain(val_pairs.unwrap_or_default()) {
            assert!(
                p.a < graphs.len() && p.b < graphs.len(),
                "pair out of range"
            );
        }
        assert!(
            self.cfg.patience == 0 || val_pairs.is_some(),
            "early stopping requires validation pairs"
        );
        let total_epochs = self.cfg.train.epochs;
        while !self.stopped && self.next_epoch < total_epochs {
            let epoch = self.next_epoch;
            let mean_loss = self.run_epoch(graphs, train_pairs, epoch);
            let val =
                val_pairs.map(|vp| validation_loss(&self.model, graphs, vp, self.cfg.train.margin));
            self.report.epochs.push(EpochStats {
                epoch,
                mean_loss,
                val_loss: val,
            });
            self.next_epoch = epoch + 1;

            if self.cfg.patience > 0 {
                // g4check: allow(unwrap-in-lib): TrainEngine::new rejects patience > 0 without a validation split, so val is always computed on this path
                let val = val.expect("validated above");
                match &mut self.best {
                    Some(b) if val >= b.val_loss => {
                        b.since += 1;
                        if b.since >= self.cfg.patience {
                            self.stopped = true;
                        }
                    }
                    Some(b) => {
                        b.val_loss = val;
                        b.since = 0;
                        b.params = self.model.params().clone();
                    }
                    None => {
                        self.best = Some(BestState {
                            val_loss: val,
                            since: 0,
                            params: self.model.params().clone(),
                        });
                    }
                }
            }

            // checkpoint AFTER the stop decision, so the stopped flag is
            // part of the persisted state and a resume never trains past
            // the stop point
            if self.cfg.checkpoint_every > 0
                && (self.stopped || self.next_epoch.is_multiple_of(self.cfg.checkpoint_every))
            {
                let path = self
                    .cfg
                    .checkpoint_path
                    .clone()
                    // g4check: allow(unwrap-in-lib): TrainEngine::new rejects checkpoint_every > 0 without a checkpoint_path
                    .expect("checked in TrainEngine::new");
                self.save_checkpoint(&path)?;
            }
        }
        if let Some(b) = &self.best {
            *self.model.params_mut() = b.params.clone();
        }
        Ok(&self.report)
    }

    /// One full pass over the training pairs: shuffle with the
    /// epoch-derived RNG, walk micro-batches, step the optimizer every
    /// `accum_steps` micro-batches. Returns the mean pair loss.
    fn run_epoch(&mut self, graphs: &[GraphInput], pairs: &[PairSample], epoch: usize) -> f32 {
        let cfg = &self.cfg.train;
        let lr = self
            .cfg
            .schedule
            .lr_at(cfg.lr, epoch, self.cfg.train.epochs);
        self.opt.as_optimizer().set_lr(lr);
        let threads = resolve_threads(cfg.threads);
        // Shuffle order is a pure function of (seed, epoch) — this is what
        // makes an epoch re-runnable after resume without serializing RNG
        // state.
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        let mut rng = StdRng::seed_from_u64(epoch_seed(cfg.seed, epoch));
        order.shuffle(&mut rng);

        let mut epoch_loss = 0.0f64;
        let mut seen = 0usize;
        let micro: Vec<&[usize]> = order.chunks(cfg.batch_size).collect();
        for (group_no, group) in micro.chunks(self.cfg.accum_steps).enumerate() {
            let mut sums: Option<Vec<Matrix>> = None;
            let mut count = 0usize;
            for (k, mb) in group.iter().enumerate() {
                let batch_no = group_no * self.cfg.accum_steps + k;
                let (batch_sums, loss_sum) = microbatch_gradients(
                    &self.model,
                    graphs,
                    pairs,
                    mb,
                    cfg,
                    epoch,
                    batch_no,
                    threads,
                );
                epoch_loss += loss_sum as f64;
                count += mb.len();
                seen += mb.len();
                match &mut sums {
                    None => sums = Some(batch_sums),
                    Some(acc) => {
                        for (a, b) in acc.iter_mut().zip(&batch_sums) {
                            a.add_assign(b);
                        }
                    }
                }
            }
            // g4check: allow(unwrap-in-lib): chunks() on the non-empty batch yields at least one group, so the accumulator was seeded
            let mut grads = sums.expect("non-empty group");
            let inv = 1.0 / count.max(1) as f32;
            for g in &mut grads {
                g.map_assign(|v| v * inv);
            }
            clip_global_norm(&mut grads, cfg.grad_clip);
            self.opt
                .as_optimizer()
                .step(self.model.params_mut(), &grads);
        }
        (epoch_loss / seen.max(1) as f64) as f32
    }

    /// Serializes the full training state (model, optimizer, report,
    /// early-stopping bookkeeping, config fingerprint).
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut w = BinWriter::new(CHECKPOINT_KIND);
        w.u64(self.cfg.fingerprint());
        w.u8(self.stopped as u8);
        w.len_of(self.next_epoch);
        w.bytes(&self.model.to_bytes());
        self.opt.write(&mut w);
        w.len_of(self.report.epochs.len());
        for e in &self.report.epochs {
            w.len_of(e.epoch);
            w.f32(e.mean_loss);
            match e.val_loss {
                Some(v) => {
                    w.u8(1);
                    w.f32(v);
                }
                None => {
                    w.u8(0);
                    w.f32(0.0);
                }
            }
        }
        match &self.best {
            Some(b) => {
                w.u8(1);
                w.f32(b.val_loss);
                w.len_of(b.since);
                w.len_of(b.params.len());
                for (_, m) in b.params.iter() {
                    w.matrix(m);
                }
            }
            None => w.u8(0),
        }
        w.finish()
    }

    /// Writes a checkpoint artifact to `path` (atomic: temp + rename).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error as text.
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), String> {
        write_artifact(path, &self.checkpoint_bytes())
    }

    /// Restores an engine from checkpoint bytes. `cfg` must match the
    /// config the checkpoint was written under (verified by fingerprint)
    /// — resuming under a drifted config would silently diverge from the
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns format, checksum, or config-mismatch errors as text.
    pub fn from_checkpoint_bytes(bytes: &[u8], cfg: EngineConfig) -> Result<Self, String> {
        let mut r = BinReader::open(bytes, CHECKPOINT_KIND)?;
        let fp = r.u64()?;
        if fp != cfg.fingerprint() {
            return Err("checkpoint was written under a different engine config; \
                 resuming would diverge from the original run"
                .to_string());
        }
        let stopped = r.u8()? == 1;
        let next_epoch = r.len_of()?;
        let model = Hw2Vec::from_bytes(r.bytes()?)?;
        let opt = EngineOpt::read(&mut r)?;
        let n_epochs = r.count_of(17)?; // epoch u64 + loss f32 + flag u8 + val f32
        let mut report = TrainReport::default();
        for _ in 0..n_epochs {
            let epoch = r.len_of()?;
            let mean_loss = r.f32()?;
            let has_val = r.u8()? == 1;
            let val = r.f32()?;
            report.epochs.push(EpochStats {
                epoch,
                mean_loss,
                val_loss: has_val.then_some(val),
            });
        }
        let best = if r.u8()? == 1 {
            let val_loss = r.f32()?;
            let since = r.len_of()?;
            let n = r.len_of()?;
            let mut params = model.params().clone();
            if n != params.len() {
                return Err(format!(
                    "checkpoint best-params count {n} does not match model ({})",
                    params.len()
                ));
            }
            for slot in params.values_mut() {
                let m = r.matrix()?;
                if m.shape() != slot.shape() {
                    return Err("checkpoint best-params shape mismatch".to_string());
                }
                *slot = m;
            }
            Some(BestState {
                val_loss,
                since,
                params,
            })
        } else {
            None
        };
        r.done()?;
        Ok(Self {
            model,
            opt,
            cfg,
            next_epoch,
            report,
            best,
            stopped,
        })
    }

    /// Loads a checkpoint artifact written by
    /// [`save_checkpoint`](TrainEngine::save_checkpoint) and resumes
    /// under the same config.
    ///
    /// # Errors
    ///
    /// Returns I/O, format, or config-mismatch errors as text.
    pub fn resume(path: &Path, cfg: EngineConfig) -> Result<Self, String> {
        Self::from_checkpoint_bytes(&read_artifact(path)?, cfg)
    }
}

/// Per-epoch shuffle seed: decorrelated from the per-sample dropout
/// seeds used inside `microbatch_gradients`.
fn epoch_seed(seed: u64, epoch: usize) -> u64 {
    seed ^ (epoch as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F)
}

/// Summed (not mean) gradients and summed loss of one micro-batch.
///
/// Each worker records its share of the batch on one shared tape:
/// parameters are injected once, pair losses are summed into a single
/// root, and one backward traversal produces the worker's gradient sums.
///
/// Within a worker's chunk, each distinct graph is **forwarded once** and
/// its embedding `Var` shared by every pair that references it — the tape
/// accumulates each pair's gradient contribution through the shared
/// forward subgraph, which is exactly the sum the per-pair formulation
/// computes. (The one semantic difference: a graph draws one dropout mask
/// per micro-batch instead of one per pair occurrence — still an unbiased
/// dropout sample, and the standard batched-training behavior.)
#[allow(clippy::too_many_arguments)]
fn microbatch_gradients(
    model: &Hw2Vec,
    graphs: &[GraphInput],
    pairs: &[PairSample],
    batch: &[usize],
    cfg: &TrainConfig,
    epoch: usize,
    batch_no: usize,
    threads: usize,
) -> (Vec<Matrix>, f32) {
    let results: Vec<(Vec<Matrix>, f32)> = fan_out(batch, threads, |tid, chunk| {
        let tape = Tape::new();
        let vars = model.params().inject(&tape);
        // per-worker seed stream: `tid` is dense in 0..worker_count(..)
        // (fan_out's contract), so streams never alias within one batch
        let mut rng = StdRng::seed_from_u64(
            cfg.seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((epoch as u64) << 32)
                .wrapping_add((batch_no as u64) << 16)
                .wrapping_add(tid as u64),
        );
        // graph index → embedding var, in first-occurrence order (keeps
        // dropout draws deterministic)
        let mut embeds: std::collections::HashMap<usize, Var<'_>> =
            std::collections::HashMap::new();
        let mut total: Option<Var<'_>> = None;
        for &pi in chunk {
            let pair = pairs[pi];
            let mut embed_of = |gi: usize| match embeds.get(&gi) {
                Some(v) => *v,
                None => {
                    let v = model.forward(&tape, &vars, &graphs[gi], &mut Mode::Train(&mut rng));
                    embeds.insert(gi, v);
                    v
                }
            };
            let ha = embed_of(pair.a);
            let hb = embed_of(pair.b);
            let loss = cosine_embedding_loss(ha.cosine(hb), pair.label, cfg.margin);
            total = Some(match total.take() {
                Some(t) => t.add(loss),
                None => loss,
            });
        }
        // g4check: allow(unwrap-in-lib): fan_out chunks are non-empty by construction, so the loop above ran and seeded total
        let total = total.expect("fan_out never passes an empty chunk");
        let loss_sum = total.item();
        let grads = tape.backward(total);
        let sums: Vec<Matrix> = vars.iter().map(|v| grads.wrt_or_zero(*v)).collect();
        (sums, loss_sum)
    });
    let mut iter = results.into_iter();
    // g4check: allow(unwrap-in-lib): fan_out on a non-empty pair list returns at least one chunk result
    let (mut sums, mut loss) = iter.next().expect("at least one chunk");
    for (s, l) in iter {
        for (a, b) in sums.iter_mut().zip(&s) {
            a.add_assign(b);
        }
        loss += l;
    }
    (sums, loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hw2VecConfig;
    use crate::trainer::{score_pairs, tune_delta};
    use crate::PairLabel;
    use gnn4ip_dfg::{Dfg, NodeKind};

    fn family_a(variant: u64) -> GraphInput {
        let mut g = Dfg::new(format!("a{variant}"));
        let y = g.add_node(NodeKind::Output, "y");
        let mut prev = y;
        for i in 0..4 + (variant % 3) {
            let op = g.add_node(NodeKind::Xor, format!("x{i}"));
            g.add_edge(prev, op);
            prev = op;
        }
        let a = g.add_node(NodeKind::Input, "a");
        g.add_edge(prev, a);
        g.add_root(y);
        GraphInput::from_dfg(&g)
    }

    fn family_b(variant: u64) -> GraphInput {
        let mut g = Dfg::new(format!("b{variant}"));
        let y = g.add_node(NodeKind::Output, "y");
        let add = g.add_node(NodeKind::Add, "add");
        g.add_edge(y, add);
        for i in 0..3 + (variant % 2) {
            let inp = g.add_node(NodeKind::Input, format!("i{i}"));
            let m = g.add_node(NodeKind::Mul, format!("m{i}"));
            g.add_edge(add, m);
            g.add_edge(m, inp);
        }
        g.add_root(y);
        GraphInput::from_dfg(&g)
    }

    fn toy_dataset() -> (Vec<GraphInput>, Vec<PairSample>) {
        let graphs: Vec<GraphInput> = (0..4).map(family_a).chain((0..4).map(family_b)).collect();
        let mut pairs = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                pairs.push(PairSample {
                    a: i,
                    b: j,
                    label: PairLabel::Similar,
                });
                pairs.push(PairSample {
                    a: 4 + i,
                    b: 4 + j,
                    label: PairLabel::Similar,
                });
            }
        }
        for i in 0..4 {
            for j in 0..4 {
                pairs.push(PairSample {
                    a: i,
                    b: 4 + j,
                    label: PairLabel::Different,
                });
            }
        }
        (graphs, pairs)
    }

    fn quick_cfg(epochs: usize) -> EngineConfig {
        EngineConfig {
            train: TrainConfig {
                epochs,
                batch_size: 8,
                lr: 0.01,
                threads: 1,
                ..TrainConfig::default()
            },
            ..EngineConfig::default()
        }
    }

    #[test]
    fn engine_reduces_loss_and_separates_families() {
        let (graphs, pairs) = toy_dataset();
        let mut engine = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 61), quick_cfg(20));
        let report = engine.run(&graphs, &pairs, None).expect("runs").clone();
        let first = report.epochs.first().expect("epochs").mean_loss;
        let last = report.final_loss();
        assert!(last < first * 0.8, "loss did not drop: {first} -> {last}");
        let scores = score_pairs(engine.model(), &graphs, &pairs);
        let labels: Vec<PairLabel> = pairs.iter().map(|p| p.label).collect();
        let (_, acc) = tune_delta(&scores, &labels);
        assert!(acc >= 0.9, "tuned accuracy {acc}");
    }

    #[test]
    fn engine_is_deterministic_for_fixed_seed() {
        let (graphs, pairs) = toy_dataset();
        let run = || {
            let mut e = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 62), quick_cfg(3));
            e.run(&graphs, &pairs, None).expect("runs");
            e.into_model().embed(&graphs[0])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gradient_accumulation_matches_larger_batch() {
        // accum_steps * batch_size pairs per optimizer step must equal one
        // optimizer step over a batch of that full size (same grads up to
        // f32 summation order). Dropout off: mask draws are keyed by
        // micro-batch number, so the groupings would sample different masks.
        let (graphs, pairs) = toy_dataset();
        let model_cfg = Hw2VecConfig {
            dropout: 0.0,
            ..Hw2VecConfig::default()
        };
        let base = quick_cfg(3);
        let mut small = TrainEngine::new(
            Hw2Vec::new(model_cfg.clone(), 63),
            EngineConfig {
                train: TrainConfig {
                    batch_size: 4,
                    ..base.train.clone()
                },
                accum_steps: 2,
                ..base.clone()
            },
        );
        let mut big = TrainEngine::new(
            Hw2Vec::new(model_cfg, 63),
            EngineConfig {
                train: TrainConfig {
                    batch_size: 8,
                    ..base.train.clone()
                },
                accum_steps: 1,
                ..base
            },
        );
        let rs = small.run(&graphs, &pairs, None).expect("runs").clone();
        let rb = big.run(&graphs, &pairs, None).expect("runs").clone();
        for (a, b) in rs.epochs.iter().zip(&rb.epochs) {
            assert!(
                (a.mean_loss - b.mean_loss).abs() < 1e-3,
                "epoch {}: accumulated {} vs large-batch {}",
                a.epoch,
                a.mean_loss,
                b.mean_loss
            );
        }
    }

    #[test]
    fn lr_schedules_shape_the_rate() {
        assert_eq!(LrSchedule::Constant.lr_at(0.1, 7, 10), 0.1);
        let step = LrSchedule::StepDecay {
            every: 2,
            factor: 0.5,
        };
        assert_eq!(step.lr_at(0.1, 0, 10), 0.1);
        assert_eq!(step.lr_at(0.1, 1, 10), 0.1);
        assert!((step.lr_at(0.1, 2, 10) - 0.05).abs() < 1e-9);
        assert!((step.lr_at(0.1, 4, 10) - 0.025).abs() < 1e-9);
        let cos = LrSchedule::CosineAnneal { min_lr: 0.01 };
        assert!((cos.lr_at(0.1, 0, 10) - 0.1).abs() < 1e-6);
        assert!((cos.lr_at(0.1, 9, 10) - 0.01).abs() < 1e-6);
        let mid = cos.lr_at(0.1, 4, 10);
        assert!(mid < 0.1 && mid > 0.01, "mid lr {mid}");
    }

    #[test]
    fn early_stopping_restores_best_params() {
        let (graphs, pairs) = toy_dataset();
        let (train_p, val_p) = pairs.split_at(pairs.len() - 8);
        let mut cfg = quick_cfg(60);
        cfg.train.lr = 0.05;
        cfg.patience = 2;
        let mut engine = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 64), cfg.clone());
        let report = engine
            .run(&graphs, train_p, Some(val_p))
            .expect("runs")
            .clone();
        assert!(report.epochs.len() < 60, "never stopped early");
        let final_val = validation_loss(engine.model(), &graphs, val_p, cfg.train.margin);
        let best_seen = report
            .epochs
            .iter()
            .filter_map(|e| e.val_loss)
            .fold(f32::INFINITY, f32::min);
        assert!(
            (final_val - best_seen).abs() < 1e-4,
            "restored {final_val} vs best {best_seen}"
        );
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let (graphs, pairs) = toy_dataset();
        let cfg = quick_cfg(6);

        // uninterrupted reference
        let mut full = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 65), cfg.clone());
        let full_report = full.run(&graphs, &pairs, None).expect("runs").clone();

        // train 3 epochs, checkpoint to bytes, resume, finish
        let mut half_cfg = cfg.clone();
        half_cfg.train.epochs = 3;
        let mut half = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 65), half_cfg);
        half.run(&graphs, &pairs, None).expect("runs");
        let mut ckpt = half.clone();
        ckpt.cfg = cfg.clone(); // widen the epoch budget back to 6
        let bytes = ckpt.checkpoint_bytes();
        let mut resumed = TrainEngine::from_checkpoint_bytes(&bytes, cfg).expect("resumes");
        assert_eq!(resumed.next_epoch(), 3);
        let resumed_report = resumed.run(&graphs, &pairs, None).expect("runs").clone();

        // the first post-checkpoint epoch (and all later ones) match the
        // uninterrupted trajectory bit for bit
        assert_eq!(full_report.epochs.len(), resumed_report.epochs.len());
        for (a, b) in full_report.epochs.iter().zip(&resumed_report.epochs) {
            assert_eq!(
                a.mean_loss.to_bits(),
                b.mean_loss.to_bits(),
                "epoch {} diverged: {} vs {}",
                a.epoch,
                a.mean_loss,
                b.mean_loss
            );
        }
        let e_full = full.into_model().embed(&graphs[0]);
        let e_res = resumed.into_model().embed(&graphs[0]);
        assert_eq!(e_full, e_res, "final weights diverged");
    }

    #[test]
    fn resume_after_early_stop_does_not_train_further() {
        let (graphs, pairs) = toy_dataset();
        let (train_p, val_p) = pairs.split_at(pairs.len() - 8);
        let dir = std::env::temp_dir().join(format!("gnn4ip-earlystop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        let mut cfg = quick_cfg(60);
        cfg.train.lr = 0.05;
        cfg.patience = 2;
        cfg.checkpoint_every = 1;
        cfg.checkpoint_path = Some(path.clone());
        let mut engine = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 71), cfg.clone());
        let report = engine
            .run(&graphs, train_p, Some(val_p))
            .expect("runs")
            .clone();
        assert!(report.epochs.len() < 60, "never stopped early");
        let weights_after = engine.model().to_bytes();

        // the checkpoint carries the stop: a resumed engine must not run
        // any additional epochs, and must restore the same best weights
        let mut resumed = TrainEngine::resume(&path, cfg).expect("loads");
        let resumed_report = resumed
            .run(&graphs, train_p, Some(val_p))
            .expect("runs")
            .clone();
        assert_eq!(
            resumed_report.epochs.len(),
            report.epochs.len(),
            "resume trained past the early stop"
        );
        assert_eq!(resumed.model().to_bytes(), weights_after);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_config_drift() {
        let (graphs, pairs) = toy_dataset();
        let cfg = quick_cfg(4);
        let mut engine = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 66), cfg.clone());
        engine.run(&graphs, &pairs, None).expect("runs");
        let bytes = engine.checkpoint_bytes();
        let mut drifted = cfg;
        drifted.train.seed ^= 1;
        let err = TrainEngine::from_checkpoint_bytes(&bytes, drifted).expect_err("must reject");
        assert!(err.contains("different engine config"), "{err}");
    }

    #[test]
    fn periodic_checkpoints_land_on_disk() {
        let (graphs, pairs) = toy_dataset();
        let dir = std::env::temp_dir().join(format!("gnn4ip-engine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.bin");
        let mut cfg = quick_cfg(4);
        cfg.checkpoint_every = 2;
        cfg.checkpoint_path = Some(path.clone());
        let mut engine = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 67), cfg.clone());
        engine.run(&graphs, &pairs, None).expect("runs");
        let resumed = TrainEngine::resume(&path, cfg).expect("loads");
        assert_eq!(resumed.next_epoch(), 4);
        assert_eq!(resumed.report().epochs.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_tape_gradients_match_v1_per_pair_tapes() {
        // the engine's one-tape-per-worker gradients must agree with the v1
        // per-pair-tape path on a dropout-free model (dropout draws differ
        // by construction between the two).
        let (graphs, pairs) = toy_dataset();
        let cfg0 = Hw2VecConfig {
            dropout: 0.0,
            ..Hw2VecConfig::default()
        };
        let mut v1 = Hw2Vec::new(cfg0.clone(), 68);
        let mut v2 = v1.clone();
        let tc = TrainConfig {
            epochs: 1,
            batch_size: pairs.len(),
            optimizer: OptimizerKind::Sgd,
            lr: 0.01,
            threads: 1,
            grad_clip: 0.0,
            ..TrainConfig::default()
        };
        crate::trainer::train(&mut v1, &graphs, &pairs, &tc);
        let mut engine = TrainEngine::new(
            v2.clone(),
            EngineConfig {
                train: tc,
                ..EngineConfig::default()
            },
        );
        engine.run(&graphs, &pairs, None).expect("runs");
        v2 = engine.into_model();
        let (e1, e2) = (v1.embed(&graphs[0]), v2.embed(&graphs[0]));
        for (a, b) in e1.iter().zip(&e2) {
            assert!((a - b).abs() < 1e-5, "{e1:?} vs {e2:?}");
        }
    }

    #[test]
    #[should_panic(expected = "no training pairs")]
    fn empty_pairs_panics() {
        let (graphs, _) = toy_dataset();
        let mut engine = TrainEngine::new(Hw2Vec::new(Hw2VecConfig::default(), 69), quick_cfg(1));
        let _ = engine.run(&graphs, &[], None);
    }
}
