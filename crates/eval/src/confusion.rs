//! Confusion matrices and classification metrics (Fig. 4a, Table I, §IV-F).

use std::fmt;

/// A binary confusion matrix over piracy predictions.
///
/// Positive = piracy (similar pair), negative = no-piracy, matching the
/// paper's convention in Fig. 4(a).
///
/// # Examples
///
/// ```
/// use gnn4ip_eval::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new();
/// cm.record(true, true);   // TP
/// cm.record(false, false); // TN
/// cm.record(true, false);  // FN
/// assert_eq!(cm.tp, 1);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// True positives: piracy pairs labeled piracy.
    pub tp: usize,
    /// False positives: different pairs labeled piracy.
    pub fp: usize,
    /// False negatives: piracy pairs missed.
    pub fn_: usize,
    /// True negatives: different pairs correctly cleared.
    pub tn: usize,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(actual, predicted)` observation.
    pub fn record(&mut self, actual_piracy: bool, predicted_piracy: bool) {
        match (actual_piracy, predicted_piracy) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Builds a matrix from similarity scores, labels, and a decision
    /// boundary δ (`score > delta` ⇒ piracy).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_scores(scores: &[f32], similar: &[bool], delta: f32) -> Self {
        assert_eq!(scores.len(), similar.len(), "scores/labels mismatch");
        let mut cm = Self::new();
        for (&s, &label) in scores.iter().zip(similar) {
            cm.record(label, s > delta);
        }
        cm
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// `(TP + TN) / total` — the paper's headline metric.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// False-negative **rate over all samples** — the §IV-F comparison
    /// metric against watermarking's probability of coincidence
    /// (`FN / total`, the paper reports e.g. 6.65e-4 for 190/285735-scale).
    pub fn false_negative_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.fn_ as f64 / self.total() as f64
    }

    /// Miss rate among actual positives (`FN / (TP + FN)`).
    pub fn miss_rate(&self) -> f64 {
        let pos = self.tp + self.fn_;
        if pos == 0 {
            return 0.0;
        }
        self.fn_ as f64 / pos as f64
    }

    /// Precision (`TP / (TP + FP)`).
    pub fn precision(&self) -> f64 {
        let pred_pos = self.tp + self.fp;
        if pred_pos == 0 {
            return 0.0;
        }
        self.tp as f64 / pred_pos as f64
    }

    /// Recall (`TP / (TP + FN)`).
    pub fn recall(&self) -> f64 {
        let pos = self.tp + self.fn_;
        if pos == 0 {
            return 0.0;
        }
        self.tp as f64 / pos as f64
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "                Predicted+  Predicted-")?;
        writeln!(
            f,
            "  Actual+ (piracy)   TP: {:<7} FN: {:<7}",
            self.tp, self.fn_
        )?;
        write!(
            f,
            "  Actual- (clean)    FP: {:<7} TN: {:<7}",
            self.fp, self.tn
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_rtl() -> ConfusionMatrix {
        // Fig. 4(a) RTL numbers
        ConfusionMatrix {
            tp: 3464,
            fp: 10,
            fn_: 190,
            tn: 11352,
        }
    }

    #[test]
    fn accuracy_matches_paper_figures() {
        let cm = paper_rtl();
        // Table I reports 97.21% on its dataset; these cells give ~98.7%
        assert!((cm.accuracy() - 0.9867).abs() < 0.01, "{}", cm.accuracy());
    }

    #[test]
    fn from_scores_thresholds() {
        let scores = [0.9, 0.2, -0.5, 0.6];
        let labels = [true, true, false, false];
        let cm = ConfusionMatrix::from_scores(&scores, &labels, 0.5);
        assert_eq!((cm.tp, cm.fn_, cm.tn, cm.fp), (1, 1, 1, 1));
    }

    #[test]
    fn rates_and_scores() {
        let cm = ConfusionMatrix {
            tp: 8,
            fp: 2,
            fn_: 2,
            tn: 88,
        };
        assert!((cm.accuracy() - 0.96).abs() < 1e-9);
        assert!((cm.precision() - 0.8).abs() < 1e-9);
        assert!((cm.recall() - 0.8).abs() < 1e-9);
        assert!((cm.f1() - 0.8).abs() < 1e-9);
        assert!((cm.false_negative_rate() - 0.02).abs() < 1e-9);
        assert!((cm.miss_rate() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let cm = ConfusionMatrix::new();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn display_shows_all_cells() {
        let s = paper_rtl().to_string();
        assert!(s.contains("3464"));
        assert!(s.contains("11352"));
    }
}
