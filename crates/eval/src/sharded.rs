//! A sharded, persistent, read-mostly embedding index for corpus-scale
//! retrieval and concurrent serving.
//!
//! The flat [`EmbeddingIndex`] is the right shape for a few thousand
//! embeddings: one contiguous matrix, one gemm. The deployment the paper's
//! §IV-C motivates — embed every owned IP once, then answer "what is this
//! suspect closest to?" forever — outgrows it in three ways: the corpus
//! arrives *incrementally* (designs stream in; rebuilding a monolithic
//! matrix per insert is quadratic), it must *outlive the process* (an
//! index that vanishes on exit re-embeds the world on every restart), and
//! it must keep *serving queries while it grows* (a monolithic `&mut`
//! structure blocks every reader for the duration of an ingest).
//!
//! [`ShardedEmbeddingIndex`] stores row-normalized embeddings in
//! fixed-capacity shards with a sealed/tail split: every full shard is an
//! immutable, `Arc`-shared [`SealedShard`] carrying precomputed score
//! bounds (centroid, covering radius, max row norm), and exactly one open
//! *tail* shard sits behind the mutable insert path. Because the sealed
//! prefix is immutable, [`snapshot`](ShardedEmbeddingIndex::snapshot) is
//! cheap — it bumps one `Arc` per sealed shard and copies only the tail —
//! and a snapshot serves queries forever without seeing (or blocking)
//! later inserts.
//!
//! Queries are fast twice over. Sealed shards whose *best possible* score
//! (from the centroid/radius bound) cannot beat the current global top-k
//! floor are skipped without touching a row, and on corpora large enough
//! to be worth threading the surviving per-shard scans fan out across
//! workers via [`fan_out`]. Both paths produce results **bit-identical**
//! to the flat index (a property test in `tests/properties.rs` holds this
//! line): every score is computed by the same per-row kernel, pruning only
//! discards shards whose rows provably lose, and the k-way merge is
//! order-insensitive.
//!
//! Two more layers kick in at corpus scale (≥ 100k rows). **Routing:**
//! bound pruning only bites when shards are internally coherent, which
//! arrival order does not guarantee;
//! [`rebalance`](ShardedEmbeddingIndex::rebalance) learns k-means-style
//! centroids from the sealed rows and rebuilds the sealed region in
//! cluster order, so the descending-bound walk behaves like an IVF probe
//! of the nearest-centroid shards regardless of how the corpus arrived.
//! **Quantization:** an index built with [`ShardStorage::Int8`] stores
//! sealed rows as symmetric int8 with a per-shard calibration header;
//! queries scan the int8 codes (~4x less memory traffic), then rescore a
//! provably sufficient shortlist in f32 — the dequantized values are the
//! canonical rows, so results stay bit-identical to an exhaustive f32
//! scan of the same index. Shard bounds are computed *before*
//! quantization and the quantization error bound is folded into the
//! prune slack, so pruning stays sound.
//!
//! The whole structure persists through the `G4IP` binary artifact format
//! (format v2 serializes the sealed-shard bounds; v1 artifacts still load
//! by recomputing them), pinned to the checksum of the model weights that
//! produced the embeddings. For growing corpora the append-only
//! manifest layout in [`crate::manifest`] checkpoints only newly sealed
//! shards instead of rewriting the monolithic artifact.

use std::borrow::Cow;
use std::sync::Arc;

use gnn4ip_tensor::{
    dot_i8, fan_out, gemm_nt, read_artifact, worker_count, write_artifact, BinReader, BinWriter,
    Fnv64, Matrix, QuantParams, Workspace,
};

use crate::index::{normalize_into, query_norm, score_row, EmbeddingIndex, QueryHit};

/// Kind tag of the persisted shard-index artifact.
pub const SHARD_INDEX_KIND: &str = "gnn4ip-shard-index";

/// Format version the shard-index artifact is written at: v2 appended
/// the sealed-shard bounds (centroid, radius, max norm) to each full
/// shard. v1 artifacts still load; the bounds are recomputed.
const SHARD_INDEX_VERSION: u16 = 2;

/// Default minimum number of indexed rows before [`query`] fans per-shard
/// scans across worker threads. Below this, thread spawn/join overhead
/// dwarfs the scan itself and queries stay single-threaded.
///
/// [`query`]: ShardedEmbeddingIndex::query
pub const PARALLEL_QUERY_MIN_ROWS: usize = 1 << 17;

/// Additive slack applied to a sealed shard's score bound before it is
/// compared against the current top-k floor. The centroid/radius bound
/// holds in exact arithmetic; this slack absorbs f32 rounding in both the
/// bound and the per-row scores, so pruning can never discard a true
/// top-k hit. Scores live in `[-1, 1]` and the accumulated rounding error
/// of a `dim`-term dot product of unit vectors is bounded well below
/// `1e-5` for any practical `dim`, so `1e-4` is a wide margin — and the
/// flat/sharded bit-identity proptest holds the line empirically.
const PRUNE_SLACK: f32 = 1e-4;

/// How a sealed shard stores its rows.
///
/// The tail is always f32 (it is mutable and tiny); the choice applies
/// when a full tail is sealed. Under [`ShardStorage::Int8`] the sealed
/// rows are quantized symmetrically with a per-shard calibration
/// header, and **the dequantized values become the canonical rows**:
/// every exact score — exhaustive scan, shortlist rescoring,
/// similarity blocks — is computed from the same deterministic
/// dequantization, so query results are bit-identical whichever scan
/// path produced them, while sealed row storage drops to ~1/4 of f32.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShardStorage {
    /// Full-precision rows (the default).
    #[default]
    F32,
    /// Symmetric int8 rows with per-shard scale; exact f32 rescoring of
    /// a shortlist keeps query results bit-identical.
    Int8,
}

/// The open tail shard: the one mutable block of the index. Holds
/// `0..capacity` rows; sealing moves its storage into a [`SealedShard`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Shard {
    /// Row-major `len x dim` normalized rows.
    pub(crate) data: Vec<f32>,
    pub(crate) labels: Vec<usize>,
}

impl Shard {
    pub(crate) fn new(capacity_hint: usize, dim: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity_hint * dim),
            labels: Vec::with_capacity(capacity_hint),
        }
    }

    fn len(&self) -> usize {
        self.labels.len()
    }
}

/// Row payload of one sealed shard: full-precision f32, or symmetric
/// int8 codes plus the per-shard calibration header.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RowBlock {
    /// Row-major `rows x dim` f32.
    F32(Vec<f32>),
    /// Row-major `rows x dim` int8 codes. The dequantized values are the
    /// shard's canonical rows.
    Int8 {
        q: Vec<i8>,
        params: QuantParams,
        /// `max_i Σ_j |dequantize(q_ij)|` — the L1 bound the int8 scan's
        /// shortlist error analysis divides the query quantization step
        /// into. Recomputable from `q` and `params`; cached at seal.
        max_l1: f32,
    },
}

impl RowBlock {
    pub(crate) fn as_ref(&self) -> RowsRef<'_> {
        match self {
            RowBlock::F32(data) => RowsRef::F32(data),
            RowBlock::Int8 { q, params, .. } => RowsRef::Int8 { q, params: *params },
        }
    }

    /// Bytes of row payload held (codes/floats plus the quantization
    /// header; labels and bounds excluded) — the memory-traffic number
    /// the int8 mode exists to shrink.
    pub(crate) fn payload_bytes(&self) -> usize {
        match self {
            RowBlock::F32(data) => std::mem::size_of_val(data.as_slice()),
            RowBlock::Int8 { q, .. } => {
                std::mem::size_of_val(q.as_slice()) + std::mem::size_of::<QuantParams>() + 4
            }
        }
    }
}

/// Borrowed view of row storage, dispatching the *exact* per-row scoring
/// kernel over either representation. The int8 arm dequantizes into a
/// caller scratch buffer and runs the same [`score_row`] the f32 arm
/// runs — this is the single definition of a row's exact score.
#[derive(Clone, Copy)]
pub(crate) enum RowsRef<'a> {
    F32(&'a [f32]),
    Int8 { q: &'a [i8], params: QuantParams },
}

impl RowsRef<'_> {
    fn score(
        &self,
        i: usize,
        dim: usize,
        query: &[f32],
        qnorm: f32,
        scratch: &mut Vec<f32>,
    ) -> f32 {
        match *self {
            RowsRef::F32(data) => score_row(&data[i * dim..(i + 1) * dim], query, qnorm),
            RowsRef::Int8 { q, params } => {
                scratch.clear();
                scratch.extend(
                    q[i * dim..(i + 1) * dim]
                        .iter()
                        .map(|&c| params.dequantize(c)),
                );
                score_row(scratch, query, qnorm)
            }
        }
    }

    /// Materializes every row (dequantizing as needed) into `out`, which
    /// must hold exactly `rows * dim` floats.
    pub(crate) fn copy_all_into(&self, out: &mut [f32]) {
        match *self {
            RowsRef::F32(data) => out.copy_from_slice(data),
            RowsRef::Int8 { q, params } => {
                for (o, &c) in out.iter_mut().zip(q) {
                    *o = params.dequantize(c);
                }
            }
        }
    }
}

/// One full, immutable, `Arc`-shared block of row-normalized embeddings,
/// carrying precomputed query-independent score bounds.
#[derive(Debug, PartialEq)]
pub(crate) struct SealedShard {
    /// Row payload (`capacity x dim`), f32 or quantized.
    pub(crate) rows: RowBlock,
    pub(crate) labels: Vec<usize>,
    /// Mean of the pre-quantization rows (not itself normalized).
    pub(crate) centroid: Vec<f32>,
    /// Covering radius: `max_i ‖rᵢ − centroid‖` (pre-quantization).
    pub(crate) radius: f32,
    /// `max_i ‖rᵢ‖` — ~1 for normalized rows, 0 for all-zero shards.
    pub(crate) max_norm: f32,
    /// Additive bound slack covering how far quantization may have moved
    /// any stored row from the pre-quantization row the bounds describe:
    /// `√dim · scale ≥ ‖r̂ − r‖` with margin to spare. 0 for f32 shards.
    pub(crate) quant_slack: f32,
    /// FNV-1a-64 over the stored labels + row payload — the shard's
    /// content address in the append-only manifest layout.
    pub(crate) content_id: u64,
}

/// Bounds of one row block: `(centroid, radius, max_norm)` exactly as
/// [`SealedShard`] documents them.
fn compute_bounds(data: &[f32], dim: usize) -> (Vec<f32>, f32, f32) {
    let n = data.len() / dim;
    let mut centroid = vec![0.0f32; dim];
    for row in data.chunks_exact(dim) {
        for (c, &v) in centroid.iter_mut().zip(row) {
            *c += v;
        }
    }
    let inv = 1.0 / n as f32;
    for c in &mut centroid {
        *c *= inv;
    }
    let mut radius = 0.0f32;
    let mut max_norm = 0.0f32;
    for row in data.chunks_exact(dim) {
        let mut d2 = 0.0f32;
        let mut n2 = 0.0f32;
        for (&v, &c) in row.iter().zip(&centroid) {
            d2 += (v - c) * (v - c);
            n2 += v * v;
        }
        radius = radius.max(d2.sqrt());
        max_norm = max_norm.max(n2.sqrt());
    }
    (centroid, radius, max_norm)
}

/// Content address of a shard's stored payload: FNV-1a-64 over a storage
/// tag, the labels, and the exact stored row bytes (codes + calibration
/// for int8). Two shards with the same id hold the same rows under the
/// same labels; the append-only layout names shard files by this id so
/// an unchanged shard is never rewritten.
fn content_id_of(rows: &RowBlock, labels: &[usize]) -> u64 {
    let mut h = Fnv64::new();
    for &l in labels {
        h.update(&(l as u64).to_le_bytes());
    }
    match rows {
        RowBlock::F32(data) => {
            h.update(&[0u8]);
            for &v in data {
                h.update(&v.to_bits().to_le_bytes());
            }
        }
        RowBlock::Int8 { q, params, .. } => {
            h.update(&[1u8]);
            h.update(&params.scale.to_bits().to_le_bytes());
            // g4check: allow(cast-truncation): i8→u8 reinterprets the bit pattern, round-trips
            h.update(&[params.zero_point as u8]);
            for &c in q {
                // g4check: allow(cast-truncation): i8→u8 reinterprets the bit pattern, round-trips
                h.update(&[c as u8]);
            }
        }
    }
    h.finish()
}

impl SealedShard {
    /// Freezes a full tail shard: bounds are computed once from the f32
    /// rows, then (under [`ShardStorage::Int8`]) the rows are calibrated
    /// and quantized, with the quantization displacement folded into
    /// `quant_slack` so the pre-quantization bounds stay sound for the
    /// stored rows.
    fn seal(shard: Shard, dim: usize, storage: ShardStorage) -> Self {
        debug_assert!(!shard.labels.is_empty(), "sealing an empty shard");
        let (centroid, radius, max_norm) = compute_bounds(&shard.data, dim);
        let (rows, quant_slack) = match storage {
            ShardStorage::F32 => (RowBlock::F32(shard.data), 0.0),
            ShardStorage::Int8 => {
                let params = QuantParams::calibrate(&shard.data);
                let mut q = Vec::new();
                params.quantize_into(&shard.data, &mut q);
                let max_l1 = max_row_l1(&q, params, dim);
                // each component moved at most step() = scale/2 (+ fp
                // rounding), so ‖r̂ − r‖ ≤ √dim·scale/2; double it for a
                // comfortable margin — slack only costs pruning a little
                // less, never correctness
                let slack = (dim as f32).sqrt() * params.scale;
                (RowBlock::Int8 { q, params, max_l1 }, slack)
            }
        };
        let content_id = content_id_of(&rows, &shard.labels);
        Self {
            rows,
            labels: shard.labels,
            centroid,
            radius,
            max_norm,
            quant_slack,
            content_id,
        }
    }

    /// Assembles a sealed shard from full-precision parts with already
    /// computed (validated) bounds — the monolithic-artifact load path.
    pub(crate) fn from_f32_parts(
        data: Vec<f32>,
        labels: Vec<usize>,
        centroid: Vec<f32>,
        radius: f32,
        max_norm: f32,
    ) -> Self {
        let rows = RowBlock::F32(data);
        let content_id = content_id_of(&rows, &labels);
        Self {
            rows,
            labels,
            centroid,
            radius,
            max_norm,
            quant_slack: 0.0,
            content_id,
        }
    }

    /// Assembles a quantized sealed shard from its stored parts (the
    /// append-only shard-file load path). `max_l1` and `quant_slack` are
    /// recomputed rather than trusted from the file.
    pub(crate) fn from_int8_parts(
        q: Vec<i8>,
        params: QuantParams,
        labels: Vec<usize>,
        dim: usize,
        centroid: Vec<f32>,
        radius: f32,
        max_norm: f32,
    ) -> Self {
        let max_l1 = max_row_l1(&q, params, dim);
        let rows = RowBlock::Int8 { q, params, max_l1 };
        let content_id = content_id_of(&rows, &labels);
        Self {
            rows,
            labels,
            centroid,
            radius,
            max_norm,
            quant_slack: (dim as f32).sqrt() * params.scale,
            content_id,
        }
    }

    /// Upper bound (in exact arithmetic) on any row's score against the
    /// query: `dot(r, q̂) = dot(c, q̂) + dot(r − c, q̂) ≤ dot(c, q̂) + ‖r − c‖`
    /// by Cauchy–Schwarz, and independently `dot(r, q̂) ≤ ‖r‖`. Returns the
    /// tighter of the two, plus `quant_slack` on quantized shards (whose
    /// stored rows may sit up to that far from the pre-quantization rows
    /// the bounds were computed over). Always finite on the insert path
    /// (non-finite embeddings are stored as zero rows) and for loaded
    /// artifacts (bounds are validated at load; a forged non-finite value
    /// could otherwise force an always-pruned `-inf` bound).
    fn score_bound(&self, query: &[f32], qnorm: f32) -> f32 {
        (score_row(&self.centroid, query, qnorm) + self.radius).min(self.max_norm)
            + self.quant_slack
    }
}

/// `max_i Σ_j |dequantize(q_ij)|` over the rows of a quantized block.
fn max_row_l1(q: &[i8], params: QuantParams, dim: usize) -> f32 {
    let mut max_l1 = 0.0f32;
    for row in q.chunks_exact(dim) {
        let l1: f32 = row.iter().map(|&c| params.dequantize(c).abs()).sum();
        max_l1 = max_l1.max(l1);
    }
    max_l1
}

/// An incrementally built, persistent, read-mostly index of row-normalized
/// embeddings: immutable `Arc`-shared sealed shards plus one open tail.
///
/// Scores, tie-breaking, and non-finite handling are identical to the flat
/// [`EmbeddingIndex`]; only the storage layout and algorithms differ.
/// [`snapshot`](ShardedEmbeddingIndex::snapshot) produces an independent
/// copy in `O(sealed shards + tail)` — not `O(rows)` — so a serving thread
/// can keep answering queries while a writer ingests.
///
/// # Examples
///
/// ```
/// use gnn4ip_eval::ShardedEmbeddingIndex;
///
/// let mut index = ShardedEmbeddingIndex::new(2, 2); // dim 2, 2 rows/shard
/// index.insert(&[1.0, 0.0], 0);
/// index.insert(&[0.9, 0.1], 0); // seals the first shard
/// index.insert(&[0.0, 2.0], 1); // opens the tail
/// assert_eq!(index.num_shards(), 2);
/// assert_eq!(index.num_sealed_shards(), 1);
/// let hits = index.query(&[1.0, 0.05], 2);
/// assert_eq!(hits[0].label, 0);
/// assert!(hits[0].score >= hits[1].score);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedEmbeddingIndex {
    pub(crate) dim: usize,
    pub(crate) shard_capacity: usize,
    /// Row representation newly sealed shards adopt.
    pub(crate) storage: ShardStorage,
    /// Immutable full shards, cheaply shared between snapshots.
    pub(crate) sealed: Vec<Arc<SealedShard>>,
    /// The one mutable block: `0..shard_capacity` rows. Sealed eagerly the
    /// moment it fills, so it is never full between calls.
    pub(crate) tail: Shard,
}

/// Tuning knobs for [`ShardedEmbeddingIndex::query_opts`].
///
/// The defaults (used by [`ShardedEmbeddingIndex::query`]) enable bound
/// pruning and gate the parallel scan behind
/// [`PARALLEL_QUERY_MIN_ROWS`]. Whatever the options, query *results* are
/// bit-identical — only the work done to produce them changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOptions {
    /// Skip sealed shards whose score bound cannot beat the current
    /// top-k floor.
    pub prune: bool,
    /// Worker threads for the per-shard scans (`0` = one per core).
    pub threads: usize,
    /// Minimum total indexed rows before scans fan out across threads;
    /// smaller corpora always scan on the calling thread.
    pub parallel_min_rows: usize,
    /// On [`ShardStorage::Int8`] indexes, scan the int8 codes and
    /// rescore a provably sufficient shortlist in f32 (results stay
    /// bit-identical). Off forces the exact dequantize-and-score walk on
    /// every row — the reference path the proptests compare against. No
    /// effect on f32 indexes.
    pub int8_scan: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            prune: true,
            threads: 0,
            parallel_min_rows: PARALLEL_QUERY_MIN_ROWS,
            int8_scan: true,
        }
    }
}

/// What one [`ShardedEmbeddingIndex::query_opts`] call did. Results never
/// depend on these numbers; they exist so benches and operators can see
/// pruning and threading actually engage.
#[must_use = "query stats exist only to be inspected; dropping them silences the pruning telemetry"]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Sealed shards in the index at query time.
    pub sealed_shards: usize,
    /// Sealed shards whose rows were actually scanned (probed).
    pub sealed_probed: usize,
    /// Sealed shards skipped by the bound check without scanning a row.
    pub sealed_pruned: usize,
    /// Rows actually scored (int8 approximate scores count — they touch
    /// the row).
    pub rows_scanned: usize,
    /// Rows whose exact f32 score was recomputed by the int8 shortlist
    /// rescoring pass (0 on f32 indexes and with `int8_scan` off).
    pub rows_rescored: usize,
    /// Whether the surviving shard scans ran on worker threads.
    pub parallel: bool,
}

/// Tuning knobs for [`ShardedEmbeddingIndex::rebalance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceOptions {
    /// Lloyd refinement iterations over the training sample.
    pub iters: usize,
    /// Maximum rows sampled (strided, deterministic) to train centroids;
    /// the final assignment always visits every sealed row.
    pub sample: usize,
    /// Worker threads for the assignment pass (`0` = one per core).
    pub threads: usize,
}

impl Default for RebalanceOptions {
    fn default() -> Self {
        Self {
            iters: 4,
            sample: 16_384,
            threads: 0,
        }
    }
}

/// What one [`ShardedEmbeddingIndex::rebalance`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Sealed rows that participated in the re-clustering.
    pub sealed_rows: usize,
    /// Centroids trained (= sealed shard count; 0 when nothing to do).
    pub centroids: usize,
    /// Lloyd iterations actually run.
    pub iters: usize,
    /// Rows whose shard changed (storage moved; labels and scores do not).
    pub moved: usize,
}

/// A candidate in the k-way heap merge: the head of one shard run's
/// sorted top-k. Ordered so the rank-best hit is the heap maximum.
struct MergeHead {
    hit: QueryHit,
    run: usize,
    pos: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap pops the maximum; reverse rank so "best" is maximal
        EmbeddingIndex::rank(&self.hit, &other.hit).reverse()
    }
}

/// A bounded keeper of the `k` rank-best `(score, global index)` pairs.
/// The heap top is the *worst* retained hit, so an incoming candidate
/// either evicts it or is discarded in `O(log k)`.
///
/// For exact top-k selection, candidates MUST be pushed in ascending
/// index order (the per-shard scans do). That precondition collapses the
/// keep/discard decision to one float compare: a candidate tying the
/// retained worst on score always carries the larger index, so under
/// [`EmbeddingIndex::rank`] it loses — only a strictly greater score
/// evicts. When used as a cross-shard score *floor* (pruning), pushes
/// arrive out of index order; ties then retain an arbitrary hit, but the
/// floor — the worst retained *score* — is unaffected, which is all the
/// pruning comparison reads.
struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<WorstFirst>,
}

struct WorstFirst(QueryHit);

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for WorstFirst {}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // rank() is ascending-is-better; the heap maximum is the worst hit
        EmbeddingIndex::rank(&self.0, &other.0)
    }
}

impl TopK {
    fn new(k: usize) -> Self {
        Self {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    fn push(&mut self, hit: QueryHit) {
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(hit));
        } else if let Some(worst) = self.heap.peek() {
            // exact only for ascending-index pushes; see the type docs
            if hit.score > worst.0.score {
                self.heap.pop();
                self.heap.push(WorstFirst(hit));
            }
        }
    }

    fn into_hits(self) -> Vec<QueryHit> {
        self.heap.into_iter().map(|w| w.0).collect()
    }

    /// Whether `k` hits are retained — the floor is only meaningful then.
    fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Score of the worst retained hit (`-inf` when empty) — the eviction
    /// threshold for the caller's fast path.
    fn worst_score(&self) -> f32 {
        self.heap.peek().map_or(f32::NEG_INFINITY, |w| w.0.score)
    }
}

/// One shard's sorted top-k run: a bounded heap maintained while the rows
/// are scored (a losing row costs one dot product and one float compare —
/// no heap access, no hit construction), then sorted by rank. Shared by
/// the sequential and fanned-out scan paths so their runs are identical.
fn shard_run(
    rows: RowsRef<'_>,
    labels: &[usize],
    dim: usize,
    offset: usize,
    query: &[f32],
    qnorm: f32,
    k: usize,
) -> Vec<QueryHit> {
    let n = labels.len();
    // clamp per shard: a "give me everything" k (even usize::MAX, which
    // the flat index accepts) must not size the heap
    let kk = k.min(n);
    let mut scratch = Vec::with_capacity(dim);
    let mut top = TopK::new(kk);
    for (i, &label) in labels.iter().enumerate().take(kk) {
        top.push(QueryHit {
            index: offset + i,
            label,
            score: rows.score(i, dim, query, qnorm, &mut scratch),
        });
    }
    if kk < n {
        let mut worst = top.worst_score();
        for (i, &label) in labels.iter().enumerate().skip(kk) {
            let score = rows.score(i, dim, query, qnorm, &mut scratch);
            if score > worst {
                top.push(QueryHit {
                    index: offset + i,
                    label,
                    score,
                });
                worst = top.worst_score();
            }
        }
    }
    let mut run = top.into_hits();
    run.sort_unstable_by(EmbeddingIndex::rank);
    run
}

/// The query quantized once per [`ShardedEmbeddingIndex::query_opts`]
/// call with its own symmetric calibration, shared by every int8 shard
/// scan of that query.
struct QuantizedQuery {
    q: Vec<i8>,
    params: QuantParams,
}

impl QuantizedQuery {
    fn new(query: &[f32]) -> Self {
        let params = QuantParams::calibrate(query);
        let mut q = Vec::new();
        params.quantize_into(query, &mut q);
        Self { q, params }
    }
}

/// The int8 fast path of one quantized shard: approximate every row with
/// the integer dot product, then exactly rescore the shortlist the
/// error analysis proves sufficient. Returns the shard's *exact* sorted
/// top-k run plus how many rows were rescored.
///
/// Soundness: with `s_i` the exact (dequantized f32) score and `a_i`
/// the int8 approximation, `|s_i − a_i| ≤ ε` where
/// `ε = max_l1 · step_q / qnorm + slack` (`step_q` is half the query's
/// quantization step; the additive slack absorbs f32 rounding, same
/// rationale as [`PRUNE_SLACK`]). Let `t` be the k-th largest `a`. Any
/// row `x` with `a_x < t − 2ε` has `s_x ≤ a_x + ε < t − ε ≤ s_j` for
/// each of the ≥ k rows with `a_j ≥ t` — strictly below k rows, so `x`
/// cannot be in the exact top-k under any tie-break. Rescoring
/// `{i : a_i ≥ t − 2ε}` therefore reproduces the exact run bit for bit.
#[allow(clippy::too_many_arguments)]
fn shard_run_int8(
    q: &[i8],
    params: QuantParams,
    max_l1: f32,
    labels: &[usize],
    dim: usize,
    offset: usize,
    query: &[f32],
    qq: &QuantizedQuery,
    qnorm: f32,
    k: usize,
) -> (Vec<QueryHit>, usize) {
    let n = labels.len();
    let kk = k.min(n);
    // combined ≤ ~1/127² per integer unit: the products cannot overflow
    // f32 (see dot_i8 — the integer accumulation itself is exact)
    let combined = params.scale * qq.params.scale / qnorm;
    let approx: Vec<f32> = (0..n)
        .map(|i| dot_i8(&q[i * dim..(i + 1) * dim], &qq.q) as f32 * combined)
        .collect();
    let mut tmp = approx.clone();
    let (_, &mut kth, _) = tmp.select_nth_unstable_by(kk - 1, |a, b| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
    });
    let eps = max_l1 * qq.params.step() / qnorm + PRUNE_SLACK;
    let cut = kth - 2.0 * eps;
    let rows = RowsRef::Int8 { q, params };
    let mut scratch = Vec::with_capacity(dim);
    let mut top = TopK::new(kk);
    let mut rescored = 0usize;
    // ascending index order, as TopK's exactness precondition requires
    for (i, &a) in approx.iter().enumerate() {
        if a >= cut {
            rescored += 1;
            top.push(QueryHit {
                index: offset + i,
                label: labels[i],
                score: rows.score(i, dim, query, qnorm, &mut scratch),
            });
        }
    }
    let mut run = top.into_hits();
    run.sort_unstable_by(EmbeddingIndex::rank);
    (run, rescored)
}

/// One shard's exact sorted top-k run built from already-computed exact
/// per-row scores — the same bounded-heap pass as [`shard_run`], minus
/// the scoring. The batched paths gemm a whole block's scores first and
/// then select per query through this single definition.
fn run_from_scores(scores: &[f32], labels: &[usize], offset: usize, k: usize) -> Vec<QueryHit> {
    let n = labels.len();
    let kk = k.min(n);
    let nb = n.div_ceil(64);
    let mut top = TopK::new(kk);
    // A NaN among the first `kk` rows forces the positional walk:
    // [`shard_run`] pushes those rows unconditionally, a retained NaN
    // floor then rejects everything, and [`EmbeddingIndex::rank`] is
    // not a total order over NaN — no filtered walk reproduces that. A
    // NaN *beyond* the head never enters serially (`score > worst` is
    // false), so the filtered walk below drops it the same way.
    let head_nan = scores[..kk].iter().fold(false, |a, &s| a | s.is_nan());
    if kk > 0 && !head_nan && nb > kk {
        // Floor-seeded selection. Block maxes (64-row granules, four
        // independent max chains so the fold isn't latency-bound) give
        // a floor that is valid *before* the walk starts: the `kk`-th
        // largest block max is witnessed by `kk` rows in distinct
        // blocks, so the true `kk`-th best score can only be higher.
        // Rows below the floor — in practice almost all of them, block
        // skips deciding 64 at a time — can then be ignored outright,
        // and the surviving candidates stream through the same
        // ascending-index strict-`>` walk as [`shard_run`], which
        // retains exactly the `kk` rank-best of them (see [`TopK`]).
        let mut bmax: Vec<f32> = Vec::with_capacity(nb);
        for block in scores.chunks(64) {
            // `(s > m) ? s : m` instead of `f32::max`: same result when
            // `m` is never NaN (it starts at -inf and NaN fails the
            // compare), and it lowers to one bare max instruction
            // instead of a NaN-order-correcting sequence
            let mut m = [f32::NEG_INFINITY; 4];
            let mut it = block.chunks_exact(4);
            for ch in &mut it {
                for (mj, &s) in m.iter_mut().zip(ch) {
                    *mj = if s > *mj { s } else { *mj };
                }
            }
            let mut mm = f32::NEG_INFINITY;
            for &mj in &m {
                mm = if mj > mm { mj } else { mm };
            }
            for &s in it.remainder() {
                mm = if s > mm { s } else { mm };
            }
            bmax.push(mm);
        }
        let mut order = bmax.clone();
        let (_, &mut floor, _) = order.select_nth_unstable_by(kk - 1, |a, b| {
            b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut worst = f32::NEG_INFINITY;
        for (bi, &m) in bmax.iter().enumerate() {
            // `<` keeps boundary ties: a top-k row may *equal* the floor
            if m < floor {
                continue;
            }
            let start = bi * 64;
            let end = (start + 64).min(n);
            for i in start..end {
                let score = scores[i];
                if score >= floor && (!top.is_full() || score > worst) {
                    top.push(QueryHit {
                        index: offset + i,
                        label: labels[i],
                        score,
                    });
                    worst = top.worst_score();
                }
            }
        }
    } else {
        // [`shard_run`]'s exact positional walk, minus the scoring
        for (i, &label) in labels.iter().enumerate().take(kk) {
            top.push(QueryHit {
                index: offset + i,
                label,
                score: scores[i],
            });
        }
        let mut worst = top.worst_score();
        for (i, &label) in labels.iter().enumerate().skip(kk) {
            let score = scores[i];
            if score > worst {
                top.push(QueryHit {
                    index: offset + i,
                    label,
                    score,
                });
                worst = top.worst_score();
            }
        }
    }
    let mut run = top.into_hits();
    run.sort_unstable_by(EmbeddingIndex::rank);
    run
}

/// Exact sorted runs of one f32 row block for a *subset* of a query
/// batch: one blocked [`gemm_nt`] streams the rows once for every
/// selected query, then each query's run is selected from its score row.
///
/// Bit-identity with the serial path: a gemm entry accumulates the same
/// products in the same order as [`score_row`]'s dot, and the division
/// by the query norm (with the degenerate-norm zero path) is applied
/// per entry exactly as [`score_row`] applies it.
#[allow(clippy::too_many_arguments)]
fn gemm_runs(
    rows: &[f32],
    labels: &[usize],
    dim: usize,
    offset: usize,
    queries: &[Vec<f32>],
    qnorms: &[f32],
    select: &[usize],
    k: usize,
) -> Vec<Vec<QueryHit>> {
    let n = labels.len();
    let mut qbuf: Vec<f32> = Vec::with_capacity(select.len() * dim);
    for &qi in select {
        qbuf.extend_from_slice(&queries[qi]);
    }
    let mut dots = vec![0.0f32; select.len() * n];
    gemm_nt(&qbuf, rows, dim, &mut dots);
    let mut scores = vec![0.0f32; n];
    let mut out = Vec::with_capacity(select.len());
    for (si, &qi) in select.iter().enumerate() {
        let qnorm = qnorms[qi];
        if !qnorm.is_finite() || qnorm < 1e-12 {
            // score_row's zero-query path, batched
            scores.fill(0.0);
        } else {
            for (s, &d) in scores.iter_mut().zip(&dots[si * n..(si + 1) * n]) {
                *s = d / qnorm;
            }
        }
        out.push(run_from_scores(&scores, labels, offset, k));
    }
    out
}

/// The int8 fast path of one quantized shard against a subset of a query
/// batch: every selected query runs its own integer approximate scan
/// (exactly [`shard_run_int8`]'s), but the exact rescoring walks **one
/// merged shortlist** — a row shortlisted by several queries is
/// dequantized once and rescored through the shared kernel for each of
/// them. Returns each selected query's exact sorted run plus its own
/// rescored-row count (identical to what its serial scan would report).
#[allow(clippy::too_many_arguments)]
fn shard_runs_int8_batch(
    q: &[i8],
    params: QuantParams,
    max_l1: f32,
    labels: &[usize],
    dim: usize,
    offset: usize,
    queries: &[Vec<f32>],
    qnorms: &[f32],
    sel: &[(usize, &QuantizedQuery)],
    k: usize,
) -> Vec<(Vec<QueryHit>, usize)> {
    let n = labels.len();
    let kk = k.min(n);
    let b = sel.len();
    let mut approx = vec![0.0f32; b * n];
    let mut cuts = vec![f32::NEG_INFINITY; b];
    for (si, &(qi, qq)) in sel.iter().enumerate() {
        let qnorm = qnorms[qi];
        let combined = params.scale * qq.params.scale / qnorm;
        let arow = &mut approx[si * n..(si + 1) * n];
        for (i, a) in arow.iter_mut().enumerate() {
            *a = dot_i8(&q[i * dim..(i + 1) * dim], &qq.q) as f32 * combined;
        }
        let mut tmp = arow.to_vec();
        let (_, &mut kth, _) = tmp.select_nth_unstable_by(kk - 1, |a, b| {
            b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
        });
        let eps = max_l1 * qq.params.step() / qnorm + PRUNE_SLACK;
        cuts[si] = kth - 2.0 * eps;
    }
    let mut scratch = Vec::with_capacity(dim);
    let mut tops: Vec<TopK> = (0..b).map(|_| TopK::new(kk)).collect();
    let mut rescored = vec![0usize; b];
    // ascending index order per query, as TopK's exactness requires; the
    // dequantization is hoisted out of the per-query pushes
    for i in 0..n {
        let mut dequantized = false;
        for (si, &(qi, _)) in sel.iter().enumerate() {
            if approx[si * n + i] >= cuts[si] {
                if !dequantized {
                    scratch.clear();
                    scratch.extend(
                        q[i * dim..(i + 1) * dim]
                            .iter()
                            .map(|&c| params.dequantize(c)),
                    );
                    dequantized = true;
                }
                rescored[si] += 1;
                tops[si].push(QueryHit {
                    index: offset + i,
                    label: labels[i],
                    score: score_row(&scratch, &queries[qi], qnorms[qi]),
                });
            }
        }
    }
    tops.into_iter()
        .zip(rescored)
        .map(|(top, rs)| {
            let mut run = top.into_hits();
            run.sort_unstable_by(EmbeddingIndex::rank);
            (run, rs)
        })
        .collect()
}

/// k-way merge of per-shard sorted runs into the global top-k: the heap
/// holds one [`MergeHead`] per non-empty run. `rank()` totally orders
/// hits by (score desc, global index asc), so the merged output is
/// independent of run order — and pruned shards contribute nothing they
/// could have won. Shared by the serial and batched query paths.
fn merge_runs(runs: &[Vec<QueryHit>], k: usize, total: usize) -> Vec<QueryHit> {
    let mut heap = std::collections::BinaryHeap::with_capacity(runs.len());
    for (ri, run) in runs.iter().enumerate() {
        if let Some(&hit) = run.first() {
            heap.push(MergeHead {
                hit,
                run: ri,
                pos: 0,
            });
        }
    }
    let mut out = Vec::with_capacity(k.min(total));
    while out.len() < k {
        let Some(head) = heap.pop() else { break };
        out.push(head.hit);
        let next = head.pos + 1;
        if let Some(&hit) = runs[head.run].get(next) {
            heap.push(MergeHead {
                hit,
                run: head.run,
                pos: next,
            });
        }
    }
    out
}

/// The splitmix64 output function: a stateless deterministic mixer.
/// [`ShardedEmbeddingIndex::rebalance`] draws its k-means sample indices
/// from `mix64(0), mix64(1), …` — reproducible like a stride, but with
/// none of a stride's arithmetic structure to alias against periodic
/// arrival orders.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Squared L2 norm of each centroid, precomputed so nearest-centroid
/// assignment reduces to `argmin ‖c‖² − 2·r·c` (the `‖r‖²` term is
/// constant per row and drops out of the argmin).
fn centroid_norms2(centroids: &[f32], dim: usize) -> Vec<f32> {
    centroids
        .chunks_exact(dim)
        .map(|c| c.iter().map(|&v| v * v).sum())
        .collect()
}

/// Index of the centroid nearest to `row` under squared L2 distance,
/// ties broken toward the lower index (deterministic).
fn nearest_centroid(row: &[f32], centroids: &[f32], cnorm2: &[f32], dim: usize) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (c, (centroid, &n2)) in centroids.chunks_exact(dim).zip(cnorm2).enumerate() {
        let dot: f32 = centroid.iter().zip(row).map(|(&a, &b)| a * b).sum();
        let d = n2 - 2.0 * dot;
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

impl ShardedEmbeddingIndex {
    /// Creates an empty index over `dim`-dimensional embeddings with
    /// `shard_capacity` rows per shard.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `shard_capacity` is zero.
    pub fn new(dim: usize, shard_capacity: usize) -> Self {
        Self::with_storage(dim, shard_capacity, ShardStorage::F32)
    }

    /// [`ShardedEmbeddingIndex::new`] with an explicit sealed-row
    /// representation. [`ShardStorage::Int8`] quantizes each shard as it
    /// seals (~4x less sealed row storage); query results remain
    /// bit-identical to an exhaustive f32 scan of the same index because
    /// the dequantized values are the canonical rows.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `shard_capacity` is zero.
    pub fn with_storage(dim: usize, shard_capacity: usize, storage: ShardStorage) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        assert!(shard_capacity > 0, "shard capacity must be positive");
        Self {
            dim,
            shard_capacity,
            storage,
            sealed: Vec::new(),
            tail: Shard::new(0, dim),
        }
    }

    /// The sealed-row representation this index seals shards into.
    pub fn storage(&self) -> ShardStorage {
        self.storage
    }

    /// Bytes of sealed row payload currently held (codes/floats plus
    /// quantization headers; labels, bounds, and the tail excluded) —
    /// the memory-traffic number [`ShardStorage::Int8`] shrinks ~4x.
    pub fn sealed_row_bytes(&self) -> usize {
        self.sealed.iter().map(|s| s.rows.payload_bytes()).sum()
    }

    /// Re-shards a flat index by copying its normalized rows verbatim —
    /// no re-normalization, so the rows stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `shard_capacity` is zero.
    pub fn from_flat(flat: &EmbeddingIndex, shard_capacity: usize) -> Self {
        let mut index = Self::new(flat.dim(), shard_capacity);
        for (i, &label) in flat.labels().iter().enumerate() {
            index.tail.data.extend_from_slice(flat.normalized_row(i));
            index.tail.labels.push(label);
            index.seal_tail_if_full();
        }
        index
    }

    /// An independent copy that serves queries concurrently with further
    /// inserts on `self`: the sealed shards are shared by `Arc` (no row is
    /// copied) and only the tail — at most one shard — is cloned. This is
    /// the read-mostly serving primitive: a writer keeps ingesting into
    /// the original while any number of reader threads query their own
    /// snapshots, which are immutable and therefore can never observe a
    /// torn tail.
    ///
    /// `Clone` does the same thing; `snapshot` exists to name the intent
    /// at call sites.
    pub fn snapshot(&self) -> Self {
        self.clone()
    }

    /// Total number of indexed embeddings across all shards.
    pub fn len(&self) -> usize {
        self.sealed.len() * self.shard_capacity + self.tail.len()
    }

    /// Whether the index holds no embeddings.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.labels.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rows per shard.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Number of shards currently allocated (sealed plus the tail when it
    /// holds rows).
    pub fn num_shards(&self) -> usize {
        self.sealed.len() + usize::from(!self.tail.labels.is_empty())
    }

    /// Number of sealed (immutable, bound-carrying) shards.
    pub fn num_sealed_shards(&self) -> usize {
        self.sealed.len()
    }

    /// Label of the embedding at global insertion index `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn label(&self, i: usize) -> usize {
        let block = i / self.shard_capacity;
        if block < self.sealed.len() {
            self.sealed[block].labels[i % self.shard_capacity]
        } else {
            self.tail.labels[i - self.sealed.len() * self.shard_capacity]
        }
    }

    /// Labels of all embeddings in insertion order.
    pub fn labels(&self) -> impl Iterator<Item = usize> + '_ {
        self.sealed
            .iter()
            .flat_map(|s| s.labels.iter().copied())
            .chain(self.tail.labels.iter().copied())
    }

    /// The stored (canonical) row at global storage index `i` — borrowed
    /// from f32 storage, dequantized into an owned buffer on quantized
    /// sealed shards.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn normalized_row(&self, i: usize) -> Cow<'_, [f32]> {
        let block = i / self.shard_capacity;
        let dim = self.dim;
        if block < self.sealed.len() {
            let r = i % self.shard_capacity;
            match &self.sealed[block].rows {
                RowBlock::F32(data) => Cow::Borrowed(&data[r * dim..(r + 1) * dim]),
                RowBlock::Int8 { q, params, .. } => Cow::Owned(
                    q[r * dim..(r + 1) * dim]
                        .iter()
                        .map(|&c| params.dequantize(c))
                        .collect(),
                ),
            }
        } else {
            let r = i - self.sealed.len() * self.shard_capacity;
            Cow::Borrowed(&self.tail.data[r * dim..(r + 1) * dim])
        }
    }

    /// Seals the tail into an immutable bound-carrying shard when full.
    fn seal_tail_if_full(&mut self) {
        if self.tail.len() == self.shard_capacity {
            let full = std::mem::replace(&mut self.tail, Shard::new(self.shard_capacity, self.dim));
            self.sealed
                .push(Arc::new(SealedShard::seal(full, self.dim, self.storage)));
        }
    }

    /// Appends one embedding (normalized on the way in, exactly like
    /// [`EmbeddingIndex::insert`]: non-finite or zero-norm rows are stored
    /// as zero rows and score 0 against everything). Fills the tail shard;
    /// the moment the tail reaches capacity it is sealed — centroid,
    /// radius, and max-norm bounds computed once — and a fresh tail opens.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn insert(&mut self, embedding: &[f32], label: usize) {
        assert_eq!(
            embedding.len(),
            self.dim,
            "embedding dimension {} != index dimension {}",
            embedding.len(),
            self.dim
        );
        if self.tail.labels.capacity() == 0 {
            // lazily size the tail so empty indexes stay allocation-free
            self.tail = Shard::new(self.shard_capacity, self.dim);
        }
        normalize_into(embedding, &mut self.tail.data);
        self.tail.labels.push(label);
        self.seal_tail_if_full();
    }

    /// The `k` nearest neighbors of `query` by cosine similarity, highest
    /// first (ties broken by global insertion index) — bit-identical to
    /// the flat [`EmbeddingIndex::query`] over the same insertions, with
    /// default [`QueryOptions`]: bound pruning on, parallel scan gated
    /// behind [`PARALLEL_QUERY_MIN_ROWS`]. `k == 0` yields an empty list.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<QueryHit> {
        self.query_opts(query, k, &QueryOptions::default()).0
    }

    /// [`ShardedEmbeddingIndex::query`] with explicit [`QueryOptions`],
    /// also reporting what the query did ([`QueryStats`]).
    ///
    /// The result is bit-identical for every option combination; options
    /// only steer how much work is spent producing it:
    ///
    /// - **Pruning.** Sealed shards are visited in descending order of
    ///   their precomputed score bound. Once the global top-k floor is
    ///   established, any sealed shard whose bound (plus a rounding slack)
    ///   falls below the floor is skipped outright — and since bounds
    ///   descend and the floor only rises, everything after the first
    ///   pruned shard is pruned with it.
    /// - **Parallelism.** When the corpus is at least
    ///   `parallel_min_rows`, the surviving per-shard scans fan out
    ///   across [`fan_out`] workers (the floor is then seeded from the
    ///   tail and the single best-bound shard rather than updated
    ///   incrementally, which prunes slightly less but keeps workers
    ///   independent). The scanned-shard *set* may differ between the
    ///   serial and parallel paths; the merged result never does.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn query_opts(
        &self,
        query: &[f32],
        k: usize,
        opts: &QueryOptions,
    ) -> (Vec<QueryHit>, QueryStats) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut stats = QueryStats {
            sealed_shards: self.sealed.len(),
            ..QueryStats::default()
        };
        if k == 0 || self.is_empty() {
            return (Vec::new(), stats);
        }
        let qnorm = query_norm(query);
        let total = self.len();
        // quantize the query once when any int8 shard scan could use it;
        // a degenerate qnorm takes score_row's zero-query path, where the
        // int8 approximation math (which divides by qnorm) has no meaning
        let qq = match self.storage {
            ShardStorage::Int8 if opts.int8_scan && qnorm.is_finite() && qnorm >= 1e-12 => {
                Some(QuantizedQuery::new(query))
            }
            _ => None,
        };
        let qq = qq.as_ref();
        // pruning is sound only when some row may be left out at all
        let can_prune = opts.prune && k < total;
        // the floor never needs more slots than the corpus has rows, so a
        // "give me everything" k cannot size this heap; without pruning it
        // is never consulted, so it stays empty
        let mut floor = TopK::new(if can_prune { k.min(total) } else { 0 });
        let mut runs: Vec<Vec<QueryHit>> = Vec::with_capacity(self.num_shards());

        // the tail is always scanned (it has no precomputed bound) and,
        // when pruning, seeds the floor first
        if !self.tail.labels.is_empty() {
            let offset = self.sealed.len() * self.shard_capacity;
            let run = shard_run(
                RowsRef::F32(&self.tail.data),
                &self.tail.labels,
                self.dim,
                offset,
                query,
                qnorm,
                k,
            );
            stats.rows_scanned += self.tail.len();
            if can_prune {
                for &hit in &run {
                    floor.push(hit);
                }
            }
            runs.push(run);
        }

        // worker threads engage only past the row gate, and only when the
        // chunking would actually produce more than one worker
        let threaded = |shards: usize| {
            total >= opts.parallel_min_rows && worker_count(shards, opts.threads) > 1
        };
        // one scan epilogue for every batch path: fans `sids` across
        // workers when `parallel`, else walks them on this thread;
        // returns the per-shard runs plus the rescored-row total
        let scan_batch = |sids: &[usize], parallel: bool| -> (Vec<Vec<QueryHit>>, usize) {
            let scans: Vec<(Vec<QueryHit>, usize)> = if parallel {
                fan_out(sids, opts.threads, |_tid, chunk| {
                    chunk
                        .iter()
                        .map(|&sid| self.sealed_run(sid, query, qq, qnorm, k))
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
            } else {
                sids.iter()
                    .map(|&sid| self.sealed_run(sid, query, qq, qnorm, k))
                    .collect()
            };
            let mut batch_runs = Vec::with_capacity(scans.len());
            let mut rescored = 0;
            for (run, rs) in scans {
                rescored += rs;
                batch_runs.push(run);
            }
            (batch_runs, rescored)
        };
        if !can_prune && !self.sealed.is_empty() {
            // exhaustive scan: the bound order is irrelevant, so skip
            // computing bounds and walk the shards in natural order
            stats.rows_scanned += self.sealed.len() * self.shard_capacity;
            stats.sealed_probed = self.sealed.len();
            stats.parallel = threaded(self.sealed.len());
            let all: Vec<usize> = (0..self.sealed.len()).collect();
            let (batch, rescored) = scan_batch(&all, stats.parallel);
            stats.rows_rescored += rescored;
            runs.extend(batch);
        } else if !self.sealed.is_empty() {
            // visit sealed shards best-bound-first (ties: lower shard id),
            // so the floor rises as fast as possible and the prune walk
            // can stop at the first losing shard
            let mut order: Vec<(usize, f32)> = self
                .sealed
                .iter()
                .map(|s| s.score_bound(query, qnorm))
                .enumerate()
                .collect();
            order.sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });

            let pruned = |floor: &TopK, bound: f32| {
                // strict <: a shard that can only tie the floor may still
                // win a tie-break on insertion index, so it is scanned
                floor.is_full() && bound + PRUNE_SLACK < floor.worst_score()
            };
            if threaded(self.sealed.len()) {
                // seed the floor from the most promising shard, prune the
                // rest against that fixed floor (a lower bound of the
                // final floor, so still sound), then fan the survivors out
                // g4check: allow(unwrap-in-lib): threaded() required rows >= PARALLEL_QUERY_MIN_ROWS, which implies at least one sealed shard in order
                let (&(first, _), rest) = order.split_first().expect("sealed is non-empty");
                let (run, rescored) = self.sealed_run(first, query, qq, qnorm, k);
                stats.rows_scanned += self.shard_capacity;
                stats.rows_rescored += rescored;
                stats.sealed_probed += 1;
                for &hit in &run {
                    floor.push(hit);
                }
                runs.push(run);
                let mut survivors: Vec<usize> = Vec::with_capacity(rest.len());
                for (i, &(sid, bound)) in rest.iter().enumerate() {
                    if pruned(&floor, bound) {
                        // bounds descend from here: everything left loses
                        stats.sealed_pruned = rest.len() - i;
                        break;
                    }
                    survivors.push(sid);
                }
                stats.rows_scanned += survivors.len() * self.shard_capacity;
                stats.sealed_probed += survivors.len();
                // report what actually happened: heavy pruning can leave
                // too few survivors for the fan-out to spawn anything
                stats.parallel = worker_count(survivors.len(), opts.threads) > 1;
                let (batch, rescored) = scan_batch(&survivors, stats.parallel);
                stats.rows_rescored += rescored;
                runs.extend(batch);
            } else {
                for (i, &(sid, bound)) in order.iter().enumerate() {
                    if pruned(&floor, bound) {
                        stats.sealed_pruned = order.len() - i;
                        break;
                    }
                    let (run, rescored) = self.sealed_run(sid, query, qq, qnorm, k);
                    stats.rows_scanned += self.shard_capacity;
                    stats.rows_rescored += rescored;
                    stats.sealed_probed += 1;
                    for &hit in &run {
                        floor.push(hit);
                    }
                    runs.push(run);
                }
            }
        }

        (merge_runs(&runs, k, total), stats)
    }

    /// The *exact* sorted top-k run of one sealed shard, plus how many
    /// rows the int8 shortlist pass rescored (0 on the plain paths).
    /// Quantized shards take the int8 fast path when the caller built a
    /// [`QuantizedQuery`]; otherwise every row is scored exactly through
    /// the shared kernel — both produce the identical run.
    fn sealed_run(
        &self,
        sid: usize,
        query: &[f32],
        qq: Option<&QuantizedQuery>,
        qnorm: f32,
        k: usize,
    ) -> (Vec<QueryHit>, usize) {
        let s = &self.sealed[sid];
        let offset = sid * self.shard_capacity;
        match (&s.rows, qq) {
            (RowBlock::Int8 { q, params, max_l1 }, Some(qq)) => shard_run_int8(
                q, *params, *max_l1, &s.labels, self.dim, offset, query, qq, qnorm, k,
            ),
            _ => (
                shard_run(
                    s.rows.as_ref(),
                    &s.labels,
                    self.dim,
                    offset,
                    query,
                    qnorm,
                    k,
                ),
                0,
            ),
        }
    }

    /// Scores a whole batch of queries in one pass over the index —
    /// results **bit-identical**, query by query, to calling
    /// [`query_opts`](ShardedEmbeddingIndex::query_opts) once per query
    /// with the same `k` and options (a property test holds this line
    /// across f32/int8 storage, rebalanced corpora, and every option
    /// combination).
    ///
    /// What batching changes is only the work schedule:
    ///
    /// - **One gemm per shard.** Each scanned row block streams through
    ///   the cache once for the whole batch (blocked [`gemm_nt`] over the
    ///   shard's rows) instead of once per query, and the gemm's
    ///   independent accumulator chains hide the add latency a one-query
    ///   gemv walk is bound by.
    /// - **One bound walk.** Sealed shards are visited in descending
    ///   order of their *batch-max* score bound; each query keeps its own
    ///   rising top-k floor, a shard is scanned only for the queries
    ///   whose floor its per-query bound still beats, and the walk stops
    ///   outright when the best remaining bound loses to **every**
    ///   query's full floor.
    /// - **One merged shortlist per int8 shard.** Every query runs its
    ///   own integer approximate scan, but a row shortlisted by several
    ///   queries is dequantized once and rescored for each of them.
    ///
    /// Per-query [`QueryStats`] are preserved: a shard counts as probed
    /// (and its rows as scanned) for a query only when its rows were
    /// actually scored *for that query*; `parallel` reports the batch
    /// walk's single fan-out decision for every query.
    ///
    /// # Panics
    ///
    /// Panics if any query's dimension mismatches the index.
    pub fn query_many(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        opts: &QueryOptions,
    ) -> Vec<(Vec<QueryHit>, QueryStats)> {
        for q in queries {
            assert_eq!(q.len(), self.dim, "query dimension mismatch");
        }
        let nq = queries.len();
        let base = QueryStats {
            sealed_shards: self.sealed.len(),
            ..QueryStats::default()
        };
        if nq == 0 {
            return Vec::new();
        }
        if k == 0 || self.is_empty() {
            return (0..nq).map(|_| (Vec::new(), base)).collect();
        }
        let total = self.len();
        let qnorms: Vec<f32> = queries.iter().map(|q| query_norm(q)).collect();
        let qqs: Vec<Option<QuantizedQuery>> = queries
            .iter()
            .zip(&qnorms)
            .map(|(q, &qnorm)| match self.storage {
                ShardStorage::Int8 if opts.int8_scan && qnorm.is_finite() && qnorm >= 1e-12 => {
                    Some(QuantizedQuery::new(q))
                }
                _ => None,
            })
            .collect();
        let mut stats = vec![base; nq];
        let can_prune = opts.prune && k < total;
        let mut floors: Vec<TopK> = (0..nq)
            .map(|_| TopK::new(if can_prune { k.min(total) } else { 0 }))
            .collect();
        let mut runs: Vec<Vec<Vec<QueryHit>>> = (0..nq)
            .map(|_| Vec::with_capacity(self.num_shards()))
            .collect();
        let all: Vec<usize> = (0..nq).collect();

        // the tail is always scanned and, when pruning, seeds every floor
        // first — the batched mirror of the serial walk's opening move
        if !self.tail.labels.is_empty() {
            let offset = self.sealed.len() * self.shard_capacity;
            let tail_runs = gemm_runs(
                &self.tail.data,
                &self.tail.labels,
                self.dim,
                offset,
                queries,
                &qnorms,
                &all,
                k,
            );
            for (qi, run) in tail_runs.into_iter().enumerate() {
                stats[qi].rows_scanned += self.tail.labels.len();
                if can_prune {
                    for &hit in &run {
                        floors[qi].push(hit);
                    }
                }
                runs[qi].push(run);
            }
        }

        let threaded = |shards: usize| {
            total >= opts.parallel_min_rows && worker_count(shards, opts.threads) > 1
        };
        // drains one shard's batch scan into the per-query accumulators
        let absorb = |trio: Vec<(usize, Vec<QueryHit>, usize)>,
                      stats: &mut Vec<QueryStats>,
                      floors: &mut Vec<TopK>,
                      runs: &mut Vec<Vec<Vec<QueryHit>>>,
                      feed_floors: bool| {
            for (qi, run, rescored) in trio {
                stats[qi].sealed_probed += 1;
                stats[qi].rows_scanned += self.shard_capacity;
                stats[qi].rows_rescored += rescored;
                if feed_floors {
                    for &hit in &run {
                        floors[qi].push(hit);
                    }
                }
                runs[qi].push(run);
            }
        };

        if !can_prune && !self.sealed.is_empty() {
            // exhaustive scan: every shard against the whole batch, in
            // natural order — bounds are irrelevant
            let parallel = threaded(self.sealed.len());
            let sids: Vec<usize> = (0..self.sealed.len()).collect();
            let scans: Vec<Vec<(usize, Vec<QueryHit>, usize)>> = if parallel {
                fan_out(&sids, opts.threads, |_tid, chunk| {
                    chunk
                        .iter()
                        .map(|&sid| self.sealed_runs_batch(sid, queries, &qnorms, &qqs, &all, k))
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
            } else {
                sids.iter()
                    .map(|&sid| self.sealed_runs_batch(sid, queries, &qnorms, &qqs, &all, k))
                    .collect()
            };
            for st in stats.iter_mut() {
                st.parallel = parallel;
            }
            for trio in scans {
                absorb(trio, &mut stats, &mut floors, &mut runs, false);
            }
        } else if !self.sealed.is_empty() {
            // one walk order for the whole batch: descending *batch-max*
            // bound (ties: lower shard id). Per-query bounds come from a
            // single gemm over the gathered centroids; each entry is
            // bit-identical to that shard's serial `score_bound`.
            let s_count = self.sealed.len();
            let mut cbuf: Vec<f32> = Vec::with_capacity(s_count * self.dim);
            for s in &self.sealed {
                cbuf.extend_from_slice(&s.centroid);
            }
            let qflat: Vec<f32> = queries.iter().flatten().copied().collect();
            let mut cdots = vec![0.0f32; nq * s_count];
            gemm_nt(&qflat, &cbuf, self.dim, &mut cdots);
            let bound = |sid: usize, qi: usize| -> f32 {
                let s = &self.sealed[sid];
                let qn = qnorms[qi];
                let score = if !qn.is_finite() || qn < 1e-12 {
                    0.0
                } else {
                    cdots[qi * s_count + sid] / qn
                };
                (score + s.radius).min(s.max_norm) + s.quant_slack
            };
            let mut order: Vec<(usize, f32)> = (0..s_count)
                .map(|sid| {
                    let mut mb = f32::NEG_INFINITY;
                    for qi in 0..nq {
                        mb = mb.max(bound(sid, qi));
                    }
                    (sid, mb)
                })
                .collect();
            order.sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });

            let pruned =
                |floor: &TopK, bnd: f32| floor.is_full() && bnd + PRUNE_SLACK < floor.worst_score();
            // batch-wide early stop: bounds descend in batch-max, so once
            // the best remaining bound loses to every query's full floor,
            // everything left is pruned for the whole batch
            let all_lose = |floors: &[TopK], maxb: f32| {
                floors
                    .iter()
                    .all(|f| f.is_full() && maxb + PRUNE_SLACK < f.worst_score())
            };

            if threaded(s_count) {
                // seed every floor from the batch's single most promising
                // shard, prune the rest against those fixed floors (each a
                // lower bound of its final floor, so still sound), then
                // fan the surviving (shard, query subset) scans out
                // g4check: allow(unwrap-in-lib): threaded() required rows >= PARALLEL_QUERY_MIN_ROWS, which implies at least one sealed shard in order
                let (&(first, _), rest) = order.split_first().expect("sealed is non-empty");
                let trio = self.sealed_runs_batch(first, queries, &qnorms, &qqs, &all, k);
                absorb(trio, &mut stats, &mut floors, &mut runs, true);
                let mut survivors: Vec<(usize, Vec<usize>)> = Vec::with_capacity(rest.len());
                for (ri, &(sid, maxb)) in rest.iter().enumerate() {
                    if all_lose(&floors, maxb) {
                        for st in stats.iter_mut() {
                            st.sealed_pruned += rest.len() - ri;
                        }
                        break;
                    }
                    let mut select: Vec<usize> = Vec::with_capacity(nq);
                    for qi in 0..nq {
                        if pruned(&floors[qi], bound(sid, qi)) {
                            stats[qi].sealed_pruned += 1;
                        } else {
                            select.push(qi);
                        }
                    }
                    if !select.is_empty() {
                        survivors.push((sid, select));
                    }
                }
                let parallel = worker_count(survivors.len(), opts.threads) > 1;
                for st in stats.iter_mut() {
                    st.parallel = parallel;
                }
                let scans: Vec<Vec<(usize, Vec<QueryHit>, usize)>> = if parallel {
                    fan_out(&survivors, opts.threads, |_tid, chunk| {
                        chunk
                            .iter()
                            .map(|(sid, select)| {
                                self.sealed_runs_batch(*sid, queries, &qnorms, &qqs, select, k)
                            })
                            .collect::<Vec<_>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect()
                } else {
                    survivors
                        .iter()
                        .map(|(sid, select)| {
                            self.sealed_runs_batch(*sid, queries, &qnorms, &qqs, select, k)
                        })
                        .collect()
                };
                for trio in scans {
                    absorb(trio, &mut stats, &mut floors, &mut runs, false);
                }
            } else {
                for (oi, &(sid, maxb)) in order.iter().enumerate() {
                    if all_lose(&floors, maxb) {
                        for st in stats.iter_mut() {
                            st.sealed_pruned += order.len() - oi;
                        }
                        break;
                    }
                    let mut select: Vec<usize> = Vec::with_capacity(nq);
                    for qi in 0..nq {
                        if pruned(&floors[qi], bound(sid, qi)) {
                            stats[qi].sealed_pruned += 1;
                        } else {
                            select.push(qi);
                        }
                    }
                    if select.is_empty() {
                        continue;
                    }
                    let trio = self.sealed_runs_batch(sid, queries, &qnorms, &qqs, &select, k);
                    absorb(trio, &mut stats, &mut floors, &mut runs, true);
                }
            }
        }

        runs.into_iter()
            .zip(stats)
            .map(|(qruns, st)| (merge_runs(&qruns, k, total), st))
            .collect()
    }

    /// One sealed shard scanned for a subset of the batch: the f32 arm
    /// gemms the rows once for every selected query; the int8 arm splits
    /// the selection into integer-scan queries (merged-shortlist
    /// rescoring) and exact-walk queries (the rows dequantized once, then
    /// gemmed). Returns `(query index, exact sorted run, rescored rows)`
    /// triples.
    fn sealed_runs_batch(
        &self,
        sid: usize,
        queries: &[Vec<f32>],
        qnorms: &[f32],
        qqs: &[Option<QuantizedQuery>],
        select: &[usize],
        k: usize,
    ) -> Vec<(usize, Vec<QueryHit>, usize)> {
        let s = &self.sealed[sid];
        let offset = sid * self.shard_capacity;
        let mut out = Vec::with_capacity(select.len());
        match &s.rows {
            RowBlock::F32(data) => {
                let batch = gemm_runs(
                    data, &s.labels, self.dim, offset, queries, qnorms, select, k,
                );
                for (&qi, run) in select.iter().zip(batch) {
                    out.push((qi, run, 0));
                }
            }
            RowBlock::Int8 { q, params, max_l1 } => {
                let mut fast: Vec<(usize, &QuantizedQuery)> = Vec::with_capacity(select.len());
                let mut exact: Vec<usize> = Vec::new();
                for &qi in select {
                    match qqs[qi].as_ref() {
                        Some(qq) => fast.push((qi, qq)),
                        None => exact.push(qi),
                    }
                }
                if !fast.is_empty() {
                    let batch = shard_runs_int8_batch(
                        q, *params, *max_l1, &s.labels, self.dim, offset, queries, qnorms, &fast, k,
                    );
                    for (&(qi, _), (run, rescored)) in fast.iter().zip(batch) {
                        out.push((qi, run, rescored));
                    }
                }
                if !exact.is_empty() {
                    // the dequantized values are the canonical rows, so the
                    // exact walk is an f32 gemm over them
                    let mut deq = vec![0.0f32; s.labels.len() * self.dim];
                    s.rows.as_ref().copy_all_into(&mut deq);
                    let batch = gemm_runs(
                        &deq, &s.labels, self.dim, offset, queries, qnorms, &exact, k,
                    );
                    for (&qi, run) in exact.iter().zip(batch) {
                        out.push((qi, run, 0));
                    }
                }
            }
        }
        out
    }

    /// All shard storage in storage order: sealed blocks, then the tail
    /// when it holds rows.
    pub(crate) fn shard_blocks(&self) -> Vec<(RowsRef<'_>, &[usize])> {
        let mut v: Vec<(RowsRef<'_>, &[usize])> = self
            .sealed
            .iter()
            .map(|s| (s.rows.as_ref(), s.labels.as_slice()))
            .collect();
        if !self.tail.labels.is_empty() {
            v.push((RowsRef::F32(&self.tail.data), self.tail.labels.as_slice()));
        }
        v
    }

    /// Visits the cosine-similarity Gram matrix one shard×shard block at a
    /// time: `f(row_offset, col_offset, block)` where `block[i][j]` is the
    /// similarity of global rows `row_offset + i` and `col_offset + j`.
    ///
    /// Block buffers come from `ws` and are recycled across blocks, so the
    /// peak footprint is three `shard_capacity`-bounded matrices no matter
    /// how large the corpus grows — the full `n×n` Gram is never
    /// materialized. Each element is the same contiguous-row dot product
    /// the flat index's [`EmbeddingIndex::pairwise_similarity`] computes,
    /// so block values match it bit for bit.
    pub fn for_each_similarity_block<F>(&self, ws: &mut Workspace, mut f: F)
    where
        F: FnMut(usize, usize, &Matrix),
    {
        let shards = self.shard_blocks();
        let mut row_offset = 0;
        for &(qdata, qlabels) in &shards {
            let qn = qlabels.len();
            let mut qm = ws.acquire(qn, self.dim);
            qdata.copy_all_into(qm.as_mut_slice());
            let mut col_offset = 0;
            for &(ddata, dlabels) in &shards {
                let dn = dlabels.len();
                let mut dm = ws.acquire(dn, self.dim);
                ddata.copy_all_into(dm.as_mut_slice());
                let mut block = ws.acquire(qn, dn);
                qm.matmul_nt_into(&dm, &mut block);
                f(row_offset, col_offset, &block);
                ws.release(block);
                ws.release(dm);
                col_offset += dn;
            }
            ws.release(qm);
            row_offset += qn;
        }
    }

    /// Mean precision@k of same-label retrieval — the sharded, blocked
    /// form of [`EmbeddingIndex::precision_at_k`], and numerically
    /// identical to it: `k` clamps to `len() - 1`, fewer than two points
    /// report 0.0, and the per-query neighbor sets agree exactly because
    /// both sides select under the same total order on finite scores.
    ///
    /// Peak memory is `O(n·k)` for the per-row candidate keepers plus one
    /// shard×shard block, never the `n×n` Gram.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn precision_at_k(&self, k: usize) -> f64 {
        self.precision_at_k_ws(k, &mut Workspace::new())
    }

    /// [`ShardedEmbeddingIndex::precision_at_k`] with a caller-provided
    /// workspace, so repeated evaluations reuse warm block buffers.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn precision_at_k_ws(&self, k: usize, ws: &mut Workspace) -> f64 {
        assert!(k > 0, "k must be positive");
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let k = k.min(n - 1);
        let mut tops: Vec<TopK> = (0..n).map(|_| TopK::new(k)).collect();
        self.for_each_similarity_block(ws, |row_offset, col_offset, block| {
            for i in 0..block.rows() {
                let q = row_offset + i;
                for (j, &score) in block.row(i).iter().enumerate() {
                    let g = col_offset + j;
                    if g != q {
                        tops[q].push(QueryHit {
                            index: g,
                            label: 0, // resolved after selection
                            score,
                        });
                    }
                }
            }
        });
        let mut total = 0.0f64;
        for (q, top) in tops.into_iter().enumerate() {
            let own = self.label(q);
            let hits = top
                .into_hits()
                .iter()
                .filter(|h| self.label(h.index) == own)
                .count();
            total += hits as f64 / k as f64;
        }
        total / n as f64
    }

    // --- rebalance (IVF routing) ---------------------------------------

    /// Re-clusters the *sealed* rows into centroid-aligned shards so the
    /// descending-bound walk of [`ShardedEmbeddingIndex::query_opts`]
    /// prunes well regardless of arrival order — the IVF coarse-quantizer
    /// stage. The open tail is untouched.
    ///
    /// Centroids are seeded from the current shard centroids and refined
    /// with Lloyd iterations over a deterministic strided sample; the
    /// final assignment visits every sealed row (fanned out across
    /// threads), then rows are regrouped by `(cluster, original index)`
    /// with a stable sort and resealed through the normal path, which
    /// recomputes every bound (and re-quantizes on
    /// [`ShardStorage::Int8`] indexes, recalibrating each new shard).
    ///
    /// The row *set* is preserved: every `(label, row)` pair survives.
    /// On [`ShardStorage::F32`] canonical values are bit-identical, so
    /// query results keep the same labels and scores — only
    /// [`QueryHit::index`] (the storage position) changes, along with
    /// how effectively shards prune. On [`ShardStorage::Int8`] the new
    /// shards re-calibrate, so canonical values may shift within one
    /// quantization step of the (already dequantized) inputs. The whole
    /// pass is deterministic: no RNG, no wall clock, stable tie-breaks.
    pub fn rebalance(&mut self, opts: &RebalanceOptions) -> RebalanceReport {
        let k = self.sealed.len();
        let cap = self.shard_capacity;
        let dim = self.dim;
        if k < 2 {
            return RebalanceReport {
                sealed_rows: k * cap,
                centroids: k,
                iters: 0,
                moved: 0,
            };
        }
        let n = k * cap;

        // Gather the canonical (dequantized) rows and labels once.
        let mut rows = vec![0.0f32; n * dim];
        let mut labels: Vec<usize> = Vec::with_capacity(n);
        for (si, s) in self.sealed.iter().enumerate() {
            s.rows
                .as_ref()
                .copy_all_into(&mut rows[si * cap * dim..(si + 1) * cap * dim]);
            labels.extend_from_slice(&s.labels);
        }

        // A strided sample aliases with periodic arrival: round-robin
        // ingest makes the cluster of row `i` a function of `i mod p`,
        // and any stride sharing a factor with `p` then samples only a
        // subset of the clusters — Lloyd never sees the rest and cannot
        // separate them. Drawing indices from a splitmix64 counter
        // stream keeps the sample deterministic but structure-free;
        // occasional duplicate indices merely double-weight a row.
        let sample = opts.sample.clamp(k, n);
        let sample_ids: Vec<usize> = (0..sample as u64)
            .map(|t| (mix64(t) % n as u64) as usize)
            .collect();

        // Deterministic farthest-point seeding over the sample. (Seeding
        // from the current shard centroids would collapse under
        // round-robin arrival — every shard then holds a slice of every
        // cluster, so all shard centroids coincide and Lloyd cannot pull
        // them apart.) Ties break toward the lower index; no RNG.
        let row_of = |ri: usize| &rows[ri * dim..(ri + 1) * dim];
        let mut centroids = vec![0.0f32; k * dim];
        centroids[..dim].copy_from_slice(row_of(sample_ids[0]));
        let d2 = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
        };
        let mut nearest2: Vec<f32> = sample_ids
            .iter()
            .map(|&ri| d2(row_of(ri), &centroids[..dim]))
            .collect();
        for c in 1..k {
            let mut far = 0usize;
            let mut far_d = -1.0f32;
            for (i, &d) in nearest2.iter().enumerate() {
                if d > far_d {
                    far_d = d;
                    far = i;
                }
            }
            let seed = row_of(sample_ids[far]).to_vec();
            centroids[c * dim..(c + 1) * dim].copy_from_slice(&seed);
            for (nd, &ri) in nearest2.iter_mut().zip(&sample_ids) {
                *nd = nd.min(d2(row_of(ri), &seed));
            }
        }
        let mut iters_run = 0;
        for _ in 0..opts.iters {
            let cnorm2 = centroid_norms2(&centroids, dim);
            let mut sums = vec![0.0f64; k * dim];
            let mut counts = vec![0usize; k];
            for &ri in &sample_ids {
                let row = &rows[ri * dim..(ri + 1) * dim];
                let c = nearest_centroid(row, &centroids, &cnorm2, dim);
                counts[c] += 1;
                for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(row) {
                    *s += f64::from(v);
                }
            }
            for c in 0..k {
                // an empty cluster keeps its previous centroid so the
                // shard count stays fixed
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for (dst, &s) in centroids[c * dim..(c + 1) * dim]
                        .iter_mut()
                        .zip(&sums[c * dim..(c + 1) * dim])
                    {
                        *dst = (s * inv) as f32;
                    }
                }
            }
            iters_run += 1;
        }

        // Full assignment pass over every sealed row, fanned out.
        let cnorm2 = centroid_norms2(&centroids, dim);
        let ids: Vec<usize> = (0..n).collect();
        let assign: Vec<usize> = fan_out(&ids, opts.threads, |_, chunk| {
            chunk
                .iter()
                .map(|&ri| {
                    nearest_centroid(&rows[ri * dim..(ri + 1) * dim], &centroids, &cnorm2, dim)
                })
                .collect::<Vec<usize>>()
        })
        .into_iter()
        .flatten()
        .collect();

        // Cluster sizes rarely divide the shard capacity, so some shards
        // straddle two consecutive clusters of the concatenation — and
        // the farthest-point seeding order would put maximally *distant*
        // clusters next to each other, giving every straddling shard a
        // covering radius near the inter-cluster distance (and a useless
        // bound). Rank the clusters along a greedy nearest-neighbor
        // chain instead: a straddling shard then mixes the most similar
        // cluster pair available and its bound stays tight.
        let mut rank = vec![0usize; k];
        {
            let mut visited = vec![false; k];
            let mut cur = 0usize;
            visited[0] = true;
            for pos in 1..k {
                let from = centroids[cur * dim..(cur + 1) * dim].to_vec();
                let mut next = 0usize;
                let mut next_d = f32::INFINITY;
                for (c, cand) in centroids.chunks_exact(dim).enumerate() {
                    if !visited[c] {
                        let d = d2(&from, cand);
                        if d < next_d {
                            next_d = d;
                            next = c;
                        }
                    }
                }
                visited[next] = true;
                rank[next] = pos;
                cur = next;
            }
        }

        // Stable regroup by (chain rank of cluster, original index) —
        // deterministic tie-break, and rows of one cluster stay in
        // arrival order.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&ri| (rank[assign[ri]], ri));

        let mut moved = 0usize;
        let mut sealed = Vec::with_capacity(k);
        for (new_sid, chunk) in order.chunks(cap).enumerate() {
            let mut shard = Shard::new(cap, dim);
            for &ri in chunk {
                if ri / cap != new_sid {
                    moved += 1;
                }
                shard.labels.push(labels[ri]);
                shard
                    .data
                    .extend_from_slice(&rows[ri * dim..(ri + 1) * dim]);
            }
            sealed.push(Arc::new(SealedShard::seal(shard, dim, self.storage)));
        }
        self.sealed = sealed;

        RebalanceReport {
            sealed_rows: n,
            centroids: k,
            iters: iters_run,
            moved,
        }
    }

    // --- persistence ---------------------------------------------------

    /// Serializes the index through the `G4IP` artifact format (v2: the
    /// sealed-shard bounds ride along, so loading skips recomputing
    /// them), pinned to `pinned_checksum` — by convention the weights
    /// checksum of the model whose embeddings fill the index, so a stale
    /// index cannot silently serve scores for weights that no longer
    /// exist (the same pinning discipline as the embedding-library
    /// artifact). Rows round-trip bit-exactly; quantized shards
    /// serialize their dequantized (canonical) rows, so the reload is a
    /// plain-f32 index with identical scores.
    pub fn to_bytes(&self, pinned_checksum: u64) -> Vec<u8> {
        let mut w = BinWriter::with_version(SHARD_INDEX_KIND, SHARD_INDEX_VERSION);
        w.u64(pinned_checksum);
        w.len_of(self.dim);
        w.len_of(self.shard_capacity);
        w.len_of(self.num_shards());
        let mut scratch: Vec<f32> = Vec::new();
        for shard in &self.sealed {
            w.len_of(shard.labels.len());
            for &l in &shard.labels {
                w.u64(l as u64);
            }
            match &shard.rows {
                RowBlock::F32(data) => {
                    for &v in data {
                        w.f32(v);
                    }
                    // v2: full shards carry their precomputed bounds
                    for &v in &shard.centroid {
                        w.f32(v);
                    }
                    w.f32(shard.radius);
                    w.f32(shard.max_norm);
                }
                block @ RowBlock::Int8 { .. } => {
                    // The dequantized values are the canonical rows of a
                    // quantized shard, and a v2 reload scores them as plain
                    // f32 with zero quantization slack — so the serialized
                    // bounds must be recomputed from the dequantized data,
                    // not copied from the (pre-quantization) stored bounds,
                    // or the reload could over-prune.
                    scratch.resize(shard.labels.len() * self.dim, 0.0);
                    block.as_ref().copy_all_into(&mut scratch);
                    for &v in &scratch {
                        w.f32(v);
                    }
                    let (centroid, radius, max_norm) = compute_bounds(&scratch, self.dim);
                    for &v in &centroid {
                        w.f32(v);
                    }
                    w.f32(radius);
                    w.f32(max_norm);
                }
            }
        }
        if !self.tail.labels.is_empty() {
            w.len_of(self.tail.labels.len());
            for &l in &self.tail.labels {
                w.u64(l as u64);
            }
            for &v in &self.tail.data {
                w.f32(v);
            }
        }
        w.finish()
    }

    /// Reads back the checksum an artifact was pinned to, without
    /// deserializing the shards (e.g. to report *which* weights an index
    /// belongs to before deciding to load it).
    ///
    /// # Errors
    ///
    /// Fails on a corrupt or wrong-kind artifact.
    pub fn pinned_checksum(bytes: &[u8]) -> Result<u64, String> {
        BinReader::open_versioned(bytes, SHARD_INDEX_KIND, SHARD_INDEX_VERSION)?.u64()
    }

    /// Restores an index serialized by [`ShardedEmbeddingIndex::to_bytes`].
    /// v2 artifacts restore the sealed-shard bounds directly; v1 artifacts
    /// (which predate the bounds) load by recomputing them, producing a
    /// bit-identical index either way.
    ///
    /// # Errors
    ///
    /// Fails on corrupt artifacts, on a checksum-pin mismatch (an index
    /// built by different weights is rejected rather than silently serving
    /// stale similarities), and on shard layouts that violate the
    /// fixed-capacity invariant.
    pub fn from_bytes(bytes: &[u8], expected_checksum: u64) -> Result<Self, String> {
        let mut r = BinReader::open_versioned(bytes, SHARD_INDEX_KIND, SHARD_INDEX_VERSION)?;
        let pinned = r.u64()?;
        if pinned != expected_checksum {
            return Err(format!(
                "shard index was built by weights {pinned:#018x}, \
                 expected {expected_checksum:#018x}; re-embed instead of loading"
            ));
        }
        let dim = r.len_of()?;
        let shard_capacity = r.len_of()?;
        if dim == 0 || shard_capacity == 0 {
            return Err(format!(
                "shard index declares zero dim ({dim}) or capacity ({shard_capacity})"
            ));
        }
        let row_bytes = dim
            .checked_mul(4)
            .and_then(|b| b.checked_add(8))
            .ok_or_else(|| format!("implausible dimension {dim}"))?;
        let n_shards = r.count_of(8)?; // every shard carries a row count
        let mut sealed = Vec::with_capacity(n_shards);
        let mut tail = Shard::new(0, dim);
        for si in 0..n_shards {
            let rows = r.count_of(row_bytes)?;
            let expect_full = si + 1 < n_shards;
            if rows > shard_capacity || rows == 0 || (expect_full && rows != shard_capacity) {
                return Err(format!(
                    "shard {si} holds {rows} rows, violating capacity {shard_capacity}"
                ));
            }
            // reserve from `rows` (count_of-bounded by remaining payload),
            // never from the untrusted `shard_capacity` field — a forged
            // capacity must not drive a multi-GB allocation
            let mut shard = Shard::new(rows, dim);
            for _ in 0..rows {
                shard.labels.push(
                    usize::try_from(r.u64()?).map_err(|_| "label overflows usize".to_string())?,
                );
            }
            for _ in 0..rows * dim {
                shard.data.push(r.f32()?);
            }
            if rows == shard_capacity {
                // a full shard is sealed; its bounds are stored from v2 on
                let block = if r.version() >= 2 {
                    let mut centroid = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        centroid.push(r.f32()?);
                    }
                    let radius = r.f32()?;
                    let max_norm = r.f32()?;
                    // reject corrupt bounds outright: a forged -inf
                    // centroid component or negative radius would not
                    // crash, it would silently over-prune true top-k
                    // hits, which is worse (NaN alone degrades safely —
                    // every pruning comparison fails — but there is no
                    // reason to accept it)
                    let sane = |v: f32| v.is_finite() && v >= 0.0;
                    if !sane(radius) || !sane(max_norm) || centroid.iter().any(|v| !v.is_finite()) {
                        return Err(format!(
                            "shard {si} carries corrupt bounds \
                             (radius {radius}, max_norm {max_norm}, or non-finite centroid)"
                        ));
                    }
                    SealedShard::from_f32_parts(
                        shard.data,
                        shard.labels,
                        centroid,
                        radius,
                        max_norm,
                    )
                } else {
                    SealedShard::seal(shard, dim, ShardStorage::F32)
                };
                sealed.push(Arc::new(block));
            } else {
                // the (non-full) last shard becomes the open tail
                tail = shard;
            }
        }
        r.done()?;
        Ok(Self {
            dim,
            shard_capacity,
            sealed,
            tail,
            storage: ShardStorage::F32,
        })
    }

    /// Writes the artifact to `path` (atomic: temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error as text.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
        pinned_checksum: u64,
    ) -> Result<(), String> {
        write_artifact(path.as_ref(), &self.to_bytes(pinned_checksum))
    }

    /// Loads an artifact written by [`ShardedEmbeddingIndex::save`].
    ///
    /// # Errors
    ///
    /// Returns I/O, format, or checksum-pin errors as text.
    pub fn load(path: impl AsRef<std::path::Path>, expected_checksum: u64) -> Result<Self, String> {
        Self::from_bytes(&read_artifact(path.as_ref())?, expected_checksum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_rows(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| {
                        let x = ((i * 31 + j * 17) as u64).wrapping_mul(2654435761) % 97;
                        x as f32 / 97.0 - 0.5
                    })
                    .collect()
            })
            .collect()
    }

    fn both(n: usize, dim: usize, cap: usize) -> (EmbeddingIndex, ShardedEmbeddingIndex) {
        let rows = seeded_rows(n, dim);
        let mut flat = EmbeddingIndex::new(dim);
        let mut sharded = ShardedEmbeddingIndex::new(dim, cap);
        for (i, row) in rows.iter().enumerate() {
            flat.insert(row, i % 5);
            sharded.insert(row, i % 5);
        }
        (flat, sharded)
    }

    /// Every interesting option combination: serial/parallel ×
    /// pruned/exhaustive.
    fn option_grid() -> Vec<QueryOptions> {
        let mut grid = Vec::new();
        for prune in [false, true] {
            for (threads, parallel_min_rows) in [(1, usize::MAX), (3, 0), (0, 0)] {
                for int8_scan in [false, true] {
                    grid.push(QueryOptions {
                        prune,
                        threads,
                        parallel_min_rows,
                        int8_scan,
                    });
                }
            }
        }
        grid
    }

    #[test]
    fn shards_fill_to_capacity_in_insertion_order() {
        let (_, sharded) = both(10, 3, 4);
        assert_eq!(sharded.len(), 10);
        assert_eq!(sharded.num_shards(), 3); // 4 + 4 + 2
        assert_eq!(sharded.num_sealed_shards(), 2);
        for i in 0..10 {
            assert_eq!(sharded.label(i), i % 5);
        }
        assert_eq!(sharded.labels().collect::<Vec<_>>().len(), 10);
    }

    #[test]
    fn query_matches_flat_bit_for_bit() {
        for cap in [1, 3, 4, 7, 64] {
            let (flat, sharded) = both(23, 6, cap);
            let q: Vec<f32> = (0..6).map(|j| 0.3 - j as f32 * 0.1).collect();
            for k in [1, 2, 5, 23, 40] {
                let a = flat.query(&q, k);
                let b = sharded.query(&q, k);
                assert_eq!(a.len(), b.len(), "cap {cap} k {k}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.index, y.index, "cap {cap} k {k}");
                    assert_eq!(x.label, y.label);
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
                // and under every option combination
                for opts in option_grid() {
                    let (c, _) = sharded.query_opts(&q, k, &opts);
                    assert_eq!(b, c, "cap {cap} k {k} opts {opts:?}");
                }
            }
        }
    }

    /// A batch of seeded queries exercising distinct directions, plus a
    /// zero query and a poisoned (NaN) query so the batched path must
    /// reproduce the degenerate zero-score behavior per query.
    fn query_batch(b: usize, dim: usize) -> Vec<Vec<f32>> {
        let mut qs: Vec<Vec<f32>> = (0..b)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * 13 + j * 7) % 19) as f32 / 19.0 - 0.4)
                    .collect()
            })
            .collect();
        if b > 2 {
            qs[b / 2] = vec![0.0; dim];
            qs[b - 1][0] = f32::NAN;
        }
        qs
    }

    fn assert_batch_matches_serial(
        index: &ShardedEmbeddingIndex,
        queries: &[Vec<f32>],
        k: usize,
        opts: &QueryOptions,
        ctx: &str,
    ) {
        let batch = index.query_many(queries, k, opts);
        assert_eq!(batch.len(), queries.len(), "{ctx}");
        for (qi, (q, (hits, stats))) in queries.iter().zip(&batch).enumerate() {
            let (serial, _) = index.query_opts(q, k, opts);
            assert_eq!(hits.len(), serial.len(), "{ctx} query {qi}");
            for (x, y) in hits.iter().zip(&serial) {
                assert_eq!(x.index, y.index, "{ctx} query {qi}");
                assert_eq!(x.label, y.label, "{ctx} query {qi}");
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "{ctx} query {qi}: {} vs {}",
                    x.score,
                    y.score
                );
            }
            assert_eq!(stats.sealed_shards, index.num_sealed_shards(), "{ctx}");
            if opts.prune {
                assert_eq!(
                    stats.sealed_probed + stats.sealed_pruned,
                    stats.sealed_shards,
                    "{ctx} query {qi}: every shard is probed or pruned per query"
                );
            }
        }
    }

    #[test]
    fn query_many_matches_serial_bit_for_bit_f32() {
        for cap in [1, 4, 7] {
            let (_, sharded) = both(37, 6, cap);
            let queries = query_batch(6, 6);
            for k in [1, 3, 37, 50] {
                for opts in option_grid() {
                    assert_batch_matches_serial(
                        &sharded,
                        &queries,
                        k,
                        &opts,
                        &format!("f32 cap {cap} k {k} opts {opts:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn query_many_matches_serial_bit_for_bit_int8() {
        for (n, cap) in [(23, 4), (40, 8)] {
            let index = int8_index(n, 6, cap);
            let queries = query_batch(5, 6);
            for k in [1, 3, n] {
                for opts in option_grid() {
                    assert_batch_matches_serial(
                        &index,
                        &queries,
                        k,
                        &opts,
                        &format!("int8 n {n} cap {cap} k {k} opts {opts:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn query_many_matches_serial_after_rebalance() {
        for storage in [ShardStorage::F32, ShardStorage::Int8] {
            let rows = seeded_rows(60, 6);
            let mut index = ShardedEmbeddingIndex::with_storage(6, 8, storage);
            for (i, row) in rows.iter().enumerate() {
                index.insert(row, i % 5);
            }
            index.rebalance(&RebalanceOptions::default());
            let queries = query_batch(6, 6);
            for opts in option_grid() {
                assert_batch_matches_serial(
                    &index,
                    &queries,
                    4,
                    &opts,
                    &format!("rebalanced {storage:?} opts {opts:?}"),
                );
            }
        }
    }

    #[test]
    fn query_many_edge_batches() {
        let (_, sharded) = both(12, 4, 4);
        // empty batch
        assert!(sharded
            .query_many(&[], 3, &QueryOptions::default())
            .is_empty());
        // k == 0 returns one empty result per query
        let qs = query_batch(3, 4);
        let zero = sharded.query_many(&qs, 0, &QueryOptions::default());
        assert_eq!(zero.len(), 3);
        assert!(zero.iter().all(|(hits, _)| hits.is_empty()));
        // singleton batch goes through the same batched machinery
        assert_batch_matches_serial(&sharded, &qs[..1], 3, &QueryOptions::default(), "singleton");
        // empty index
        let empty = ShardedEmbeddingIndex::new(4, 4);
        let none = empty.query_many(&qs, 3, &QueryOptions::default());
        assert!(none.iter().all(|(hits, _)| hits.is_empty()));
    }

    #[test]
    fn query_many_prunes_and_shares_the_walk() {
        // clustered corpus (see pruning_skips_losing_shards_on_clustered_
        // data): two queries into different clusters must each keep their
        // own pruning decisions while sharing one walk
        let dim = 6;
        let mut sharded = ShardedEmbeddingIndex::new(dim, 8);
        for c in 0..6 {
            for i in 0..8 {
                let mut row = vec![0.0f32; dim];
                row[c] = 1.0;
                row[(c + 1) % dim] = 0.02 * i as f32;
                sharded.insert(&row, c);
            }
        }
        let mut q2 = vec![0.0f32; dim];
        q2[2] = 1.0;
        let mut q5 = vec![0.0f32; dim];
        q5[4] = 1.0;
        let opts = QueryOptions {
            prune: true,
            threads: 1,
            parallel_min_rows: usize::MAX,
            int8_scan: true,
        };
        let queries = vec![q2.clone(), q5.clone()];
        assert_batch_matches_serial(&sharded, &queries, 4, &opts, "clustered pair");
        let batch = sharded.query_many(&queries, 4, &opts);
        for (qi, (hits, stats)) in batch.iter().enumerate() {
            assert_eq!(hits[0].label, [2usize, 4][qi]);
            assert!(
                stats.sealed_pruned >= 3,
                "query {qi} should prune most foreign clusters: {stats:?}"
            );
        }
    }

    #[test]
    fn pruning_skips_losing_shards_on_clustered_data() {
        // 6 tight clusters of 8 rows along distinct axes; shards align
        // with clusters, so a query into one cluster makes the others'
        // bounds hopeless
        let dim = 6;
        let mut sharded = ShardedEmbeddingIndex::new(dim, 8);
        let mut flat = EmbeddingIndex::new(dim);
        for c in 0..6 {
            for i in 0..8 {
                let mut row = vec![0.0f32; dim];
                row[c] = 1.0;
                row[(c + 1) % dim] = 0.02 * i as f32; // small in-cluster spread
                flat.insert(&row, c);
                sharded.insert(&row, c);
            }
        }
        let mut q = vec![0.0f32; dim];
        q[2] = 1.0;
        let opts = QueryOptions {
            prune: true,
            threads: 1,
            parallel_min_rows: usize::MAX,
            int8_scan: true,
        };
        let (hits, stats) = sharded.query_opts(&q, 4, &opts);
        assert_eq!(hits, flat.query(&q, 4));
        assert!(hits.iter().all(|h| h.label == 2));
        assert_eq!(stats.sealed_shards, 6);
        assert!(
            stats.sealed_pruned >= 4,
            "expected most shards pruned, got {stats:?}"
        );
        assert!(stats.rows_scanned < 48);
        // exhaustive scan agrees and scans everything
        let (all, full) = sharded.query_opts(
            &q,
            4,
            &QueryOptions {
                prune: false,
                ..opts
            },
        );
        assert_eq!(all, hits);
        assert_eq!(full.sealed_pruned, 0);
        assert_eq!(full.rows_scanned, 48);
    }

    #[test]
    fn parallel_scan_is_bit_identical_and_reports_itself() {
        let (flat, sharded) = both(40, 5, 4);
        let q = [0.4, -0.2, 0.1, 0.3, -0.5];
        let opts = QueryOptions {
            prune: false,
            threads: 4,
            parallel_min_rows: 0,
            int8_scan: true,
        };
        let (hits, stats) = sharded.query_opts(&q, 7, &opts);
        assert_eq!(hits, flat.query(&q, 7));
        assert!(stats.parallel, "threshold 0 must engage the fan-out");
        // below the threshold the same query stays serial
        let (same, serial) = sharded.query_opts(
            &q,
            7,
            &QueryOptions {
                parallel_min_rows: usize::MAX,
                ..opts
            },
        );
        assert_eq!(same, hits);
        assert!(!serial.parallel);
    }

    #[test]
    fn snapshot_is_immutable_under_later_inserts() {
        let (_, mut sharded) = both(10, 3, 4);
        let snap = sharded.snapshot();
        let q = [0.5, -0.1, 0.3];
        let before = snap.query(&q, 5);
        // writer keeps inserting: fills the tail, seals, opens a new tail
        for i in 0..9 {
            sharded.insert(&[i as f32 * 0.1, 0.2, -0.3], 99);
        }
        assert_eq!(sharded.len(), 19);
        assert_eq!(snap.len(), 10, "snapshot must not see later inserts");
        assert_eq!(snap.query(&q, 5), before, "snapshot answers must be stable");
        // the snapshot shares sealed storage with the original
        assert!(Arc::ptr_eq(&snap.sealed[0], &sharded.sealed[0]));
    }

    #[test]
    fn precision_matches_flat_exactly() {
        for cap in [1, 4, 9, 64] {
            let (flat, sharded) = both(17, 5, cap);
            for k in [1, 3, 8, 30] {
                assert_eq!(
                    flat.precision_at_k(k).to_bits(),
                    sharded.precision_at_k(k).to_bits(),
                    "cap {cap} k {k}"
                );
            }
        }
    }

    #[test]
    fn from_flat_reshards_without_renormalizing() {
        let (flat, sharded) = both(11, 4, 3);
        let reshard = ShardedEmbeddingIndex::from_flat(&flat, 3);
        assert_eq!(reshard, sharded);
    }

    #[test]
    fn non_finite_rows_behave_like_flat() {
        let mut flat = EmbeddingIndex::new(2);
        let mut sharded = ShardedEmbeddingIndex::new(2, 2);
        let rows: [&[f32]; 4] = [&[f32::NAN, 1.0], &[1.0, 0.0], &[0.5, 0.5], &[0.0, 0.0]];
        for (i, row) in rows.iter().enumerate() {
            flat.insert(row, i);
            sharded.insert(row, i);
        }
        let hits = sharded.query(&[1.0, 0.1], 4);
        let expect = flat.query(&[1.0, 0.1], 4);
        assert_eq!(hits, expect);
        assert!(hits.iter().all(|h| h.score.is_finite()));
    }

    #[test]
    fn all_zero_shards_prune_cleanly() {
        // a sealed shard of poisoned (zeroed) rows has bound 0; once the
        // floor is positive it is skipped, and the results still match
        let mut flat = EmbeddingIndex::new(2);
        let mut sharded = ShardedEmbeddingIndex::new(2, 2);
        let rows: [&[f32]; 6] = [
            &[1.0, 0.0],
            &[0.9, 0.1],
            &[f32::NAN, 1.0],
            &[0.0, 0.0],
            &[0.8, 0.3],
            &[0.7, 0.2],
        ];
        for (i, row) in rows.iter().enumerate() {
            flat.insert(row, i);
            sharded.insert(row, i);
        }
        let opts = QueryOptions {
            prune: true,
            threads: 1,
            parallel_min_rows: usize::MAX,
            int8_scan: true,
        };
        let (hits, stats) = sharded.query_opts(&[1.0, 0.05], 2, &opts);
        assert_eq!(hits, flat.query(&[1.0, 0.05], 2));
        assert!(stats.sealed_pruned >= 1, "zero-bound shard not pruned");
    }

    #[test]
    fn huge_k_dumps_everything_like_flat() {
        // k >> len (even usize::MAX) is a legitimate "give me everything"
        // call on the flat index; the sharded one must accept it without
        // sizing heaps from k
        let (flat, sharded) = both(13, 4, 5);
        let q = [0.2, -0.4, 0.6, 0.1];
        for k in [13, 14, 1 << 40, usize::MAX] {
            assert_eq!(sharded.query(&q, k), flat.query(&q, k), "k={k}");
        }
    }

    #[test]
    fn zero_k_and_empty_index_query_to_nothing() {
        let idx = ShardedEmbeddingIndex::new(3, 8);
        assert!(idx.is_empty());
        assert!(idx.query(&[1.0, 0.0, 0.0], 5).is_empty());
        assert_eq!(idx.precision_at_k(2), 0.0);
        // k == 0 is "report nothing", not a panic — matching the flat index
        let (_, filled) = both(5, 3, 2);
        assert!(filled.query(&[1.0, 0.0, 0.0], 0).is_empty());
        let (hits, stats) = filled.query_opts(&[1.0, 0.0, 0.0], 0, &QueryOptions::default());
        assert!(hits.is_empty());
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn similarity_blocks_tile_the_full_gram() {
        let (flat, sharded) = both(13, 4, 5);
        let gram = flat.pairwise_similarity();
        let mut ws = Workspace::new();
        let mut seen = [false; 13 * 13];
        sharded.for_each_similarity_block(&mut ws, |ro, co, block| {
            for i in 0..block.rows() {
                for j in 0..block.cols() {
                    let (g_i, g_j) = (ro + i, co + j);
                    assert_eq!(
                        block.get(i, j).to_bits(),
                        gram.get(g_i, g_j).to_bits(),
                        "({g_i},{g_j})"
                    );
                    seen[g_i * 13 + g_j] = true;
                }
            }
        });
        assert!(seen.iter().all(|&s| s), "blocks must cover the full Gram");
        // and the workspace pools block buffers instead of reallocating
        let warm = ws.allocations();
        sharded.for_each_similarity_block(&mut ws, |_, _, _| {});
        assert_eq!(ws.allocations(), warm, "warm workspace re-allocated");
    }

    #[test]
    fn artifact_roundtrips_bit_exactly() {
        let (_, sharded) = both(19, 4, 6);
        let bytes = sharded.to_bytes(0xDEAD_BEEF);
        assert_eq!(
            ShardedEmbeddingIndex::pinned_checksum(&bytes).expect("pin"),
            0xDEAD_BEEF
        );
        let back = ShardedEmbeddingIndex::from_bytes(&bytes, 0xDEAD_BEEF).expect("loads");
        assert_eq!(back, sharded);
        // save -> load -> save is byte-identical (bounds included)
        assert_eq!(back.to_bytes(0xDEAD_BEEF), bytes);
    }

    /// Serializes an index in the v1 layout (no sealed-shard bounds), as
    /// PR 4 wrote it.
    fn v1_bytes(index: &ShardedEmbeddingIndex, pin: u64) -> Vec<u8> {
        let mut w = BinWriter::with_version(SHARD_INDEX_KIND, 1);
        w.u64(pin);
        w.len_of(index.dim);
        w.len_of(index.shard_capacity);
        w.len_of(index.num_shards());
        for (rows, labels) in index.shard_blocks() {
            w.len_of(labels.len());
            for &l in labels {
                w.u64(l as u64);
            }
            let mut data = vec![0.0f32; labels.len() * index.dim];
            rows.copy_all_into(&mut data);
            for &v in &data {
                w.f32(v);
            }
        }
        w.finish()
    }

    #[test]
    fn v1_artifacts_load_by_recomputing_bounds() {
        let (_, sharded) = both(19, 4, 6);
        let old = v1_bytes(&sharded, 7);
        let back = ShardedEmbeddingIndex::from_bytes(&old, 7).expect("v1 loads");
        // recomputed bounds are bit-identical to the originals, so the
        // whole index compares equal — and queries (pruning included)
        // behave identically
        assert_eq!(back, sharded);
        // re-saving a v1 load produces a current (v2) artifact
        assert_eq!(back.to_bytes(7), sharded.to_bytes(7));
    }

    #[test]
    fn corrupt_v2_bounds_are_rejected() {
        let mut w = BinWriter::with_version(SHARD_INDEX_KIND, SHARD_INDEX_VERSION);
        w.u64(0);
        w.len_of(3); // dim
        w.len_of(4); // capacity
        w.len_of(1); // one shard
        w.len_of(4); // full -> sealed -> carries bounds
        for i in 0..4u64 {
            w.u64(i);
        }
        for _ in 0..12 {
            w.f32(0.5);
        }
        for _ in 0..3 {
            w.f32(0.1); // centroid
        }
        w.f32(-1.0); // negative radius: corrupt
        w.f32(1.0);
        let err = ShardedEmbeddingIndex::from_bytes(&w.finish(), 0).expect_err("must reject");
        assert!(err.contains("bounds"), "{err}");
    }

    #[test]
    fn checksum_pin_mismatch_is_rejected() {
        let (_, sharded) = both(5, 3, 2);
        let bytes = sharded.to_bytes(1);
        let err = ShardedEmbeddingIndex::from_bytes(&bytes, 2).expect_err("must reject");
        assert!(err.contains("weights"), "{err}");
    }

    #[test]
    fn hostile_shard_capacity_does_not_drive_allocation() {
        // a forged artifact declaring an absurd shard capacity but tiny
        // payload must not reserve capacity*dim floats — the checksum is
        // integrity, not authentication
        let mut w = BinWriter::new(SHARD_INDEX_KIND);
        w.u64(0); // pin
        w.len_of(2); // dim
        w.len_of(1 << 56); // hostile capacity
        w.len_of(1); // one shard
        w.len_of(1); // one row
        w.u64(9);
        w.f32(1.0);
        w.f32(0.0);
        let back = ShardedEmbeddingIndex::from_bytes(&w.finish(), 0).expect("loads cheaply");
        assert_eq!(back.len(), 1);
        assert_eq!(back.label(0), 9);
    }

    #[test]
    fn corrupt_shard_layouts_are_rejected() {
        // hand-build an artifact whose interior shard is not full
        let mut w = BinWriter::new(SHARD_INDEX_KIND);
        w.u64(0); // pin
        w.len_of(2); // dim
        w.len_of(4); // capacity
        w.len_of(2); // two shards
        for _ in 0..2 {
            w.len_of(1); // 1 row each — first shard must hold 4
            w.u64(0);
            w.f32(1.0);
            w.f32(0.0);
        }
        let err = ShardedEmbeddingIndex::from_bytes(&w.finish(), 0).expect_err("must reject");
        assert!(err.contains("capacity"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("gnn4ip-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let (_, sharded) = both(9, 3, 4);
        let path = dir.join("index.bin");
        sharded.save(&path, 42).expect("saves");
        let back = ShardedEmbeddingIndex::load(&path, 42).expect("loads");
        assert_eq!(back, sharded);
        assert!(ShardedEmbeddingIndex::load(&path, 43).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    // --- int8 quantized storage ----------------------------------------

    fn int8_index(n: usize, dim: usize, cap: usize) -> ShardedEmbeddingIndex {
        let rows = seeded_rows(n, dim);
        let mut index = ShardedEmbeddingIndex::with_storage(dim, cap, ShardStorage::Int8);
        for (i, row) in rows.iter().enumerate() {
            index.insert(row, i % 5);
        }
        index
    }

    #[test]
    fn int8_scan_is_bit_identical_to_its_exact_walk() {
        // the int8 shortlist-rescoring fast path must agree bit for bit
        // with the exact dequantize-every-row walk of the same index,
        // under every option combination
        for (n, cap) in [(23, 4), (40, 8), (9, 9)] {
            let index = int8_index(n, 6, cap);
            let q: Vec<f32> = (0..6).map(|j| 0.4 - j as f32 * 0.13).collect();
            for k in [1, 3, 7, n] {
                let reference = index
                    .query_opts(
                        &q,
                        k,
                        &QueryOptions {
                            prune: false,
                            int8_scan: false,
                            ..QueryOptions::default()
                        },
                    )
                    .0;
                for opts in option_grid() {
                    let (hits, _) = index.query_opts(&q, k, &opts);
                    assert_eq!(hits, reference, "n {n} cap {cap} k {k} opts {opts:?}");
                }
            }
        }
    }

    #[test]
    fn int8_rescoring_touches_few_rows_and_reports_itself() {
        let index = int8_index(256, 8, 32);
        let q: Vec<f32> = (0..8).map(|j| (j as f32 * 0.7).cos()).collect();
        let opts = QueryOptions {
            prune: false,
            threads: 1,
            parallel_min_rows: usize::MAX,
            int8_scan: true,
        };
        let (_, stats) = index.query_opts(&q, 5, &opts);
        assert!(stats.rows_rescored > 0, "shortlist pass must engage");
        assert!(
            stats.rows_rescored < stats.rows_scanned,
            "rescoring everything defeats the fast path: {stats:?}"
        );
        // the exact walk reports zero rescored rows
        let (_, exact) = index.query_opts(
            &q,
            5,
            &QueryOptions {
                int8_scan: false,
                ..opts
            },
        );
        assert_eq!(exact.rows_rescored, 0);
    }

    #[test]
    fn int8_sealed_storage_is_about_a_quarter_of_f32() {
        let (_, f32_index) = both(256, 16, 32);
        let q_index = int8_index(256, 16, 32);
        let f32_bytes = f32_index.sealed_row_bytes();
        let int8_bytes = q_index.sealed_row_bytes();
        assert!(f32_bytes > 0);
        assert!(
            (int8_bytes as f64) <= 0.30 * f32_bytes as f64,
            "int8 {int8_bytes} vs f32 {f32_bytes}"
        );
    }

    #[test]
    fn int8_non_finite_and_zero_rows_match_the_exact_walk() {
        let mut index = ShardedEmbeddingIndex::with_storage(2, 2, ShardStorage::Int8);
        let rows: [&[f32]; 6] = [
            &[f32::NAN, 1.0],
            &[1.0, 0.0],
            &[0.0, 0.0],
            &[0.5, 0.5],
            &[f32::INFINITY, 0.1],
            &[0.3, -0.4],
        ];
        for (i, row) in rows.iter().enumerate() {
            index.insert(row, i);
        }
        for opts in option_grid() {
            let (hits, _) = index.query_opts(&[1.0, 0.1], 6, &opts);
            let reference = index
                .query_opts(
                    &[1.0, 0.1],
                    6,
                    &QueryOptions {
                        prune: false,
                        int8_scan: false,
                        ..QueryOptions::default()
                    },
                )
                .0;
            assert_eq!(hits, reference, "opts {opts:?}");
        }
    }

    #[test]
    fn int8_index_serializes_as_plain_f32_with_identical_scores() {
        let index = int8_index(19, 6, 4);
        let bytes = index.to_bytes(5);
        let back = ShardedEmbeddingIndex::from_bytes(&bytes, 5).expect("loads");
        assert_eq!(back.storage(), ShardStorage::F32);
        assert_eq!(back.len(), index.len());
        let q: Vec<f32> = (0..6).map(|j| 0.2 + j as f32 * 0.05).collect();
        // the reload stores the dequantized canonical rows, so every
        // query agrees bit for bit with the quantized original
        for k in [1, 4, 19] {
            assert_eq!(back.query(&q, k), index.query(&q, k), "k {k}");
        }
    }

    // --- rebalance ------------------------------------------------------

    /// Clustered rows inserted in round-robin (worst-case) arrival order:
    /// every shard holds a slice of every cluster, so bounds overlap and
    /// pruning is hopeless until a rebalance regroups them.
    fn scattered_clusters(dim: usize, clusters: usize, per: usize) -> Vec<(Vec<f32>, usize)> {
        let mut rows = Vec::new();
        for i in 0..per {
            for c in 0..clusters {
                let mut row = vec![0.0f32; dim];
                row[c] = 1.0;
                row[(c + 1) % dim] = 0.03 * i as f32;
                rows.push((row, c));
            }
        }
        rows
    }

    #[test]
    fn rebalance_restores_pruning_on_scattered_arrival() {
        let dim = 8;
        let mut index = ShardedEmbeddingIndex::new(dim, 8);
        for (row, c) in scattered_clusters(dim, 8, 8) {
            index.insert(&row, c);
        }
        let mut q = vec![0.0f32; dim];
        q[3] = 1.0;
        let opts = QueryOptions {
            prune: true,
            threads: 1,
            parallel_min_rows: usize::MAX,
            int8_scan: true,
        };
        let before_hits = index.query(&q, 4);
        let (_, before) = index.query_opts(&q, 4, &opts);
        assert_eq!(before.sealed_pruned, 0, "round-robin arrival must scatter");
        let report = index.rebalance(&RebalanceOptions::default());
        assert_eq!(report.centroids, 8);
        assert!(report.moved > 0);
        let (after_hits, after) = index.query_opts(&q, 4, &opts);
        assert!(
            after.sealed_pruned >= 5,
            "rebalanced shards must prune: {after:?}"
        );
        // same labels and scores; only storage positions may differ
        let key = |hits: &[QueryHit]| -> Vec<(usize, u32)> {
            hits.iter().map(|h| (h.label, h.score.to_bits())).collect()
        };
        assert_eq!(key(&after_hits), key(&before_hits));
    }

    #[test]
    fn rebalance_is_deterministic_and_preserves_f32_rows() {
        let (_, mut a) = both(40, 5, 4);
        let mut b = a.clone();
        let ra = a.rebalance(&RebalanceOptions::default());
        let rb = b.rebalance(&RebalanceOptions {
            threads: 3,
            ..RebalanceOptions::default()
        });
        assert_eq!(ra, rb, "thread count must not change the outcome");
        assert_eq!(a, b);
        // the row multiset is preserved exactly
        let mut rows_before: Vec<Vec<u32>> = (0..40)
            .map(|i| {
                both(40, 5, 4)
                    .1
                    .normalized_row(i)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();
        let mut rows_after: Vec<Vec<u32>> = (0..40)
            .map(|i| a.normalized_row(i).iter().map(|v| v.to_bits()).collect())
            .collect();
        rows_before.sort();
        rows_after.sort();
        assert_eq!(rows_before, rows_after);
    }

    #[test]
    fn rebalance_on_tiny_indexes_is_a_no_op() {
        let (_, mut index) = both(5, 3, 8); // tail only, nothing sealed
        let copy = index.clone();
        let report = index.rebalance(&RebalanceOptions::default());
        assert_eq!(report.moved, 0);
        assert_eq!(report.centroids, 0);
        assert_eq!(index, copy);
    }

    #[test]
    fn content_ids_are_stable_and_payload_sensitive() {
        let (_, a) = both(8, 3, 4);
        let (_, b) = both(8, 3, 4);
        assert_eq!(a.sealed[0].content_id, b.sealed[0].content_id);
        assert_ne!(
            a.sealed[0].content_id, a.sealed[1].content_id,
            "different payloads must get different ids"
        );
        // quantized and f32 storage of the same rows hash differently
        let q = int8_index(8, 3, 4);
        assert_ne!(a.sealed[0].content_id, q.sealed[0].content_id);
    }
}
