//! A sharded, persistent embedding index for corpus-scale retrieval.
//!
//! The flat [`EmbeddingIndex`] is the right shape for a few thousand
//! embeddings: one contiguous matrix, one gemm. The deployment the paper's
//! §IV-C motivates — embed every owned IP once, then answer "what is this
//! suspect closest to?" forever — outgrows it in two ways: the corpus
//! arrives *incrementally* (designs stream in; rebuilding a monolithic
//! matrix per insert is quadratic), and it must *outlive the process*
//! (an index that vanishes on exit re-embeds the world on every restart).
//!
//! [`ShardedEmbeddingIndex`] stores row-normalized embeddings in
//! fixed-capacity shards. Inserts append to the open tail shard; a query
//! computes a per-shard top-k and heap-merges the shard runs into the
//! global top-k; `precision_at_k` walks shard×shard similarity blocks
//! through a [`Workspace`]-pooled [`matmul_nt`](Matrix::matmul_nt_into)
//! without ever materializing the `n×n` Gram matrix. The whole structure
//! persists through the `G4IP` binary artifact format, pinned to the
//! checksum of the model weights that produced the embeddings.
//!
//! Every score is computed by the same per-row kernel as the flat index,
//! so flat and sharded results agree **bit for bit** (a property test in
//! `tests/properties.rs` holds this line).

use gnn4ip_tensor::{read_artifact, write_artifact, BinReader, BinWriter, Matrix, Workspace};

use crate::index::{normalize_into, query_norm, score_row, EmbeddingIndex, QueryHit};

/// Kind tag of the persisted shard-index artifact.
pub const SHARD_INDEX_KIND: &str = "gnn4ip-shard-index";

/// One fixed-capacity block of row-normalized embeddings.
#[derive(Debug, Clone, PartialEq)]
struct Shard {
    /// Row-major `len x dim` normalized rows.
    data: Vec<f32>,
    labels: Vec<usize>,
}

impl Shard {
    fn new(capacity: usize, dim: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity * dim),
            labels: Vec::with_capacity(capacity),
        }
    }

    fn len(&self) -> usize {
        self.labels.len()
    }
}

/// An incrementally built, persistent index of row-normalized embeddings,
/// stored as fixed-capacity shards.
///
/// Scores, tie-breaking, and non-finite handling are identical to the flat
/// [`EmbeddingIndex`]; only the storage layout and algorithms differ.
///
/// # Examples
///
/// ```
/// use gnn4ip_eval::ShardedEmbeddingIndex;
///
/// let mut index = ShardedEmbeddingIndex::new(2, 2); // dim 2, 2 rows/shard
/// index.insert(&[1.0, 0.0], 0);
/// index.insert(&[0.9, 0.1], 0);
/// index.insert(&[0.0, 2.0], 1); // opens a second shard
/// assert_eq!(index.num_shards(), 2);
/// let hits = index.query(&[1.0, 0.05], 2);
/// assert_eq!(hits[0].label, 0);
/// assert!(hits[0].score >= hits[1].score);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedEmbeddingIndex {
    dim: usize,
    shard_capacity: usize,
    /// Every shard before the last holds exactly `shard_capacity` rows;
    /// the last holds `1..=shard_capacity`. An empty index has no shards.
    shards: Vec<Shard>,
}

/// A candidate in the k-way heap merge: the head of one shard's sorted
/// top-k run. Ordered so the rank-best hit is the heap maximum.
struct MergeHead {
    hit: QueryHit,
    shard: usize,
    pos: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap pops the maximum; reverse rank so "best" is maximal
        EmbeddingIndex::rank(&self.hit, &other.hit).reverse()
    }
}

/// A bounded keeper of the `k` rank-best `(score, global index)` pairs.
/// The heap top is the *worst* retained hit, so an incoming candidate
/// either evicts it or is discarded in `O(log k)`.
///
/// Candidates MUST be pushed in ascending index order (both call sites
/// scan rows in insertion order). That precondition collapses the
/// keep/discard decision to one float compare: a candidate tying the
/// retained worst on score always carries the larger index, so under
/// [`EmbeddingIndex::rank`] it loses — only a strictly greater score
/// evicts.
struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<WorstFirst>,
}

struct WorstFirst(QueryHit);

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for WorstFirst {}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // rank() is ascending-is-better; the heap maximum is the worst hit
        EmbeddingIndex::rank(&self.0, &other.0)
    }
}

impl TopK {
    fn new(k: usize) -> Self {
        Self {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    fn push(&mut self, hit: QueryHit) {
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(hit));
        } else if let Some(worst) = self.heap.peek() {
            // sound only for ascending-index pushes; see the type docs
            if hit.score > worst.0.score {
                self.heap.pop();
                self.heap.push(WorstFirst(hit));
            }
        }
    }

    fn into_hits(self) -> Vec<QueryHit> {
        self.heap.into_iter().map(|w| w.0).collect()
    }

    /// Score of the worst retained hit (`-inf` when empty) — the eviction
    /// threshold for the caller's fast path.
    fn worst_score(&self) -> f32 {
        self.heap.peek().map_or(f32::NEG_INFINITY, |w| w.0.score)
    }
}

impl ShardedEmbeddingIndex {
    /// Creates an empty index over `dim`-dimensional embeddings with
    /// `shard_capacity` rows per shard.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `shard_capacity` is zero.
    pub fn new(dim: usize, shard_capacity: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        assert!(shard_capacity > 0, "shard capacity must be positive");
        Self {
            dim,
            shard_capacity,
            shards: Vec::new(),
        }
    }

    /// Re-shards a flat index by copying its normalized rows verbatim —
    /// no re-normalization, so the rows stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `shard_capacity` is zero.
    pub fn from_flat(flat: &EmbeddingIndex, shard_capacity: usize) -> Self {
        let mut index = Self::new(flat.dim(), shard_capacity);
        for (i, &label) in flat.labels().iter().enumerate() {
            let shard = index.open_shard();
            shard.data.extend_from_slice(flat.normalized_row(i));
            shard.labels.push(label);
        }
        index
    }

    /// Total number of indexed embeddings across all shards.
    pub fn len(&self) -> usize {
        let full = self.shards.len().saturating_sub(1) * self.shard_capacity;
        full + self.shards.last().map_or(0, Shard::len)
    }

    /// Whether the index holds no embeddings.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rows per shard.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Number of shards currently allocated.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Label of the embedding at global insertion index `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn label(&self, i: usize) -> usize {
        self.shards[i / self.shard_capacity].labels[i % self.shard_capacity]
    }

    /// The stored (normalized) row at global insertion index `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn normalized_row(&self, i: usize) -> &[f32] {
        let shard = &self.shards[i / self.shard_capacity];
        let p = (i % self.shard_capacity) * self.dim;
        &shard.data[p..p + self.dim]
    }

    /// The shard with spare capacity, opening a fresh one when the tail
    /// shard is full (or no shard exists yet).
    fn open_shard(&mut self) -> &mut Shard {
        let full = self
            .shards
            .last()
            .is_none_or(|s| s.len() == self.shard_capacity);
        if full {
            self.shards.push(Shard::new(self.shard_capacity, self.dim));
        }
        self.shards.last_mut().expect("tail shard exists")
    }

    /// Appends one embedding (normalized on the way in, exactly like
    /// [`EmbeddingIndex::insert`]: non-finite or zero-norm rows are stored
    /// as zero rows and score 0 against everything).
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn insert(&mut self, embedding: &[f32], label: usize) {
        assert_eq!(
            embedding.len(),
            self.dim,
            "embedding dimension {} != index dimension {}",
            embedding.len(),
            self.dim
        );
        let shard = self.open_shard();
        normalize_into(embedding, &mut shard.data);
        shard.labels.push(label);
    }

    /// The `k` nearest neighbors of `query` by cosine similarity, highest
    /// first (ties broken by global insertion index) — bit-identical to
    /// the flat [`EmbeddingIndex::query`] over the same insertions.
    ///
    /// Each shard contributes its own top-k run, kept in a bounded heap
    /// while its rows are scored (one comparison per losing row); the
    /// sorted runs are then k-way heap-merged, so the merge costs
    /// `O(k log s)` for `s` shards rather than a global sort of all
    /// candidates.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch or `k == 0`.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<QueryHit> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        assert!(k > 0, "k must be positive");
        let qnorm = query_norm(query);
        // per-shard bounded top-k, maintained while scoring: most rows
        // fail one comparison against the current worst retained hit, so
        // no shard ever materializes its full score list
        let mut runs: Vec<Vec<QueryHit>> = Vec::with_capacity(self.shards.len());
        let mut offset = 0;
        for shard in &self.shards {
            let n = shard.len();
            // clamp per shard: a "give me everything" k (even usize::MAX,
            // which the flat index accepts) must not size the heap
            let kk = k.min(n);
            let mut top = TopK::new(kk);
            for i in 0..kk {
                top.push(QueryHit {
                    index: offset + i,
                    label: shard.labels[i],
                    score: score_row(&shard.data[i * self.dim..(i + 1) * self.dim], query, qnorm),
                });
            }
            if kk < n {
                // hot loop: a losing row costs one dot product and one
                // float compare — no heap access, no hit construction
                let mut worst = top.worst_score();
                for i in kk..n {
                    let score =
                        score_row(&shard.data[i * self.dim..(i + 1) * self.dim], query, qnorm);
                    if score > worst {
                        top.push(QueryHit {
                            index: offset + i,
                            label: shard.labels[i],
                            score,
                        });
                        worst = top.worst_score();
                    }
                }
            }
            let mut run = top.into_hits();
            run.sort_unstable_by(EmbeddingIndex::rank);
            runs.push(run);
            offset += n;
        }
        // k-way merge: the heap holds one head per non-empty sorted run
        let mut heap = std::collections::BinaryHeap::with_capacity(runs.len());
        for (si, run) in runs.iter().enumerate() {
            if let Some(&hit) = run.first() {
                heap.push(MergeHead {
                    hit,
                    shard: si,
                    pos: 0,
                });
            }
        }
        let mut out = Vec::with_capacity(k.min(self.len()));
        while out.len() < k {
            let Some(head) = heap.pop() else { break };
            out.push(head.hit);
            let next = head.pos + 1;
            if let Some(&hit) = runs[head.shard].get(next) {
                heap.push(MergeHead {
                    hit,
                    shard: head.shard,
                    pos: next,
                });
            }
        }
        out
    }

    /// Visits the cosine-similarity Gram matrix one shard×shard block at a
    /// time: `f(row_offset, col_offset, block)` where `block[i][j]` is the
    /// similarity of global rows `row_offset + i` and `col_offset + j`.
    ///
    /// Block buffers come from `ws` and are recycled across blocks, so the
    /// peak footprint is three `shard_capacity`-bounded matrices no matter
    /// how large the corpus grows — the full `n×n` Gram is never
    /// materialized. Each element is the same contiguous-row dot product
    /// the flat index's [`EmbeddingIndex::pairwise_similarity`] computes,
    /// so block values match it bit for bit.
    pub fn for_each_similarity_block<F>(&self, ws: &mut Workspace, mut f: F)
    where
        F: FnMut(usize, usize, &Matrix),
    {
        let mut row_offset = 0;
        for qs in &self.shards {
            let qn = qs.len();
            let mut qm = ws.acquire(qn, self.dim);
            qm.as_mut_slice().copy_from_slice(&qs.data);
            let mut col_offset = 0;
            for ds in &self.shards {
                let dn = ds.len();
                let mut dm = ws.acquire(dn, self.dim);
                dm.as_mut_slice().copy_from_slice(&ds.data);
                let mut block = ws.acquire(qn, dn);
                qm.matmul_nt_into(&dm, &mut block);
                f(row_offset, col_offset, &block);
                ws.release(block);
                ws.release(dm);
                col_offset += dn;
            }
            ws.release(qm);
            row_offset += qn;
        }
    }

    /// Mean precision@k of same-label retrieval — the sharded, blocked
    /// form of [`EmbeddingIndex::precision_at_k`], and numerically
    /// identical to it: `k` clamps to `len() - 1`, fewer than two points
    /// report 0.0, and the per-query neighbor sets agree exactly because
    /// both sides select under the same total order on finite scores.
    ///
    /// Peak memory is `O(n·k)` for the per-row candidate keepers plus one
    /// shard×shard block, never the `n×n` Gram.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn precision_at_k(&self, k: usize) -> f64 {
        self.precision_at_k_ws(k, &mut Workspace::new())
    }

    /// [`ShardedEmbeddingIndex::precision_at_k`] with a caller-provided
    /// workspace, so repeated evaluations reuse warm block buffers.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn precision_at_k_ws(&self, k: usize, ws: &mut Workspace) -> f64 {
        assert!(k > 0, "k must be positive");
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let k = k.min(n - 1);
        let mut tops: Vec<TopK> = (0..n).map(|_| TopK::new(k)).collect();
        self.for_each_similarity_block(ws, |row_offset, col_offset, block| {
            for i in 0..block.rows() {
                let q = row_offset + i;
                for (j, &score) in block.row(i).iter().enumerate() {
                    let g = col_offset + j;
                    if g != q {
                        tops[q].push(QueryHit {
                            index: g,
                            label: 0, // resolved after selection
                            score,
                        });
                    }
                }
            }
        });
        let mut total = 0.0f64;
        for (q, top) in tops.into_iter().enumerate() {
            let own = self.label(q);
            let hits = top
                .into_hits()
                .iter()
                .filter(|h| self.label(h.index) == own)
                .count();
            total += hits as f64 / k as f64;
        }
        total / n as f64
    }

    // --- persistence ---------------------------------------------------

    /// Serializes the index through the `G4IP` artifact format, pinned to
    /// `pinned_checksum` — by convention the weights checksum of the model
    /// whose embeddings fill the index, so a stale index cannot silently
    /// serve scores for weights that no longer exist (the same pinning
    /// discipline as the embedding-library artifact). Rows round-trip
    /// bit-exactly.
    pub fn to_bytes(&self, pinned_checksum: u64) -> Vec<u8> {
        let mut w = BinWriter::new(SHARD_INDEX_KIND);
        w.u64(pinned_checksum);
        w.len_of(self.dim);
        w.len_of(self.shard_capacity);
        w.len_of(self.shards.len());
        for shard in &self.shards {
            w.len_of(shard.len());
            for &l in &shard.labels {
                w.u64(l as u64);
            }
            for &v in &shard.data {
                w.f32(v);
            }
        }
        w.finish()
    }

    /// Reads back the checksum an artifact was pinned to, without
    /// deserializing the shards (e.g. to report *which* weights an index
    /// belongs to before deciding to load it).
    ///
    /// # Errors
    ///
    /// Fails on a corrupt or wrong-kind artifact.
    pub fn pinned_checksum(bytes: &[u8]) -> Result<u64, String> {
        BinReader::open(bytes, SHARD_INDEX_KIND)?.u64()
    }

    /// Restores an index serialized by [`ShardedEmbeddingIndex::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails on corrupt artifacts, on a checksum-pin mismatch (an index
    /// built by different weights is rejected rather than silently serving
    /// stale similarities), and on shard layouts that violate the
    /// fixed-capacity invariant.
    pub fn from_bytes(bytes: &[u8], expected_checksum: u64) -> Result<Self, String> {
        let mut r = BinReader::open(bytes, SHARD_INDEX_KIND)?;
        let pinned = r.u64()?;
        if pinned != expected_checksum {
            return Err(format!(
                "shard index was built by weights {pinned:#018x}, \
                 expected {expected_checksum:#018x}; re-embed instead of loading"
            ));
        }
        let dim = r.len_of()?;
        let shard_capacity = r.len_of()?;
        if dim == 0 || shard_capacity == 0 {
            return Err(format!(
                "shard index declares zero dim ({dim}) or capacity ({shard_capacity})"
            ));
        }
        let row_bytes = dim
            .checked_mul(4)
            .and_then(|b| b.checked_add(8))
            .ok_or_else(|| format!("implausible dimension {dim}"))?;
        let n_shards = r.count_of(8)?; // every shard carries a row count
        let mut shards = Vec::with_capacity(n_shards);
        for si in 0..n_shards {
            let rows = r.count_of(row_bytes)?;
            let expect_full = si + 1 < n_shards;
            if rows > shard_capacity || rows == 0 || (expect_full && rows != shard_capacity) {
                return Err(format!(
                    "shard {si} holds {rows} rows, violating capacity {shard_capacity}"
                ));
            }
            // reserve from `rows` (count_of-bounded by remaining payload),
            // never from the untrusted `shard_capacity` field — a forged
            // capacity must not drive a multi-GB allocation
            let mut shard = Shard::new(rows, dim);
            for _ in 0..rows {
                shard.labels.push(
                    usize::try_from(r.u64()?).map_err(|_| "label overflows usize".to_string())?,
                );
            }
            for _ in 0..rows * dim {
                shard.data.push(r.f32()?);
            }
            shards.push(shard);
        }
        r.done()?;
        Ok(Self {
            dim,
            shard_capacity,
            shards,
        })
    }

    /// Writes the artifact to `path` (atomic: temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error as text.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
        pinned_checksum: u64,
    ) -> Result<(), String> {
        write_artifact(path.as_ref(), &self.to_bytes(pinned_checksum))
    }

    /// Loads an artifact written by [`ShardedEmbeddingIndex::save`].
    ///
    /// # Errors
    ///
    /// Returns I/O, format, or checksum-pin errors as text.
    pub fn load(path: impl AsRef<std::path::Path>, expected_checksum: u64) -> Result<Self, String> {
        Self::from_bytes(&read_artifact(path.as_ref())?, expected_checksum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_rows(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| {
                        let x = ((i * 31 + j * 17) as u64).wrapping_mul(2654435761) % 97;
                        x as f32 / 97.0 - 0.5
                    })
                    .collect()
            })
            .collect()
    }

    fn both(n: usize, dim: usize, cap: usize) -> (EmbeddingIndex, ShardedEmbeddingIndex) {
        let rows = seeded_rows(n, dim);
        let mut flat = EmbeddingIndex::new(dim);
        let mut sharded = ShardedEmbeddingIndex::new(dim, cap);
        for (i, row) in rows.iter().enumerate() {
            flat.insert(row, i % 5);
            sharded.insert(row, i % 5);
        }
        (flat, sharded)
    }

    #[test]
    fn shards_fill_to_capacity_in_insertion_order() {
        let (_, sharded) = both(10, 3, 4);
        assert_eq!(sharded.len(), 10);
        assert_eq!(sharded.num_shards(), 3); // 4 + 4 + 2
        for i in 0..10 {
            assert_eq!(sharded.label(i), i % 5);
        }
    }

    #[test]
    fn query_matches_flat_bit_for_bit() {
        for cap in [1, 3, 4, 7, 64] {
            let (flat, sharded) = both(23, 6, cap);
            let q: Vec<f32> = (0..6).map(|j| 0.3 - j as f32 * 0.1).collect();
            for k in [1, 2, 5, 23, 40] {
                let a = flat.query(&q, k);
                let b = sharded.query(&q, k);
                assert_eq!(a.len(), b.len(), "cap {cap} k {k}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.index, y.index, "cap {cap} k {k}");
                    assert_eq!(x.label, y.label);
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn precision_matches_flat_exactly() {
        for cap in [1, 4, 9, 64] {
            let (flat, sharded) = both(17, 5, cap);
            for k in [1, 3, 8, 30] {
                assert_eq!(
                    flat.precision_at_k(k).to_bits(),
                    sharded.precision_at_k(k).to_bits(),
                    "cap {cap} k {k}"
                );
            }
        }
    }

    #[test]
    fn from_flat_reshards_without_renormalizing() {
        let (flat, sharded) = both(11, 4, 3);
        let reshard = ShardedEmbeddingIndex::from_flat(&flat, 3);
        assert_eq!(reshard, sharded);
    }

    #[test]
    fn non_finite_rows_behave_like_flat() {
        let mut flat = EmbeddingIndex::new(2);
        let mut sharded = ShardedEmbeddingIndex::new(2, 2);
        let rows: [&[f32]; 4] = [&[f32::NAN, 1.0], &[1.0, 0.0], &[0.5, 0.5], &[0.0, 0.0]];
        for (i, row) in rows.iter().enumerate() {
            flat.insert(row, i);
            sharded.insert(row, i);
        }
        let hits = sharded.query(&[1.0, 0.1], 4);
        let expect = flat.query(&[1.0, 0.1], 4);
        assert_eq!(hits, expect);
        assert!(hits.iter().all(|h| h.score.is_finite()));
    }

    #[test]
    fn huge_k_dumps_everything_like_flat() {
        // k >> len (even usize::MAX) is a legitimate "give me everything"
        // call on the flat index; the sharded one must accept it without
        // sizing heaps from k
        let (flat, sharded) = both(13, 4, 5);
        let q = [0.2, -0.4, 0.6, 0.1];
        for k in [13, 14, 1 << 40, usize::MAX] {
            assert_eq!(sharded.query(&q, k), flat.query(&q, k), "k={k}");
        }
    }

    #[test]
    fn empty_index_queries_to_nothing() {
        let idx = ShardedEmbeddingIndex::new(3, 8);
        assert!(idx.is_empty());
        assert!(idx.query(&[1.0, 0.0, 0.0], 5).is_empty());
        assert_eq!(idx.precision_at_k(2), 0.0);
    }

    #[test]
    fn similarity_blocks_tile_the_full_gram() {
        let (flat, sharded) = both(13, 4, 5);
        let gram = flat.pairwise_similarity();
        let mut ws = Workspace::new();
        let mut seen = [false; 13 * 13];
        sharded.for_each_similarity_block(&mut ws, |ro, co, block| {
            for i in 0..block.rows() {
                for j in 0..block.cols() {
                    let (g_i, g_j) = (ro + i, co + j);
                    assert_eq!(
                        block.get(i, j).to_bits(),
                        gram.get(g_i, g_j).to_bits(),
                        "({g_i},{g_j})"
                    );
                    seen[g_i * 13 + g_j] = true;
                }
            }
        });
        assert!(seen.iter().all(|&s| s), "blocks must cover the full Gram");
        // and the workspace pools block buffers instead of reallocating
        let warm = ws.allocations();
        sharded.for_each_similarity_block(&mut ws, |_, _, _| {});
        assert_eq!(ws.allocations(), warm, "warm workspace re-allocated");
    }

    #[test]
    fn artifact_roundtrips_bit_exactly() {
        let (_, sharded) = both(19, 4, 6);
        let bytes = sharded.to_bytes(0xDEAD_BEEF);
        assert_eq!(
            ShardedEmbeddingIndex::pinned_checksum(&bytes).expect("pin"),
            0xDEAD_BEEF
        );
        let back = ShardedEmbeddingIndex::from_bytes(&bytes, 0xDEAD_BEEF).expect("loads");
        assert_eq!(back, sharded);
        // save -> load -> save is byte-identical
        assert_eq!(back.to_bytes(0xDEAD_BEEF), bytes);
    }

    #[test]
    fn checksum_pin_mismatch_is_rejected() {
        let (_, sharded) = both(5, 3, 2);
        let bytes = sharded.to_bytes(1);
        let err = ShardedEmbeddingIndex::from_bytes(&bytes, 2).expect_err("must reject");
        assert!(err.contains("weights"), "{err}");
    }

    #[test]
    fn hostile_shard_capacity_does_not_drive_allocation() {
        // a forged artifact declaring an absurd shard capacity but tiny
        // payload must not reserve capacity*dim floats — the checksum is
        // integrity, not authentication
        let mut w = BinWriter::new(SHARD_INDEX_KIND);
        w.u64(0); // pin
        w.len_of(2); // dim
        w.len_of(1 << 56); // hostile capacity
        w.len_of(1); // one shard
        w.len_of(1); // one row
        w.u64(9);
        w.f32(1.0);
        w.f32(0.0);
        let back = ShardedEmbeddingIndex::from_bytes(&w.finish(), 0).expect("loads cheaply");
        assert_eq!(back.len(), 1);
        assert_eq!(back.label(0), 9);
    }

    #[test]
    fn corrupt_shard_layouts_are_rejected() {
        // hand-build an artifact whose interior shard is not full
        let mut w = BinWriter::new(SHARD_INDEX_KIND);
        w.u64(0); // pin
        w.len_of(2); // dim
        w.len_of(4); // capacity
        w.len_of(2); // two shards
        for _ in 0..2 {
            w.len_of(1); // 1 row each — first shard must hold 4
            w.u64(0);
            w.f32(1.0);
            w.f32(0.0);
        }
        let err = ShardedEmbeddingIndex::from_bytes(&w.finish(), 0).expect_err("must reject");
        assert!(err.contains("capacity"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("gnn4ip-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let (_, sharded) = both(9, 3, 4);
        let path = dir.join("index.bin");
        sharded.save(&path, 42).expect("saves");
        let back = ShardedEmbeddingIndex::load(&path, 42).expect("loads");
        assert_eq!(back, sharded);
        assert!(ShardedEmbeddingIndex::load(&path, 43).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
