//! Embedding-space retrieval metrics.
//!
//! §IV-C argues hw2vec "is a compelling tool to distinguish between various
//! hardware designs": instances of the same design land near each other.
//! Retrieval precision@k quantifies that claim without any threshold — for
//! each instance, how many of its k nearest neighbors (by cosine) share its
//! design label?

/// Cosine similarity of two equal-length vectors (0 for zero vectors).
fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let dot: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64) * (y as f64))
        .sum();
    let na: f64 = a
        .iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt();
    let nb: f64 = b
        .iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Mean precision@k of same-label retrieval: for each embedding, the
/// fraction of its `k` nearest neighbors (cosine, excluding itself) that
/// carry the same label, averaged over all query points.
///
/// 1.0 means every instance's neighborhood is pure; chance level is the
/// label's prevalence.
///
/// # Panics
///
/// Panics if lengths differ, fewer than `k + 1` points are given, or
/// `k == 0`.
pub fn retrieval_precision_at_k(embeddings: &[Vec<f32>], labels: &[usize], k: usize) -> f64 {
    assert_eq!(embeddings.len(), labels.len(), "embeddings/labels mismatch");
    assert!(k > 0, "k must be positive");
    assert!(
        embeddings.len() > k,
        "need more than k points ({} <= {k})",
        embeddings.len()
    );
    let n = embeddings.len();
    let mut total = 0.0f64;
    for q in 0..n {
        let mut sims: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != q)
            .map(|j| (j, cosine(&embeddings[q], &embeddings[j])))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let hits = sims
            .iter()
            .take(k)
            .filter(|(j, _)| labels[*j] == labels[q])
            .count();
        total += hits as f64 / k as f64;
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut e = Vec::new();
        let mut l = Vec::new();
        for i in 0..6 {
            e.push(vec![1.0, 0.0, 0.001 * i as f32]);
            l.push(0);
            e.push(vec![0.0, 1.0, 0.001 * i as f32]);
            l.push(1);
        }
        (e, l)
    }

    #[test]
    fn pure_clusters_retrieve_perfectly() {
        let (e, l) = blobs();
        let p = retrieval_precision_at_k(&e, &l, 3);
        assert!(p > 0.99, "precision@3 = {p}");
    }

    #[test]
    fn shuffled_labels_drop_to_chance() {
        let (e, _) = blobs();
        // label everything by parity of index — orthogonal to geometry
        let l: Vec<usize> = (0..e.len()).map(|i| i % 2).collect();
        let p = retrieval_precision_at_k(&e, &l, 3);
        assert!(p > 0.99, "parity equals geometry here"); // sanity: blob layout interleaves
        let l2: Vec<usize> = (0..e.len()).map(|i| usize::from(i < e.len() / 2)).collect();
        let p2 = retrieval_precision_at_k(&e, &l2, 3);
        assert!(p2 < 0.8, "mismatched labels should score lower: {p2}");
    }

    #[test]
    fn zero_vectors_do_not_panic() {
        let e = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.9, 0.1]];
        let l = vec![0, 1, 1];
        let p = retrieval_precision_at_k(&e, &l, 1);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = retrieval_precision_at_k(&[vec![1.0], vec![2.0]], &[0, 1], 0);
    }
}
