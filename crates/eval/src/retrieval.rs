//! Embedding-space retrieval metrics.
//!
//! §IV-C argues hw2vec "is a compelling tool to distinguish between various
//! hardware designs": instances of the same design land near each other.
//! Retrieval precision@k quantifies that claim without any threshold — for
//! each instance, how many of its k nearest neighbors (by cosine) share its
//! design label?

use crate::index::EmbeddingIndex;

/// Mean precision@k of same-label retrieval: for each embedding, the
/// fraction of its `k` nearest neighbors (cosine, excluding itself) that
/// carry the same label, averaged over all query points.
///
/// 1.0 means every instance's neighborhood is pure; chance level is the
/// label's prevalence.
///
/// This is [`EmbeddingIndex::precision_at_k`] over a throwaway index: one
/// blocked Gram-matrix product instead of `n²` scalar cosine calls. Build
/// the index yourself to amortize it across metrics and queries. Like the
/// index method, `k` clamps to the available neighbor count and fewer than
/// two points report 0.0 — a small corpus degrades instead of aborting.
///
/// # Panics
///
/// Panics if lengths differ or `k == 0`.
pub fn retrieval_precision_at_k(embeddings: &[Vec<f32>], labels: &[usize], k: usize) -> f64 {
    assert_eq!(embeddings.len(), labels.len(), "embeddings/labels mismatch");
    assert!(k > 0, "k must be positive");
    let dim = embeddings.first().map_or(1, Vec::len);
    EmbeddingIndex::from_embeddings_dim(dim, embeddings, labels).precision_at_k(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut e = Vec::new();
        let mut l = Vec::new();
        for i in 0..6 {
            e.push(vec![1.0, 0.0, 0.001 * i as f32]);
            l.push(0);
            e.push(vec![0.0, 1.0, 0.001 * i as f32]);
            l.push(1);
        }
        (e, l)
    }

    #[test]
    fn pure_clusters_retrieve_perfectly() {
        let (e, l) = blobs();
        let p = retrieval_precision_at_k(&e, &l, 3);
        assert!(p > 0.99, "precision@3 = {p}");
    }

    #[test]
    fn shuffled_labels_drop_to_chance() {
        let (e, _) = blobs();
        // label everything by parity of index — orthogonal to geometry
        let l: Vec<usize> = (0..e.len()).map(|i| i % 2).collect();
        let p = retrieval_precision_at_k(&e, &l, 3);
        assert!(p > 0.99, "parity equals geometry here"); // sanity: blob layout interleaves
        let l2: Vec<usize> = (0..e.len()).map(|i| usize::from(i < e.len() / 2)).collect();
        let p2 = retrieval_precision_at_k(&e, &l2, 3);
        assert!(p2 < 0.8, "mismatched labels should score lower: {p2}");
    }

    #[test]
    fn zero_vectors_do_not_panic() {
        let e = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.9, 0.1]];
        let l = vec![0, 1, 1];
        let p = retrieval_precision_at_k(&e, &l, 1);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn small_corpus_degrades_instead_of_panicking() {
        assert_eq!(retrieval_precision_at_k(&[], &[], 3), 0.0);
        assert_eq!(retrieval_precision_at_k(&[vec![1.0, 0.0]], &[0], 3), 0.0);
        // k larger than the corpus clamps to the available neighbors
        let e = vec![vec![1.0, 0.0], vec![0.9, 0.1], vec![0.0, 1.0]];
        let l = vec![0, 0, 1];
        assert_eq!(
            retrieval_precision_at_k(&e, &l, 100),
            retrieval_precision_at_k(&e, &l, 2)
        );
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = retrieval_precision_at_k(&[vec![1.0], vec![2.0]], &[0, 1], 0);
    }
}
