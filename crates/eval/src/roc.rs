//! ROC analysis for the decision boundary δ.
//!
//! The paper tunes δ "to achieve maximum accuracy" and notes "the user can
//! adjust it to decide how much similarity is considered piracy" (§IV-D).
//! The ROC curve is the full picture of that trade-off; AUC summarizes the
//! detector's ranking quality independent of any particular δ.

/// One operating point of the ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision boundary producing this point.
    pub threshold: f32,
    /// True-positive rate (recall) at this threshold.
    pub tpr: f64,
    /// False-positive rate at this threshold.
    pub fpr: f64,
}

/// Computes the ROC curve of similarity scores against ground-truth labels
/// (`true` = piracy). Points are ordered from the strictest threshold
/// (+1, bottom-left) to the loosest (−1, top-right).
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or contain only one
/// class.
pub fn roc_curve(scores: &[f32], similar: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), similar.len(), "scores/labels mismatch");
    assert!(!scores.is_empty(), "empty ROC input");
    let pos = similar.iter().filter(|&&l| l).count();
    let neg = similar.len() - pos;
    assert!(pos > 0 && neg > 0, "ROC needs both classes");

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut points = vec![RocPoint {
        threshold: 1.0,
        tpr: 0.0,
        fpr: 0.0,
    }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        // advance through ties together so the curve is threshold-consistent
        let t = scores[order[i]];
        while i < order.len() && scores[order[i]] == t {
            if similar[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold: t,
            tpr: tp as f64 / pos as f64,
            fpr: fp as f64 / neg as f64,
        });
    }
    points
}

/// Area under the ROC curve (trapezoidal rule over [`roc_curve`]).
///
/// 1.0 = perfect ranking, 0.5 = chance.
///
/// # Panics
///
/// Same conditions as [`roc_curve`].
pub fn auc(scores: &[f32], similar: &[bool]) -> f64 {
    let curve = roc_curve(scores, similar);
    let mut area = 0.0;
    for w in curve.windows(2) {
        area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_auc_one() {
        let scores = [0.9f32, 0.8, 0.7, -0.1, -0.2];
        let labels = [true, true, true, false, false];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let scores = [-0.9f32, -0.8, 0.7, 0.8];
        let labels = [true, true, false, false];
        assert!(auc(&scores, &labels) < 1e-9);
    }

    #[test]
    fn interleaved_scores_auc_matches_pair_counting() {
        // AUC equals the fraction of (pos, neg) pairs ranked correctly:
        // positives {0.8, 0.6} vs negatives {0.7, 0.5} -> 3 of 4 pairs.
        let scores = [0.8f32, 0.7, 0.6, 0.5];
        let labels = [true, false, true, false];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn curve_is_monotone() {
        let scores = [0.9f32, 0.1, 0.5, -0.5, 0.3, 0.2];
        let labels = [true, false, true, false, true, false];
        let curve = roc_curve(&scores, &labels);
        for w in curve.windows(2) {
            assert!(w[1].tpr >= w[0].tpr);
            assert!(w[1].fpr >= w[0].fpr);
        }
        let last = curve.last().expect("nonempty");
        assert_eq!((last.tpr, last.fpr), (1.0, 1.0));
    }

    #[test]
    fn ties_are_grouped() {
        let scores = [0.5f32, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        let curve = roc_curve(&scores, &labels);
        // start point + one grouped step
        assert_eq!(curve.len(), 2);
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let _ = roc_curve(&[0.1, 0.2], &[true, true]);
    }
}
