//! Exact t-SNE (Fig. 4c).
//!
//! The paper visualizes 250 embeddings in 3-D with t-SNE; at that scale the
//! exact O(n²) algorithm (van der Maaten & Hinton 2008) is the right tool —
//! no Barnes-Hut tree needed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TsneConfig {
    /// Output dimensionality (the paper's Fig. 4c uses 3).
    pub dims: usize,
    /// Perplexity of the conditional Gaussians.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            dims: 3,
            perplexity: 30.0,
            iterations: 500,
            learning_rate: 100.0,
            seed: 42,
        }
    }
}

/// Embeds `data` (n rows, equal dimension) into `config.dims` dimensions.
///
/// # Panics
///
/// Panics if `data` has fewer than 3 rows or ragged rows.
pub fn tsne(data: &[Vec<f32>], config: &TsneConfig) -> Vec<Vec<f64>> {
    let n = data.len();
    assert!(n >= 3, "t-SNE needs at least 3 points");
    let d = data[0].len();
    assert!(data.iter().all(|r| r.len() == d), "ragged t-SNE input");

    // pairwise squared distances in input space
    let mut d2 = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist: f64 = data[i]
                .iter()
                .zip(&data[j])
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum();
            d2[i][j] = dist;
            d2[j][i] = dist;
        }
    }

    // per-point precision via binary search on perplexity
    let target_entropy = config.perplexity.max(2.0).ln();
    let mut p = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        let mut beta_lo = 1e-20f64;
        let mut beta_hi = 1e20f64;
        let mut beta = 1.0f64;
        for _ in 0..64 {
            let mut sum = 0.0;
            for j in 0..n {
                if j != i {
                    p[i][j] = (-beta * d2[i][j]).exp();
                    sum += p[i][j];
                }
            }
            if sum <= 0.0 {
                break;
            }
            let mut entropy = 0.0;
            for (j, &pv) in p[i].iter().enumerate() {
                if j != i && pv > 0.0 {
                    let pj = pv / sum;
                    entropy -= pj * pj.ln();
                }
            }
            if (entropy - target_entropy).abs() < 1e-5 {
                break;
            }
            if entropy > target_entropy {
                beta_lo = beta;
                beta = if beta_hi >= 1e20 {
                    beta * 2.0
                } else {
                    (beta + beta_hi) / 2.0
                };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
            for j in 0..n {
                if j != i {
                    p[i][j] = (-beta * d2[i][j]).exp();
                }
            }
        }
        let sum: f64 = (0..n).filter(|&j| j != i).map(|j| p[i][j]).sum();
        if sum > 0.0 {
            for (j, pv) in p[i].iter_mut().enumerate() {
                if j != i {
                    *pv /= sum;
                }
            }
        }
    }
    // symmetrize with early exaggeration
    let mut pij = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in 0..n {
            pij[i][j] = ((p[i][j] + p[j][i]) / (2.0 * n as f64)).max(1e-12);
        }
    }

    // init layout
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut y: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..config.dims)
                .map(|_| rng.gen_range(-1e-2..1e-2))
                .collect()
        })
        .collect();
    let mut velocity = vec![vec![0.0f64; config.dims]; n];

    for iter in 0..config.iterations {
        let exaggeration = if iter < config.iterations / 4 {
            4.0
        } else {
            1.0
        };
        // low-dim affinities (student-t)
        let mut qnum = vec![vec![0.0f64; n]; n];
        let mut qsum = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let dist: f64 = y[i].iter().zip(&y[j]).map(|(a, b)| (a - b).powi(2)).sum();
                let q = 1.0 / (1.0 + dist);
                qnum[i][j] = q;
                qnum[j][i] = q;
                qsum += 2.0 * q;
            }
        }
        let qsum = qsum.max(1e-12);
        // gradient + momentum update
        let momentum = if iter < 100 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut grad = vec![0.0f64; config.dims];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let qij = (qnum[i][j] / qsum).max(1e-12);
                let coeff = 4.0 * (exaggeration * pij[i][j] - qij) * qnum[i][j];
                for k in 0..config.dims {
                    grad[k] += coeff * (y[i][k] - y[j][k]);
                }
            }
            for k in 0..config.dims {
                velocity[i][k] = momentum * velocity[i][k] - config.learning_rate * grad[k];
            }
        }
        for i in 0..n {
            for k in 0..config.dims {
                y[i][k] += velocity[i][k];
            }
        }
        // recentre
        for k in 0..config.dims {
            let mean: f64 = y.iter().map(|p| p[k]).sum::<f64>() / n as f64;
            for p in &mut y {
                p[k] -= mean;
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::cluster_separation;

    fn two_blobs(n_per: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per * 2 {
            let center = if i < n_per { 0.0f32 } else { 10.0 };
            let row: Vec<f32> = (0..8)
                .map(|_| center + rng.gen_range(-0.5f32..0.5))
                .collect();
            data.push(row);
            labels.push(usize::from(i >= n_per));
        }
        (data, labels)
    }

    #[test]
    fn separates_two_blobs() {
        let (data, labels) = two_blobs(20);
        let cfg = TsneConfig {
            perplexity: 10.0,
            iterations: 300,
            ..TsneConfig::default()
        };
        let y = tsne(&data, &cfg);
        assert_eq!(y.len(), 40);
        assert_eq!(y[0].len(), 3);
        let sep = cluster_separation(&y, &labels);
        assert!(sep > 0.5, "t-SNE failed to separate blobs: {sep}");
    }

    #[test]
    fn output_is_finite_and_centered() {
        let (data, _) = two_blobs(10);
        let y = tsne(
            &data,
            &TsneConfig {
                iterations: 100,
                ..TsneConfig::default()
            },
        );
        for p in &y {
            assert!(p.iter().all(|v| v.is_finite()));
        }
        for k in 0..3 {
            let mean: f64 = y.iter().map(|p| p[k]).sum::<f64>() / y.len() as f64;
            assert!(mean.abs() < 1e-6);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (data, _) = two_blobs(6);
        let cfg = TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        };
        assert_eq!(tsne(&data, &cfg), tsne(&data, &cfg));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_points_panics() {
        let _ = tsne(&[vec![0.0], vec![1.0]], &TsneConfig::default());
    }
}
